//! An iterative 2-D stencil pipeline: shows explicit tensor alignment (`mv`
//! nodes), the transposed-layout tiling decision, JIT memoization across
//! iterations, and the traffic conversion that makes in-memory computing win
//! (NoC data movement → intra-SRAM bitline shifts, Fig 13 of the paper).
//!
//! ```text
//! cargo run --release --example stencil_pipeline
//! ```

use infinity_stream::prelude::*;
use infinity_stream::runtime::TransposedLayout as Layout;

fn stencil_kernel(n: u64, fwd: bool) -> Kernel {
    let mut k = KernelBuilder::new(
        if fwd { "stencil_fwd" } else { "stencil_bwd" },
        DataType::F32,
    );
    let a = k.array("A", vec![n, n]);
    let b = k.array("B", vec![n, n]);
    let (src, dst) = if fwd { (a, b) } else { (b, a) };
    let i = k.parallel_loop("i", 1, n as i64 - 1);
    let j = k.parallel_loop("j", 1, n as i64 - 1);
    let tap = |di, dj| ScalarExpr::load(src, vec![Idx::var_plus(i, di), Idx::var_plus(j, dj)]);
    let sum = ScalarExpr::add(
        ScalarExpr::add(tap(0, 0), ScalarExpr::add(tap(-1, 0), tap(1, 0))),
        ScalarExpr::add(tap(0, -1), tap(0, 1)),
    );
    k.assign(
        dst,
        vec![Idx::var(i), Idx::var(j)],
        ScalarExpr::mul(sum, ScalarExpr::Const(0.2)),
    );
    k.build().expect("stencil kernel builds")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u64 = 1024;
    let iters = 10;

    let compiler = Compiler::default();
    let mut binary = FatBinary::new();
    binary.push(compiler.compile(stencil_kernel(n, true), &[])?);
    binary.push(compiler.compile(stencil_kernel(n, false), &[])?);

    // Peek at what the compiler and runtime decided for the forward kernel.
    let inst = binary.regions[0].instantiate(&[])?;
    let tdfg = inst.tdfg.as_ref().expect("stencil tensorizes");
    println!("tDFG for one stencil iteration:\n{tdfg}");
    let layout = Layout::plan(tdfg, &inst.hints, &SystemConfig::default().hw())?;
    println!(
        "runtime tiling decision: {} tiles of {} (shift hints: {:?})\n",
        layout.grid().num_tiles(),
        layout.tile(),
        inst.hints.shift_dims,
    );

    let mut session = Session::new(SystemConfig::default(), binary, ExecMode::InfS)?;
    let a0: Vec<f32> = (0..n * n).map(|v| ((v * 31) % 17) as f32).collect();
    session.memory().write_array(ArrayId(0), &a0);

    let mut per_iter = Vec::new();
    for it in 0..iters {
        let name = if it % 2 == 0 {
            "stencil_fwd"
        } else {
            "stencil_bwd"
        };
        let report = session.run(name, &[], &[])?;
        per_iter.push(report.cycles);
    }
    println!("cycles per iteration: {per_iter:?}");
    println!(
        "iteration 1 vs 3 (same kernel, memoized JIT): {} -> {} cycles",
        per_iter[0], per_iter[2]
    );

    let stats = session.finish();
    println!(
        "JIT cache: {} hits / {} misses; traffic: intra-tile {:.2e} B, \
         inter-tile(NoC) {:.2e} B·hops, data {:.2e} B·hops",
        stats.jit_hits,
        stats.jit_misses,
        stats.traffic.intra_tile,
        stats.traffic.noc_inter_tile,
        stats.traffic.noc_data,
    );
    assert!(
        per_iter[2] <= per_iter[0],
        "memoized iterations are not slower"
    );
    Ok(())
}

//! End-to-end PointNet++ inference (the paper's Fig 19 case study): a
//! hierarchical point-cloud network whose stages naturally land on different
//! paradigms — furthest-point sampling near-memory, dense MLP rounds
//! in-memory, small layers on the cores — all chosen by the Eq 2 runtime
//! decision inside one fused machine.
//!
//! ```text
//! cargo run --release --example pointnet [ssg|msg]
//! ```

use infinity_stream::prelude::*;
use infs_workloads::{Benchmark, PointNet, PointNetVariant, Scale};

fn main() {
    let variant = match std::env::args().nth(1).as_deref() {
        Some("msg") => PointNetVariant::Msg,
        _ => PointNetVariant::Ssg,
    };
    let vname = if variant == PointNetVariant::Msg {
        "MSG"
    } else {
        "SSG"
    };
    let cfg = SystemConfig::default();

    println!("PointNet++ {vname} classifier, 4k-point cloud (Table 4 parameters)\n");
    let mut base_total = 0u64;
    for (label, mode) in [
        ("Base", ExecMode::Base { threads: 64 }),
        ("Near-L3", ExecMode::NearL3),
        ("In-L3", ExecMode::InL3),
        ("Inf-S", ExecMode::InfS),
    ] {
        let net = PointNet::new(Scale::Paper, variant);
        let arrays = net.arrays();
        let mut m = Machine::new(cfg.clone(), &arrays);
        m.set_functional(false);
        m.set_resident_all();
        let reports = net.run_detailed(&mut m, mode).expect("pointnet runs");
        let total: u64 = reports.iter().map(|r| r.cycles).sum();
        if base_total == 0 {
            base_total = total;
        }
        println!(
            "=== {label}: {total} cycles ({:.2}x over Base) ===",
            base_total as f64 / total as f64
        );
        // Collapse the timeline per phase.
        let mut per_phase: std::collections::BTreeMap<&'static str, (u64, String)> =
            Default::default();
        for r in &reports {
            let e = per_phase.entry(r.phase).or_insert((0, String::new()));
            e.0 += r.cycles;
            e.1 = format!("{:?}", r.executed);
        }
        for (phase, (cycles, exec)) in per_phase {
            println!(
                "  {phase:<10} {:>5.1}%  ({exec})",
                100.0 * cycles as f64 / total as f64
            );
        }
        println!();
    }
}

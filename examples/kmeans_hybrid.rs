//! Hybrid in-/near-memory execution on k-means (§3.3 of the paper): the dense
//! distance computation runs on the bitlines, while the argmin assignment and
//! the indirect centroid update (`cent[assign[p]] += point`) run as
//! near-memory streams — one fused region sequence, one coherent memory.
//!
//! ```text
//! cargo run --release --example kmeans_hybrid
//! ```

use infinity_stream::prelude::*;
use infs_workloads::{Benchmark, Dataflow, Kmeans, Scale};

fn main() {
    let cfg = SystemConfig::default();

    // Functional check at verifiable scale, against the scalar reference.
    let small = Kmeans::new(Scale::Test, Dataflow::Outer);
    infs_workloads::verify(&small, ExecMode::InfS, &cfg).expect("kmeans verifies");
    println!("kmeans functional verification passed (test scale)\n");

    // Paper-scale timing: compare the three machine organizations.
    println!(
        "{:<22} {:>14} {:>10} {:>10} {:>10}",
        "config", "cycles", "in-mem", "near-mem", "core"
    );
    let mut base_cycles = 0;
    for (label, mode) in [
        ("Base (64 threads)", ExecMode::Base { threads: 64 }),
        ("Near-L3 only", ExecMode::NearL3),
        ("In-L3 only", ExecMode::InL3),
        ("Infinity Stream", ExecMode::InfS),
    ] {
        let b = Kmeans::new(Scale::Paper, Dataflow::Outer);
        let arrays = b.arrays();
        let mut m = Machine::new(cfg.clone(), &arrays);
        m.set_functional(false);
        m.set_resident_all();
        b.run(&mut m, mode).expect("kmeans runs");
        let stats = m.finish();
        let total = (stats.ops_in_memory + stats.ops_near_memory + stats.ops_core).max(1);
        println!(
            "{label:<22} {:>14} {:>9.0}% {:>9.0}% {:>9.0}%",
            stats.cycles,
            100.0 * stats.ops_in_memory as f64 / total as f64,
            100.0 * stats.ops_near_memory as f64 / total as f64,
            100.0 * stats.ops_core as f64 / total as f64,
        );
        if base_cycles == 0 {
            base_cycles = stats.cycles;
        } else if label == "Infinity Stream" {
            println!(
                "\nInf-S speedup over Base: {:.2}x — fusing paradigms lets the dense \
                 distance rounds use the bitlines\nwhile the indirect update stays a stream.",
                base_cycles as f64 / stats.cycles as f64
            );
        }
    }
}

//! Quickstart: write a kernel in the loop-nest IR, compile it into a fat
//! binary, and run it on the simulated 64-core / 144 MB compute-SRAM machine
//! under every execution paradigm.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use infinity_stream::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The program: SAXPY, y = a*x + y, over 1M elements. ------------
    let n: u64 = 1 << 20;
    let mut k = KernelBuilder::new("saxpy", DataType::F32);
    let x = k.array("X", vec![n]);
    let y = k.array("Y", vec![n]);
    let i = k.parallel_loop("i", 0, n as i64);
    k.assign(
        y,
        vec![Idx::var(i)],
        ScalarExpr::add(
            ScalarExpr::mul(ScalarExpr::Param(0), ScalarExpr::load(x, vec![Idx::var(i)])),
            ScalarExpr::load(y, vec![Idx::var(i)]),
        ),
    );
    let kernel = k.build()?;

    // --- 2. Static compilation: extract + optimize + schedule per geometry. -
    let mut binary = FatBinary::new();
    binary.push(Compiler::default().compile(kernel, &[])?);
    println!(
        "compiled fat binary: {} region(s), in-memory capable: {}",
        binary.regions.len(),
        binary.regions[0].tensorizable
    );

    // --- 3. Run under each paradigm and compare. ---------------------------
    let xs: Vec<f32> = (0..n).map(|v| (v % 100) as f32).collect();
    let ys: Vec<f32> = (0..n).map(|v| (v % 7) as f32).collect();
    let mut baseline_out: Option<Vec<f32>> = None;
    for (label, mode) in [
        ("Base (64 threads)", ExecMode::Base { threads: 64 }),
        ("Near-L3 streams", ExecMode::NearL3),
        ("In-L3 bit-serial", ExecMode::InL3),
        ("Infinity Stream", ExecMode::InfS),
    ] {
        let mut session = Session::new(SystemConfig::default(), binary.clone(), mode)?;
        session.memory().write_array(x, &xs);
        session.memory().write_array(y, &ys);
        let report = session.run("saxpy", &[], &[2.0])?;
        let out = session.memory_ref().array(y).to_vec();
        match &baseline_out {
            Some(b) => assert_eq!(&out, b, "all paradigms must agree"),
            None => baseline_out = Some(out),
        }
        let stats = session.finish();
        println!(
            "{label:<20} {:>12} cycles   executed: {:?}   NoC byte-hops: {:.2e}",
            report.cycles,
            report.executed,
            stats.traffic.noc_total(),
        );
    }
    println!("all paradigms produced identical results");
    Ok(())
}

//! Inner vs outer product dataflow for matrix multiplication (Fig 8 / Fig 15):
//! in-core execution favours the inner product (register accumulation), while
//! in-memory execution favours the outer product (element-wise accumulation
//! instead of a parallelism-halving reduction). This example measures both
//! dataflows under both paradigms on a 512×512 multiply.
//!
//! ```text
//! cargo run --release --example matmul_dataflow
//! ```

use infinity_stream::prelude::*;
use infs_workloads::{Benchmark, Dataflow, MatMul, Scale};

fn time(b: &dyn Benchmark, mode: ExecMode) -> u64 {
    let arrays = b.arrays();
    let mut m = Machine::new(SystemConfig::default(), &arrays);
    m.set_functional(false); // timing-only at this size
    m.set_resident_all();
    b.run(&mut m, mode).expect("matmul runs");
    m.finish().cycles
}

fn main() {
    // Functional sanity first, at a verifiable size.
    for df in [Dataflow::Inner, Dataflow::Outer] {
        let b = MatMul::new(Scale::Test, df);
        infs_workloads::verify(&b, ExecMode::InfS, &SystemConfig::default())
            .expect("matmul verifies against the scalar reference");
    }
    println!("functional verification passed for both dataflows\n");

    println!("{:<22} {:>14} {:>14}", "", "inner product", "outer product");
    let mut table = Vec::new();
    for (label, mode) in [
        ("Base (64 threads)", ExecMode::Base { threads: 64 }),
        ("Infinity Stream", ExecMode::InfS),
    ] {
        let t_in = time(&MatMul::new(Scale::Paper, Dataflow::Inner), mode);
        let t_out = time(&MatMul::new(Scale::Paper, Dataflow::Outer), mode);
        println!("{label:<22} {t_in:>14} {t_out:>14}   (cycles)");
        table.push((label, t_in, t_out));
    }
    let (_, base_in, base_out) = table[0];
    let (_, infs_in, infs_out) = table[1];
    println!(
        "\nInf-S outer-product speedup over Base inner product: {:.1}x",
        base_in as f64 / infs_out as f64
    );
    println!(
        "Inf-S inner/outer ratio: {:.2} (paper: outer wins clearly; our tall-tile \
         in-SRAM reduction\namortizes the inner product better — see EXPERIMENTS.md)",
        infs_in as f64 / infs_out as f64
    );
    // The in-core preference for the inner product (register accumulation) is
    // a structural effect and must reproduce.
    assert!(
        (base_in as f64) < 2.0 * base_out as f64,
        "Base dataflow preference out of expected band"
    );
    assert!(infs_out < base_in, "Inf-S must beat the in-core baseline");
}

//! Offline stand-in for `serde`, vendored because this build environment has
//! no crates.io access (see `vendor/README.md`).
//!
//! The real serde is format-agnostic; this stub is deliberately JSON-shaped:
//! [`Serialize`] lowers a value to a [`Value`] tree and [`Deserialize`] raises
//! it back. The repo only ever serializes through `serde_json`, so nothing is
//! lost, and the derive macros (`serde_derive`) emit the same field/variant
//! encodings serde_json would produce:
//!
//! * named struct  → object with fields in declaration order
//! * newtype struct → the inner value
//! * tuple struct  → array
//! * unit enum variant → `"Variant"`
//! * newtype enum variant → `{"Variant": value}`
//! * tuple enum variant → `{"Variant": [..]}`
//! * struct enum variant → `{"Variant": {..}}`

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON value tree. Objects preserve insertion order so struct fields
/// serialize in declaration order (as serde_json does when serializing
/// structs directly).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer that may exceed `i64::MAX`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up an object key (linear scan; objects here are small).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization error: what was expected vs. what was found, with a path
/// hint from the derive.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Error for a type mismatch at `at`.
    pub fn expected(what: &str, at: &str) -> DeError {
        DeError(format!("expected {what} at {at}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Lowers `self` to a [`Value`] tree.
pub trait Serialize {
    /// The value tree for this object.
    fn serialize(&self) -> Value;
}

/// Raises a value from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from `v`.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] on shape or type mismatch.
    fn deserialize(v: &Value) -> Result<Self, DeError>;

    /// The value to use when a struct field is absent (`None` = hard error).
    /// `Option<T>` overrides this so missing optional fields read as `None`.
    fn absent() -> Option<Self> {
        None
    }
}

/// Looks up and deserializes a struct field (used by the derive).
///
/// # Errors
///
/// Returns [`DeError`] if the key is missing (and the type has no absent
/// default) or its value fails to deserialize.
pub fn field<T: Deserialize>(obj: &Value, key: &str, ty: &str) -> Result<T, DeError> {
    match obj.get(key) {
        Some(v) => T::deserialize(v),
        None => T::absent().ok_or_else(|| DeError(format!("missing field '{key}' in {ty}"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) if *u <= i64::MAX as u64 => Ok(*u as $t),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    _ => Err(DeError::expected("integer", stringify!($t))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) if *i >= 0 => Ok(*i as $t),
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    _ => Err(DeError::expected("unsigned integer", stringify!($t))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Null => Ok(<$t>::NAN), // serde_json writes null for NaN
                    _ => Err(DeError::expected("number", stringify!($t))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .and_then(|s| {
                let mut it = s.chars();
                match (it.next(), it.next()) {
                    (Some(c), None) => Some(c),
                    _ => None,
                }
            })
            .ok_or_else(|| DeError::expected("single-char string", "char"))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }

    fn absent() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", "Vec"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let a = v.as_array().ok_or_else(|| DeError::expected("array", "tuple"))?;
                let mut it = a.iter();
                Ok(($(
                    $t::deserialize(
                        it.next().ok_or_else(|| DeError::expected("tuple element", "tuple"))?,
                    )?,
                )+))
            }
        }
    )+};
}
impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

/// Map keys must render to (and parse from) JSON object keys.
pub trait MapKey: Ord {
    /// The key as an object-key string.
    fn to_key(&self) -> String;
    /// Parses a key back.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the string is not a valid key.
    fn from_key(s: &str) -> Result<Self, DeError>
    where
        Self: Sized;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_string())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse().map_err(|_| DeError::expected("integer key", stringify!($t)))
            }
        }
    )*};
}
impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.serialize()))
                .collect(),
        )
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object", "BTreeMap"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl<K: MapKey + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        // Sort for deterministic output, matching serde_json's BTreeMap-backed
        // object representation.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_key(), v.serialize()))
                .collect(),
        )
    }
}

impl<K: MapKey + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object", "HashMap"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

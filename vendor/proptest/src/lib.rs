//! Offline stand-in for `proptest` (see `vendor/README.md`). Implements the
//! surface this repo's property tests use: the `proptest!` macro, range /
//! tuple / `collection::vec` / `bool::ANY` strategies, `prop_map`, and the
//! `prop_assert*` / `prop_assume!` macros. Differences from real proptest:
//! no shrinking (failures report the raw case), and the RNG is seeded
//! deterministically from the test name instead of an entropy source, so
//! every run explores the same cases.

pub mod test_runner {
    /// Runner configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Outcome of a single generated case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Case rejected by `prop_assume!`; does not count toward `cases`.
        Reject(String),
        /// Assertion failure; aborts the test.
        Fail(String),
    }

    /// Deterministic SplitMix64 RNG, seeded from the test's path.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name gives a stable per-test seed.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values. Unlike real proptest there is no value
    /// tree / shrinking; `generate` produces the final value directly.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_range_strategy_float {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    let v = self.start as f64
                        + unit * (self.end as f64 - self.start as f64);
                    let v = v as $t;
                    if v >= self.end { self.start } else { v }
                }
            }
        )*};
    }

    impl_range_strategy_float!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(S0.0);
    impl_tuple_strategy!(S0.0, S1.1);
    impl_tuple_strategy!(S0.0, S1.1, S2.2);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count bound for [`vec`]: an exact size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `cases` generated inputs (rejected cases via
/// `prop_assume!` do not count, with a cap on total attempts).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(1000);
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest: too many rejected cases in {}",
                    stringify!($name)
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        Ok(())
                    })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed in {} (case {} of {}): {}",
                            stringify!($name),
                            passed + 1,
                            config.cases,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
}

/// Fails the current case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} != {:?}", left, right),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Fails the current case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {:?} == {:?}",
                left, right
            )));
        }
    }};
}

/// Rejects the current case (retried without counting toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 0i64..10, pair in (1u32..4, -2i32..2)) {
            prop_assert!((0..10).contains(&x));
            prop_assert!(pair.0 >= 1 && pair.0 < 4);
            prop_assert!(pair.1 >= -2 && pair.1 < 2);
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u8..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
        }

        #[test]
        fn assume_rejects(x in 0i64..4) {
            prop_assume!(x != 0);
            prop_assert_ne!(x, 0);
        }

        #[test]
        fn map_applies(y in (0i64..5).prop_map(|v| v * 2)) {
            prop_assert_eq!(y % 2, 0);
        }
    }

    #[test]
    fn deterministic_rng_by_name() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        let s = 0u64..1000;
        for _ in 0..20 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}

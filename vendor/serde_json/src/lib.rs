//! Offline stand-in for `serde_json` (see `vendor/README.md`): a compact JSON
//! writer and a recursive-descent parser over the vendored [`serde::Value`]
//! model. Output is deterministic — struct fields in declaration order, map
//! keys in sorted order — which the bench harness relies on for byte-identical
//! parallel/sequential run matrices.

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to a compact JSON string.
///
/// # Errors
///
/// Infallible in this implementation (non-finite floats serialize as `null`,
/// as serde_json's `Value` path does); the `Result` mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to a human-readable, indented JSON string.
///
/// # Errors
///
/// Infallible in this implementation; the `Result` mirrors the real API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some("  "), 0);
    Ok(out)
}

/// Converts a value to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse(s)?;
    Ok(T::deserialize(&v)?)
}

/// Deserializes a value from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] on a shape mismatch.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    Ok(T::deserialize(v)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's shortest-roundtrip Display; mark integral values as
                // floats the way serde_json does ("1.0", not "1").
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(a) => {
            out.push('[');
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(e, out, indent, depth + 1);
            }
            if !a.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(o) => {
            out.push('{');
            for (i, (k, e)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(e, out, indent, depth + 1);
            }
            if !o.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a JSON string into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] on malformed input or trailing garbage.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::String(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut elems = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(elems));
        }
        loop {
            elems.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(elems));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("bad \\u escape"))?);
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the raw bytes.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("short \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("expected number"));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\\n\""] {
            let v = parse(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn roundtrip_nested() {
        let text = r#"{"a":[1,2,{"b":"c"}],"d":null}"#;
        let v = parse(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn float_marking() {
        assert_eq!(to_string(&Value::Float(2.0)).unwrap(), "2.0");
        assert_eq!(to_string(&Value::Float(f64::NAN)).unwrap(), "null");
    }

    #[test]
    fn big_u64_roundtrip() {
        let v = parse(&u64::MAX.to_string()).unwrap();
        assert_eq!(v, Value::UInt(u64::MAX));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
    }
}

//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! Implemented with a hand-written token-level parser (no `syn`/`quote`
//! available offline). Supports the shapes this workspace actually derives:
//! non-generic named/tuple/unit structs and enums with unit/tuple/struct
//! variants. Serde attributes (`#[serde(...)]`) are not supported and the
//! workspace does not use them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic types (deriving {name})");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body for {name}, found {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed attr group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => break,
        }
    }
}

/// Splits a token stream on top-level commas (commas inside `<...>` do not
/// count; bracketed groups are opaque single tokens).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0i32;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .filter(|part| !part.is_empty())
        .map(|part| {
            let mut i = 0;
            skip_attrs_and_vis(&part, &mut i);
            match &part[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("expected field name, found {other}"),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream)
        .into_iter()
        .filter(|part| !part.is_empty())
        .count()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .filter(|part| !part.is_empty())
        .map(|part| {
            let mut i = 0;
            skip_attrs_and_vis(&part, &mut i);
            let name = match &part[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("expected variant name, found {other}"),
            };
            i += 1;
            let fields = match part.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit, // possibly `= discriminant`, already split off
            };
            Variant { name, fields }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let entries: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "(\"{f}\".to_string(), ::serde::Serialize::serialize(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Object(vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n    fn serialize(&self) -> ::serde::Value {{ {body} }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::serialize(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::serialize(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let binds = fs.join(", ");
                            let entries: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::serialize({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n    fn serialize(&self) -> ::serde::Value {{\n        match self {{\n            {}\n        }}\n    }}\n}}\n",
                arms.join("\n            ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let inits: Vec<String> = fs
                        .iter()
                        .map(|f| format!("{f}: ::serde::field(v, \"{f}\", \"{name}\")?"))
                        .collect();
                    format!(
                        "if v.as_object().is_none() {{ return Err(::serde::DeError::expected(\"object\", \"{name}\")); }}\n        Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Fields::Tuple(1) => format!("Ok({name}(::serde::Deserialize::deserialize(v)?))"),
                Fields::Tuple(n) => {
                    let gets: Vec<String> = (0..*n)
                        .map(|i| {
                            format!(
                                "::serde::Deserialize::deserialize(a.get({i}).ok_or_else(|| ::serde::DeError::expected(\"element {i}\", \"{name}\"))?)?"
                            )
                        })
                        .collect();
                    format!(
                        "let a = v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", \"{name}\"))?;\n        Ok({name}({}))",
                        gets.join(", ")
                    )
                }
                Fields::Unit => format!("let _ = v; Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n    fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n        {body}\n    }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),", vn = v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::deserialize(payload)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let gets: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::deserialize(a.get({i}).ok_or_else(|| ::serde::DeError::expected(\"element {i}\", \"{name}::{vn}\"))?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let a = payload.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", \"{name}::{vn}\"))?; Ok({name}::{vn}({})) }}",
                                gets.join(", ")
                            ))
                        }
                        Fields::Named(fs) => {
                            let inits: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!("{f}: ::serde::field(payload, \"{f}\", \"{name}::{vn}\")?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n    fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n        match v {{\n            ::serde::Value::String(s) => match s.as_str() {{\n                {unit}\n                other => Err(::serde::DeError(format!(\"unknown variant '{{other}}' of {name}\"))),\n            }},\n            ::serde::Value::Object(o) if o.len() == 1 => {{\n                let (tag, payload) = &o[0];\n                match tag.as_str() {{\n                    {data}\n                    other => Err(::serde::DeError(format!(\"unknown variant '{{other}}' of {name}\"))),\n                }}\n            }}\n            _ => Err(::serde::DeError::expected(\"variant string or single-key object\", \"{name}\")),\n        }}\n    }}\n}}\n",
                unit = unit_arms.join("\n                "),
                data = data_arms.join("\n                    "),
            )
        }
    }
}

//! Offline stand-in for `rand` (see `vendor/README.md`). Provides the small
//! surface the workloads use: `StdRng::seed_from_u64` + `random_range` over a
//! half-open range. The generator is SplitMix64 — deterministic, seedable, and
//! statistically fine for synthetic test-input fills (it is NOT the real
//! StdRng stream, but nothing in the repo depends on the exact sequence).

use std::ops::Range;

/// Core RNG trait: raw 64-bit output plus ranged sampling.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `range` (half-open).
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }
}

/// Seedable construction, mirroring rand's trait of the same name.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a `Range`.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = range.start as f64 + unit * (range.end as f64 - range.start as f64);
                let v = v as $t;
                // Guard against rounding up to the excluded endpoint.
                if v >= range.end { range.start } else { v }
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let i = rng.random_range(-5i64..17);
            assert!((-5..17).contains(&i));
            let f = rng.random_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let u = rng.random_range(0u32..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}

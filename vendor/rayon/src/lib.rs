//! Offline stand-in for `rayon` (see `vendor/README.md`). Implements the
//! `into_par_iter()/par_iter() → map → collect/for_each` surface on top of
//! `std::thread::scope`: workers claim items by atomic index and write results
//! into per-index slots, so collected output is always in input order — the
//! determinism the bench harness' byte-identical-artifact tests rely on.
//! There is no work stealing; items should be coarse-grained (each one here is
//! a full simulation or lowering), which makes a claim-by-index loop optimal.
//!
//! Thread count: `RAYON_NUM_THREADS` (a value of 1 forces sequential
//! execution, useful for A/B determinism tests), else
//! `std::thread::available_parallelism()`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Number of worker threads parallel operations will use.
pub fn current_num_threads() -> usize {
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on worker threads, returning results in input order.
///
/// Each worker claims the next unprocessed index from a shared atomic counter
/// and stores its result in that index's slot — completion order never affects
/// output order. Panics in `f` propagate when the scope joins.
fn par_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    let slots = &slots;
    let results = &results;
    let next_ref = &next;

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || loop {
                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("item slot")
                    .take()
                    .expect("item claimed once");
                let out = f(item);
                *results[i].lock().expect("result slot") = Some(out);
            });
        }
    });

    results
        .iter()
        .map(|m| {
            m.lock()
                .expect("result slot")
                .take()
                .expect("worker stored result")
        })
        .collect()
}

/// Owned parallel iterator over a materialized item list.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        par_map_vec(self.items, f);
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Lazy `map` stage; evaluation happens at the terminal operation.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    pub fn map<R2, F2>(self, f2: F2) -> ParMap<T, impl Fn(T) -> R2 + Sync>
    where
        R2: Send,
        F2: Fn(R) -> R2 + Sync,
    {
        let f1 = self.f;
        ParMap {
            items: self.items,
            f: move |t| f2(f1(t)),
        }
    }

    pub fn collect<C: FromIterator<R>>(self) -> C {
        par_map_vec(self.items, self.f).into_iter().collect()
    }

    pub fn for_each<F2>(self, f2: F2)
    where
        F2: Fn(R) + Sync,
    {
        let f1 = self.f;
        par_map_vec(self.items, move |t| f2(f1(t)));
    }
}

/// Conversion into an owned parallel iterator (rayon's trait of the same name).
pub trait IntoParallelIterator {
    type Item: Send;

    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Borrowing conversion: `par_iter()` yielding `&T` (rayon's trait).
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;

    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn ref_iter_and_chained_map() {
        let v = vec![1i64, 2, 3, 4];
        let out: Vec<i64> = v.par_iter().map(|&x| x + 1).map(|x| x * 10).collect();
        assert_eq!(out, vec![20, 30, 40, 50]);
    }

    #[test]
    fn for_each_visits_all() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let total = AtomicUsize::new(0);
        (0..100usize).into_par_iter().for_each(|i| {
            total.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn collect_into_map() {
        use std::collections::BTreeMap;
        let m: BTreeMap<usize, usize> = vec![3usize, 1, 2]
            .into_par_iter()
            .map(|x| (x, x * x))
            .collect();
        assert_eq!(m.keys().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}

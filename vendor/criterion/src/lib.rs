//! Offline stand-in for `criterion` (see `vendor/README.md`). Keeps the macro
//! and builder surface the benches use (`criterion_group!`/`criterion_main!`,
//! groups, `bench_with_input`, `Bencher::iter`) but replaces the statistical
//! engine with a simple calibrated timing loop that prints median ns/iter.
//! Good enough to compare orders of magnitude; not a statistics package.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// Named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut wrapped = |b: &mut Bencher| f(b, input);
        run_bench(&label, self.sample_size, &mut wrapped);
        self
    }

    pub fn finish(self) {}
}

/// Benchmark identifier combining a function name and a parameter.
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.to_string(),
            param: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    samples_ns: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting `sample_size` samples of a calibrated batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate a batch size targeting ~2ms per sample, capped for
        // expensive bodies.
        let t0 = Instant::now();
        black_box(f());
        let once_ns = t0.elapsed().as_nanos().max(1) as f64;
        let batch = ((2_000_000.0 / once_ns).ceil() as u64).clamp(1, 100_000);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples_ns.push(elapsed / batch as f64);
        }
    }

    fn median_ns(&self) -> f64 {
        let mut s = self.samples_ns.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if s.is_empty() {
            return 0.0;
        }
        s[s.len() / 2]
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples_ns: Vec::new(),
        sample_size: sample_size.max(1),
    };
    f(&mut b);
    let med = b.median_ns();
    if med >= 1_000_000.0 {
        println!("{name:<48} {:>12.3} ms/iter", med / 1_000_000.0);
    } else if med >= 1_000.0 {
        println!("{name:<48} {:>12.3} us/iter", med / 1_000.0);
    } else {
        println!("{name:<48} {med:>12.1} ns/iter");
    }
}

/// Collects benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main`, running each group. CLI arguments are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut ran = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
    }
}

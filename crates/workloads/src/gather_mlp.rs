//! Gather + MLP layer (Table 3: M = 32k gathered rows, N/K = 128) — the
//! embedding-lookup-plus-dense-layer hybrid: the indirect gather runs
//! near-memory (§3.3), the dense layer runs in-memory in either dataflow, and
//! a final in-memory ReLU finishes the layer.

use crate::util::{compile, fill_small_ints, instantiate, Dataflow};
use crate::{Benchmark, Scale};
use infs_frontend::{Idx, KernelBuilder, ScalarExpr};
use infs_isa::CompiledRegion;
use infs_sdfg::{ArrayDecl, ArrayId, DataType, Memory, ReduceOp};
use infs_sim::{ExecMode, Machine, SimError};
use infs_tdfg::ComputeOp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const A_F: ArrayId = ArrayId(0); // F [K, NF] feature table
const A_IDX: ArrayId = ArrayId(1); // IDX [M]
const A_G: ArrayId = ArrayId(2); // G [K, M] gathered rows
const A_W: ArrayId = ArrayId(3); // W: [N, K] (out) / [K, N] (in)
const A_OUT: ArrayId = ArrayId(4); // OUT: [M, N] (out) / [N, M] (in)
const A_BUF_G: ArrayId = ArrayId(5); // bufG [M] (out) / unused (in)
const A_BUF_W: ArrayId = ArrayId(6); // bufW [1, N] (out) / bufWcol [K, 1] (in)

/// `OUT = relu(gather(F, IDX) × W)`.
#[derive(Debug)]
pub struct GatherMlp {
    m: u64,
    nk: u64,
    dataflow: Dataflow,
    name: String,
    gather: CompiledRegion,
    copy_g: Option<CompiledRegion>,
    copy_w: Option<CompiledRegion>,
    step: Option<CompiledRegion>,
    copy_wcol: Option<CompiledRegion>,
    col: Option<CompiledRegion>,
    relu: CompiledRegion,
}

impl GatherMlp {
    /// Table 3: M = 32k, N/K = 128 at paper scale.
    pub fn new(scale: Scale, dataflow: Dataflow) -> Self {
        let (m, nk) = match scale {
            Scale::Paper => (32 * 1024, 128),
            Scale::Test => (256, 16),
        };
        let nf = m; // feature table as large as the gathered set
        let declare = move |k: &mut KernelBuilder, df: Dataflow| {
            k.array("F", vec![nk, nf]);
            k.array_typed("IDX", vec![m], DataType::I32);
            k.array("G", vec![nk, m]);
            match df {
                Dataflow::Outer => k.array("W", vec![nk, nk]), // [N, K], n contiguous
                Dataflow::Inner => k.array("W", vec![nk, nk]), // [K, N], k contiguous
            };
            match df {
                Dataflow::Outer => k.array("OUT", vec![m, nk]), // (m, n)
                Dataflow::Inner => k.array("OUT", vec![nk, m]), // (n, m)
            };
            match df {
                Dataflow::Outer => k.array("bufG", vec![m]),
                Dataflow::Inner => k.array("bufG", vec![1]),
            };
            match df {
                Dataflow::Outer => k.array("bufW", vec![1, nk]),
                Dataflow::Inner => k.array("bufW", vec![nk, 1]),
            };
        };
        // Indirect gather: G[k][i] = F[k][IDX[i]] — near-memory only.
        let gather = {
            let mut kb = KernelBuilder::new("gather", DataType::F32);
            declare(&mut kb, dataflow);
            let k = kb.parallel_loop("k", 0, nk as i64);
            let i = kb.parallel_loop("i", 0, m as i64);
            let v = ScalarExpr::LoadIndirect {
                array: A_F,
                dim: 1,
                index: Box::new(ScalarExpr::load(A_IDX, vec![Idx::var(i)])),
                rest: vec![Idx::var(k), Idx::constant(0)],
            };
            kb.assign(A_G, vec![Idx::var(k), Idx::var(i)], v);
            compile(kb.build().expect("gather builds"), &[], false)
        };
        // Final activation, element-wise in-memory.
        let relu = {
            let mut kb = KernelBuilder::new("gather_mlp_relu", DataType::F32);
            declare(&mut kb, dataflow);
            let (d0, d1) = match dataflow {
                Dataflow::Outer => (m, nk),
                Dataflow::Inner => (nk, m),
            };
            let x = kb.parallel_loop("x", 0, d0 as i64);
            let y = kb.parallel_loop("y", 0, d1 as i64);
            kb.assign(
                A_OUT,
                vec![Idx::var(x), Idx::var(y)],
                ScalarExpr::un(
                    ComputeOp::Relu,
                    ScalarExpr::load(A_OUT, vec![Idx::var(x), Idx::var(y)]),
                ),
            );
            compile(kb.build().expect("relu builds"), &[], true)
        };
        let mut gm = GatherMlp {
            m,
            nk,
            dataflow,
            name: format!("gather_mlp/{}", dataflow.suffix()),
            gather,
            copy_g: None,
            copy_w: None,
            step: None,
            copy_wcol: None,
            col: None,
            relu,
        };
        match dataflow {
            Dataflow::Outer => {
                gm.copy_g = Some({
                    let mut kb = KernelBuilder::new("gmlp_copy_g", DataType::F32);
                    declare(&mut kb, dataflow);
                    let ks = kb.sym("k");
                    let i = kb.parallel_loop("i", 0, m as i64);
                    kb.assign(
                        A_BUF_G,
                        vec![Idx::var(i)],
                        ScalarExpr::load(A_G, vec![Idx::sym(ks), Idx::var(i)]),
                    );
                    compile(kb.build().expect("builds"), &[0], false)
                });
                gm.copy_w = Some({
                    let mut kb = KernelBuilder::new("gmlp_copy_w", DataType::F32);
                    declare(&mut kb, dataflow);
                    let ks = kb.sym("k");
                    let n = kb.parallel_loop("n", 0, nk as i64);
                    kb.assign(
                        A_BUF_W,
                        vec![Idx::constant(0), Idx::var(n)],
                        ScalarExpr::load(A_W, vec![Idx::var(n), Idx::sym(ks)]),
                    );
                    compile(kb.build().expect("builds"), &[0], false)
                });
                // OUT[i][n] += bufG[i] · bufW[0][n].
                gm.step = Some({
                    let mut kb = KernelBuilder::new("gmlp_step", DataType::F32);
                    declare(&mut kb, dataflow);
                    let i = kb.parallel_loop("i", 0, m as i64);
                    let n = kb.parallel_loop("n", 0, nk as i64);
                    let prod = ScalarExpr::mul(
                        ScalarExpr::load(A_BUF_G, vec![Idx::var(i)]),
                        ScalarExpr::load(A_BUF_W, vec![Idx::constant(0), Idx::var(n)]),
                    );
                    kb.accum(A_OUT, vec![Idx::var(i), Idx::var(n)], ReduceOp::Sum, prod);
                    compile(kb.build().expect("builds"), &[], true)
                });
            }
            Dataflow::Inner => {
                gm.copy_wcol = Some({
                    let mut kb = KernelBuilder::new("gmlp_copy_wcol", DataType::F32);
                    declare(&mut kb, dataflow);
                    let ns = kb.sym("n");
                    let k = kb.parallel_loop("k", 0, nk as i64);
                    kb.assign(
                        A_BUF_W,
                        vec![Idx::var(k), Idx::constant(0)],
                        ScalarExpr::load(A_W, vec![Idx::var(k), Idx::sym(ns)]),
                    );
                    compile(kb.build().expect("builds"), &[0], false)
                });
                // OUT[n][i] = Σ_k bufWcol[k] · G[k][i] — in-memory reduce.
                gm.col = Some({
                    let mut kb = KernelBuilder::new("gmlp_col", DataType::F32);
                    declare(&mut kb, dataflow);
                    let ns = kb.sym("n");
                    let k = kb.parallel_loop("k", 0, nk as i64);
                    let i = kb.parallel_loop("i", 0, m as i64);
                    let prod = ScalarExpr::mul(
                        ScalarExpr::load(A_BUF_W, vec![Idx::var(k), Idx::constant(0)]),
                        ScalarExpr::load(A_G, vec![Idx::var(k), Idx::var(i)]),
                    );
                    kb.assign_reduced(
                        A_OUT,
                        vec![Idx::sym(ns), Idx::var(i)],
                        prod,
                        vec![(k, ReduceOp::Sum)],
                    );
                    compile(kb.build().expect("builds"), &[0], true)
                });
            }
        }
        gm
    }
}

impl Benchmark for GatherMlp {
    fn name(&self) -> &str {
        &self.name
    }

    fn arrays(&self) -> Vec<ArrayDecl> {
        self.gather.kernel().arrays().to_vec()
    }

    fn init(&self, mem: &mut Memory) {
        fill_small_ints(mem, A_F, 111, 4);
        fill_small_ints(mem, A_W, 112, 3);
        let m = self.m;
        let mut rng = StdRng::seed_from_u64(113);
        for v in mem.array_mut(A_IDX) {
            *v = rng.random_range(0..m) as f32;
        }
    }

    fn run(&self, m: &mut Machine, mode: ExecMode) -> Result<(), SimError> {
        m.run_region(&instantiate(&self.gather, &[]), &[], mode)?;
        match self.dataflow {
            Dataflow::Outer => {
                let (cg, cw, step) = (
                    self.copy_g.as_ref().expect("built"),
                    self.copy_w.as_ref().expect("built"),
                    self.step.as_ref().expect("built"),
                );
                let step = instantiate(step, &[]);
                for k in 0..self.nk as i64 {
                    m.run_region(&instantiate(cg, &[k]), &[], mode)?;
                    m.run_region(&instantiate(cw, &[k]), &[], mode)?;
                    m.run_region(&step, &[], mode)?;
                }
            }
            Dataflow::Inner => {
                let (cw, col) = (
                    self.copy_wcol.as_ref().expect("built"),
                    self.col.as_ref().expect("built"),
                );
                for n in 0..self.nk as i64 {
                    m.run_region(&instantiate(cw, &[n]), &[], mode)?;
                    m.run_region(&instantiate(col, &[n]), &[], mode)?;
                }
            }
        }
        m.run_region(&instantiate(&self.relu, &[]), &[], mode)?;
        Ok(())
    }

    fn reference(&self, mem: &mut Memory) {
        let (m, nk) = (self.m as usize, self.nk as usize);
        let f = mem.array(A_F).to_vec();
        let idx = mem.array(A_IDX).to_vec();
        let w = mem.array(A_W).to_vec();
        // Gather.
        {
            let g = mem.array_mut(A_G);
            for i in 0..m {
                let src = idx[i] as usize;
                for k in 0..nk {
                    g[k + i * nk] = f[k + src * nk];
                }
            }
        }
        let g = mem.array(A_G).to_vec();
        let out = mem.array_mut(A_OUT);
        for i in 0..m {
            for n in 0..nk {
                let mut acc = 0.0;
                for k in 0..nk {
                    let wv = match self.dataflow {
                        Dataflow::Outer => w[n + k * nk], // W[n][k]
                        Dataflow::Inner => w[k + n * nk], // W[k][n]
                    };
                    acc += g[k + i * nk] * wv;
                }
                let o = match self.dataflow {
                    Dataflow::Outer => i + n * m,  // OUT[i][n], i contiguous
                    Dataflow::Inner => n + i * nk, // OUT[n][i], n contiguous
                };
                out[o] = acc.max(0.0);
            }
        }
    }

    fn output_arrays(&self) -> Vec<ArrayId> {
        vec![A_OUT]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use infs_sim::SystemConfig;

    #[test]
    fn gather_mlp_outer_verifies() {
        let b = GatherMlp::new(Scale::Test, Dataflow::Outer);
        for mode in [
            ExecMode::Base { threads: 64 },
            ExecMode::NearL3,
            ExecMode::InfS,
        ] {
            verify(&b, mode, &SystemConfig::default()).unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        }
    }

    #[test]
    fn gather_mlp_inner_verifies() {
        let b = GatherMlp::new(Scale::Test, Dataflow::Inner);
        for mode in [
            ExecMode::Base { threads: 64 },
            ExecMode::NearL3,
            ExecMode::InfS,
        ] {
            verify(&b, mode, &SystemConfig::default()).unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        }
    }
}

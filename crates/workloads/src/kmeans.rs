//! K-means clustering (Table 3: 32k points, dim = 128, 128 centers) — the
//! paper's flagship *hybrid* workload (§3.3): the distance computation runs
//! in-memory (element-wise accumulation rounds for `kmeans/out`, an in-memory
//! reduction for `kmeans/in`), while the argmin assignment and the indirect
//! centroid update (`cent[assign[p]] += point[p]`) stay near-memory.

use crate::util::{compile, fill_uniform, instantiate, Dataflow};
use crate::{Benchmark, Scale};
use infs_frontend::{Idx, KernelBuilder, ScalarExpr};
use infs_isa::{CompiledRegion, RegionInstance};
use infs_sdfg::{
    AccessFn, AffineMap, ArrayDecl, ArrayId, DataType, Memory, ReduceOp, Sdfg, StreamExpr,
};
use infs_sim::{ExecMode, Machine, SimError};
use infs_tdfg::ComputeOp;

const A_P: ArrayId = ArrayId(0); // P [D, NP]
const A_CENT: ArrayId = ArrayId(1); // CENT [D, NC]
const A_DIST: ArrayId = ArrayId(2); // DIST: [NP, NC] (out) or [NC, NP] (in)
const A_MIND: ArrayId = ArrayId(3); // MIND [NP, 1] (out) / [NP] (in)
const A_ASSIGN: ArrayId = ArrayId(4); // ASSIGN [NP]
const A_CENTNEW: ArrayId = ArrayId(5); // CENTNEW [D, NC]
const A_COUNTS: ArrayId = ArrayId(6); // COUNTS [1, NC]
const A_BUF_P: ArrayId = ArrayId(7); // bufP [NP] (out) / unused (in)
const A_BUF_C: ArrayId = ArrayId(8); // bufC [1, NC] (out) / bufCcol [D, 1] (in)

/// One Lloyd iteration of k-means.
#[derive(Debug)]
pub struct Kmeans {
    np: u64,
    nc: u64,
    d: u64,
    dataflow: Dataflow,
    name: String,
    copy_p: Option<CompiledRegion>,
    copy_c: Option<CompiledRegion>,
    dist_acc: Option<CompiledRegion>,
    mind: Option<CompiledRegion>,
    copy_ccol: Option<CompiledRegion>,
    dist_col: Option<CompiledRegion>,
    finalize: CompiledRegion,
}

impl Kmeans {
    /// Table 3 sizes at paper scale.
    pub fn new(scale: Scale, dataflow: Dataflow) -> Self {
        let (np, nc, d) = match scale {
            Scale::Paper => (32 * 1024, 128, 128),
            Scale::Test => (256, 8, 16),
        };
        let declare = move |k: &mut KernelBuilder, df: Dataflow| {
            k.array("P", vec![d, np]);
            k.array("CENT", vec![d, nc]);
            match df {
                Dataflow::Outer => k.array("DIST", vec![np, nc]),
                Dataflow::Inner => k.array("DIST", vec![nc, np]),
            };
            match df {
                Dataflow::Outer => k.array("MIND", vec![np, 1]),
                Dataflow::Inner => k.array("MIND", vec![np]),
            };
            k.array_typed("ASSIGN", vec![np], DataType::I32);
            k.array("CENTNEW", vec![d, nc]);
            k.array("COUNTS", vec![1, nc]);
            match df {
                Dataflow::Outer => k.array("bufP", vec![np]),
                Dataflow::Inner => k.array("bufP", vec![1]),
            };
            match df {
                Dataflow::Outer => k.array("bufC", vec![1, nc]),
                Dataflow::Inner => k.array("bufC", vec![d, 1]),
            };
        };
        // Final centroid recomputation: CENT = CENTNEW / max(COUNTS·D, 1)·D
        // (counts were accumulated once per (d, p) pair, see the update sdfg).
        let finalize = {
            let mut kb = KernelBuilder::new("kmeans_finalize", DataType::F32);
            declare(&mut kb, dataflow);
            let dd = kb.parallel_loop("d", 0, d as i64);
            let c = kb.parallel_loop("c", 0, nc as i64);
            let count = ScalarExpr::bin(
                ComputeOp::Max,
                ScalarExpr::load(A_COUNTS, vec![Idx::constant(0), Idx::var(c)]),
                ScalarExpr::Const(1.0),
            );
            let v = ScalarExpr::bin(
                ComputeOp::Div,
                ScalarExpr::load(A_CENTNEW, vec![Idx::var(dd), Idx::var(c)]),
                count,
            );
            kb.assign(A_CENT, vec![Idx::var(dd), Idx::var(c)], v);
            compile(kb.build().expect("kmeans finalize builds"), &[], true)
        };
        let mut km = Kmeans {
            np,
            nc,
            d,
            dataflow,
            name: format!("kmeans/{}", dataflow.suffix()),
            copy_p: None,
            copy_c: None,
            dist_acc: None,
            mind: None,
            copy_ccol: None,
            dist_col: None,
            finalize,
        };
        match dataflow {
            Dataflow::Outer => {
                // bufP[p] = P[d][p]; bufC[0][c] = CENT[d][c] (near-memory).
                km.copy_p = Some({
                    let mut kb = KernelBuilder::new("kmeans_copy_p", DataType::F32);
                    declare(&mut kb, dataflow);
                    let ds = kb.sym("d");
                    let p = kb.parallel_loop("p", 0, np as i64);
                    kb.assign(
                        A_BUF_P,
                        vec![Idx::var(p)],
                        ScalarExpr::load(A_P, vec![Idx::sym(ds), Idx::var(p)]),
                    );
                    compile(kb.build().expect("builds"), &[0], false)
                });
                km.copy_c = Some({
                    let mut kb = KernelBuilder::new("kmeans_copy_c", DataType::F32);
                    declare(&mut kb, dataflow);
                    let ds = kb.sym("d");
                    let c = kb.parallel_loop("c", 0, nc as i64);
                    kb.assign(
                        A_BUF_C,
                        vec![Idx::constant(0), Idx::var(c)],
                        ScalarExpr::load(A_CENT, vec![Idx::sym(ds), Idx::var(c)]),
                    );
                    compile(kb.build().expect("builds"), &[0], false)
                });
                // DIST[p][c] += (bufP[p] - bufC[0][c])² — memoized in-memory round.
                km.dist_acc = Some({
                    let mut kb = KernelBuilder::new("kmeans_dist_acc", DataType::F32);
                    declare(&mut kb, dataflow);
                    let p = kb.parallel_loop("p", 0, np as i64);
                    let c = kb.parallel_loop("c", 0, nc as i64);
                    let diff = ScalarExpr::sub(
                        ScalarExpr::load(A_BUF_P, vec![Idx::var(p)]),
                        ScalarExpr::load(A_BUF_C, vec![Idx::constant(0), Idx::var(c)]),
                    );
                    kb.accum(
                        A_DIST,
                        vec![Idx::var(p), Idx::var(c)],
                        ReduceOp::Sum,
                        ScalarExpr::mul(diff.clone(), diff),
                    );
                    compile(kb.build().expect("builds"), &[], true)
                });
                // MIND[p] = min_c DIST[p][c] — in-memory reduction over c.
                km.mind = Some({
                    let mut kb = KernelBuilder::new("kmeans_mind", DataType::F32);
                    declare(&mut kb, dataflow);
                    let p = kb.parallel_loop("p", 0, np as i64);
                    let c = kb.parallel_loop("c", 0, nc as i64);
                    kb.assign_reduced(
                        A_MIND,
                        vec![Idx::var(p), Idx::constant(0)],
                        ScalarExpr::load(A_DIST, vec![Idx::var(p), Idx::var(c)]),
                        vec![(c, ReduceOp::Min)],
                    );
                    compile(kb.build().expect("builds"), &[], true)
                });
            }
            Dataflow::Inner => {
                // bufCcol[d][0] = CENT[d][c] (near-memory).
                km.copy_ccol = Some({
                    let mut kb = KernelBuilder::new("kmeans_copy_ccol", DataType::F32);
                    declare(&mut kb, dataflow);
                    let cs = kb.sym("c");
                    let dd = kb.parallel_loop("d", 0, d as i64);
                    kb.assign(
                        A_BUF_C,
                        vec![Idx::var(dd), Idx::constant(0)],
                        ScalarExpr::load(A_CENT, vec![Idx::var(dd), Idx::sym(cs)]),
                    );
                    compile(kb.build().expect("builds"), &[0], false)
                });
                // DIST[c][p] = Σ_d (P[d][p] - bufCcol[d])² — in-memory reduce.
                km.dist_col = Some({
                    let mut kb = KernelBuilder::new("kmeans_dist_col", DataType::F32);
                    declare(&mut kb, dataflow);
                    let cs = kb.sym("c");
                    let dd = kb.parallel_loop("d", 0, d as i64);
                    let p = kb.parallel_loop("p", 0, np as i64);
                    let diff = ScalarExpr::sub(
                        ScalarExpr::load(A_P, vec![Idx::var(dd), Idx::var(p)]),
                        ScalarExpr::load(A_BUF_C, vec![Idx::var(dd), Idx::constant(0)]),
                    );
                    kb.assign_reduced(
                        A_DIST,
                        vec![Idx::sym(cs), Idx::var(p)],
                        ScalarExpr::mul(diff.clone(), diff),
                        vec![(dd, ReduceOp::Sum)],
                    );
                    compile(kb.build().expect("builds"), &[0], true)
                });
            }
        }
        km
    }

    fn array_table(&self) -> Vec<ArrayDecl> {
        self.finalize.kernel().arrays().to_vec()
    }

    /// Near-memory argmin pass: `ASSIGN[p] = c` for the last `c` whose distance
    /// equals the minimum (the select-chain of §3.3's irregularity support).
    fn argmin_region(&self) -> RegionInstance {
        let (np, nc) = (self.np, self.nc);
        let mut g = Sdfg::new(vec![nc, np]); // c innermost
        g.set_arrays(self.array_table());
        let dist_map = match self.dataflow {
            // DIST[p][c]: coord0 = p (iv1), coord1 = c (iv0).
            Dataflow::Outer => AffineMap {
                array: A_DIST,
                offset: vec![0, 0],
                coeffs: vec![vec![0, 1], vec![1, 0]],
            },
            // DIST[c][p].
            Dataflow::Inner => AffineMap {
                array: A_DIST,
                offset: vec![0, 0],
                coeffs: vec![vec![1, 0], vec![0, 1]],
            },
        };
        let ld = g.load(AccessFn::Affine(dist_map));
        let mind_map = match self.dataflow {
            Dataflow::Outer => AffineMap {
                array: A_MIND,
                offset: vec![0, 0],
                coeffs: vec![vec![0, 1], vec![0, 0]],
            },
            Dataflow::Inner => AffineMap {
                array: A_MIND,
                offset: vec![0],
                coeffs: vec![vec![0, 1]],
            },
        };
        let lm = g.load(AccessFn::Affine(mind_map));
        let assign_map = AffineMap {
            array: A_ASSIGN,
            offset: vec![0],
            coeffs: vec![vec![0, 1]],
        };
        let la = g.load(AccessFn::Affine(assign_map.clone()));
        let vd = g.stream_val(ld);
        let vm = g.stream_val(lm);
        let va = g.stream_val(la);
        let cval = g.expr(StreamExpr::LoopVar(0));
        // is_min = 1 - (mind < dist)  (dist >= mind always).
        let lt = g.expr(StreamExpr::Bin(infs_sdfg::BinOp::Lt, vm, vd));
        let one = g.expr(StreamExpr::Const(1.0));
        let is_min = g.expr(StreamExpr::Bin(infs_sdfg::BinOp::Sub, one, lt));
        let sel = g.expr(StreamExpr::Select(is_min, cval, va));
        g.store(AccessFn::Affine(assign_map), sel);
        RegionInstance {
            name: "kmeans_argmin".into(),
            syms: Vec::new(),
            tdfg: None,
            sdfg: g,
            schedules: Vec::new(),
            hints: Default::default(),
            profile: Default::default(),
        }
    }

    /// Near-memory MIND initialization for the inner dataflow (`+∞`).
    fn mind_init_region(&self) -> RegionInstance {
        let mut g = Sdfg::new(vec![self.np]);
        g.set_arrays(self.array_table());
        let inf = g.expr(StreamExpr::Const(f32::MAX));
        let map = match self.dataflow {
            Dataflow::Outer => AffineMap {
                array: A_MIND,
                offset: vec![0, 0],
                coeffs: vec![vec![1], vec![0]],
            },
            Dataflow::Inner => AffineMap::identity(A_MIND, 1),
        };
        g.store(AccessFn::Affine(map), inf);
        RegionInstance {
            name: "kmeans_mind_init".into(),
            syms: Vec::new(),
            tdfg: None,
            sdfg: g,
            schedules: Vec::new(),
            hints: Default::default(),
            profile: Default::default(),
        }
    }

    /// Near-memory MIND accumulation for the inner dataflow:
    /// `MIND[p] = min(MIND[p], DIST[c][p])` over all `(c, p)`.
    fn mind_update_region(&self) -> RegionInstance {
        let (np, nc) = (self.np, self.nc);
        let mut g = Sdfg::new(vec![nc, np]);
        g.set_arrays(self.array_table());
        let ld = g.load(AccessFn::Affine(AffineMap {
            array: A_DIST,
            offset: vec![0, 0],
            coeffs: vec![vec![1, 0], vec![0, 1]],
        }));
        let v = g.stream_val(ld);
        g.update(
            AccessFn::Affine(AffineMap {
                array: A_MIND,
                offset: vec![0],
                coeffs: vec![vec![0, 1]],
            }),
            ReduceOp::Min,
            v,
        );
        RegionInstance {
            name: "kmeans_mind_update".into(),
            syms: Vec::new(),
            tdfg: None,
            sdfg: g,
            schedules: Vec::new(),
            hints: Default::default(),
            profile: Default::default(),
        }
    }

    /// The indirect centroid update (near-memory, §3.3):
    /// `CENTNEW[d][assign[p]] += P[d][p]` and `COUNTS[0][assign[p]] += 1/D`.
    fn update_region(&self) -> RegionInstance {
        let (np, d) = (self.np, self.d);
        let mut g = Sdfg::new(vec![d, np]); // d innermost
        g.set_arrays(self.array_table());
        let la = g.load(AccessFn::Affine(AffineMap {
            array: A_ASSIGN,
            offset: vec![0],
            coeffs: vec![vec![0, 1]],
        }));
        let lp = g.load(AccessFn::identity(A_P, 2));
        let vp = g.stream_val(lp);
        g.update(
            AccessFn::Indirect {
                array: A_CENTNEW,
                index_stream: la,
                dim: 1,
                rest: AffineMap {
                    array: A_CENTNEW,
                    offset: vec![0, 0],
                    coeffs: vec![vec![1, 0], vec![0, 0]],
                },
            },
            ReduceOp::Sum,
            vp,
        );
        // Count 1/D per (d, p) pair so the total per point is exactly 1.
        let frac = g.expr(StreamExpr::Const(1.0 / d as f32));
        g.update(
            AccessFn::Indirect {
                array: A_COUNTS,
                index_stream: la,
                dim: 1,
                rest: AffineMap {
                    array: A_COUNTS,
                    offset: vec![0, 0],
                    coeffs: vec![vec![0, 0], vec![0, 0]],
                },
            },
            ReduceOp::Sum,
            frac,
        );
        RegionInstance {
            name: "kmeans_update".into(),
            syms: Vec::new(),
            tdfg: None,
            sdfg: g,
            schedules: Vec::new(),
            hints: Default::default(),
            profile: Default::default(),
        }
    }
}

impl Benchmark for Kmeans {
    fn name(&self) -> &str {
        &self.name
    }

    fn arrays(&self) -> Vec<ArrayDecl> {
        self.array_table()
    }

    fn init(&self, mem: &mut Memory) {
        fill_uniform(mem, A_P, 101, 0.0, 1.0);
        // Initial centroids: the first NC points.
        let (np, nc, d) = (self.np as usize, self.nc as usize, self.d as usize);
        let _ = np;
        let p = mem.array(A_P).to_vec();
        let cent = mem.array_mut(A_CENT);
        for c in 0..nc {
            for dd in 0..d {
                cent[dd + c * d] = p[dd + c * d];
            }
        }
    }

    fn run(&self, m: &mut Machine, mode: ExecMode) -> Result<(), SimError> {
        match self.dataflow {
            Dataflow::Outer => {
                let (cp, cc, acc) = (
                    self.copy_p.as_ref().expect("built"),
                    self.copy_c.as_ref().expect("built"),
                    self.dist_acc.as_ref().expect("built"),
                );
                let acc_inst = instantiate(acc, &[]);
                for dd in 0..self.d as i64 {
                    m.run_region(&instantiate(cp, &[dd]), &[], mode)?;
                    m.run_region(&instantiate(cc, &[dd]), &[], mode)?;
                    m.run_region(&acc_inst, &[], mode)?;
                }
                // MIND must start at the Min identity for the stream path
                // (reduced assigns accumulate onto the target's contents).
                m.run_region(&self.mind_init_region(), &[], mode)?;
                let mind = instantiate(self.mind.as_ref().expect("built"), &[]);
                m.run_region(&mind, &[], mode)?;
            }
            Dataflow::Inner => {
                let (cc, dc) = (
                    self.copy_ccol.as_ref().expect("built"),
                    self.dist_col.as_ref().expect("built"),
                );
                for c in 0..self.nc as i64 {
                    m.run_region(&instantiate(cc, &[c]), &[], mode)?;
                    m.run_region(&instantiate(dc, &[c]), &[], mode)?;
                }
                m.run_region(&self.mind_init_region(), &[], mode)?;
                m.run_region(&self.mind_update_region(), &[], mode)?;
            }
        }
        m.run_region(&self.argmin_region(), &[], mode)?;
        m.run_region(&self.update_region(), &[], mode)?;
        let fin = instantiate(&self.finalize, &[]);
        m.run_region(&fin, &[], mode)?;
        Ok(())
    }

    fn reference(&self, mem: &mut Memory) {
        let (np, nc, d) = (self.np as usize, self.nc as usize, self.d as usize);
        let p = mem.array(A_P).to_vec();
        let cent = mem.array(A_CENT).to_vec();
        // Distances + assignment (last index among equal minima, matching the
        // ascending select chain).
        let mut assign = vec![0usize; np];
        let mut dist = vec![0.0f32; np * nc];
        for pi in 0..np {
            let mut best = f32::MAX;
            for c in 0..nc {
                let mut acc = 0.0;
                for dd in 0..d {
                    let diff = p[dd + pi * d] - cent[dd + c * d];
                    acc += diff * diff;
                }
                dist[match self.dataflow {
                    Dataflow::Outer => pi + c * np,
                    Dataflow::Inner => c + pi * nc,
                }] = acc;
                if acc < best {
                    best = acc;
                }
            }
            for c in 0..nc {
                let v = dist[match self.dataflow {
                    Dataflow::Outer => pi + c * np,
                    Dataflow::Inner => c + pi * nc,
                }];
                if v == best {
                    assign[pi] = c; // last equal minimum wins
                }
            }
        }
        // Indirect update + finalize.
        let mut centnew = vec![0.0f32; d * nc];
        let mut counts = vec![0.0f32; nc];
        for pi in 0..np {
            let c = assign[pi];
            counts[c] += 1.0;
            for dd in 0..d {
                centnew[dd + c * d] += p[dd + pi * d];
            }
        }
        let centm = mem.array_mut(A_CENT);
        for c in 0..nc {
            for dd in 0..d {
                centm[dd + c * d] = centnew[dd + c * d] / counts[c].max(1.0);
            }
        }
        let am = mem.array_mut(A_ASSIGN);
        for pi in 0..np {
            am[pi] = assign[pi] as f32;
        }
    }

    fn output_arrays(&self) -> Vec<ArrayId> {
        vec![A_CENT, A_ASSIGN]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use infs_sim::SystemConfig;

    #[test]
    fn kmeans_outer_verifies() {
        let b = Kmeans::new(Scale::Test, Dataflow::Outer);
        for mode in [
            ExecMode::Base { threads: 64 },
            ExecMode::NearL3,
            ExecMode::InfS,
        ] {
            verify(&b, mode, &SystemConfig::default()).unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        }
    }

    #[test]
    fn kmeans_inner_verifies() {
        let b = Kmeans::new(Scale::Test, Dataflow::Inner);
        for mode in [
            ExecMode::Base { threads: 64 },
            ExecMode::NearL3,
            ExecMode::InfS,
        ] {
            verify(&b, mode, &SystemConfig::default()).unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        }
    }
}

//! A deep MLP expressed natively as a pipeline graph: five dense layers with
//! inter-layer ReLU over a batch of feature vectors — nine chained kernels
//! whose intermediates never round-trip to the host under the fused policy.
//!
//! This is the canonical multi-kernel model the `infs-pipeline` subsystem is
//! measured on (alongside the PointNet++ dense tail): every layer's output
//! tensor is consumed exactly once by the next stage, so the residency
//! planner keeps only the current layer's operands in L3 and the phase
//! scheduler stages layer *k+1*'s weights while layer *k* streams.

use crate::util::fill_uniform;
use crate::{Benchmark, Scale};
use infs_frontend::{Idx, ScalarExpr, TensorTable};
use infs_pipeline::{PipelineBuilder, PipelineGraph};
use infs_sdfg::{ArrayDecl, ArrayId, DataType, Memory, ReduceOp};
use infs_sim::{ExecMode, Machine, SimError};
use infs_tdfg::ComputeOp;

/// Batched MLP stack `X · W0 → relu → · W1 → relu → … → logits`.
#[derive(Debug)]
pub struct MlpStack {
    batch: u64,
    dims: Vec<u64>,
    x: ArrayId,
    weights: Vec<ArrayId>,
    hidden: Vec<ArrayId>,
    acts: Vec<ArrayId>,
    graph: PipelineGraph,
}

impl MlpStack {
    /// Builds the stack: batch×`dims[0]` input through `dims.len()-1` dense
    /// layers (`Paper` = 5 layers over a 256-vector batch).
    pub fn new(scale: Scale) -> Self {
        let (batch, dims): (u64, Vec<u64>) = match scale {
            Scale::Paper => (256, vec![256, 512, 512, 256, 128, 16]),
            Scale::Test => (8, vec![16, 16, 16, 8, 8, 4]),
        };
        let layers = dims.len() - 1;
        let mut table = TensorTable::new();
        let x = table.tensor("X", vec![batch, dims[0]]);
        let weights: Vec<ArrayId> = (0..layers)
            .map(|l| table.tensor(format!("W{l}"), vec![dims[l], dims[l + 1]]))
            .collect();
        let hidden: Vec<ArrayId> = (0..layers)
            .map(|l| table.tensor(format!("H{l}"), vec![batch, dims[l + 1]]))
            .collect();
        let acts: Vec<ArrayId> = (0..layers - 1)
            .map(|l| table.tensor(format!("A{l}"), vec![batch, dims[l + 1]]))
            .collect();

        let mut pb = PipelineBuilder::with_table("mlp_stack", table);
        for l in 0..layers {
            let input = if l == 0 { x } else { acts[l - 1] };
            let mut kb = pb.kernel(format!("mlp_fc{l}"), DataType::F32);
            let i = kb.parallel_loop("i", 0, dims[l] as i64);
            let b = kb.parallel_loop("b", 0, batch as i64);
            let o = kb.parallel_loop("o", 0, dims[l + 1] as i64);
            let prod = ScalarExpr::mul(
                ScalarExpr::load(input, vec![Idx::var(b), Idx::var(i)]),
                ScalarExpr::load(weights[l], vec![Idx::var(i), Idx::var(o)]),
            );
            kb.assign_reduced(
                hidden[l],
                vec![Idx::var(b), Idx::var(o)],
                prod,
                vec![(i, ReduceOp::Sum)],
            );
            pb.add_stage(kb.build().expect("fc kernel builds"), vec![], vec![], false);
            if l + 1 < layers {
                let mut kb = pb.kernel(format!("mlp_relu{l}"), DataType::F32);
                let b = kb.parallel_loop("b", 0, batch as i64);
                let o = kb.parallel_loop("o", 0, dims[l + 1] as i64);
                kb.assign(
                    acts[l],
                    vec![Idx::var(b), Idx::var(o)],
                    ScalarExpr::un(
                        ComputeOp::Relu,
                        ScalarExpr::load(hidden[l], vec![Idx::var(b), Idx::var(o)]),
                    ),
                );
                pb.add_stage(
                    kb.build().expect("relu kernel builds"),
                    vec![],
                    vec![],
                    true,
                );
            }
        }
        let graph = pb.build().expect("mlp_stack graph is well-formed");
        MlpStack {
            batch,
            dims,
            x,
            weights,
            hidden,
            acts,
            graph,
        }
    }

    /// The workload as a pipeline graph (its native form).
    pub fn graph(&self) -> &PipelineGraph {
        &self.graph
    }
}

impl Benchmark for MlpStack {
    fn name(&self) -> &str {
        "mlp_stack"
    }

    fn arrays(&self) -> Vec<ArrayDecl> {
        self.graph.tensors.clone()
    }

    fn init(&self, mem: &mut Memory) {
        fill_uniform(mem, self.x, 0x111, -1.0, 1.0);
        for &w in &self.weights {
            fill_uniform(mem, w, 0x222 + w.0 as u64, -0.5, 0.5);
        }
    }

    fn run(&self, m: &mut Machine, mode: ExecMode) -> Result<(), SimError> {
        let cfg = m.config().clone();
        let compiled =
            infs_pipeline::compile(&self.graph, &cfg).expect("mlp_stack pipeline compiles");
        compiled.run_fused(m, mode).map(|_| ())
    }

    fn reference(&self, mem: &mut Memory) {
        let layers = self.weights.len();
        let batch = self.batch as usize;
        let mut input: Vec<f32> = mem.array(self.x).to_vec();
        for l in 0..layers {
            let (din, dout) = (self.dims[l] as usize, self.dims[l + 1] as usize);
            let w = mem.array(self.weights[l]).to_vec();
            let mut out = vec![0.0f32; batch * dout];
            // First array dimension is the contiguous one (the layout every
            // workload reference uses); accumulate in the kernel's declared
            // loop order (i outermost) to keep the f32 sums tight.
            for i in 0..din {
                for b in 0..batch {
                    for o in 0..dout {
                        out[b + batch * o] += input[b + batch * i] * w[i + din * o];
                    }
                }
            }
            mem.array_mut(self.hidden[l]).copy_from_slice(&out);
            if l + 1 < layers {
                for v in &mut out {
                    *v = v.max(0.0);
                }
                mem.array_mut(self.acts[l]).copy_from_slice(&out);
            }
            input = out;
        }
    }

    fn output_arrays(&self) -> Vec<ArrayId> {
        vec![*self.hidden.last().expect("layers exist")]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use infs_sim::SystemConfig;

    #[test]
    fn graph_has_chained_stages() {
        let b = MlpStack::new(Scale::Test);
        assert!(b.graph().stages.len() >= 4, "must chain ≥4 kernels");
        b.graph().validate().unwrap();
        // Every hidden tensor has exactly one producer and one consumer.
        for &h in &b.hidden {
            assert!(b.graph().producer(h.0).is_some());
        }
    }

    #[test]
    fn fused_matches_reference_across_modes() {
        let b = MlpStack::new(Scale::Test);
        let cfg = SystemConfig::default();
        for mode in [
            ExecMode::Base { threads: 64 },
            ExecMode::NearL3,
            ExecMode::InfS,
        ] {
            verify(&b, mode, &cfg).unwrap();
        }
    }
}

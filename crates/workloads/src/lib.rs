//! The Infinity Stream benchmark suite.
//!
//! Implements every workload of the paper's evaluation (Table 3), the Fig 2
//! microbenchmarks, and the PointNet++ case study (Table 4), each with:
//!
//! * the kernels (written against the `infs-frontend` loop-nest IR — the
//!   "plain C" of this reproduction), structured the way the paper describes:
//!   dense phases tensorize, irregular/low-parallelism phases stay as streams,
//!   and sequential host loops re-enter regions with fresh symbols;
//! * a driver that runs the phases on a simulated [`Machine`] under any
//!   [`ExecMode`];
//! * deterministic input generation; and
//! * a plain-Rust scalar **reference implementation**, against which every
//!   configuration's functional output is verified.
//!
//! Benchmarks scale: [`Scale::Paper`] uses the Table 3 input sizes (timing
//! runs), [`Scale::Test`] shrinks them so functional verification stays fast.
//!
//! `DESIGN.md` §5 (experiment index) maps workloads to the tables and
//! figures they regenerate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conv;
mod gather_mlp;
mod gauss;
mod kmeans;
mod micro;
mod mlp_stack;
mod mm;
mod pointnet;
mod stencil;
mod util;

pub use conv::{Conv2d, Conv3d};
pub use gather_mlp::GatherMlp;
pub use gauss::GaussElim;
pub use kmeans::Kmeans;
pub use micro::{ArraySum, VecAdd};
pub use mlp_stack::MlpStack;
pub use mm::MatMul;
pub use pointnet::{PointNet, PointNetVariant};
pub use stencil::{Dwt2d, Stencil1d, Stencil2d, Stencil3d};
pub use util::Dataflow;

use infs_sdfg::{ArrayDecl, Memory};
use infs_sim::{ExecMode, Machine, RunStats, SimError, SystemConfig};

/// Input-size scale of a benchmark instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The Table 3 sizes used for figure regeneration (timing-only friendly).
    Paper,
    /// Reduced sizes for fast functional verification in tests.
    Test,
}

/// A runnable benchmark: kernels + driver + reference.
///
/// `Send + Sync` is a supertrait so benchmark objects can be constructed on
/// one thread and driven on another — the parallel run matrix simulates many
/// (benchmark, configuration) pairs on worker threads at once. Implementors
/// hold only plain data (shapes, scales, constants), so this costs nothing.
pub trait Benchmark: Send + Sync {
    /// Display name (Table 3 naming, e.g. `"stencil2d"` or `"mm/out"`).
    fn name(&self) -> &str;

    /// The shared array table all of the benchmark's kernels use.
    fn arrays(&self) -> Vec<ArrayDecl>;

    /// Fills input arrays (deterministic).
    fn init(&self, mem: &mut Memory);

    /// Drives all phases/iterations on the machine.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (functional failures).
    fn run(&self, m: &mut Machine, mode: ExecMode) -> Result<(), SimError>;

    /// Scalar reference implementation over the same memory layout.
    fn reference(&self, mem: &mut Memory);

    /// Arrays whose contents constitute the checked output.
    fn output_arrays(&self) -> Vec<infs_sdfg::ArrayId>;
}

// Compile-time audit of the types the parallel run matrix moves across or
// shares between worker threads. No `unsafe impl` anywhere: these hold only
// owned plain data, so the auto traits must come for free.
const _: () = {
    const fn assert_send<T: Send + ?Sized>() {}
    const fn assert_sync<T: Sync + ?Sized>() {}
    assert_send::<Box<dyn Benchmark>>();
    assert_send::<Machine>();
    assert_send::<RunStats>();
    assert_send::<SimError>();
    assert_sync::<SystemConfig>();
};

/// Runs a benchmark end-to-end and returns the machine statistics.
///
/// With `functional` disabled the run is timing-only (for paper-scale inputs
/// whose interpretation would take hours); functional verification then
/// happens separately at [`Scale::Test`] via [`verify`].
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_timed(
    b: &dyn Benchmark,
    mode: ExecMode,
    cfg: &SystemConfig,
    functional: bool,
    assume_transposed: bool,
) -> Result<RunStats, SimError> {
    let arrays = b.arrays();
    let mut m = Machine::new(cfg.clone(), &arrays);
    m.set_functional(functional);
    m.set_assume_transposed(assume_transposed);
    // §6: inputs are assumed tiled to fit in (and warm in) the L3.
    m.set_resident_all();
    if functional {
        b.init(m.memory());
    }
    b.run(&mut m, mode)?;
    Ok(m.finish())
}

/// Verifies a benchmark's functional output under a mode against its scalar
/// reference.
///
/// # Errors
///
/// Returns a description of the first mismatching element.
pub fn verify(b: &dyn Benchmark, mode: ExecMode, cfg: &SystemConfig) -> Result<(), String> {
    let arrays = b.arrays();
    let mut m = Machine::new(cfg.clone(), &arrays);
    b.init(m.memory());
    b.run(&mut m, mode).map_err(|e| e.to_string())?;

    let mut golden = Memory::for_arrays(&arrays);
    b.init(&mut golden);
    b.reference(&mut golden);

    for id in b.output_arrays() {
        let got = m.memory_ref().array(id);
        let want = golden.array(id);
        for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
            let tol = 1e-3 * w.abs().max(1.0);
            if (g - w).abs() > tol {
                return Err(format!(
                    "{}: array {} ({}) differs at {}: got {}, want {}",
                    b.name(),
                    id,
                    arrays[id.0 as usize].name,
                    i,
                    g,
                    w
                ));
            }
        }
    }
    Ok(())
}

/// The ten Fig 11 benchmarks at a given scale, best dataflow per the paper
/// (tiled inner product for Base is handled inside `mm`/`kmeans`/`gather_mlp`
/// via [`Dataflow`] selection in the figure harness).
pub fn fig11_suite(scale: Scale) -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(Stencil1d::new(scale)),
        Box::new(Stencil2d::new(scale)),
        Box::new(Stencil3d::new(scale)),
        Box::new(Dwt2d::new(scale)),
        Box::new(GaussElim::new(scale)),
        Box::new(Conv2d::new(scale)),
        Box::new(Conv3d::new(scale)),
        Box::new(MatMul::new(scale, Dataflow::Outer)),
        Box::new(Kmeans::new(scale, Dataflow::Outer)),
        Box::new(GatherMlp::new(scale, Dataflow::Outer)),
    ]
}

/// All 13 Table 3 workload variants (the Fig 13/14 x-axis): the Fig 11 suite
/// with both dataflows of the three reduction workloads.
pub fn full_suite(scale: Scale) -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(Stencil1d::new(scale)),
        Box::new(Stencil2d::new(scale)),
        Box::new(Stencil3d::new(scale)),
        Box::new(Dwt2d::new(scale)),
        Box::new(GaussElim::new(scale)),
        Box::new(Conv2d::new(scale)),
        Box::new(Conv3d::new(scale)),
        Box::new(MatMul::new(scale, Dataflow::Inner)),
        Box::new(MatMul::new(scale, Dataflow::Outer)),
        Box::new(Kmeans::new(scale, Dataflow::Inner)),
        Box::new(Kmeans::new(scale, Dataflow::Outer)),
        Box::new(GatherMlp::new(scale, Dataflow::Inner)),
        Box::new(GatherMlp::new(scale, Dataflow::Outer)),
    ]
}

/// Constructs one benchmark by its Table 3 name (e.g. `"mm/out"`).
pub fn by_name(name: &str, scale: Scale) -> Option<Box<dyn Benchmark>> {
    let b: Box<dyn Benchmark> = match name {
        "stencil1d" => Box::new(Stencil1d::new(scale)),
        "stencil2d" => Box::new(Stencil2d::new(scale)),
        "stencil3d" => Box::new(Stencil3d::new(scale)),
        "dwt2d" => Box::new(Dwt2d::new(scale)),
        "gauss_elim" => Box::new(GaussElim::new(scale)),
        "conv2d" => Box::new(Conv2d::new(scale)),
        "conv3d" => Box::new(Conv3d::new(scale)),
        "mm/in" => Box::new(MatMul::new(scale, Dataflow::Inner)),
        "mm/out" => Box::new(MatMul::new(scale, Dataflow::Outer)),
        "kmeans/in" => Box::new(Kmeans::new(scale, Dataflow::Inner)),
        "kmeans/out" => Box::new(Kmeans::new(scale, Dataflow::Outer)),
        "gather_mlp/in" => Box::new(GatherMlp::new(scale, Dataflow::Inner)),
        "gather_mlp/out" => Box::new(GatherMlp::new(scale, Dataflow::Outer)),
        // Not part of the Table 3 suite: the multi-kernel pipeline workload.
        "mlp_stack" => Box::new(MlpStack::new(scale)),
        _ => return None,
    };
    Some(b)
}

//! Stencil workloads of Table 3: `stencil1d/2d/3d` (iterative, shift-dominated)
//! and `dwt2d` (a stationary wavelet-lifting transform — the paper's dwt2d is
//! also shift + element-wise; we use the undecimated form because strided
//! (decimated) indices are not bitline-alignable, see DESIGN.md).

use crate::util::{compile, fill_small_ints, instantiate};
use crate::{Benchmark, Scale};
use infs_frontend::{Idx, KernelBuilder, LoopVar, ScalarExpr};
use infs_isa::RegionInstance;
use infs_sdfg::{ArrayDecl, ArrayId, DataType, Memory};
use infs_sim::{ExecMode, Machine, SimError};

fn load1(a: ArrayId, i: LoopVar, off: i64) -> ScalarExpr {
    ScalarExpr::load(a, vec![Idx::var_plus(i, off)])
}

/// 3-point iterative 1-D stencil: `B[i] = A[i-1]+A[i]+A[i+1]`, ping-ponged.
#[derive(Debug)]
pub struct Stencil1d {
    n: u64,
    iters: u32,
    fwd: RegionInstance,
    bwd: RegionInstance,
}

impl Stencil1d {
    /// Table 3: 4M entries, 10 iterations at paper scale.
    pub fn new(scale: Scale) -> Self {
        let (n, iters) = match scale {
            Scale::Paper => (4 << 20, 10),
            Scale::Test => (1 << 12, 4),
        };
        let build = |name: &str, src_first: bool| {
            let mut k = KernelBuilder::new(name, DataType::F32);
            let a = k.array("A", vec![n]);
            let b = k.array("B", vec![n]);
            let (src, dst) = if src_first { (a, b) } else { (b, a) };
            let i = k.parallel_loop("i", 1, n as i64 - 1);
            let e = ScalarExpr::add(
                ScalarExpr::add(load1(src, i, -1), load1(src, i, 0)),
                load1(src, i, 1),
            );
            k.assign(dst, vec![Idx::var(i)], e);
            instantiate(
                &compile(k.build().expect("stencil1d builds"), &[], true),
                &[],
            )
        };
        Stencil1d {
            n,
            iters,
            fwd: build("stencil1d_fwd", true),
            bwd: build("stencil1d_bwd", false),
        }
    }
}

impl Benchmark for Stencil1d {
    fn name(&self) -> &str {
        "stencil1d"
    }

    fn arrays(&self) -> Vec<ArrayDecl> {
        self.fwd.sdfg.arrays().to_vec()
    }

    fn init(&self, mem: &mut Memory) {
        fill_small_ints(mem, ArrayId(0), 11, 4);
    }

    fn run(&self, m: &mut Machine, mode: ExecMode) -> Result<(), SimError> {
        for it in 0..self.iters {
            let region = if it % 2 == 0 { &self.fwd } else { &self.bwd };
            m.run_region(region, &[], mode)?;
        }
        Ok(())
    }

    fn reference(&self, mem: &mut Memory) {
        let n = self.n as usize;
        for it in 0..self.iters {
            let (s, d) = if it % 2 == 0 {
                (ArrayId(0), ArrayId(1))
            } else {
                (ArrayId(1), ArrayId(0))
            };
            let src = mem.array(s).to_vec();
            let dst = mem.array_mut(d);
            for i in 1..n - 1 {
                dst[i] = src[i - 1] + src[i] + src[i + 1];
            }
        }
    }

    fn output_arrays(&self) -> Vec<ArrayId> {
        vec![ArrayId(if self.iters % 2 == 1 { 1 } else { 0 })]
    }
}

/// 5-point iterative 2-D stencil over an `n×n` grid.
#[derive(Debug)]
pub struct Stencil2d {
    n: u64,
    iters: u32,
    fwd: RegionInstance,
    bwd: RegionInstance,
}

impl Stencil2d {
    /// Table 3: 2k×2k, 10 iterations at paper scale.
    pub fn new(scale: Scale) -> Self {
        let (n, iters) = match scale {
            Scale::Paper => (2048, 10),
            Scale::Test => (64, 3),
        };
        let build = |name: &str, src_first: bool| {
            let mut k = KernelBuilder::new(name, DataType::F32);
            let a = k.array("A", vec![n, n]);
            let b = k.array("B", vec![n, n]);
            let (src, dst) = if src_first { (a, b) } else { (b, a) };
            let i = k.parallel_loop("i", 1, n as i64 - 1);
            let j = k.parallel_loop("j", 1, n as i64 - 1);
            let tap = |di: i64, dj: i64| {
                ScalarExpr::load(src, vec![Idx::var_plus(i, di), Idx::var_plus(j, dj)])
            };
            let sum = ScalarExpr::add(
                ScalarExpr::add(tap(0, 0), ScalarExpr::add(tap(-1, 0), tap(1, 0))),
                ScalarExpr::add(tap(0, -1), tap(0, 1)),
            );
            let scaled = ScalarExpr::mul(sum, ScalarExpr::Const(0.2));
            k.assign(dst, vec![Idx::var(i), Idx::var(j)], scaled);
            instantiate(
                &compile(k.build().expect("stencil2d builds"), &[], true),
                &[],
            )
        };
        Stencil2d {
            n,
            iters,
            fwd: build("stencil2d_fwd", true),
            bwd: build("stencil2d_bwd", false),
        }
    }
}

impl Benchmark for Stencil2d {
    fn name(&self) -> &str {
        "stencil2d"
    }

    fn arrays(&self) -> Vec<ArrayDecl> {
        self.fwd.sdfg.arrays().to_vec()
    }

    fn init(&self, mem: &mut Memory) {
        fill_small_ints(mem, ArrayId(0), 22, 8);
    }

    fn run(&self, m: &mut Machine, mode: ExecMode) -> Result<(), SimError> {
        for it in 0..self.iters {
            let region = if it % 2 == 0 { &self.fwd } else { &self.bwd };
            m.run_region(region, &[], mode)?;
        }
        Ok(())
    }

    fn reference(&self, mem: &mut Memory) {
        let n = self.n as usize;
        for it in 0..self.iters {
            let (s, d) = if it % 2 == 0 {
                (ArrayId(0), ArrayId(1))
            } else {
                (ArrayId(1), ArrayId(0))
            };
            let src = mem.array(s).to_vec();
            let dst = mem.array_mut(d);
            for j in 1..n - 1 {
                for i in 1..n - 1 {
                    let at = |x: usize, y: usize| src[x + y * n];
                    dst[i + j * n] = 0.2
                        * (at(i, j) + at(i - 1, j) + at(i + 1, j) + at(i, j - 1) + at(i, j + 1));
                }
            }
        }
    }

    fn output_arrays(&self) -> Vec<ArrayId> {
        vec![ArrayId(if self.iters % 2 == 1 { 1 } else { 0 })]
    }
}

/// 7-point iterative 3-D stencil over `nx×ny×nz`.
#[derive(Debug)]
pub struct Stencil3d {
    shape: [u64; 3],
    iters: u32,
    fwd: RegionInstance,
    bwd: RegionInstance,
}

impl Stencil3d {
    /// Table 3: 512×512×16, 10 iterations at paper scale.
    pub fn new(scale: Scale) -> Self {
        let (shape, iters) = match scale {
            Scale::Paper => ([512, 512, 16], 10),
            Scale::Test => ([16, 16, 8], 2),
        };
        let build = |name: &str, src_first: bool| {
            let mut k = KernelBuilder::new(name, DataType::F32);
            let a = k.array("A", shape.to_vec());
            let b = k.array("B", shape.to_vec());
            let (src, dst) = if src_first { (a, b) } else { (b, a) };
            let x = k.parallel_loop("x", 1, shape[0] as i64 - 1);
            let y = k.parallel_loop("y", 1, shape[1] as i64 - 1);
            let z = k.parallel_loop("z", 1, shape[2] as i64 - 1);
            let tap = |dx: i64, dy: i64, dz: i64| {
                ScalarExpr::load(
                    src,
                    vec![
                        Idx::var_plus(x, dx),
                        Idx::var_plus(y, dy),
                        Idx::var_plus(z, dz),
                    ],
                )
            };
            let sum = ScalarExpr::add(
                ScalarExpr::add(tap(0, 0, 0), ScalarExpr::add(tap(-1, 0, 0), tap(1, 0, 0))),
                ScalarExpr::add(
                    ScalarExpr::add(tap(0, -1, 0), tap(0, 1, 0)),
                    ScalarExpr::add(tap(0, 0, -1), tap(0, 0, 1)),
                ),
            );
            k.assign(dst, vec![Idx::var(x), Idx::var(y), Idx::var(z)], sum);
            instantiate(
                &compile(k.build().expect("stencil3d builds"), &[], true),
                &[],
            )
        };
        Stencil3d {
            shape,
            iters,
            fwd: build("stencil3d_fwd", true),
            bwd: build("stencil3d_bwd", false),
        }
    }
}

impl Benchmark for Stencil3d {
    fn name(&self) -> &str {
        "stencil3d"
    }

    fn arrays(&self) -> Vec<ArrayDecl> {
        self.fwd.sdfg.arrays().to_vec()
    }

    fn init(&self, mem: &mut Memory) {
        fill_small_ints(mem, ArrayId(0), 33, 4);
    }

    fn run(&self, m: &mut Machine, mode: ExecMode) -> Result<(), SimError> {
        for it in 0..self.iters {
            let region = if it % 2 == 0 { &self.fwd } else { &self.bwd };
            m.run_region(region, &[], mode)?;
        }
        Ok(())
    }

    fn reference(&self, mem: &mut Memory) {
        let [nx, ny, nz] = self.shape.map(|v| v as usize);
        for it in 0..self.iters {
            let (s, d) = if it % 2 == 0 {
                (ArrayId(0), ArrayId(1))
            } else {
                (ArrayId(1), ArrayId(0))
            };
            let src = mem.array(s).to_vec();
            let dst = mem.array_mut(d);
            let at = |x: usize, y: usize, z: usize| src[x + nx * (y + ny * z)];
            for z in 1..nz - 1 {
                for y in 1..ny - 1 {
                    for x in 1..nx - 1 {
                        dst[x + nx * (y + ny * z)] = at(x, y, z)
                            + at(x - 1, y, z)
                            + at(x + 1, y, z)
                            + at(x, y - 1, z)
                            + at(x, y + 1, z)
                            + at(x, y, z - 1)
                            + at(x, y, z + 1);
                    }
                }
            }
        }
    }

    fn output_arrays(&self) -> Vec<ArrayId> {
        vec![ArrayId(if self.iters % 2 == 1 { 1 } else { 0 })]
    }
}

/// Stationary (undecimated) wavelet lifting over an `n×n` image: horizontal
/// predict/update, then vertical predict/update.
#[derive(Debug)]
pub struct Dwt2d {
    n: u64,
    phases: Vec<RegionInstance>,
}

impl Dwt2d {
    /// Table 3: 2k×2k at paper scale.
    pub fn new(scale: Scale) -> Self {
        let n = match scale {
            Scale::Paper => 2048,
            Scale::Test => 64,
        };
        // Arrays: 0 = A (input), 1 = D (detail), 2 = S (smooth), 3 = D2, 4 = OUT.
        let mk = |name: &str,
                  src: u32,
                  aux: u32,
                  dst: u32,
                  dim: usize,
                  lo: i64,
                  hi: i64,
                  predict: bool| {
            let mut k = KernelBuilder::new(name, DataType::F32);
            let arrays: Vec<ArrayId> = ["A", "D", "S", "D2", "OUT"]
                .iter()
                .map(|nm| k.array(*nm, vec![n, n]))
                .collect();
            let i = k.parallel_loop(
                "i",
                if dim == 0 { lo } else { 0 },
                if dim == 0 { hi } else { n as i64 },
            );
            let j = k.parallel_loop(
                "j",
                if dim == 1 { lo } else { 0 },
                if dim == 1 { hi } else { n as i64 },
            );
            let tap = |arr: ArrayId, d: i64| {
                let (di, dj) = if dim == 0 { (d, 0) } else { (0, d) };
                ScalarExpr::load(arr, vec![Idx::var_plus(i, di), Idx::var_plus(j, dj)])
            };
            let (weight, base) = if predict { (-0.5, src) } else { (0.25, src) };
            let neighbors =
                ScalarExpr::add(tap(arrays[aux as usize], -1), tap(arrays[aux as usize], 1));
            let e = ScalarExpr::add(
                tap(arrays[base as usize], 0),
                ScalarExpr::mul(neighbors, ScalarExpr::Const(weight)),
            );
            k.assign(arrays[dst as usize], vec![Idx::var(i), Idx::var(j)], e);
            instantiate(&compile(k.build().expect("dwt2d builds"), &[], true), &[])
        };
        let ni = n as i64;
        let phases = vec![
            // D = A - 0.5 (A←, A→) on dim 0.
            mk("dwt_h_predict", 0, 0, 1, 0, 1, ni - 1, true),
            // S = A + 0.25 (D←, D→).
            mk("dwt_h_update", 0, 1, 2, 0, 2, ni - 2, false),
            // D2 = S - 0.5 (S↑, S↓) on dim 1.
            mk("dwt_v_predict", 2, 2, 3, 1, 1, ni - 1, true),
            // OUT = S + 0.25 (D2↑, D2↓).
            mk("dwt_v_update", 2, 3, 4, 1, 2, ni - 2, false),
        ];
        Dwt2d { n, phases }
    }

    /// The element-wise lifting step used by the reference: along `dim`,
    /// `dst = src + w·(aux[−1] + aux[+1])` on coordinates `[lo, hi)`.
    #[allow(clippy::too_many_arguments)]
    fn lift(
        src: &[f32],
        aux: &[f32],
        dst: &mut [f32],
        n: usize,
        dim: usize,
        lo: usize,
        hi: usize,
        w: f32,
    ) {
        let stride = if dim == 0 { 1 } else { n };
        for y in 0..n {
            for x in 0..n {
                let c = if dim == 0 { x } else { y };
                if c < lo || c >= hi {
                    continue;
                }
                let idx = x + y * n;
                dst[idx] = src[idx] + w * (aux[idx - stride] + aux[idx + stride]);
            }
        }
    }
}

impl Benchmark for Dwt2d {
    fn name(&self) -> &str {
        "dwt2d"
    }

    fn arrays(&self) -> Vec<ArrayDecl> {
        self.phases[0].sdfg.arrays().to_vec()
    }

    fn init(&self, mem: &mut Memory) {
        fill_small_ints(mem, ArrayId(0), 44, 16);
    }

    fn run(&self, m: &mut Machine, mode: ExecMode) -> Result<(), SimError> {
        for p in &self.phases {
            m.run_region(p, &[], mode)?;
        }
        Ok(())
    }

    fn reference(&self, mem: &mut Memory) {
        let n = self.n as usize;
        let a = mem.array(ArrayId(0)).to_vec();
        let mut d = mem.array(ArrayId(1)).to_vec();
        let mut s = mem.array(ArrayId(2)).to_vec();
        let mut d2 = mem.array(ArrayId(3)).to_vec();
        let mut out = mem.array(ArrayId(4)).to_vec();
        Self::lift(&a, &a, &mut d, n, 0, 1, n - 1, -0.5);
        Self::lift(&a, &d, &mut s, n, 0, 2, n - 2, 0.25);
        Self::lift(&s, &s, &mut d2, n, 1, 1, n - 1, -0.5);
        Self::lift(&s, &d2, &mut out, n, 1, 2, n - 2, 0.25);
        mem.write_array(ArrayId(1), &d);
        mem.write_array(ArrayId(2), &s);
        mem.write_array(ArrayId(3), &d2);
        mem.write_array(ArrayId(4), &out);
    }

    fn output_arrays(&self) -> Vec<ArrayId> {
        vec![ArrayId(3), ArrayId(4)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use infs_sim::SystemConfig;

    fn modes() -> [ExecMode; 4] {
        [
            ExecMode::Base { threads: 64 },
            ExecMode::NearL3,
            ExecMode::InL3,
            ExecMode::InfS,
        ]
    }

    #[test]
    fn stencil1d_verifies() {
        let b = Stencil1d::new(Scale::Test);
        for mode in modes() {
            verify(&b, mode, &SystemConfig::default()).unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        }
    }

    #[test]
    fn stencil2d_verifies() {
        let b = Stencil2d::new(Scale::Test);
        for mode in modes() {
            verify(&b, mode, &SystemConfig::default()).unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        }
    }

    #[test]
    fn stencil3d_verifies() {
        let b = Stencil3d::new(Scale::Test);
        for mode in modes() {
            verify(&b, mode, &SystemConfig::default()).unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        }
    }

    #[test]
    fn dwt2d_verifies() {
        let b = Dwt2d::new(Scale::Test);
        for mode in modes() {
            verify(&b, mode, &SystemConfig::default()).unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        }
    }
}

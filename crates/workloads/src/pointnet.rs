//! PointNet++ classification inference (the paper's end-to-end case study,
//! §8 / Fig 19 / Table 4), in both network shapes:
//!
//! * **SSG** — SA1 → SA2 → SA3 → FC×3;
//! * **MSG** — [SA4,SA5,SA6] → [SA7,SA8,SA9] → SA3 → FC×3, with each group
//!   sharing sampled centroids and concatenating output features.
//!
//! Each set-abstraction (SA) stage runs its five phases on the paradigm the
//! fused runtime picks, exactly as the paper describes:
//!
//! | phase | execution |
//! |---|---|
//! | furthest sample | iterative near-memory distance updates + max reduction |
//! | ball query | near-memory radius mask over (point, centroid) pairs |
//! | gather | near-memory one-level indirect feature collection |
//! | MLP ×3 | in-memory outer-product rounds + ReLU (small layers stay off-bitline via Eq 2) |
//! | aggregate | in-memory max-reduction over each centroid's neighbors |
//!
//! The point cloud is 4k random points in `[0,1)³` — the paper's own input.
//! Neighbor-list *construction* (compaction of the radius mask into indices)
//! is data-dependent control flow that neither tensors nor streams express; it
//! runs host-side functionally while its scan work is timed by the mask
//! region, a substitution recorded in DESIGN.md.

use crate::util::{compile, fill_uniform, instantiate};
use crate::{Benchmark, Scale};
use infs_frontend::{Idx, Kernel, KernelBuilder, ScalarExpr, TensorTable};
use infs_isa::CompiledRegion;
use infs_pipeline::{PipelineBuilder, PipelineGraph};
use infs_sdfg::{ArrayDecl, ArrayId, DataType, Memory, ReduceOp};
use infs_sim::{ExecMode, Executed, Machine, SimError};
use infs_tdfg::ComputeOp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which PointNet++ classifier to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointNetVariant {
    /// Single-scale grouping.
    Ssg,
    /// Multi-scale grouping.
    Msg,
}

/// Per-stage timing record for the Fig 19 timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage label (e.g. `"SA1"`, `"FC"`).
    pub stage: String,
    /// Phase label (e.g. `"sample"`, `"mlp"`).
    pub phase: &'static str,
    /// Cycles spent.
    pub cycles: u64,
    /// Where the phase ran.
    pub executed: Executed,
}

/// Set-abstraction parameters (one row of Table 4).
#[derive(Debug, Clone, Copy)]
struct SaParams {
    k: u64,
    n: u64,
    r: f32,
    dims: [u64; 3],
}

/// A feature source for the gather phase (supports MSG concatenation).
#[derive(Debug, Clone, Copy)]
enum FeatSrc {
    /// Raw coordinates `[3, np]` (dim index is coordinate).
    Pts(ArrayId),
    /// A previous stage's aggregate `[1, k_prev, d]`.
    Agg(ArrayId, u64),
}

impl FeatSrc {
    fn dims(&self) -> u64 {
        match self {
            FeatSrc::Pts(_) => 3,
            FeatSrc::Agg(_, d) => *d,
        }
    }
}

#[derive(Debug)]
struct SaStage {
    label: String,
    p: SaParams,
    np_in: u64,
    src_pts: ArrayId,
    feat_srcs: Vec<FeatSrc>,
    din: u64,
    /// Reuse centroids sampled by an earlier stage of the same group.
    sample_here: bool,
    cpts: ArrayId,
    mind: ArrayId,
    mask: ArrayId,
    neigh: ArrayId,
    gf: ArrayId,
    louts: [ArrayId; 3],
    bufg: ArrayId,
    bufw: [ArrayId; 3],
    weights: [ArrayId; 3],
    agg: ArrayId,
    // Regions.
    mind_init: CompiledRegion,
    fs_dist: CompiledRegion,
    fs_max: CompiledRegion,
    ballq: CompiledRegion,
    gathers: Vec<CompiledRegion>,
    copy_g: [CompiledRegion; 3],
    copy_w: [CompiledRegion; 3],
    step: [CompiledRegion; 3],
    relu: [CompiledRegion; 3],
    mlp_inner: [CompiledRegion; 3],
    aggregate: CompiledRegion,
}

fn declare_all(kb: &mut KernelBuilder, decls: &[ArrayDecl]) {
    for d in decls {
        kb.array_typed(d.name.clone(), d.shape.clone(), d.dtype);
    }
}

/// Dense MLP layer `OUT[j][c][o] = Σ_kk IN[j][c][kk] · W[o][kk]` — the fused
/// inner-product form shared by the per-kernel path and the tail graph.
#[allow(clippy::too_many_arguments)]
fn dense_mlp_kernel(
    decls: &[ArrayDecl],
    name: String,
    input: ArrayId,
    weight: ArrayId,
    out: ArrayId,
    n: u64,
    k: u64,
    din: u64,
    dout: u64,
) -> Kernel {
    let mut kb = KernelBuilder::new(name, DataType::F32);
    declare_all(&mut kb, decls);
    let kk = kb.parallel_loop("kk", 0, din as i64);
    let j = kb.parallel_loop("j", 0, n as i64);
    let c = kb.parallel_loop("c", 0, k as i64);
    let o = kb.parallel_loop("o", 0, dout as i64);
    let prod = ScalarExpr::mul(
        ScalarExpr::load(input, vec![Idx::var(j), Idx::var(c), Idx::var(kk)]),
        ScalarExpr::load(weight, vec![Idx::var(o), Idx::var(kk)]),
    );
    kb.assign_reduced(
        out,
        vec![Idx::var(j), Idx::var(c), Idx::var(o)],
        prod,
        vec![(kk, ReduceOp::Sum)],
    );
    kb.build().expect("mlp kernel builds")
}

/// `DST = relu(SRC)` element-wise over `SRC`'s full shape (any rank). With
/// `dst == src` this is the in-place form the per-kernel path uses; the tail
/// graph passes a fresh activation tensor to keep one producer per tensor.
fn relu_kernel(decls: &[ArrayDecl], name: String, src: ArrayId, dst: ArrayId) -> Kernel {
    let mut kb = KernelBuilder::new(name, DataType::F32);
    declare_all(&mut kb, decls);
    const LOOPS: [&str; 4] = ["j", "c", "o", "q"];
    let idx: Vec<Idx> = decls[src.0 as usize]
        .shape
        .clone()
        .iter()
        .enumerate()
        .map(|(d, &ext)| Idx::var(kb.parallel_loop(LOOPS[d], 0, ext as i64)))
        .collect();
    kb.assign(
        dst,
        idx.clone(),
        ScalarExpr::un(ComputeOp::Relu, ScalarExpr::load(src, idx)),
    );
    kb.build().expect("relu kernel builds")
}

/// Neighborhood max-pool `DST[0][c][o] = max_j SRC[j][c][o]`.
fn agg_kernel(
    decls: &[ArrayDecl],
    name: String,
    src: ArrayId,
    dst: ArrayId,
    n: u64,
    k: u64,
    d: u64,
) -> Kernel {
    let mut kb = KernelBuilder::new(name, DataType::F32);
    declare_all(&mut kb, decls);
    let j = kb.parallel_loop("j", 0, n as i64);
    let c = kb.parallel_loop("c", 0, k as i64);
    let o = kb.parallel_loop("o", 0, d as i64);
    kb.assign_reduced(
        dst,
        vec![Idx::constant(0), Idx::var(c), Idx::var(o)],
        ScalarExpr::load(src, vec![Idx::var(j), Idx::var(c), Idx::var(o)]),
        vec![(j, ReduceOp::Max)],
    );
    kb.build().expect("aggregate kernel builds")
}

/// FC head layer `OUT[0][o] = Σ_i IN[..][i] · W[i][o]`; the first layer reads
/// the rank-3 global feature, later layers a rank-2 activation vector.
#[allow(clippy::too_many_arguments)]
fn fc_kernel(
    decls: &[ArrayDecl],
    name: String,
    input: ArrayId,
    input_rank3: bool,
    weight: ArrayId,
    out: ArrayId,
    din: u64,
    dout: u64,
) -> Kernel {
    let mut kb = KernelBuilder::new(name, DataType::F32);
    declare_all(&mut kb, decls);
    let i = kb.parallel_loop("i", 0, din as i64);
    let o = kb.parallel_loop("o", 0, dout as i64);
    let input = if input_rank3 {
        ScalarExpr::load(input, vec![Idx::constant(0), Idx::constant(0), Idx::var(i)])
    } else {
        ScalarExpr::load(input, vec![Idx::constant(0), Idx::var(i)])
    };
    let w = ScalarExpr::load(weight, vec![Idx::var(i), Idx::var(o)]);
    kb.assign_reduced(
        out,
        vec![Idx::constant(0), Idx::var(o)],
        ScalarExpr::mul(input, w),
        vec![(i, ReduceOp::Sum)],
    );
    kb.build().expect("fc kernel builds")
}

/// PointNet++ classifier inference over a random 4k-point cloud.
#[derive(Debug)]
pub struct PointNet {
    variant: PointNetVariant,
    #[allow(dead_code)] // retained for reporting
    np: u64,
    decls: Vec<ArrayDecl>,
    pts: ArrayId,
    stages: Vec<SaStage>,
    #[allow(dead_code)]
    fc_dims: Vec<u64>,
    fc_w: Vec<ArrayId>,
    fc_out: Vec<ArrayId>,
    fc_regions: Vec<CompiledRegion>,
    #[allow(dead_code)]
    fc_in: ArrayId,
    #[allow(dead_code)]
    fc_in_dim: u64,
    /// Dense-tail activation tensors (graph stages need one producer per
    /// tensor, so the pipeline's ReLUs write here instead of in place).
    tact: [ArrayId; 3],
    /// FC-head activation tensors for the pipeline's inter-layer ReLUs.
    fc_act: Vec<ArrayId>,
}

impl PointNet {
    /// Builds the network at a scale (`Paper` = Table 4 parameters, 4k points).
    pub fn new(scale: Scale, variant: PointNetVariant) -> Self {
        let (np, shrink) = match scale {
            Scale::Paper => (4096u64, 1u64),
            Scale::Test => (192u64, 16u64),
        };
        let sa = |k: u64, n: u64, r: f32, d0: u64, d1: u64, d2: u64| SaParams {
            k: (k / shrink).max(1),
            n: (n / shrink.min(4)).max(4),
            r,
            dims: [
                (d0 / shrink).max(4),
                (d1 / shrink).max(4),
                (d2 / shrink).max(4),
            ],
        };
        let mut decls = TensorTable::new();
        let pts = decls.tensor_typed("PTS", vec![3, np], DataType::F32);

        let mut stages: Vec<SaStage> = Vec::new();
        let build_stage = |decls: &mut TensorTable,
                           stages: &mut Vec<SaStage>,
                           label: &str,
                           p: SaParams,
                           np_in: u64,
                           src_pts: ArrayId,
                           feat_srcs: Vec<FeatSrc>,
                           sample_here: bool,
                           shared_cpts: Option<ArrayId>| {
            let st = SaStage::build(
                decls,
                label,
                p,
                np_in,
                src_pts,
                feat_srcs,
                sample_here,
                shared_cpts,
            );
            stages.push(st);
        };

        match variant {
            PointNetVariant::Ssg => {
                // Table 4: SA1(512,32,.2,[64,64,128]) SA2(128,64,.4,[128,128,256])
                // SA3(1,128,inf,[256,512,1024]).
                let p1 = sa(512, 32, 0.2, 64, 64, 128);
                build_stage(
                    &mut decls,
                    &mut stages,
                    "SA1",
                    p1,
                    np,
                    pts,
                    vec![FeatSrc::Pts(pts)],
                    true,
                    None,
                );
                let s1 = (stages[0].cpts, stages[0].agg, stages[0].p);
                let p2 = sa(128, 64, 0.4, 128, 128, 256);
                build_stage(
                    &mut decls,
                    &mut stages,
                    "SA2",
                    p2,
                    s1.2.k,
                    s1.0,
                    vec![FeatSrc::Agg(s1.1, s1.2.dims[2])],
                    true,
                    None,
                );
                let s2 = (stages[1].cpts, stages[1].agg, stages[1].p);
                let p3 = sa(1, 128, f32::INFINITY, 256, 512, 1024);
                build_stage(
                    &mut decls,
                    &mut stages,
                    "SA3",
                    p3,
                    s2.2.k,
                    s2.0,
                    vec![FeatSrc::Agg(s2.1, s2.2.dims[2])],
                    true,
                    None,
                );
            }
            PointNetVariant::Msg => {
                // Group 1: SA4/SA5/SA6 share centroids over the input cloud.
                let g1 = [
                    ("SA4", sa(512, 16, 0.1, 32, 32, 64)),
                    ("SA5", sa(512, 32, 0.2, 64, 64, 128)),
                    ("SA6", sa(512, 128, 0.4, 64, 96, 128)),
                ];
                let mut shared: Option<ArrayId> = None;
                for (i, (label, p)) in g1.into_iter().enumerate() {
                    build_stage(
                        &mut decls,
                        &mut stages,
                        label,
                        p,
                        np,
                        pts,
                        vec![FeatSrc::Pts(pts)],
                        i == 0,
                        shared,
                    );
                    if i == 0 {
                        shared = Some(stages[0].cpts);
                    }
                }
                let g1_srcs: Vec<FeatSrc> = stages
                    .iter()
                    .map(|s| FeatSrc::Agg(s.agg, s.p.dims[2]))
                    .collect();
                let g1_cpts = stages[0].cpts;
                let g1_k = stages[0].p.k;
                // Group 2: SA7/SA8/SA9 over group-1 centroids + concat features.
                let g2 = [
                    ("SA7", sa(128, 16, 0.2, 64, 64, 128)),
                    ("SA8", sa(128, 32, 0.4, 128, 128, 256)),
                    ("SA9", sa(128, 128, 0.8, 128, 128, 256)),
                ];
                let mut shared2: Option<ArrayId> = None;
                let base = stages.len();
                for (i, (label, p)) in g2.into_iter().enumerate() {
                    build_stage(
                        &mut decls,
                        &mut stages,
                        label,
                        p,
                        g1_k,
                        g1_cpts,
                        g1_srcs.clone(),
                        i == 0,
                        shared2,
                    );
                    if i == 0 {
                        shared2 = Some(stages[base].cpts);
                    }
                }
                let g2_srcs: Vec<FeatSrc> = stages[base..]
                    .iter()
                    .map(|s| FeatSrc::Agg(s.agg, s.p.dims[2]))
                    .collect();
                let g2_cpts = stages[base].cpts;
                let g2_k = stages[base].p.k;
                let p3 = sa(1, 128, f32::INFINITY, 256, 512, 1024);
                build_stage(
                    &mut decls,
                    &mut stages,
                    "SA3",
                    p3,
                    g2_k,
                    g2_cpts,
                    g2_srcs,
                    true,
                    None,
                );
            }
        }

        // FC head over the final global feature.
        let last = stages.last().expect("at least one stage");
        let fc_in = last.agg;
        let fc_in_dim = last.p.dims[2];
        let fc_dims: Vec<u64> = match scale {
            Scale::Paper => vec![512, 256, 10],
            Scale::Test => vec![16, 8, 4],
        };
        let mut fc_w = Vec::new();
        let mut fc_out = Vec::new();
        let mut din = fc_in_dim;
        for (l, &dout) in fc_dims.iter().enumerate() {
            fc_w.push(decls.tensor_typed(format!("FCW{l}"), vec![din, dout], DataType::F32));
            fc_out.push(decls.tensor_typed(format!("FCO{l}"), vec![1, dout], DataType::F32));
            din = dout;
        }

        // Pipeline-only activation tensors (appended after the classic table,
        // so existing array ids are unchanged): the graph IR requires one
        // producer per tensor, so its ReLU stages cannot update in place.
        let (tn, tk, tdims) = {
            let last = stages.last().expect("at least one stage");
            (last.p.n, last.p.k, last.p.dims)
        };
        let tact = [
            decls.tensor_typed("TACT0", vec![tn, tk, tdims[0]], DataType::F32),
            decls.tensor_typed("TACT1", vec![tn, tk, tdims[1]], DataType::F32),
            decls.tensor_typed("TACT2", vec![tn, tk, tdims[2]], DataType::F32),
        ];
        let fc_act: Vec<ArrayId> = fc_dims[..fc_dims.len() - 1]
            .iter()
            .enumerate()
            .map(|(l, &d)| decls.tensor_typed(format!("FCA{l}"), vec![1, d], DataType::F32))
            .collect();

        // FC kernels (near-memory by construction: tiny matvecs). ReLU
        // between layers is applied post-store by a host pass in the wrapper;
        // the matvec itself stays linear.
        let mut fc_regions = Vec::new();
        let mut din = fc_in_dim;
        for (l, &dout) in fc_dims.iter().enumerate() {
            let input = if l == 0 { fc_in } else { fc_out[l - 1] };
            let kernel = fc_kernel(
                decls.decls(),
                format!("fc{l}"),
                input,
                l == 0,
                fc_w[l],
                fc_out[l],
                din,
                dout,
            );
            fc_regions.push(compile(kernel, &[], false));
            din = dout;
        }

        // Finish building stage kernels now that the table is complete.
        let decls = decls.decls().to_vec();
        for st in &mut stages {
            st.build_kernels(&decls);
        }

        PointNet {
            variant,
            np,
            decls,
            pts,
            stages,
            fc_dims,
            fc_w,
            fc_out,
            fc_regions,
            fc_in,
            fc_in_dim,
            tact,
            fc_act,
        }
    }

    /// Network shape.
    pub fn variant(&self) -> PointNetVariant {
        self.variant
    }

    /// The dense tail of the network — final-SA MLP×3 (+ReLU), neighborhood
    /// max-pool, and the FC head — expressed as a pipeline graph: 12 kernel
    /// stages chained by named tensors, ending in the logits tensor the
    /// per-kernel wrapper also produces. The host-interactive front phases
    /// (sampling, ball query, gather) are data-dependent and stay outside.
    pub fn tail_graph(&self) -> PipelineGraph {
        let last = self.stages.last().expect("at least one stage");
        let (n, k) = (last.p.n, last.p.k);
        let name = match self.variant {
            PointNetVariant::Ssg => "pointnet_ssg_tail",
            PointNetVariant::Msg => "pointnet_msg_tail",
        };
        let mut pb = PipelineBuilder::with_table(name, TensorTable::from_decls(self.decls.clone()));
        for l in 0..3 {
            let (input, din) = if l == 0 {
                (last.gf, last.din)
            } else {
                (self.tact[l - 1], last.p.dims[l - 1])
            };
            pb.add_stage(
                dense_mlp_kernel(
                    &self.decls,
                    format!("tail_mlp{l}"),
                    input,
                    last.weights[l],
                    last.louts[l],
                    n,
                    k,
                    din,
                    last.p.dims[l],
                ),
                vec![],
                vec![],
                false,
            );
            pb.add_stage(
                relu_kernel(
                    &self.decls,
                    format!("tail_relu{l}"),
                    last.louts[l],
                    self.tact[l],
                ),
                vec![],
                vec![],
                true,
            );
        }
        pb.add_stage(
            agg_kernel(
                &self.decls,
                "tail_agg".into(),
                self.tact[2],
                last.agg,
                n,
                k,
                last.p.dims[2],
            ),
            vec![],
            vec![],
            true,
        );
        let mut din = self.fc_in_dim;
        for (l, &dout) in self.fc_dims.iter().enumerate() {
            let input = if l == 0 { last.agg } else { self.fc_act[l - 1] };
            pb.add_stage(
                fc_kernel(
                    &self.decls,
                    format!("tail_fc{l}"),
                    input,
                    l == 0,
                    self.fc_w[l],
                    self.fc_out[l],
                    din,
                    dout,
                ),
                vec![],
                vec![],
                false,
            );
            if l + 1 < self.fc_dims.len() {
                pb.add_stage(
                    relu_kernel(
                        &self.decls,
                        format!("tail_fcrelu{l}"),
                        self.fc_out[l],
                        self.fc_act[l],
                    ),
                    vec![],
                    vec![],
                    true,
                );
            }
            din = dout;
        }
        pb.build().expect("pointnet tail graph is well-formed")
    }

    /// Deterministically fills the tail graph's input tensors (the final SA
    /// stage's gathered features plus all MLP/FC weights), so the graph can
    /// run standalone without driving the host-interactive front phases.
    pub fn seed_tail_inputs(&self, mem: &mut Memory) {
        let last = self.stages.last().expect("at least one stage");
        fill_uniform(mem, last.gf, 0xA110, -1.0, 1.0);
        for w in last.weights {
            fill_uniform(mem, w, 0x9000 + w.0 as u64, -0.5, 0.5);
        }
        for &w in &self.fc_w {
            fill_uniform(mem, w, 0xF000 + w.0 as u64, -0.5, 0.5);
        }
    }

    /// Runs inference and returns the per-stage/phase timeline (Fig 19).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn run_detailed(
        &self,
        m: &mut Machine,
        mode: ExecMode,
    ) -> Result<Vec<StageReport>, SimError> {
        let mut reports = Vec::new();
        for st in &self.stages {
            st.run(m, mode, &mut reports)?;
        }
        for (l, region) in self.fc_regions.iter().enumerate() {
            let r = m.run_region(&instantiate(region, &[]), &[], mode)?;
            reports.push(StageReport {
                stage: "FC".into(),
                phase: "fc",
                cycles: r.cycles,
                executed: r.executed,
            });
            // Inter-layer ReLU applied host-side (negligible work: ≤512 values).
            if l + 1 < self.fc_regions.len() {
                for v in m.memory().array_mut(self.fc_out[l]) {
                    *v = v.max(0.0);
                }
            }
        }
        Ok(reports)
    }
}

impl SaStage {
    #[allow(clippy::too_many_arguments)]
    fn build(
        decls: &mut TensorTable,
        label: &str,
        p: SaParams,
        np_in: u64,
        src_pts: ArrayId,
        feat_srcs: Vec<FeatSrc>,
        sample_here: bool,
        shared_cpts: Option<ArrayId>,
    ) -> SaStage {
        let din: u64 = feat_srcs.iter().map(FeatSrc::dims).sum();
        let (k, n) = (p.k, p.n);
        let cpts = shared_cpts.unwrap_or_else(|| {
            decls.tensor_typed(format!("{label}_CPTS"), vec![3, k], DataType::F32)
        });
        let mind = decls.tensor_typed(format!("{label}_MIND"), vec![np_in], DataType::F32);
        let mask = decls.tensor_typed(format!("{label}_MASK"), vec![np_in, k], DataType::F32);
        let neigh = decls.tensor_typed(format!("{label}_NEIGH"), vec![n, k], DataType::I32);
        let gf = decls.tensor_typed(format!("{label}_GF"), vec![n, k, din], DataType::F32);
        let louts = [
            decls.tensor_typed(format!("{label}_L0"), vec![n, k, p.dims[0]], DataType::F32),
            decls.tensor_typed(format!("{label}_L1"), vec![n, k, p.dims[1]], DataType::F32),
            decls.tensor_typed(format!("{label}_L2"), vec![n, k, p.dims[2]], DataType::F32),
        ];
        let bufg = decls.tensor_typed(format!("{label}_BUFG"), vec![n, k], DataType::F32);
        let bufw = [
            decls.tensor_typed(format!("{label}_BW0"), vec![1, 1, p.dims[0]], DataType::F32),
            decls.tensor_typed(format!("{label}_BW1"), vec![1, 1, p.dims[1]], DataType::F32),
            decls.tensor_typed(format!("{label}_BW2"), vec![1, 1, p.dims[2]], DataType::F32),
        ];
        let weights = [
            decls.tensor_typed(format!("{label}_W0"), vec![p.dims[0], din], DataType::F32),
            decls.tensor_typed(
                format!("{label}_W1"),
                vec![p.dims[1], p.dims[0]],
                DataType::F32,
            ),
            decls.tensor_typed(
                format!("{label}_W2"),
                vec![p.dims[2], p.dims[1]],
                DataType::F32,
            ),
        ];
        let agg = decls.tensor_typed(format!("{label}_AGG"), vec![1, k, p.dims[2]], DataType::F32);
        // Kernels are compiled in `build_kernels` once the global table exists;
        // placeholders keep construction single-pass.
        let placeholder = {
            let mut kb = KernelBuilder::new("placeholder", DataType::F32);
            let a = kb.array("x", vec![1]);
            let i = kb.parallel_loop("i", 0, 1);
            kb.assign(a, vec![Idx::var(i)], ScalarExpr::Const(0.0));
            compile(kb.build().expect("placeholder builds"), &[], false)
        };
        SaStage {
            label: label.to_string(),
            p,
            np_in,
            src_pts,
            feat_srcs,
            din,
            sample_here,
            cpts,
            mind,
            mask,
            neigh,
            gf,
            louts,
            bufg,
            bufw,
            weights,
            agg,
            mind_init: placeholder.clone(),
            fs_dist: placeholder.clone(),
            fs_max: placeholder.clone(),
            ballq: placeholder.clone(),
            gathers: Vec::new(),
            copy_g: [
                placeholder.clone(),
                placeholder.clone(),
                placeholder.clone(),
            ],
            copy_w: [
                placeholder.clone(),
                placeholder.clone(),
                placeholder.clone(),
            ],
            step: [
                placeholder.clone(),
                placeholder.clone(),
                placeholder.clone(),
            ],
            relu: [
                placeholder.clone(),
                placeholder.clone(),
                placeholder.clone(),
            ],
            mlp_inner: [
                placeholder.clone(),
                placeholder.clone(),
                placeholder.clone(),
            ],
            aggregate: placeholder,
        }
    }

    fn build_kernels(&mut self, decls: &[ArrayDecl]) {
        let (k, n, np_in) = (self.p.k, self.p.n, self.np_in);
        // MIND[p] = +inf.
        self.mind_init = {
            let mut kb = KernelBuilder::new(format!("{}_mind_init", self.label), DataType::F32);
            declare_all(&mut kb, decls);
            let pl = kb.parallel_loop("p", 0, np_in as i64);
            kb.assign(self.mind, vec![Idx::var(pl)], ScalarExpr::Const(f32::MAX));
            compile(kb.build().expect("builds"), &[], false)
        };
        // MIND[p] = min(MIND[p], ||pts[p] - c||²), c in params.
        self.fs_dist = {
            let mut kb = KernelBuilder::new(format!("{}_fs_dist", self.label), DataType::F32);
            declare_all(&mut kb, decls);
            let pl = kb.parallel_loop("p", 0, np_in as i64);
            let mut d2: Option<ScalarExpr> = None;
            for c in 0..3 {
                let diff = ScalarExpr::sub(
                    ScalarExpr::load(self.src_pts, vec![Idx::constant(c), Idx::var(pl)]),
                    ScalarExpr::Param(c as u32),
                );
                let sq = ScalarExpr::mul(diff.clone(), diff);
                d2 = Some(match d2 {
                    Some(acc) => ScalarExpr::add(acc, sq),
                    None => sq,
                });
            }
            kb.accum(
                self.mind,
                vec![Idx::var(pl)],
                ReduceOp::Min,
                d2.expect("three coords"),
            );
            compile(kb.build().expect("builds"), &[], false)
        };
        // maxd = max_p MIND[p].
        self.fs_max = {
            let mut kb = KernelBuilder::new(format!("{}_fs_max", self.label), DataType::F32);
            declare_all(&mut kb, decls);
            let pl = kb.parallel_loop("p", 0, np_in as i64);
            kb.scalar_reduce(
                "maxd",
                ReduceOp::Max,
                ScalarExpr::load(self.mind, vec![Idx::var(pl)]),
            );
            compile(kb.build().expect("builds"), &[], false)
        };
        // MASK[p][c] = ||pts[p] - cpts[c]||² <= r².
        self.ballq = {
            let mut kb = KernelBuilder::new(format!("{}_ballq", self.label), DataType::F32);
            declare_all(&mut kb, decls);
            let pl = kb.parallel_loop("p", 0, np_in as i64);
            let cl = kb.parallel_loop("c", 0, k as i64);
            let mut d2: Option<ScalarExpr> = None;
            for c in 0..3 {
                let diff = ScalarExpr::sub(
                    ScalarExpr::load(self.src_pts, vec![Idx::constant(c), Idx::var(pl)]),
                    ScalarExpr::load(self.cpts, vec![Idx::constant(c), Idx::var(cl)]),
                );
                let sq = ScalarExpr::mul(diff.clone(), diff);
                d2 = Some(match d2 {
                    Some(acc) => ScalarExpr::add(acc, sq),
                    None => sq,
                });
            }
            let r2 = if self.p.r.is_finite() {
                self.p.r * self.p.r
            } else {
                f32::MAX
            };
            let within = ScalarExpr::bin(
                ComputeOp::CmpLe,
                d2.expect("three coords"),
                ScalarExpr::Const(r2),
            );
            kb.assign(self.mask, vec![Idx::var(pl), Idx::var(cl)], within);
            compile(kb.build().expect("builds"), &[], false)
        };
        // Gathers: GF[j][c][dim+off] = src[..][NEIGH[j][c]] — indirect streams.
        self.gathers = {
            let mut out = Vec::new();
            let mut offset = 0i64;
            for (si, src) in self.feat_srcs.iter().enumerate() {
                let mut kb =
                    KernelBuilder::new(format!("{}_gather{si}", self.label), DataType::F32);
                declare_all(&mut kb, decls);
                let j = kb.parallel_loop("j", 0, n as i64);
                let c = kb.parallel_loop("c", 0, k as i64);
                let dm = kb.parallel_loop("d", 0, src.dims() as i64);
                let idx_load = ScalarExpr::load(self.neigh, vec![Idx::var(j), Idx::var(c)]);
                let v = match src {
                    FeatSrc::Pts(arr) => ScalarExpr::LoadIndirect {
                        array: *arr,
                        dim: 1,
                        index: Box::new(idx_load),
                        rest: vec![Idx::var(dm), Idx::constant(0)],
                    },
                    FeatSrc::Agg(arr, _) => ScalarExpr::LoadIndirect {
                        array: *arr,
                        dim: 1,
                        index: Box::new(idx_load),
                        rest: vec![Idx::constant(0), Idx::constant(0), Idx::var(dm)],
                    },
                };
                kb.assign(
                    self.gf,
                    vec![Idx::var(j), Idx::var(c), Idx::var_plus(dm, offset)],
                    v,
                );
                out.push(compile(kb.build().expect("builds"), &[], false));
                offset += src.dims() as i64;
            }
            out
        };
        // MLP layers.
        for l in 0..3 {
            let (input, din_l) = if l == 0 {
                (self.gf, self.din)
            } else {
                (self.louts[l - 1], self.p.dims[l - 1])
            };
            let dout = self.p.dims[l];
            self.copy_g[l] = {
                let mut kb = KernelBuilder::new(format!("{}_copyg{l}", self.label), DataType::F32);
                declare_all(&mut kb, decls);
                let kk = kb.sym("kk");
                let j = kb.parallel_loop("j", 0, n as i64);
                let c = kb.parallel_loop("c", 0, k as i64);
                kb.assign(
                    self.bufg,
                    vec![Idx::var(j), Idx::var(c)],
                    ScalarExpr::load(input, vec![Idx::var(j), Idx::var(c), Idx::sym(kk)]),
                );
                compile(kb.build().expect("builds"), &[0], false)
            };
            self.copy_w[l] = {
                let mut kb = KernelBuilder::new(format!("{}_copyw{l}", self.label), DataType::F32);
                declare_all(&mut kb, decls);
                let kk = kb.sym("kk");
                let o = kb.parallel_loop("o", 0, dout as i64);
                kb.assign(
                    self.bufw[l],
                    vec![Idx::constant(0), Idx::constant(0), Idx::var(o)],
                    ScalarExpr::load(self.weights[l], vec![Idx::var(o), Idx::sym(kk)]),
                );
                compile(kb.build().expect("builds"), &[0], false)
            };
            self.step[l] = {
                let mut kb = KernelBuilder::new(format!("{}_step{l}", self.label), DataType::F32);
                declare_all(&mut kb, decls);
                let j = kb.parallel_loop("j", 0, n as i64);
                let c = kb.parallel_loop("c", 0, k as i64);
                let o = kb.parallel_loop("o", 0, dout as i64);
                let prod = ScalarExpr::mul(
                    ScalarExpr::load(self.bufg, vec![Idx::var(j), Idx::var(c)]),
                    ScalarExpr::load(
                        self.bufw[l],
                        vec![Idx::constant(0), Idx::constant(0), Idx::var(o)],
                    ),
                );
                kb.accum(
                    self.louts[l],
                    vec![Idx::var(j), Idx::var(c), Idx::var(o)],
                    ReduceOp::Sum,
                    prod,
                );
                compile(kb.build().expect("builds"), &[], true)
            };
            // Fused single-region layer for core/near execution: the Base
            // implementation is a tiled inner-product GEMM, not staged
            // outer-product rounds (Fig 8). Same constructor as the pipeline
            // graph's tail stages, so both paths share one kernel definition.
            self.mlp_inner[l] = compile(
                dense_mlp_kernel(
                    decls,
                    format!("{}_mlpin{l}", self.label),
                    input,
                    self.weights[l],
                    self.louts[l],
                    n,
                    k,
                    din_l,
                    dout,
                ),
                &[],
                false,
            );
            self.relu[l] = compile(
                relu_kernel(
                    decls,
                    format!("{}_relu{l}", self.label),
                    self.louts[l],
                    self.louts[l],
                ),
                &[],
                true,
            );
        }
        // AGG[0][c][o] = max_j L2[j][c][o].
        self.aggregate = compile(
            agg_kernel(
                decls,
                format!("{}_agg", self.label),
                self.louts[2],
                self.agg,
                n,
                k,
                self.p.dims[2],
            ),
            &[],
            true,
        );
    }

    fn run(
        &self,
        m: &mut Machine,
        mode: ExecMode,
        reports: &mut Vec<StageReport>,
    ) -> Result<(), SimError> {
        let push = |phase: &'static str,
                    cycles: u64,
                    executed: Executed,
                    reports: &mut Vec<StageReport>| {
            reports.push(StageReport {
                stage: self.label.clone(),
                phase,
                cycles,
                executed,
            });
        };
        // 1. Furthest sampling (skipped when centroids are shared, MSG §8).
        if self.sample_here {
            let mut cycles = 0;
            let mut exec = Executed::NearMemory;
            let r = m.run_region(&instantiate(&self.mind_init, &[]), &[], mode)?;
            cycles += r.cycles;
            let mut cur = self.pick_point(m, 0);
            for round in 0..self.p.k {
                self.write_centroid(m, round, cur);
                let r = m.run_region(&instantiate(&self.fs_dist, &[]), &cur, mode)?;
                cycles += r.cycles;
                exec = r.executed;
                let r = m.run_region(&instantiate(&self.fs_max, &[]), &[], mode)?;
                cycles += r.cycles;
                cur = self.argmax_point(m, round);
            }
            push("sample", cycles, exec, reports);
        }
        // 2. Ball query: radius mask (timed) + host compaction (functional).
        let r = m.run_region(&instantiate(&self.ballq, &[]), &[], mode)?;
        self.build_neighbors(m);
        push("ballq", r.cycles, r.executed, reports);
        // 3. Gather.
        let mut gcycles = 0;
        let mut gexec = Executed::NearMemory;
        for g in &self.gathers {
            let r = m.run_region(&instantiate(g, &[]), &[], mode)?;
            gcycles += r.cycles;
            gexec = r.executed;
        }
        push("gather", gcycles, gexec, reports);
        // 4. MLP layers: fused inner-product regions for core/near execution
        // (the Base dataflow, Fig 8), staged outer-product rounds + ReLU for
        // the in-memory configurations.
        let mut mcycles = 0;
        let mut mexec = Executed::InMemory;
        let staged = matches!(mode, ExecMode::InL3 | ExecMode::InfS | ExecMode::InfSNoJit);
        for l in 0..3 {
            if staged {
                let din_l = if l == 0 { self.din } else { self.p.dims[l - 1] };
                let step = instantiate(&self.step[l], &[]);
                for kk in 0..din_l as i64 {
                    let r = m.run_region(&instantiate(&self.copy_g[l], &[kk]), &[], mode)?;
                    mcycles += r.cycles;
                    let r = m.run_region(&instantiate(&self.copy_w[l], &[kk]), &[], mode)?;
                    mcycles += r.cycles;
                    let r = m.run_region(&step, &[], mode)?;
                    mcycles += r.cycles;
                    mexec = r.executed;
                }
            } else {
                let r = m.run_region(&instantiate(&self.mlp_inner[l], &[]), &[], mode)?;
                mcycles += r.cycles;
                mexec = r.executed;
            }
            let r = m.run_region(&instantiate(&self.relu[l], &[]), &[], mode)?;
            mcycles += r.cycles;
        }
        push("mlp", mcycles, mexec, reports);
        // 5. Aggregate.
        let r = m.run_region(&instantiate(&self.aggregate, &[]), &[], mode)?;
        push("aggregate", r.cycles, r.executed, reports);
        Ok(())
    }

    /// First sampled point (deterministic: point 0, like a fixed seed).
    fn pick_point(&self, m: &Machine, _round: u64) -> [f32; 3] {
        let pts = m.memory_ref().array(self.src_pts);
        [pts[0], pts[1], pts[2]]
    }

    fn write_centroid(&self, m: &mut Machine, round: u64, coords: [f32; 3]) {
        let k = round as usize;
        let arr = m.memory().array_mut(self.cpts);
        for c in 0..3 {
            arr[c + 3 * k] = coords[c];
        }
    }

    /// Host-side argmax extraction after the timed max-reduce region.
    fn argmax_point(&self, m: &Machine, round: u64) -> [f32; 3] {
        let mind = m.memory_ref().array(self.mind);
        let mut best = 0usize;
        for (i, &v) in mind.iter().enumerate() {
            if v > mind[best] {
                best = i;
            }
        }
        // Timing-only runs see all-zero memory; fall back to a rotation.
        if mind[best] == 0.0 {
            best = ((round + 1) as usize * 37) % self.np_in as usize;
        }
        let pts = m.memory_ref().array(self.src_pts);
        [pts[3 * best], pts[3 * best + 1], pts[3 * best + 2]]
    }

    /// Host-side neighbor-list compaction from the timed radius mask: the first
    /// `n` in-radius points per centroid, first neighbor duplicated to fill.
    fn build_neighbors(&self, m: &mut Machine) {
        let (np, k, n) = (self.np_in as usize, self.p.k as usize, self.p.n as usize);
        let mask = m.memory_ref().array(self.mask).to_vec();
        let neigh = m.memory().array_mut(self.neigh);
        for c in 0..k {
            let mut found: Vec<usize> = Vec::with_capacity(n);
            for p in 0..np {
                if mask[p + c * np] != 0.0 {
                    found.push(p);
                    if found.len() == n {
                        break;
                    }
                }
            }
            if found.is_empty() {
                found.push(c % np);
            }
            for j in 0..n {
                let v = *found.get(j).unwrap_or(&found[0]);
                neigh[j + c * n] = v as f32;
            }
        }
    }
}

impl Benchmark for PointNet {
    fn name(&self) -> &str {
        match self.variant {
            PointNetVariant::Ssg => "pointnet/ssg",
            PointNetVariant::Msg => "pointnet/msg",
        }
    }

    fn arrays(&self) -> Vec<ArrayDecl> {
        self.decls.clone()
    }

    fn init(&self, mem: &mut Memory) {
        let mut rng = StdRng::seed_from_u64(4242);
        for v in mem.array_mut(self.pts) {
            *v = rng.random_range(0.0..1.0);
        }
        for st in &self.stages {
            for w in st.weights {
                let mut rng = StdRng::seed_from_u64(0x9000 + w.0 as u64);
                for v in mem.array_mut(w) {
                    *v = rng.random_range(-0.5..0.5);
                }
            }
        }
        for &w in &self.fc_w {
            let mut rng = StdRng::seed_from_u64(0xF000 + w.0 as u64);
            for v in mem.array_mut(w) {
                *v = rng.random_range(-0.5..0.5);
            }
        }
    }

    fn run(&self, m: &mut Machine, mode: ExecMode) -> Result<(), SimError> {
        self.run_detailed(m, mode).map(|_| ())
    }

    fn reference(&self, _mem: &mut Memory) {
        // PointNet's functional path is self-checked differently: the pipeline
        // mixes timed regions with host-side steps (argmax pick, neighbor
        // compaction), so cross-mode equivalence is asserted by the test below
        // instead of an independent scalar re-implementation.
    }

    fn output_arrays(&self) -> Vec<ArrayId> {
        vec![*self.fc_out.last().expect("fc layers exist")]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Cross-mode functional equivalence: every configuration must produce the
    /// same classifier logits.
    #[test]
    fn ssg_modes_agree() {
        let b = PointNet::new(Scale::Test, PointNetVariant::Ssg);
        let cfg = infs_sim::SystemConfig::default();
        let mut outs = Vec::new();
        for mode in [
            ExecMode::Base { threads: 64 },
            ExecMode::NearL3,
            ExecMode::InfS,
        ] {
            let arrays = b.arrays();
            let mut m = Machine::new(cfg.clone(), &arrays);
            b.init(m.memory());
            b.run(&mut m, mode).unwrap();
            outs.push(m.memory_ref().array(b.output_arrays()[0]).to_vec());
        }
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[0], outs[2]);
        assert!(outs[0].iter().any(|&v| v != 0.0), "logits must be nonzero");
    }

    #[test]
    fn msg_runs_and_reports_stages() {
        let b = PointNet::new(Scale::Test, PointNetVariant::Msg);
        let cfg = infs_sim::SystemConfig::default();
        let arrays = b.arrays();
        let mut m = Machine::new(cfg, &arrays);
        b.init(m.memory());
        let reports = b.run_detailed(&mut m, ExecMode::InfS).unwrap();
        // 7 SAs (3+3+1); sampling shared within groups.
        let samples = reports.iter().filter(|r| r.phase == "sample").count();
        assert_eq!(samples, 3, "one sampling per group plus SA3");
        assert!(reports.iter().any(|r| r.phase == "mlp"));
        assert!(reports.iter().any(|r| r.stage == "FC"));
        let total: u64 = reports.iter().map(|r| r.cycles).sum();
        assert!(total > 0);
    }
}

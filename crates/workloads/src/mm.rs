//! Dense matrix multiplication (Table 3: M/N/K = 2k) in both dataflows of
//! Fig 8/Fig 15.
//!
//! * **Outer product** (`mm/out`): for each `k`, near-memory streams stage one
//!   column of `A` and one row of `B` into broadcastable buffer tensors, and an
//!   in-memory element-wise round accumulates `C += colA ⊗ rowB`. The round's
//!   tDFG is identical every `k`, so JIT lowering is memoized after the first
//!   round — the paper's preferred in-memory dataflow.
//! * **Inner product** (`mm/in`): for each output row `m`, a 2-D `(k, n)`
//!   region computes `C[m,:] = Σ_k A[k,m]·B[k,:]` with an *in-memory
//!   reduction* over `k` plus a near-memory final reduce — the dataflow the
//!   paper shows losing for in-memory execution.

use crate::util::{compile, fill_small_ints, instantiate, Dataflow};
use crate::{Benchmark, Scale};
use infs_frontend::{Idx, KernelBuilder, ScalarExpr};
use infs_isa::CompiledRegion;
use infs_sdfg::{ArrayDecl, ArrayId, DataType, Memory, ReduceOp};
use infs_sim::{ExecMode, Machine, SimError};

/// `C = A × B` with square `dim×dim` operands.
#[derive(Debug)]
pub struct MatMul {
    dim: u64,
    dataflow: Dataflow,
    name: String,
    // Outer-product regions.
    copy_a: Option<CompiledRegion>,
    copy_b: Option<CompiledRegion>,
    step: Option<CompiledRegion>,
    // Inner-product regions.
    copy_acol: Option<CompiledRegion>,
    row: Option<CompiledRegion>,
}

impl MatMul {
    /// Table 3: M/N/K = 2k at paper scale.
    pub fn new(scale: Scale, dataflow: Dataflow) -> Self {
        let dim = match scale {
            Scale::Paper => 2048,
            Scale::Test => 32,
        };
        let mut mm = MatMul {
            dim,
            dataflow,
            name: format!("mm/{}", dataflow.suffix()),
            copy_a: None,
            copy_b: None,
            step: None,
            copy_acol: None,
            row: None,
        };
        match dataflow {
            Dataflow::Outer => mm.build_outer(),
            Dataflow::Inner => mm.build_inner(),
        }
        mm
    }

    /// Array table (outer): 0 A[K,M] (element (k,m)), 1 B[N,K] (element (n,k)),
    /// 2 C[N,M] (element (n,m)), 3 bufA[1,M], 4 bufB[N].
    fn declare_outer(k: &mut KernelBuilder, d: u64) -> [ArrayId; 5] {
        [
            k.array("A", vec![d, d]),
            k.array("B", vec![d, d]),
            k.array("C", vec![d, d]),
            k.array("bufA", vec![1, d]),
            k.array("bufB", vec![d]),
        ]
    }

    fn build_outer(&mut self) {
        let d = self.dim;
        // bufA[0][m] = A[k][m] — near-memory column staging.
        self.copy_a = Some({
            let mut kb = KernelBuilder::new("mm_out_copy_a", DataType::F32);
            let [a, _, _, buf_a, _] = Self::declare_outer(&mut kb, d);
            let kk = kb.sym("k");
            let m = kb.parallel_loop("m", 0, d as i64);
            kb.assign(
                buf_a,
                vec![Idx::constant(0), Idx::var(m)],
                ScalarExpr::load(a, vec![Idx::sym(kk), Idx::var(m)]),
            );
            compile(kb.build().expect("mm copy_a builds"), &[0], false)
        });
        // bufB[n] = B[n][k].
        self.copy_b = Some({
            let mut kb = KernelBuilder::new("mm_out_copy_b", DataType::F32);
            let [_, b, _, _, buf_b] = Self::declare_outer(&mut kb, d);
            let kk = kb.sym("k");
            let n = kb.parallel_loop("n", 0, d as i64);
            kb.assign(
                buf_b,
                vec![Idx::var(n)],
                ScalarExpr::load(b, vec![Idx::var(n), Idx::sym(kk)]),
            );
            compile(kb.build().expect("mm copy_b builds"), &[0], false)
        });
        // C[n][m] += bufB[n] · bufA[0][m] — the memoized in-memory round.
        self.step = Some({
            let mut kb = KernelBuilder::new("mm_out_step", DataType::F32);
            let [_, _, c, buf_a, buf_b] = Self::declare_outer(&mut kb, d);
            let n = kb.parallel_loop("n", 0, d as i64);
            let m = kb.parallel_loop("m", 0, d as i64);
            let prod = ScalarExpr::mul(
                ScalarExpr::load(buf_b, vec![Idx::var(n)]),
                ScalarExpr::load(buf_a, vec![Idx::constant(0), Idx::var(m)]),
            );
            kb.accum(c, vec![Idx::var(n), Idx::var(m)], ReduceOp::Sum, prod);
            compile(kb.build().expect("mm step builds"), &[], true)
        });
    }

    /// Array table (inner): 0 A[K,M] (element (k,m)), 1 B[K,N] (element (k,n)),
    /// 2 C[M,N] (element (m,n)), 3 bufAcol[K,1].
    fn declare_inner(k: &mut KernelBuilder, d: u64) -> [ArrayId; 4] {
        [
            k.array("A", vec![d, d]),
            k.array("B", vec![d, d]),
            k.array("C", vec![d, d]),
            k.array("bufAcol", vec![d, 1]),
        ]
    }

    fn build_inner(&mut self) {
        let d = self.dim;
        // bufAcol[k][0] = A[k][m] — near-memory staging of A's m-th column.
        self.copy_acol = Some({
            let mut kb = KernelBuilder::new("mm_in_copy_acol", DataType::F32);
            let [a, _, _, buf] = Self::declare_inner(&mut kb, d);
            let mm = kb.sym("m");
            let k = kb.parallel_loop("k", 0, d as i64);
            kb.assign(
                buf,
                vec![Idx::var(k), Idx::constant(0)],
                ScalarExpr::load(a, vec![Idx::var(k), Idx::sym(mm)]),
            );
            compile(kb.build().expect("mm copy_acol builds"), &[0], false)
        });
        // C[m][n] = Σ_k bufAcol[k] · B[k][n]: in-memory reduce over k.
        self.row = Some({
            let mut kb = KernelBuilder::new("mm_in_row", DataType::F32);
            let [_, b, c, buf] = Self::declare_inner(&mut kb, d);
            let mm = kb.sym("m");
            let k = kb.parallel_loop("k", 0, d as i64);
            let n = kb.parallel_loop("n", 0, d as i64);
            let prod = ScalarExpr::mul(
                ScalarExpr::load(buf, vec![Idx::var(k), Idx::constant(0)]),
                ScalarExpr::load(b, vec![Idx::var(k), Idx::var(n)]),
            );
            kb.assign_reduced(
                c,
                vec![Idx::sym(mm), Idx::var(n)],
                prod,
                vec![(k, ReduceOp::Sum)],
            );
            compile(kb.build().expect("mm row builds"), &[0], true)
        });
    }
}

impl Benchmark for MatMul {
    fn name(&self) -> &str {
        &self.name
    }

    fn arrays(&self) -> Vec<ArrayDecl> {
        match self.dataflow {
            Dataflow::Outer => self
                .copy_a
                .as_ref()
                .expect("built")
                .kernel()
                .arrays()
                .to_vec(),
            Dataflow::Inner => self
                .copy_acol
                .as_ref()
                .expect("built")
                .kernel()
                .arrays()
                .to_vec(),
        }
    }

    fn init(&self, mem: &mut Memory) {
        fill_small_ints(mem, ArrayId(0), 88, 4);
        fill_small_ints(mem, ArrayId(1), 89, 4);
    }

    fn run(&self, m: &mut Machine, mode: ExecMode) -> Result<(), SimError> {
        let d = self.dim as i64;
        match self.dataflow {
            Dataflow::Outer => {
                let (ca, cb, step) = (
                    self.copy_a.as_ref().expect("built"),
                    self.copy_b.as_ref().expect("built"),
                    self.step.as_ref().expect("built"),
                );
                let step = instantiate(step, &[]);
                for k in 0..d {
                    m.run_region(&instantiate(ca, &[k]), &[], mode)?;
                    m.run_region(&instantiate(cb, &[k]), &[], mode)?;
                    m.run_region(&step, &[], mode)?;
                }
            }
            Dataflow::Inner => {
                let (cc, row) = (
                    self.copy_acol.as_ref().expect("built"),
                    self.row.as_ref().expect("built"),
                );
                for mi in 0..d {
                    m.run_region(&instantiate(cc, &[mi]), &[], mode)?;
                    m.run_region(&instantiate(row, &[mi]), &[], mode)?;
                }
            }
        }
        Ok(())
    }

    fn reference(&self, mem: &mut Memory) {
        let d = self.dim as usize;
        let a = mem.array(ArrayId(0)).to_vec(); // (k, m): A[k + d*m]
        let b = mem.array(ArrayId(1)).to_vec();
        let c = mem.array_mut(ArrayId(2));
        for mi in 0..d {
            for n in 0..d {
                let mut acc = 0.0;
                for k in 0..d {
                    let av = a[k + d * mi];
                    let bv = match self.dataflow {
                        Dataflow::Outer => b[n + d * k], // B[n][k]
                        Dataflow::Inner => b[k + d * n], // B[k][n]
                    };
                    acc += av * bv;
                }
                match self.dataflow {
                    Dataflow::Outer => c[n + d * mi] = acc, // C[n][m]
                    Dataflow::Inner => c[mi + d * n] = acc, // C[m][n]
                }
            }
        }
    }

    fn output_arrays(&self) -> Vec<ArrayId> {
        vec![ArrayId(2)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use infs_sim::SystemConfig;

    #[test]
    fn mm_outer_verifies() {
        let b = MatMul::new(Scale::Test, Dataflow::Outer);
        for mode in [
            ExecMode::Base { threads: 64 },
            ExecMode::NearL3,
            ExecMode::InfS,
        ] {
            verify(&b, mode, &SystemConfig::default()).unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        }
    }

    #[test]
    fn mm_inner_verifies() {
        let b = MatMul::new(Scale::Test, Dataflow::Inner);
        for mode in [
            ExecMode::Base { threads: 64 },
            ExecMode::NearL3,
            ExecMode::InfS,
        ] {
            verify(&b, mode, &SystemConfig::default()).unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        }
    }
}

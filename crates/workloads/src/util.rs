use infs_frontend::Kernel;
use infs_isa::{CompiledRegion, Compiler, RegionInstance};
use infs_sdfg::Memory;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Dataflow variant of the reduction workloads (Fig 15): inner product keeps
/// the reduction in the inner loops (in-memory `reduce`), outer product
/// converts it to element-wise accumulation across sequential rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataflow {
    /// Inner product: in-memory reduction.
    Inner,
    /// Outer product: broadcast + element-wise accumulation.
    Outer,
}

impl Dataflow {
    /// Table 3 / Fig 15 suffix (`"in"` / `"out"`).
    pub fn suffix(self) -> &'static str {
        match self {
            Dataflow::Inner => "in",
            Dataflow::Outer => "out",
        }
    }
}

/// Compiles a kernel into a region template.
///
/// `optimize` disables the e-graph pass for kernels that are re-instantiated
/// thousands of times with no reuse to discover (gauss_elim, conv3d rounds).
///
/// # Panics
///
/// Panics on compile errors — workload kernels are static test vectors.
pub fn compile(kernel: Kernel, rep_syms: &[i64], optimize: bool) -> CompiledRegion {
    let compiler = Compiler {
        optimize,
        ..Default::default()
    };
    compiler
        .compile(kernel, rep_syms)
        .expect("workload kernels compile")
}

/// Instantiates a region for concrete symbols.
///
/// # Panics
///
/// Panics on instantiation errors.
pub fn instantiate(region: &CompiledRegion, syms: &[i64]) -> RegionInstance {
    region
        .instantiate(syms)
        .expect("workload regions instantiate")
}

/// Deterministic pseudo-random fill in `[lo, hi)` for an array.
pub fn fill_uniform(mem: &mut Memory, array: infs_sdfg::ArrayId, seed: u64, lo: f32, hi: f32) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0000 ^ array.0 as u64);
    for v in mem.array_mut(array) {
        *v = rng.random_range(lo..hi);
    }
}

/// Deterministic fill with small integers (exact in f32 arithmetic, which
/// keeps reference comparison tight for long accumulation chains).
pub fn fill_small_ints(mem: &mut Memory, array: infs_sdfg::ArrayId, seed: u64, modulo: u32) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1237 ^ array.0 as u64);
    for v in mem.array_mut(array) {
        *v = rng.random_range(0..modulo) as f32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infs_sdfg::{ArrayDecl, ArrayId, DataType};

    #[test]
    fn fills_are_deterministic() {
        let decls = [ArrayDecl::new("a", vec![64], DataType::F32)];
        let mut m1 = Memory::for_arrays(&decls);
        let mut m2 = Memory::for_arrays(&decls);
        fill_uniform(&mut m1, ArrayId(0), 7, 0.0, 1.0);
        fill_uniform(&mut m2, ArrayId(0), 7, 0.0, 1.0);
        assert_eq!(m1.array(ArrayId(0)), m2.array(ArrayId(0)));
        assert!(m1
            .array(ArrayId(0))
            .iter()
            .all(|&x| (0.0..1.0).contains(&x)));
        fill_small_ints(&mut m1, ArrayId(0), 3, 8);
        assert!(m1
            .array(ArrayId(0))
            .iter()
            .all(|&x| x.fract() == 0.0 && x < 8.0));
    }

    #[test]
    fn dataflow_suffixes() {
        assert_eq!(Dataflow::Inner.suffix(), "in");
        assert_eq!(Dataflow::Outer.suffix(), "out");
    }
}

//! Convolution workloads: `conv2d` (3×3, constant weights — the Fig 6 e-graph
//! optimization showcase) and `conv3d` (channelled convolution executed as
//! broadcast + element-wise rounds, Table 3: H/W=256, K=3×3, I/O=64).

use crate::util::{compile, fill_small_ints, instantiate};
use crate::{Benchmark, Scale};
use infs_frontend::{Idx, KernelBuilder, ScalarExpr};
use infs_isa::{CompiledRegion, RegionInstance};
use infs_sdfg::{ArrayDecl, ArrayId, DataType, Memory};
use infs_sim::{ExecMode, Machine, SimError};

/// 3×3 single-channel convolution with the symmetric constant weights of
/// Fig 6 (`C0` corners/edges, `C1` cross, `C2` center).
#[derive(Debug)]
pub struct Conv2d {
    n: u64,
    region: RegionInstance,
}

const C0: f32 = 0.0625;
const C1: f32 = 0.125;
const C2: f32 = 0.25;

impl Conv2d {
    /// Table 3: 2k×2k at paper scale.
    pub fn new(scale: Scale) -> Self {
        let n = match scale {
            Scale::Paper => 2048,
            Scale::Test => 64,
        };
        let mut k = KernelBuilder::new("conv2d", DataType::F32);
        let a = k.array("A", vec![n, n]);
        let b = k.array("B", vec![n, n]);
        let i = k.parallel_loop("i", 1, n as i64 - 1);
        let j = k.parallel_loop("j", 1, n as i64 - 1);
        let tap = |di: i64, dj: i64, w: f32| {
            ScalarExpr::mul(
                ScalarExpr::load(a, vec![Idx::var_plus(i, di), Idx::var_plus(j, dj)]),
                ScalarExpr::Const(w),
            )
        };
        // Weight pattern of Fig 6: [C0 C1 C0; C1 C2 C1; C0 C1 C0].
        let mut acc = tap(0, 0, C2);
        for (di, dj, w) in [
            (-1, -1, C0),
            (1, -1, C0),
            (-1, 1, C0),
            (1, 1, C0),
            (-1, 0, C1),
            (1, 0, C1),
            (0, -1, C1),
            (0, 1, C1),
        ] {
            acc = ScalarExpr::add(acc, tap(di, dj, w));
        }
        k.assign(b, vec![Idx::var(i), Idx::var(j)], acc);
        // The e-graph optimizer discovers the shared C0/C1 scalings (Fig 6).
        let region = instantiate(&compile(k.build().expect("conv2d builds"), &[], true), &[]);
        Conv2d { n, region }
    }
}

impl Benchmark for Conv2d {
    fn name(&self) -> &str {
        "conv2d"
    }

    fn arrays(&self) -> Vec<ArrayDecl> {
        self.region.sdfg.arrays().to_vec()
    }

    fn init(&self, mem: &mut Memory) {
        fill_small_ints(mem, ArrayId(0), 55, 16);
    }

    fn run(&self, m: &mut Machine, mode: ExecMode) -> Result<(), SimError> {
        m.run_region(&self.region, &[], mode)?;
        Ok(())
    }

    fn reference(&self, mem: &mut Memory) {
        let n = self.n as usize;
        let a = mem.array(ArrayId(0)).to_vec();
        let b = mem.array_mut(ArrayId(1));
        let at = |x: usize, y: usize| a[x + y * n];
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                b[i + j * n] = C2 * at(i, j)
                    + C0 * (at(i - 1, j - 1)
                        + at(i + 1, j - 1)
                        + at(i - 1, j + 1)
                        + at(i + 1, j + 1))
                    + C1 * (at(i - 1, j) + at(i + 1, j) + at(i, j - 1) + at(i, j + 1));
            }
        }
    }

    fn output_arrays(&self) -> Vec<ArrayId> {
        vec![ArrayId(1)]
    }
}

/// Channelled 3×3 convolution: `OUT[x][y][co] = Σ_{ci,dx,dy} IN[x+dx][y+dy][ci]
/// · WT[co][ci][tap]`, executed as `CI×9` broadcast + element-wise accumulation
/// rounds over the `(x, y, co)` lattice — the "BC, Elem" pattern of Table 3.
/// Each round's weight vector is staged into a broadcastable buffer by a
/// near-memory copy stream (a hybrid region, like Fig 7's tensor `m`).
#[derive(Debug)]
pub struct Conv3d {
    hw: u64,
    chans: u64,
    wcopy: CompiledRegion,
    acc: CompiledRegion,
}

impl Conv3d {
    /// Table 3: H/W = 256, I/O channels = 64, 3×3 taps at paper scale.
    pub fn new(scale: Scale) -> Self {
        let (hw, chans) = match scale {
            Scale::Paper => (256, 64),
            Scale::Test => (16, 8),
        };
        // Shared array table: 0 IN [hw,hw,ci], 1 OUT [hw,hw,co],
        // 2 WT [co,ci,9], 3 WBUF [1,1,co].
        let declare = |k: &mut KernelBuilder| -> [ArrayId; 4] {
            [
                k.array("IN", vec![hw, hw, chans]),
                k.array("OUT", vec![hw, hw, chans]),
                k.array("WT", vec![chans, chans, 9]),
                k.array("WBUF", vec![1, 1, chans]),
            ]
        };
        // Weight staging: WBUF[0][0][co] = WT[co][ci][t] — near-memory stream.
        let wcopy = {
            let mut k = KernelBuilder::new("conv3d_wcopy", DataType::F32);
            let [_, _, wt, wbuf] = declare(&mut k);
            let ci = k.sym("ci");
            let t = k.sym("t");
            let co = k.parallel_loop("co", 0, chans as i64);
            k.assign(
                wbuf,
                vec![Idx::constant(0), Idx::constant(0), Idx::var(co)],
                ScalarExpr::load(wt, vec![Idx::var(co), Idx::sym(ci), Idx::sym(t)]),
            );
            compile(k.build().expect("conv3d_wcopy builds"), &[0, 0], false)
        };
        // Accumulation round: OUT += IN(ci plane, shifted) × WBUF (broadcast).
        let acc = {
            let mut k = KernelBuilder::new("conv3d_acc", DataType::F32);
            let [inp, out, _, wbuf] = declare(&mut k);
            let ci = k.sym("ci");
            let dx = k.sym("dx");
            let dy = k.sym("dy");
            let x = k.parallel_loop("x", 1, hw as i64 - 1);
            let y = k.parallel_loop("y", 1, hw as i64 - 1);
            let co = k.parallel_loop("co", 0, chans as i64);
            let in_tap = ScalarExpr::load(
                inp,
                vec![
                    Idx::var(x).plus_sym(dx, 1),
                    Idx::var(y).plus_sym(dy, 1),
                    Idx::sym(ci),
                ],
            );
            let w = ScalarExpr::load(wbuf, vec![Idx::constant(0), Idx::constant(0), Idx::var(co)]);
            k.accum(
                out,
                vec![Idx::var(x), Idx::var(y), Idx::var(co)],
                infs_sdfg::ReduceOp::Sum,
                ScalarExpr::mul(in_tap, w),
            );
            compile(k.build().expect("conv3d_acc builds"), &[0, 0, 0], false)
        };
        Conv3d {
            hw,
            chans,
            wcopy,
            acc,
        }
    }
}

impl Benchmark for Conv3d {
    fn name(&self) -> &str {
        "conv3d"
    }

    fn arrays(&self) -> Vec<ArrayDecl> {
        self.wcopy.kernel().arrays().to_vec()
    }

    fn init(&self, mem: &mut Memory) {
        fill_small_ints(mem, ArrayId(0), 66, 4);
        fill_small_ints(mem, ArrayId(2), 67, 3);
    }

    fn run(&self, m: &mut Machine, mode: ExecMode) -> Result<(), SimError> {
        for ci in 0..self.chans as i64 {
            for t in 0..9i64 {
                let (dx, dy) = (t % 3 - 1, t / 3 - 1);
                let wcopy = instantiate(&self.wcopy, &[ci, t]);
                m.run_region(&wcopy, &[], mode)?;
                let acc = instantiate(&self.acc, &[ci, dx, dy]);
                m.run_region(&acc, &[], mode)?;
            }
        }
        Ok(())
    }

    fn reference(&self, mem: &mut Memory) {
        let (hw, ch) = (self.hw as usize, self.chans as usize);
        let inp = mem.array(ArrayId(0)).to_vec();
        let wt = mem.array(ArrayId(2)).to_vec();
        let out = mem.array_mut(ArrayId(1));
        let iat = |x: usize, y: usize, c: usize| inp[x + hw * (y + hw * c)];
        for co in 0..ch {
            for y in 1..hw - 1 {
                for x in 1..hw - 1 {
                    let mut acc = 0.0;
                    for ci in 0..ch {
                        for t in 0..9 {
                            let (dx, dy) = ((t % 3) as i64 - 1, (t / 3) as i64 - 1);
                            let w = wt[co + ch * (ci + ch * t)];
                            acc += w * iat((x as i64 + dx) as usize, (y as i64 + dy) as usize, ci);
                        }
                    }
                    out[x + hw * (y + hw * co)] = acc;
                }
            }
        }
    }

    fn output_arrays(&self) -> Vec<ArrayId> {
        vec![ArrayId(1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use infs_sim::SystemConfig;

    #[test]
    fn conv2d_verifies() {
        let b = Conv2d::new(Scale::Test);
        for mode in [
            ExecMode::Base { threads: 64 },
            ExecMode::NearL3,
            ExecMode::InL3,
            ExecMode::InfS,
        ] {
            verify(&b, mode, &SystemConfig::default()).unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        }
    }

    #[test]
    fn conv3d_verifies() {
        let b = Conv3d::new(Scale::Test);
        for mode in [
            ExecMode::Base { threads: 64 },
            ExecMode::NearL3,
            ExecMode::InfS,
        ] {
            verify(&b, mode, &SystemConfig::default()).unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        }
    }
}

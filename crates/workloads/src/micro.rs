//! The Fig 2 microbenchmarks: `vec_add` and `array_sum`.

use crate::util::{compile, fill_small_ints, instantiate};
use crate::{Benchmark, Scale};
use infs_frontend::{Idx, KernelBuilder, ScalarExpr};
use infs_isa::RegionInstance;
use infs_sdfg::{ArrayDecl, ArrayId, DataType, Memory, ReduceOp};
use infs_sim::{ExecMode, Machine, SimError};

/// `C[i] = A[i] + B[i]` over `n` elements (Fig 2's `vec_add`).
#[derive(Debug)]
pub struct VecAdd {
    n: u64,
    region: RegionInstance,
}

impl VecAdd {
    /// Builds the benchmark at a scale (`Paper` = 4M elements).
    pub fn new(scale: Scale) -> Self {
        Self::with_elems(match scale {
            Scale::Paper => 4 << 20,
            Scale::Test => 4 << 10,
        })
    }

    /// Builds the benchmark with an explicit element count (the Fig 2 sweep).
    pub fn with_elems(n: u64) -> Self {
        let mut k = KernelBuilder::new("vec_add", DataType::F32);
        let a = k.array("A", vec![n]);
        let b = k.array("B", vec![n]);
        let c = k.array("C", vec![n]);
        let i = k.parallel_loop("i", 0, n as i64);
        k.assign(
            c,
            vec![Idx::var(i)],
            ScalarExpr::add(
                ScalarExpr::load(a, vec![Idx::var(i)]),
                ScalarExpr::load(b, vec![Idx::var(i)]),
            ),
        );
        let region = instantiate(&compile(k.build().expect("vec_add builds"), &[], true), &[]);
        VecAdd { n, region }
    }

    /// Element count.
    pub fn elems(&self) -> u64 {
        self.n
    }
}

impl Benchmark for VecAdd {
    fn name(&self) -> &str {
        "vec_add"
    }

    fn arrays(&self) -> Vec<ArrayDecl> {
        self.region.sdfg.arrays().to_vec()
    }

    fn init(&self, mem: &mut Memory) {
        fill_small_ints(mem, ArrayId(0), 1, 64);
        fill_small_ints(mem, ArrayId(1), 2, 64);
    }

    fn run(&self, m: &mut Machine, mode: ExecMode) -> Result<(), SimError> {
        m.run_region(&self.region, &[], mode)?;
        Ok(())
    }

    fn reference(&self, mem: &mut Memory) {
        for i in 0..self.n as usize {
            let v = mem.array(ArrayId(0))[i] + mem.array(ArrayId(1))[i];
            mem.array_mut(ArrayId(2))[i] = v;
        }
    }

    fn output_arrays(&self) -> Vec<ArrayId> {
        vec![ArrayId(2)]
    }
}

/// `v = Σ A[i]` over `n` elements (Fig 2's `array_sum`): in-memory partial
/// reduction plus a near-memory final reduce.
#[derive(Debug)]
pub struct ArraySum {
    n: u64,
    region: RegionInstance,
}

impl ArraySum {
    /// Builds the benchmark at a scale (`Paper` = 4M elements).
    pub fn new(scale: Scale) -> Self {
        Self::with_elems(match scale {
            Scale::Paper => 4 << 20,
            Scale::Test => 4 << 10,
        })
    }

    /// Builds the benchmark with an explicit element count.
    pub fn with_elems(n: u64) -> Self {
        let mut k = KernelBuilder::new("array_sum", DataType::F32);
        let a = k.array("A", vec![n]);
        let out = k.array("Out", vec![1]);
        let i = k.parallel_loop("i", 0, n as i64);
        k.scalar_reduce("sum", ReduceOp::Sum, ScalarExpr::load(a, vec![Idx::var(i)]));
        let _ = out;
        let region = instantiate(
            &compile(k.build().expect("array_sum builds"), &[], true),
            &[],
        );
        ArraySum { n, region }
    }

    /// Element count.
    pub fn elems(&self) -> u64 {
        self.n
    }
}

impl Benchmark for ArraySum {
    fn name(&self) -> &str {
        "array_sum"
    }

    fn arrays(&self) -> Vec<ArrayDecl> {
        self.region.sdfg.arrays().to_vec()
    }

    fn init(&self, mem: &mut Memory) {
        fill_small_ints(mem, ArrayId(0), 3, 16);
    }

    fn run(&self, m: &mut Machine, mode: ExecMode) -> Result<(), SimError> {
        let report = m.run_region(&self.region, &[], mode)?;
        // The scalar result lands in the output cell so verification can see it.
        if let Some(v) = report
            .scalars
            .iter()
            .find(|(n, _)| n == "sum")
            .map(|&(_, v)| v)
        {
            mem_store_scalar(m, v);
        }
        Ok(())
    }

    fn reference(&self, mem: &mut Memory) {
        let total: f32 = mem.array(ArrayId(0)).iter().sum();
        mem.array_mut(ArrayId(1))[0] = total;
    }

    fn output_arrays(&self) -> Vec<ArrayId> {
        vec![ArrayId(1)]
    }
}

fn mem_store_scalar(m: &mut Machine, v: f32) {
    m.memory().array_mut(ArrayId(1))[0] = v;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use infs_sim::SystemConfig;

    #[test]
    fn vec_add_verifies_under_all_modes() {
        let b = VecAdd::new(Scale::Test);
        let cfg = SystemConfig::default();
        for mode in [
            ExecMode::Base { threads: 64 },
            ExecMode::NearL3,
            ExecMode::InL3,
            ExecMode::InfS,
        ] {
            verify(&b, mode, &cfg).unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        }
    }

    #[test]
    fn array_sum_verifies_under_all_modes() {
        let b = ArraySum::new(Scale::Test);
        let cfg = SystemConfig::default();
        for mode in [
            ExecMode::Base { threads: 1 },
            ExecMode::NearL3,
            ExecMode::InL3,
            ExecMode::InfS,
        ] {
            verify(&b, mode, &cfg).unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        }
    }
}

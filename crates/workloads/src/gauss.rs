//! Gaussian elimination (forward pass) — Fig 4(c)/Fig 7 of the paper: a
//! sequential pivot loop whose inner 2-D update runs in-memory with two
//! broadcasts, while the multiplier column and the RHS update stay near-memory
//! (low parallelism), and every pivot step re-enters the region with fresh
//! parameters — the shrinking tensors make this the JIT-overhead stress test.

use crate::util::{compile, fill_uniform, instantiate};
use crate::{Benchmark, Scale};
use infs_frontend::{Idx, KernelBuilder, ScalarExpr};
use infs_isa::CompiledRegion;
use infs_sdfg::{ArrayDecl, ArrayId, DataType, Memory, ReduceOp};
use infs_sim::{ExecMode, Machine, SimError};
use infs_tdfg::ComputeOp;

/// Forward elimination on an `n×n` system `A·x = B`.
///
/// Memory layout: `A` stores matrix element `M[r][c]` at `A[c + n·r]`
/// (column index contiguous); lattice dimension 0 is the column.
#[derive(Debug)]
pub struct GaussElim {
    n: u64,
    m_region: CompiledRegion,
    main_region: CompiledRegion,
    b_region: CompiledRegion,
}

impl GaussElim {
    /// Table 3: 2k×2k at paper scale.
    pub fn new(scale: Scale) -> Self {
        let n = match scale {
            Scale::Paper => 2048,
            Scale::Test => 48,
        };
        let declare = |k: &mut KernelBuilder| -> [ArrayId; 3] {
            [
                k.array("A", vec![n, n]),
                k.array("B", vec![n]),
                k.array("MARR", vec![1, n]),
            ]
        };
        // m[r] = A[r][k] / akk for r in (k, n) — a column read with division;
        // streams write the result into the broadcastable tensor m (Fig 7).
        let m_region = {
            let mut kb = KernelBuilder::new("gauss_m", DataType::F32);
            let [a, _, marr] = declare(&mut kb);
            let kv = kb.sym("k");
            let r = kb.parallel_loop_bounds("r", Idx::sym_plus(kv, 1), Idx::constant(n as i64));
            let v = ScalarExpr::bin(
                ComputeOp::Div,
                ScalarExpr::load(a, vec![Idx::sym(kv), Idx::var(r)]),
                ScalarExpr::Param(0),
            );
            kb.assign(marr, vec![Idx::constant(0), Idx::var(r)], v);
            compile(kb.build().expect("gauss_m builds"), &[0], false)
        };
        // A[r][c] -= M[k][c] · m[r] over the trailing submatrix: pivot row
        // broadcast down, multiplier column broadcast right (Fig 4c).
        let main_region = {
            let mut kb = KernelBuilder::new("gauss_main", DataType::F32);
            let [a, _, marr] = declare(&mut kb);
            let kv = kb.sym("k");
            let c = kb.parallel_loop_bounds("c", Idx::sym_plus(kv, 1), Idx::constant(n as i64));
            let r = kb.parallel_loop_bounds("r", Idx::sym_plus(kv, 1), Idx::constant(n as i64));
            let pivot_row = ScalarExpr::load(a, vec![Idx::var(c), Idx::sym(kv)]);
            let mult = ScalarExpr::load(marr, vec![Idx::constant(0), Idx::var(r)]);
            let delta = ScalarExpr::un(ComputeOp::Neg, ScalarExpr::mul(pivot_row, mult));
            kb.accum(a, vec![Idx::var(c), Idx::var(r)], ReduceOp::Sum, delta);
            compile(kb.build().expect("gauss_main builds"), &[0], false)
        };
        // B[r] -= m[r] · B[k]: low parallelism, kept as a stream (Fig 7).
        let b_region = {
            let mut kb = KernelBuilder::new("gauss_b", DataType::F32);
            let [_, b, marr] = declare(&mut kb);
            let kv = kb.sym("k");
            let r = kb.parallel_loop_bounds("r", Idx::sym_plus(kv, 1), Idx::constant(n as i64));
            let delta = ScalarExpr::un(
                ComputeOp::Neg,
                ScalarExpr::mul(
                    ScalarExpr::load(marr, vec![Idx::constant(0), Idx::var(r)]),
                    ScalarExpr::Param(0),
                ),
            );
            kb.accum(b, vec![Idx::var(r)], ReduceOp::Sum, delta);
            compile(kb.build().expect("gauss_b builds"), &[0], false)
        };
        GaussElim {
            n,
            m_region,
            main_region,
            b_region,
        }
    }
}

impl Benchmark for GaussElim {
    fn name(&self) -> &str {
        "gauss_elim"
    }

    fn arrays(&self) -> Vec<ArrayDecl> {
        self.m_region.kernel().arrays().to_vec()
    }

    fn init(&self, mem: &mut Memory) {
        fill_uniform(mem, ArrayId(0), 77, 0.1, 1.0);
        fill_uniform(mem, ArrayId(1), 78, 0.1, 1.0);
        // Diagonal dominance keeps the elimination well-conditioned.
        let n = self.n as usize;
        for k in 0..n {
            mem.array_mut(ArrayId(0))[k + k * n] += n as f32;
        }
    }

    fn run(&self, m: &mut Machine, mode: ExecMode) -> Result<(), SimError> {
        let n = self.n as usize;
        for k in 0..n - 1 {
            // Pivot values come from memory (or are placeholders in
            // timing-only runs, where values do not affect timing).
            let akk = m.memory_ref().array(ArrayId(0))[k + k * n].max(1e-6);
            let mreg = instantiate(&self.m_region, &[k as i64]);
            m.run_region(&mreg, &[akk], mode)?;
            let main = instantiate(&self.main_region, &[k as i64]);
            m.run_region(&main, &[], mode)?;
            let bk = m.memory_ref().array(ArrayId(1))[k];
            let breg = instantiate(&self.b_region, &[k as i64]);
            m.run_region(&breg, &[bk], mode)?;
        }
        Ok(())
    }

    fn reference(&self, mem: &mut Memory) {
        let n = self.n as usize;
        for k in 0..n - 1 {
            let akk = mem.array(ArrayId(0))[k + k * n].max(1e-6);
            let a = mem.array(ArrayId(0)).to_vec();
            // m[r] = A[r][k] / akk.
            let marr = mem.array_mut(ArrayId(2));
            for r in (k + 1)..n {
                marr[r] = a[k + r * n] / akk;
            }
            let marr = mem.array(ArrayId(2)).to_vec();
            let am = mem.array_mut(ArrayId(0));
            for r in (k + 1)..n {
                for c in (k + 1)..n {
                    am[c + r * n] -= a[c + k * n] * marr[r];
                }
            }
            let bk = mem.array(ArrayId(1))[k];
            let b = mem.array_mut(ArrayId(1));
            for r in (k + 1)..n {
                b[r] -= marr[r] * bk;
            }
        }
    }

    fn output_arrays(&self) -> Vec<ArrayId> {
        vec![ArrayId(0), ArrayId(1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use infs_sim::SystemConfig;

    #[test]
    fn gauss_verifies_under_all_modes() {
        let b = GaussElim::new(Scale::Test);
        for mode in [
            ExecMode::Base { threads: 64 },
            ExecMode::NearL3,
            ExecMode::InL3,
            ExecMode::InfS,
        ] {
            verify(&b, mode, &SystemConfig::default()).unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        }
    }
}

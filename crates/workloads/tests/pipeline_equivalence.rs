//! Acceptance gate for the pipeline subsystem: the fused streaming execution
//! must be **bitwise identical** to the per-kernel host round-trip reference
//! on the same graph — under the fully fused configuration, the near-memory
//! configuration, and a chaos fault seed. The fused policy only changes
//! *when* operands move (residency, prefetch, layout handoff); it must never
//! change *what* the stages compute.

use infs_faults::{FaultConfig, FaultPlan};
use infs_pipeline::PipelineGraph;
use infs_sdfg::ArrayDecl;
use infs_sim::{ExecMode, Machine, SystemConfig};
use infs_workloads::{Benchmark, MlpStack, PointNet, PointNetVariant, Scale};
use std::sync::Arc;

/// Runs a graph under one policy on a fresh machine and returns every
/// produced tensor's bytes (not just the logits — intermediates must agree
/// too, or a residency bug could cancel out downstream).
fn run_policy(
    graph: &PipelineGraph,
    arrays: &[ArrayDecl],
    seed: impl Fn(&mut Machine),
    mode: ExecMode,
    fused: bool,
    chaos: Option<u64>,
) -> Vec<Vec<u32>> {
    let cfg = SystemConfig::default();
    let compiled = infs_pipeline::compile(graph, &cfg).expect("graph compiles");
    let mut m = Machine::new(cfg, arrays);
    if let Some(s) = chaos {
        m.set_fault_plan(Arc::new(FaultPlan::new(FaultConfig::chaos(s))));
    }
    seed(&mut m);
    let report = if fused {
        compiled.run_fused(&mut m, mode).expect("fused run")
    } else {
        compiled.run_roundtrip(&mut m, mode).expect("roundtrip run")
    };
    assert_eq!(report.stages.len(), graph.stages.len());
    graph
        .produced()
        .iter()
        .map(|&t| {
            m.memory_ref()
                .array(infs_sdfg::ArrayId(t))
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect()
}

fn assert_bitwise_equivalent(
    graph: &PipelineGraph,
    arrays: &[ArrayDecl],
    seed: impl Fn(&mut Machine) + Copy,
) {
    for (mode, chaos) in [
        (ExecMode::InfS, None),
        (ExecMode::NearL3, None),
        (ExecMode::InfS, Some(0xC0FFEE)),
    ] {
        let fused = run_policy(graph, arrays, seed, mode, true, chaos);
        let roundtrip = run_policy(graph, arrays, seed, mode, false, chaos);
        for ((f, r), &t) in fused.iter().zip(&roundtrip).zip(graph.produced().iter()) {
            assert_eq!(
                f, r,
                "graph '{}' tensor '{}' diverges between fused and roundtrip \
                 under {mode:?} (chaos: {chaos:?})",
                graph.name, graph.tensors[t as usize].name
            );
        }
    }
}

#[test]
fn pointnet_tail_fused_is_bitwise_identical_to_roundtrip() {
    let b = PointNet::new(Scale::Test, PointNetVariant::Ssg);
    let graph = b.tail_graph();
    let arrays = b.arrays();
    assert_bitwise_equivalent(&graph, &arrays, |m| b.seed_tail_inputs(m.memory()));
}

#[test]
fn mlp_stack_fused_is_bitwise_identical_to_roundtrip() {
    let b = MlpStack::new(Scale::Test);
    let graph = b.graph().clone();
    let arrays = b.arrays();
    assert_bitwise_equivalent(&graph, &arrays, |m| b.init(m.memory()));
}

#[test]
fn fused_pipeline_is_not_slower_than_roundtrip() {
    // The performance claim at test scale: fused total cycles must not exceed
    // the per-kernel round-trip on the same graph and tile.
    let b = MlpStack::new(Scale::Test);
    let cfg = SystemConfig::default();
    let compiled = infs_pipeline::compile(b.graph(), &cfg).expect("compiles");
    let arrays = b.arrays();

    let mut mf = Machine::new(cfg.clone(), &arrays);
    b.init(mf.memory());
    let fused = compiled.run_fused(&mut mf, ExecMode::InfS).expect("fused");

    let mut mr = Machine::new(cfg, &arrays);
    b.init(mr.memory());
    let roundtrip = compiled
        .run_roundtrip(&mut mr, ExecMode::InfS)
        .expect("roundtrip");

    assert!(
        fused.total_cycles <= roundtrip.total_cycles,
        "fused {} cycles vs roundtrip {}",
        fused.total_cycles,
        roundtrip.total_cycles
    );
}

//! `infs-trace`: the observability substrate for the Infinity Stream stack.
//!
//! Every layer of the pipeline — frontend streamize/tensorize, e-graph
//! saturation, ISA scheduling, runtime JIT lowering, the cycle-level
//! simulator, and the serving layer — reports through this crate. The design
//! constraints, in order:
//!
//! 1. **Near-zero overhead when disabled.** The hot path of every probe is a
//!    single relaxed atomic load ([`enabled`]); no allocation, formatting, or
//!    locking happens unless tracing was explicitly switched on. The
//!    `trace_overhead` bench in `infs-bench` holds this below 5 ns/call.
//! 2. **Lock-striped when enabled.** Events land in one of [`SHARDS`]
//!    mutex-protected buffers selected by thread id; counters and gauges are
//!    striped by name hash. Worker threads almost never contend.
//! 3. **Two time domains.** Host spans carry wall-clock nanoseconds from a
//!    process-wide epoch ([`Instant`]-monotonic). Simulator spans carry
//!    *cycles* and render on a separate Chrome "process" so a simulated
//!    region shows up as a per-bank / per-NoC-lane timeline next to the
//!    compile-time spans that produced it.
//!
//! Exports: [`TraceSnapshot::chrome_json`] (Chrome trace-event format, opens
//! in Perfetto or `chrome://tracing`) and [`TraceSnapshot::metrics_json`]
//! (flat counters/gauges). Both are hand-rendered with deterministic field
//! ordering so golden tests can byte-compare output.
//!
//! Probes are the [`span!`], [`counter!`] and [`gauge!`] macros:
//!
//! ```
//! let _guard = infs_trace::exclusive(); // tests: serialize + enable
//! {
//!     let mut s = infs_trace::span!("egraph.saturate", iter = 3usize);
//!     s.arg("enodes", 128usize);
//!     infs_trace::counter!("egraph.rule_applications", 17u64);
//! }
//! let snap = infs_trace::snapshot();
//! assert_eq!(snap.events.len(), 1);
//! assert_eq!(snap.counters["egraph.rule_applications"], 17);
//! ```
//!
//! `DESIGN.md` §9 covers the collector, the two time domains, and the
//! exporters in detail.

mod export;

pub use export::TraceSnapshot;

use parking_lot::{Mutex, MutexGuard};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Number of lock stripes for event buffers and counter/gauge maps.
pub const SHARDS: usize = 16;

/// Per-shard event cap; beyond this events are counted as dropped rather
/// than buffered, bounding memory on pathological runs.
const SHARD_CAP: usize = 1 << 18;

/// Chrome "process" id for host wall-clock tracks (one per thread).
pub const HOST_PID: u32 = 1;

/// Chrome "process" id for simulated-machine tracks (one per bank / NoC
/// lane; timestamps are cycles, not wall time).
pub const SIM_PID: u32 = 2;

static ENABLED: AtomicBool = AtomicBool::new(false);
static COLLECTOR: OnceLock<Collector> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Is tracing on? This is the only cost a probe pays when tracing is off:
/// one relaxed atomic load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Switch the global sink on. Idempotent; initializes the collector on
/// first use.
pub fn enable() {
    collector();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Switch the global sink off. Buffered events stay readable via
/// [`snapshot`] until [`clear`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Drop all buffered events, counters, gauges and sim-lane registrations.
pub fn clear() {
    collector().clear();
}

/// Stable per-thread id (assigned on first use, never reused).
pub fn current_tid() -> u64 {
    TID.with(|t| *t)
}

fn collector() -> &'static Collector {
    COLLECTOR.get_or_init(Collector::new)
}

/// One typed span/metric argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Boolean flag.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
}

macro_rules! arg_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {
        $(impl From<$t> for ArgValue {
            fn from(v: $t) -> Self { ArgValue::$variant(v as $conv) }
        })*
    };
}
arg_from!(
    i8 => Int as i64, i16 => Int as i64, i32 => Int as i64, i64 => Int as i64,
    isize => Int as i64,
    u8 => UInt as u64, u16 => UInt as u64, u32 => UInt as u64, u64 => UInt as u64,
    usize => UInt as u64,
    f32 => Float as f64, f64 => Float as f64,
);

impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

impl From<&String> for ArgValue {
    fn from(v: &String) -> Self {
        ArgValue::Str(v.clone())
    }
}

/// One recorded complete span. Host events ([`HOST_PID`]) carry `ts`/`dur`
/// in nanoseconds since the collector epoch; simulator events ([`SIM_PID`])
/// carry cycles.
#[derive(Debug, Clone)]
pub struct Event {
    /// Dotted span name; the prefix before the first `.` becomes the Chrome
    /// category (`frontend`, `egraph`, `isa`, `runtime`, `sim`, `serve`, …).
    pub name: String,
    /// Chrome process id: [`HOST_PID`] or [`SIM_PID`].
    pub pid: u32,
    /// Track id: thread id for host events, lane id for sim events.
    pub tid: u64,
    /// Start (ns since epoch for host, cycles for sim).
    pub ts: u64,
    /// Duration (ns for host, cycles for sim).
    pub dur: u64,
    /// Typed key/value annotations.
    pub args: Vec<(&'static str, ArgValue)>,
}

struct Collector {
    epoch: Instant,
    events: Vec<Mutex<Vec<Event>>>,
    counters: Vec<Mutex<BTreeMap<String, u64>>>,
    gauges: Vec<Mutex<BTreeMap<String, f64>>>,
    /// Explicit track names: (pid, tid) → label ("worker 3", "bank 07", …).
    tracks: Mutex<BTreeMap<(u32, u64), String>>,
    /// Sim lane label → lane tid, so repeated lanes reuse one track.
    sim_lanes: Mutex<BTreeMap<String, u64>>,
    next_sim_tid: AtomicU64,
    dropped: AtomicU64,
}

impl Collector {
    fn new() -> Self {
        Collector {
            epoch: Instant::now(),
            events: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            counters: (0..SHARDS).map(|_| Mutex::new(BTreeMap::new())).collect(),
            gauges: (0..SHARDS).map(|_| Mutex::new(BTreeMap::new())).collect(),
            tracks: Mutex::new(BTreeMap::new()),
            sim_lanes: Mutex::new(BTreeMap::new()),
            next_sim_tid: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
        }
    }

    fn clear(&self) {
        for s in &self.events {
            s.lock().clear();
        }
        for s in &self.counters {
            s.lock().clear();
        }
        for s in &self.gauges {
            s.lock().clear();
        }
        self.tracks.lock().clear();
        self.sim_lanes.lock().clear();
        self.next_sim_tid.store(1, Ordering::SeqCst);
        self.dropped.store(0, Ordering::SeqCst);
    }

    fn record(&self, ev: Event) {
        let shard = (ev.tid as usize) % SHARDS;
        let mut buf = self.events[shard].lock();
        if buf.len() < SHARD_CAP {
            buf.push(ev);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn name_shard(name: &str) -> usize {
    // FNV-1a over the name bytes, reduced to a stripe index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    (h as usize) % SHARDS
}

/// Nanoseconds since the collector epoch (monotonic).
pub fn now_ns() -> u64 {
    collector().epoch.elapsed().as_nanos() as u64
}

/// Add `delta` to a monotonic counter. Callers should gate on [`enabled`]
/// (the [`counter!`] macro does).
pub fn counter_add(name: &str, delta: u64) {
    let c = collector();
    let mut shard = c.counters[name_shard(name)].lock();
    match shard.get_mut(name) {
        Some(v) => *v += delta,
        None => {
            shard.insert(name.to_string(), delta);
        }
    }
}

/// Set a gauge to its latest observed value. Callers should gate on
/// [`enabled`] (the [`gauge!`] macro does).
pub fn gauge_set(name: &str, value: f64) {
    let c = collector();
    c.gauges[name_shard(name)]
        .lock()
        .insert(name.to_string(), value);
}

/// Label the current thread's host track in the exported trace
/// (e.g. `"worker 3"`). No-op when tracing is disabled.
pub fn name_thread(label: &str) {
    if !enabled() {
        return;
    }
    let c = collector();
    c.tracks
        .lock()
        .insert((HOST_PID, current_tid()), label.to_string());
}

/// Record a completed host-time span at explicit timestamps (used where the
/// interval is known only after the fact, e.g. admission-queue wait).
pub fn record_span_at(
    name: impl Into<String>,
    start_ns: u64,
    dur_ns: u64,
    args: Vec<(&'static str, ArgValue)>,
) {
    if !enabled() {
        return;
    }
    collector().record(Event {
        name: name.into(),
        pid: HOST_PID,
        tid: current_tid(),
        ts: start_ns,
        dur: dur_ns,
        args,
    });
}

/// Record a simulated-time span on a named lane (`"bank 03"`, `"noc"`,
/// `"machine"`). `start_cycle`/`dur_cycles` are in simulated cycles; the
/// exporter renders them on the [`SIM_PID`] process so the simulated
/// timeline is visually separate from wall-clock compile spans.
pub fn sim_span(
    lane: &str,
    name: impl Into<String>,
    start_cycle: u64,
    dur_cycles: u64,
    args: Vec<(&'static str, ArgValue)>,
) {
    if !enabled() {
        return;
    }
    let c = collector();
    let tid = {
        let mut lanes = c.sim_lanes.lock();
        match lanes.get(lane) {
            Some(t) => *t,
            None => {
                let t = c.next_sim_tid.fetch_add(1, Ordering::Relaxed);
                lanes.insert(lane.to_string(), t);
                c.tracks.lock().insert((SIM_PID, t), lane.to_string());
                t
            }
        }
    };
    c.record(Event {
        name: name.into(),
        pid: SIM_PID,
        tid,
        ts: start_cycle,
        dur: dur_cycles,
        args,
    });
}

/// RAII guard for one hierarchical span. Construct via the [`span!`] macro;
/// the span is recorded (with its wall-clock duration) when the guard drops.
/// When tracing is disabled the guard is an inert `None` and both
/// construction and drop are no-ops.
#[must_use = "a span guard records its span when dropped; binding it to _ drops it immediately"]
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

struct OpenSpan {
    name: String,
    start_ns: u64,
    args: Vec<(&'static str, ArgValue)>,
}

impl SpanGuard {
    /// The no-op guard returned when tracing is off.
    #[inline(always)]
    pub fn disabled() -> Self {
        SpanGuard { open: None }
    }

    /// Open a span now. Called by [`span!`] only after [`enabled`] returned
    /// true; callers invoking it directly should gate the same way.
    pub fn begin(name: impl Into<String>, args: Vec<(&'static str, ArgValue)>) -> Self {
        SpanGuard {
            open: Some(OpenSpan {
                name: name.into(),
                start_ns: now_ns(),
                args,
            }),
        }
    }

    /// Attach an argument discovered after the span opened (e.g. a result).
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if let Some(open) = &mut self.open {
            open.args.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        if !enabled() {
            return;
        }
        let end = now_ns();
        collector().record(Event {
            name: open.name,
            pid: HOST_PID,
            tid: current_tid(),
            ts: open.start_ns,
            dur: end.saturating_sub(open.start_ns),
            args: open.args,
        });
    }
}

/// Open a hierarchical span: `span!("egraph.saturate", iter = n)`. Returns a
/// [`SpanGuard`]; bind it to a named `_guard` (not `_`) so it lives to the
/// end of the scope. Costs one atomic load when tracing is disabled.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::SpanGuard::begin(
                $name,
                vec![$((stringify!($k), $crate::ArgValue::from($v))),*],
            )
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

/// Add to a monotonic counter: `counter!("jit.memo_hits", 1u64)`. Costs one
/// atomic load when tracing is disabled.
#[macro_export]
macro_rules! counter {
    ($name:expr, $delta:expr) => {
        if $crate::enabled() {
            $crate::counter_add($name, $delta as u64);
        }
    };
}

/// Set a gauge to its latest value: `gauge!("egraph.enodes", n)`. Costs one
/// atomic load when tracing is disabled.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr) => {
        if $crate::enabled() {
            $crate::gauge_set($name, $value as f64);
        }
    };
}

/// Snapshot everything recorded so far (events sorted deterministically,
/// counters/gauges merged across stripes).
pub fn snapshot() -> TraceSnapshot {
    let c = collector();
    let mut events: Vec<Event> = Vec::new();
    for shard in &c.events {
        events.extend(shard.lock().iter().cloned());
    }
    events.sort_by(|a, b| {
        (a.pid, a.tid, a.ts, std::cmp::Reverse(a.dur), &a.name).cmp(&(
            b.pid,
            b.tid,
            b.ts,
            std::cmp::Reverse(b.dur),
            &b.name,
        ))
    });
    let mut counters = BTreeMap::new();
    for shard in &c.counters {
        for (k, v) in shard.lock().iter() {
            *counters.entry(k.clone()).or_insert(0) += *v;
        }
    }
    let mut gauges = BTreeMap::new();
    for shard in &c.gauges {
        for (k, v) in shard.lock().iter() {
            gauges.insert(k.clone(), *v);
        }
    }
    TraceSnapshot {
        events,
        counters,
        gauges,
        tracks: c.tracks.lock().clone(),
        dropped: c.dropped.load(Ordering::Relaxed),
    }
}

/// Write the Chrome trace-event JSON to `path`.
pub fn write_chrome(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, snapshot().chrome_json())
}

/// Write the flat metrics JSON to `path`.
pub fn write_metrics(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, snapshot().metrics_json())
}

static EXCLUSIVE: Mutex<()> = Mutex::new(());

/// Exclusive tracing session: takes a process-wide lock (so concurrently
/// running tests cannot interleave events), clears the collector, and
/// enables tracing. Tracing is disabled again when the guard drops. This is
/// the entry point for tests and for CLI `--trace` flags.
pub fn exclusive() -> TraceSession {
    let lock = EXCLUSIVE.lock();
    collector().clear();
    enable();
    TraceSession { _lock: lock }
}

/// Guard returned by [`exclusive`]; disables tracing on drop (recorded
/// events stay readable until the next [`exclusive`]/[`clear`]).
pub struct TraceSession {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        disable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probes_record_nothing() {
        let guard = exclusive();
        drop(guard); // leaves tracing disabled, collector cleared of prior state
        let _relock = exclusive();
        disable();
        {
            let mut s = span!("frontend.streamize", kernel = "mm");
            s.arg("late", 1u64);
            counter!("jit.memo_hits", 3u64);
            gauge!("egraph.enodes", 40usize);
            sim_span("bank 00", "compute", 0, 10, vec![]);
        }
        let snap = snapshot();
        assert!(snap.events.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
    }

    #[test]
    fn spans_counters_gauges_round_trip() {
        let _guard = exclusive();
        {
            let _outer = span!("isa.compile", kernel = "mm");
            {
                let mut inner = span!("isa.schedule", nodes = 12usize);
                inner.arg("max_live", 4usize);
            }
            counter!("egraph.rule_applications", 5u64);
            counter!("egraph.rule_applications", 2u64);
            gauge!("egraph.enodes", 128usize);
            gauge!("egraph.enodes", 256usize);
        }
        let snap = snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.counters["egraph.rule_applications"], 7);
        assert_eq!(snap.gauges["egraph.enodes"], 256.0);
        // Inner closed before outer and is contained within it.
        let outer = snap
            .events
            .iter()
            .find(|e| e.name == "isa.compile")
            .unwrap();
        let inner = snap
            .events
            .iter()
            .find(|e| e.name == "isa.schedule")
            .unwrap();
        assert!(inner.ts >= outer.ts);
        assert!(inner.ts + inner.dur <= outer.ts + outer.dur);
        assert!(inner
            .args
            .iter()
            .any(|(k, v)| *k == "max_live" && *v == ArgValue::UInt(4)));
    }

    #[test]
    fn sim_lanes_get_stable_tracks_in_cycle_domain() {
        let _guard = exclusive();
        sim_span(
            "bank 00",
            "compute",
            0,
            10,
            vec![("cmd", ArgValue::UInt(0))],
        );
        sim_span("bank 01", "compute", 0, 12, vec![]);
        sim_span("bank 00", "intra-shift", 10, 3, vec![]);
        let snap = snapshot();
        assert_eq!(snap.events.len(), 3);
        assert!(snap.events.iter().all(|e| e.pid == SIM_PID));
        let bank0: Vec<_> = snap
            .events
            .iter()
            .filter(|e| snap.tracks.get(&(SIM_PID, e.tid)).map(String::as_str) == Some("bank 00"))
            .collect();
        assert_eq!(bank0.len(), 2);
        assert_eq!(
            bank0[0].tid, bank0[1].tid,
            "same lane label reuses one track"
        );
        // Cycle timestamps are preserved verbatim.
        assert_eq!(bank0[1].ts, 10);
        assert_eq!(bank0[1].dur, 3);
    }

    #[test]
    fn threads_record_on_distinct_tracks() {
        let _guard = exclusive();
        let main_tid = current_tid();
        {
            let _s = span!("serve.request", id = 1u64);
        }
        let other_tid = std::thread::spawn(|| {
            let _s = span!("serve.request", id = 2u64);
            current_tid()
        })
        .join()
        .unwrap();
        assert_ne!(main_tid, other_tid);
        let snap = snapshot();
        let tids: std::collections::BTreeSet<u64> = snap.events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 2);
    }

    #[test]
    fn record_span_at_places_explicit_intervals() {
        let _guard = exclusive();
        record_span_at("serve.queue_wait", 100, 50, vec![("id", ArgValue::UInt(9))]);
        let snap = snapshot();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].ts, 100);
        assert_eq!(snap.events[0].dur, 50);
        assert_eq!(snap.events[0].pid, HOST_PID);
    }
}

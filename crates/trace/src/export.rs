//! Exporters: Chrome trace-event JSON and flat metrics JSON.
//!
//! Both are rendered by hand rather than through serde so that field order
//! is fixed by construction (`name, cat, ph, ts, dur, pid, tid, args`) and
//! string escaping is auditable — the exporter tests byte-compare output.

use crate::{ArgValue, Event, HOST_PID, SIM_PID};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Everything the collector held at [`crate::snapshot`] time.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// Complete spans, sorted by `(pid, tid, ts, dur desc, name)`.
    pub events: Vec<Event>,
    /// Monotonic counters, merged across stripes.
    pub counters: BTreeMap<String, u64>,
    /// Latest-value gauges, merged across stripes.
    pub gauges: BTreeMap<String, f64>,
    /// Explicit track labels keyed by `(pid, tid)`.
    pub tracks: BTreeMap<(u32, u64), String>,
    /// Events discarded because a stripe hit its cap.
    pub dropped: u64,
}

/// Escape `s` for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an [`ArgValue`] as a JSON value.
fn arg_json(v: &ArgValue) -> String {
    match v {
        ArgValue::Bool(b) => b.to_string(),
        ArgValue::Int(i) => i.to_string(),
        ArgValue::UInt(u) => u.to_string(),
        ArgValue::Float(f) if f.is_finite() => {
            // Keep a decimal point so the value reads back as a float.
            if f.fract() == 0.0 && f.abs() < 1e15 {
                format!("{f:.1}")
            } else {
                format!("{f}")
            }
        }
        ArgValue::Float(_) => "null".to_string(),
        ArgValue::Str(s) => format!("\"{}\"", escape_json(s)),
    }
}

/// The span's Chrome category: the dotted-name prefix (`"egraph.saturate"`
/// → `"egraph"`).
fn category(name: &str) -> &str {
    name.split('.').next().unwrap_or("misc")
}

/// Host timestamps are nanoseconds; Chrome wants microseconds. Print as a
/// fixed-point decimal so output is deterministic (no float formatting).
fn host_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

impl TraceSnapshot {
    /// Chrome trace-event JSON (the `{"traceEvents": [...]}` object form).
    /// Open in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
    ///
    /// Host spans ([`HOST_PID`]) use wall-clock microseconds; simulator
    /// spans ([`SIM_PID`]) map one simulated cycle to one "microsecond" on a
    /// separate process track, so the simulated timeline zooms
    /// independently of compile-time spans.
    pub fn chrome_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"traceEvents\":[\n");
        let mut first = true;
        let mut push = |out: &mut String, line: String| {
            if !std::mem::take(&mut first) {
                out.push_str(",\n");
            }
            out.push_str(&line);
        };

        // Metadata: process names, then explicit track names, sorted.
        let has_host = self.events.iter().any(|e| e.pid == HOST_PID);
        let has_sim = self.events.iter().any(|e| e.pid == SIM_PID);
        if has_host {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{HOST_PID},\"tid\":0,\
                     \"args\":{{\"name\":\"host (wall clock)\"}}}}"
                ),
            );
        }
        if has_sim {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{SIM_PID},\"tid\":0,\
                     \"args\":{{\"name\":\"simulated machine (cycles)\"}}}}"
                ),
            );
        }
        for ((pid, tid), label) in &self.tracks {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    escape_json(label)
                ),
            );
        }

        for ev in &self.events {
            let (ts, dur) = if ev.pid == SIM_PID {
                (ev.ts.to_string(), ev.dur.to_string())
            } else {
                (host_us(ev.ts), host_us(ev.dur))
            };
            let mut line = format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\
                 \"pid\":{},\"tid\":{}",
                escape_json(&ev.name),
                escape_json(category(&ev.name)),
                ev.pid,
                ev.tid
            );
            if ev.args.is_empty() {
                line.push('}');
            } else {
                line.push_str(",\"args\":{");
                for (i, (k, v)) in ev.args.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    let _ = write!(line, "\"{}\":{}", escape_json(k), arg_json(v));
                }
                line.push_str("}}");
            }
            push(&mut out, line);
        }
        let _ = write!(
            out,
            "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{{\"dropped_events\":{}}}}}\n",
            self.dropped
        );
        out
    }

    /// Flat metrics JSON: sorted counters and gauges plus the dropped-event
    /// count.
    pub fn metrics_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {v}", escape_json(k));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    \"{}\": {}",
                escape_json(k),
                arg_json(&ArgValue::Float(*v))
            );
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        let _ = write!(out, "}},\n  \"dropped_events\": {}\n}}\n", self.dropped);
        out
    }

    /// Number of spans whose dotted name starts with `prefix` (`"egraph"`
    /// matches `"egraph.saturate"` but not `"egraphx"`).
    pub fn spans_with_prefix(&self, prefix: &str) -> usize {
        self.events
            .iter()
            .filter(|e| {
                e.name == prefix
                    || (e.name.starts_with(prefix)
                        && e.name.as_bytes().get(prefix.len()) == Some(&b'.'))
            })
            .count()
    }

    /// Verify that per-track spans nest properly: on every `(pid, tid)`
    /// track, any two spans are either disjoint or one fully contains the
    /// other. Returns the offending pair on violation. (RAII drop order
    /// guarantees this for host spans; the check is the exporter's
    /// well-formedness test.)
    ///
    /// # Errors
    ///
    /// The boxed `(containing, overlapping)` pair that violates nesting.
    pub fn check_nesting(&self) -> Result<(), Box<(Event, Event)>> {
        let mut by_track: BTreeMap<(u32, u64), Vec<&Event>> = BTreeMap::new();
        for ev in &self.events {
            by_track.entry((ev.pid, ev.tid)).or_default().push(ev);
        }
        for track in by_track.values() {
            // Events arrive sorted by (ts, dur desc): a containing span
            // precedes its children. Sweep with an interval stack.
            let mut stack: Vec<&Event> = Vec::new();
            for ev in track {
                while let Some(top) = stack.last() {
                    if ev.ts >= top.ts + top.dur {
                        stack.pop();
                    } else if ev.ts + ev.dur <= top.ts + top.dur {
                        break; // contained
                    } else {
                        return Err(Box::new(((*top).clone(), (*ev).clone())));
                    }
                }
                stack.push(ev);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, pid: u32, tid: u64, ts: u64, dur: u64) -> Event {
        Event {
            name: name.to_string(),
            pid,
            tid,
            ts,
            dur,
            args: Vec::new(),
        }
    }

    fn snap(events: Vec<Event>) -> TraceSnapshot {
        TraceSnapshot {
            events,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            tracks: BTreeMap::new(),
            dropped: 0,
        }
    }

    #[test]
    fn escaping_covers_quotes_backslashes_and_control_chars() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
        assert_eq!(escape_json("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(escape_json("naïve→"), "naïve→");
    }

    #[test]
    fn span_names_are_escaped_in_chrome_output() {
        let s = snap(vec![ev("bad\"name\\with\ncontrols", HOST_PID, 1, 0, 5)]);
        let json = s.chrome_json();
        assert!(json.contains("bad\\\"name\\\\with\\ncontrols"));
        // Raw specials must not appear inside the emitted string literal.
        assert!(!json.contains("bad\"name"));
    }

    #[test]
    fn chrome_field_order_is_deterministic() {
        let mut e = ev("isa.compile", HOST_PID, 3, 1500, 2500);
        e.args.push(("kernel", ArgValue::Str("mm".into())));
        e.args.push(("geoms", ArgValue::UInt(4)));
        let json = snap(vec![e]).chrome_json();
        assert!(json.contains(
            "{\"name\":\"isa.compile\",\"cat\":\"isa\",\"ph\":\"X\",\"ts\":1.500,\
             \"dur\":2.500,\"pid\":1,\"tid\":3,\"args\":{\"kernel\":\"mm\",\"geoms\":4}}"
        ));
        // Byte-identical on repeated export of the same snapshot.
        let mut e2 = ev("isa.compile", HOST_PID, 3, 1500, 2500);
        e2.args.push(("kernel", ArgValue::Str("mm".into())));
        e2.args.push(("geoms", ArgValue::UInt(4)));
        assert_eq!(json, snap(vec![e2]).chrome_json());
    }

    #[test]
    fn sim_events_render_cycles_verbatim_on_their_own_process() {
        let mut s = snap(vec![ev("compute", SIM_PID, 7, 120, 32)]);
        s.tracks.insert((SIM_PID, 7), "bank 07".to_string());
        let json = s.chrome_json();
        assert!(json.contains("\"ts\":120,\"dur\":32,\"pid\":2,\"tid\":7"));
        assert!(json.contains("simulated machine (cycles)"));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("bank 07"));
    }

    #[test]
    fn nesting_check_accepts_contained_and_rejects_overlap() {
        // parent [0,100), child [10,40), sibling [50,90): balanced.
        let ok = snap(vec![
            ev("a.parent", HOST_PID, 1, 0, 100),
            ev("a.child", HOST_PID, 1, 10, 30),
            ev("a.sibling", HOST_PID, 1, 50, 40),
        ]);
        assert!(ok.check_nesting().is_ok());
        // Straddling pair on one track: rejected.
        let bad = snap(vec![
            ev("a.first", HOST_PID, 1, 0, 50),
            ev("a.straddle", HOST_PID, 1, 30, 40),
        ]);
        let (p, c) = *bad.check_nesting().unwrap_err();
        assert_eq!(p.name, "a.first");
        assert_eq!(c.name, "a.straddle");
        // Same interval on different tracks: fine.
        let cross = snap(vec![
            ev("a.first", HOST_PID, 1, 0, 50),
            ev("a.straddle", HOST_PID, 2, 30, 40),
        ]);
        assert!(cross.check_nesting().is_ok());
    }

    #[test]
    fn metrics_json_is_sorted_and_escaped() {
        let mut s = snap(vec![]);
        s.counters.insert("z.last".into(), 2);
        s.counters.insert("a.first".into(), 1);
        s.gauges.insert("g\"q".into(), 2.5);
        s.dropped = 3;
        let json = s.metrics_json();
        let a = json.find("a.first").unwrap();
        let z = json.find("z.last").unwrap();
        assert!(a < z, "counters sorted by name");
        assert!(json.contains("\"g\\\"q\": 2.5"));
        assert!(json.contains("\"dropped_events\": 3"));
    }

    #[test]
    fn prefix_counter_respects_dot_boundaries() {
        let s = snap(vec![
            ev("egraph.saturate", HOST_PID, 1, 0, 1),
            ev("egraph.extract", HOST_PID, 1, 2, 1),
            ev("egraphx.other", HOST_PID, 1, 4, 1),
            ev("egraph", HOST_PID, 1, 6, 1),
        ]);
        assert_eq!(s.spans_with_prefix("egraph"), 3);
        assert_eq!(s.spans_with_prefix("egraph.saturate"), 1);
    }

    #[test]
    fn empty_snapshot_is_valid_json_shell() {
        let json = snap(vec![]).chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"displayTimeUnit\":\"ns\""));
        let m = snap(vec![]).metrics_json();
        assert!(m.contains("\"counters\": {}"));
        assert!(m.contains("\"gauges\": {}"));
    }
}

//! # Infinity Stream
//!
//! A from-scratch Rust reproduction of **"Infinity Stream: Portable and
//! Programmer-Friendly In-/Near-Memory Fusion"** (Wang, Liu, Arora, John,
//! Nowatzki — ASPLOS 2023): an execution model, IR, compiler, JIT runtime and
//! simulated microarchitecture that fuse *in-memory* computing (bit-serial
//! logic inside last-level-cache SRAM arrays) with *near-memory* computing
//! (streams executed at L3 banks) behind one portable abstraction.
//!
//! The stack, bottom-up (each layer is its own crate, re-exported here):
//!
//! | layer | crate | paper section |
//! |---|---|---|
//! | lattice geometry, Alg 1, tiling | [`geom`] | §3.2, §4.1 |
//! | stream dataflow graph (sDFG) | [`sdfg`] | §3.1 |
//! | tensor dataflow graph (tDFG) | [`tdfg`] | §3.2 |
//! | e-graph optimizer | [`egraph`] | Appendix A |
//! | loop-nest front end | [`frontend`] | §3.4 "plain C" |
//! | fat binary + scheduling | [`isa`] | §3.4 |
//! | JIT runtime (Alg 2, Eq 2) | [`runtime`] | §4 |
//! | simulated machine | [`sim`] | §5, §7 |
//!
//! # Quickstart
//!
//! ```
//! use infinity_stream::prelude::*;
//!
//! // 1. Write a kernel ("plain C"): C[i] = A[i] + B[i].
//! let n = 1 << 16;
//! let mut k = KernelBuilder::new("vec_add", DataType::F32);
//! let a = k.array("A", vec![n]);
//! let b = k.array("B", vec![n]);
//! let c = k.array("C", vec![n]);
//! let i = k.parallel_loop("i", 0, n as i64);
//! k.assign(c, vec![Idx::var(i)], ScalarExpr::add(
//!     ScalarExpr::load(a, vec![Idx::var(i)]),
//!     ScalarExpr::load(b, vec![Idx::var(i)]),
//! ));
//!
//! // 2. Compile into a fat binary and open a session on the simulated machine.
//! let mut binary = FatBinary::new();
//! binary.push(Compiler::default().compile(k.build()?, &[])?);
//! let mut session = Session::new(SystemConfig::default(), binary, ExecMode::InfS)?;
//!
//! // 3. Fill inputs, run, inspect.
//! session.memory().write_array(a, &vec![1.0; n as usize]);
//! session.memory().write_array(b, &vec![2.0; n as usize]);
//! let report = session.run("vec_add", &[], &[])?;
//! assert!(session.memory_ref().array(c).iter().all(|&x| x == 3.0));
//! assert!(report.cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! `DESIGN.md` §3 (workspace layout) maps the crates this facade stitches
//! together.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use infs_egraph as egraph;
pub use infs_frontend as frontend;
pub use infs_geom as geom;
pub use infs_isa as isa;
pub use infs_runtime as runtime;
pub use infs_sdfg as sdfg;
pub use infs_sim as sim;
pub use infs_tdfg as tdfg;

mod session;

pub use session::{Session, SessionError};

/// The commonly used names, one `use` away.
pub mod prelude {
    pub use crate::{Session, SessionError};
    pub use infs_egraph::{optimize, CostParams};
    pub use infs_frontend::{Idx, Kernel, KernelBuilder, ScalarExpr};
    pub use infs_geom::{HyperRect, TileShape};
    pub use infs_isa::{CompiledRegion, Compiler, FatBinary, RegionInstance, SramGeometry};
    pub use infs_runtime::{Paradigm, TransposedLayout};
    pub use infs_sdfg::{ArrayDecl, ArrayId, DataType, Memory, ReduceOp};
    pub use infs_sim::{ExecMode, Executed, Machine, RegionReport, RunStats, SystemConfig};
    pub use infs_tdfg::{ComputeOp, Tdfg};
}

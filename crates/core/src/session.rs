use infs_isa::{FatBinary, IsaError};
use infs_runtime::JitCache;
use infs_sdfg::Memory;
use infs_sim::{ExecMode, Machine, RegionReport, RunStats, SimError, SystemConfig};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Errors from the high-level session API.
#[derive(Debug)]
#[non_exhaustive]
pub enum SessionError {
    /// No region with the given name exists in the fat binary.
    UnknownRegion(String),
    /// The fat binary is empty (a session needs at least one region's arrays).
    EmptyBinary,
    /// The binary's regions disagree on the shared array table.
    InconsistentArrays(String),
    /// Region instantiation failed.
    Isa(IsaError),
    /// Simulation failed.
    Sim(SimError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::UnknownRegion(n) => write!(f, "no region named '{n}' in the binary"),
            SessionError::EmptyBinary => write!(f, "fat binary contains no regions"),
            SessionError::InconsistentArrays(n) => {
                write!(f, "region '{n}' declares a different array table")
            }
            SessionError::Isa(e) => write!(f, "instantiation failed: {e}"),
            SessionError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl Error for SessionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SessionError::Isa(e) => Some(e),
            SessionError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IsaError> for SessionError {
    fn from(e: IsaError) -> Self {
        SessionError::Isa(e)
    }
}

impl From<SimError> for SessionError {
    fn from(e: SimError) -> Self {
        SessionError::Sim(e)
    }
}

/// A program loaded onto the simulated machine: the top-level convenience that
/// mirrors the paper's deployment story — one fat binary, one machine, regions
/// entered by name with fresh symbols/parameters each time (`inf_cfg`).
///
/// All regions of the binary must share one array table (the same
/// declarations in the same order), which is how multi-phase workloads share
/// data. See the crate-level quickstart.
#[derive(Debug)]
pub struct Session {
    machine: Machine,
    binary: FatBinary,
    mode: ExecMode,
}

// Compile-time audit: sessions are moved onto worker threads by parallel
// sweeps, and session errors cross thread boundaries inside results. Holds
// with no `unsafe impl` because everything inside is owned plain data.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Session>();
    assert_send::<SessionError>();
};

impl Session {
    /// Opens a session: allocates functional memory for the binary's array
    /// table on a machine configured for `mode`.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::EmptyBinary`] or
    /// [`SessionError::InconsistentArrays`] for malformed binaries.
    pub fn new(cfg: SystemConfig, binary: FatBinary, mode: ExecMode) -> Result<Self, SessionError> {
        let arrays = Self::validate(&binary)?;
        Ok(Session {
            machine: Machine::new(cfg, &arrays),
            binary,
            mode,
        })
    }

    /// Opens a session whose JIT-lowered command streams memoize into a
    /// **shared** cache — the multi-tenant serving hook: a resident server
    /// hands every session one `Arc<JitCache>`, so tenants re-running the
    /// same region reuse each other's lowered commands while functional
    /// memory stays private per session.
    ///
    /// # Errors
    ///
    /// Same as [`Session::new`].
    pub fn with_jit(
        cfg: SystemConfig,
        binary: FatBinary,
        mode: ExecMode,
        jit: Arc<JitCache>,
    ) -> Result<Self, SessionError> {
        let arrays = Self::validate(&binary)?;
        Ok(Session {
            machine: Machine::with_jit(cfg, &arrays, jit),
            binary,
            mode,
        })
    }

    /// Checks the binary is non-empty and its regions agree on one array
    /// table; returns that table.
    fn validate(binary: &FatBinary) -> Result<Vec<infs_sdfg::ArrayDecl>, SessionError> {
        let first = binary.regions.first().ok_or(SessionError::EmptyBinary)?;
        let arrays = first.kernel().arrays().to_vec();
        for r in &binary.regions {
            if r.kernel().arrays() != arrays.as_slice() {
                return Err(SessionError::InconsistentArrays(r.name().to_string()));
            }
        }
        Ok(arrays)
    }

    /// Resets the session for reuse by an unrelated request: fresh zeroed
    /// functional memory, no resident/transposed state, zeroed statistics.
    /// The machine (and its possibly shared JIT cache) is kept — this is the
    /// pooling hook that lets a server worker serve tenant after tenant from
    /// one session without leaking data between them.
    pub fn reset(&mut self) {
        self.machine.reset();
    }

    /// Replaces the loaded binary with another that declares the **same
    /// array table**, returning the old one — the second pooling hook: a
    /// pooled machine (allocated memory, warm JIT cache) is rebound to a
    /// different artifact without reallocation.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::EmptyBinary`] or
    /// [`SessionError::InconsistentArrays`] (naming the first region whose
    /// array table differs from the loaded one) and leaves the session
    /// unchanged.
    pub fn swap_binary(&mut self, binary: FatBinary) -> Result<FatBinary, SessionError> {
        let new_arrays = Self::validate(&binary)?;
        let current = self.binary.regions[0].kernel().arrays();
        if new_arrays.as_slice() != current {
            return Err(SessionError::InconsistentArrays(
                binary.regions[0].name().to_string(),
            ));
        }
        Ok(std::mem::replace(&mut self.binary, binary))
    }

    /// The loaded fat binary.
    pub fn binary(&self) -> &FatBinary {
        &self.binary
    }

    /// The execution mode regions run under.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Mutable functional memory (write inputs here).
    pub fn memory(&mut self) -> &mut Memory {
        self.machine.memory()
    }

    /// Read-only functional memory (read results here).
    pub fn memory_ref(&self) -> &Memory {
        self.machine.memory_ref()
    }

    /// The underlying machine (advanced controls: tile overrides,
    /// transposed-data assumptions, timing-only mode).
    pub fn machine(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Enters a region by name with symbol bindings and runtime parameters —
    /// the `inf_cfg` moment: instantiate, decide the paradigm, lay out, JIT,
    /// execute.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::UnknownRegion`] for a bad name, instantiation
    /// errors (bad symbols), or simulation errors.
    pub fn run(
        &mut self,
        region: &str,
        syms: &[i64],
        params: &[f32],
    ) -> Result<RegionReport, SessionError> {
        let compiled = self
            .binary
            .region(region)
            .ok_or_else(|| SessionError::UnknownRegion(region.to_string()))?;
        let instance = compiled.instantiate(syms)?;
        Ok(self.machine.run_region(&instance, params, self.mode)?)
    }

    /// Finishes the session, returning accumulated statistics.
    pub fn finish(self) -> RunStats {
        self.machine.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infs_frontend::{Idx, KernelBuilder, ScalarExpr};
    use infs_isa::Compiler;
    use infs_sdfg::DataType;

    fn binary() -> (FatBinary, infs_sdfg::ArrayId) {
        let n = 256u64;
        let mut k = KernelBuilder::new("scale", DataType::F32);
        let a = k.array("A", vec![n]);
        let i = k.parallel_loop("i", 0, n as i64);
        k.assign(
            a,
            vec![Idx::var(i)],
            ScalarExpr::mul(ScalarExpr::load(a, vec![Idx::var(i)]), ScalarExpr::Param(0)),
        );
        let mut fb = FatBinary::new();
        fb.push(
            Compiler::default()
                .compile(k.build().unwrap(), &[])
                .unwrap(),
        );
        (fb, a)
    }

    #[test]
    fn run_by_name_with_params() {
        let (fb, a) = binary();
        let mut s = Session::new(SystemConfig::default(), fb, ExecMode::InfS).unwrap();
        s.memory().write_array(a, &vec![2.0; 256]);
        let r = s.run("scale", &[], &[3.0]).unwrap();
        assert!(r.cycles > 0);
        assert!(s.memory_ref().array(a).iter().all(|&x| x == 6.0));
        let stats = s.finish();
        assert!(stats.cycles >= r.cycles);
    }

    #[test]
    fn unknown_region_is_an_error() {
        let (fb, _) = binary();
        let mut s = Session::new(SystemConfig::default(), fb, ExecMode::NearL3).unwrap();
        assert!(matches!(
            s.run("nope", &[], &[]),
            Err(SessionError::UnknownRegion(_))
        ));
    }

    #[test]
    fn empty_binary_rejected() {
        assert!(matches!(
            Session::new(SystemConfig::default(), FatBinary::new(), ExecMode::InfS),
            Err(SessionError::EmptyBinary)
        ));
    }

    /// Two regions declaring different array tables cannot share a session;
    /// the error names the offending region.
    #[test]
    fn inconsistent_arrays_rejected() {
        let (mut fb, _) = binary();
        let mut k = KernelBuilder::new("other", DataType::F32);
        let b = k.array("B", vec![128]); // different table: one array, len 128
        let i = k.parallel_loop("i", 0, 128);
        k.assign(b, vec![Idx::var(i)], ScalarExpr::load(b, vec![Idx::var(i)]));
        fb.push(
            Compiler::default()
                .compile(k.build().unwrap(), &[])
                .unwrap(),
        );
        match Session::new(SystemConfig::default(), fb, ExecMode::InfS) {
            Err(SessionError::InconsistentArrays(name)) => {
                assert_eq!(name, "other");
            }
            other => panic!("expected InconsistentArrays, got {other:?}"),
        }
    }

    /// Error Display strings are client-visible through the serving layer;
    /// pin the three binary-shape variants.
    #[test]
    fn error_messages_name_the_cause() {
        assert!(SessionError::UnknownRegion("f".into())
            .to_string()
            .contains("no region named 'f'"));
        assert!(SessionError::EmptyBinary.to_string().contains("no regions"));
        assert!(SessionError::InconsistentArrays("g".into())
            .to_string()
            .contains("'g'"));
    }

    /// A shared JitCache observes lowering traffic from multiple sessions;
    /// re-running a region in a *new* session hits the commands the first
    /// session lowered. InL3 forces the in-memory path (InfS's Eq 2 decision
    /// would keep a region this small off the bitlines entirely).
    #[test]
    fn sessions_share_a_jit_cache() {
        let jit = std::sync::Arc::new(infs_runtime::JitCache::new());
        for round in 0..2 {
            let (fb, a) = binary();
            let mut s = Session::with_jit(SystemConfig::default(), fb, ExecMode::InL3, jit.clone())
                .unwrap();
            s.memory().write_array(a, &vec![1.0; 256]);
            let r = s.run("scale", &[], &[2.0]).unwrap();
            assert_eq!(r.executed, infs_sim::Executed::InMemory);
            assert_eq!(
                r.jit_hit,
                Some(round == 1),
                "round 0 lowers, round 1 hits the shared cache"
            );
        }
        let (hits, misses) = jit.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    /// reset() clears functional memory and per-run state so a pooled session
    /// serves unrelated requests without leaking data.
    #[test]
    fn reset_clears_memory_between_requests() {
        let (fb, a) = binary();
        let mut s = Session::new(SystemConfig::default(), fb, ExecMode::InfS).unwrap();
        s.memory().write_array(a, &vec![2.0; 256]);
        s.run("scale", &[], &[3.0]).unwrap();
        assert!(s.memory_ref().array(a).iter().all(|&x| x == 6.0));
        s.reset();
        assert!(s.memory_ref().array(a).iter().all(|&x| x == 0.0));
        // The session still runs after a reset.
        s.memory().write_array(a, &vec![1.0; 256]);
        s.run("scale", &[], &[5.0]).unwrap();
        assert!(s.memory_ref().array(a).iter().all(|&x| x == 5.0));
    }

    /// swap_binary accepts a binary with the identical array table and
    /// rejects one with a different table, leaving the session untouched.
    #[test]
    fn swap_binary_validates_array_table() {
        let (fb, a) = binary();
        let mut s = Session::new(SystemConfig::default(), fb, ExecMode::InfS).unwrap();
        // Same table (the same kernel recompiled): accepted.
        let (fb2, _) = binary();
        let old = s.swap_binary(fb2).unwrap();
        assert!(old.region("scale").is_some());
        s.memory().write_array(a, &vec![1.0; 256]);
        s.run("scale", &[], &[4.0]).unwrap();
        assert!(s.memory_ref().array(a).iter().all(|&x| x == 4.0));
        // Different table: rejected, session keeps working.
        let mut k = KernelBuilder::new("misfit", DataType::F32);
        let b = k.array("B", vec![32]);
        let i = k.parallel_loop("i", 0, 32);
        k.assign(b, vec![Idx::var(i)], ScalarExpr::load(b, vec![Idx::var(i)]));
        let mut bad = FatBinary::new();
        bad.push(
            Compiler::default()
                .compile(k.build().unwrap(), &[])
                .unwrap(),
        );
        assert!(matches!(
            s.swap_binary(bad),
            Err(SessionError::InconsistentArrays(_))
        ));
        assert!(s.binary().region("scale").is_some());
        // Empty binary is also rejected.
        assert!(matches!(
            s.swap_binary(FatBinary::new()),
            Err(SessionError::EmptyBinary)
        ));
    }
}

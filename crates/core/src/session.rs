use infs_isa::{FatBinary, IsaError};
use infs_sdfg::Memory;
use infs_sim::{ExecMode, Machine, RegionReport, RunStats, SimError, SystemConfig};
use std::error::Error;
use std::fmt;

/// Errors from the high-level session API.
#[derive(Debug)]
#[non_exhaustive]
pub enum SessionError {
    /// No region with the given name exists in the fat binary.
    UnknownRegion(String),
    /// The fat binary is empty (a session needs at least one region's arrays).
    EmptyBinary,
    /// The binary's regions disagree on the shared array table.
    InconsistentArrays(String),
    /// Region instantiation failed.
    Isa(IsaError),
    /// Simulation failed.
    Sim(SimError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::UnknownRegion(n) => write!(f, "no region named '{n}' in the binary"),
            SessionError::EmptyBinary => write!(f, "fat binary contains no regions"),
            SessionError::InconsistentArrays(n) => {
                write!(f, "region '{n}' declares a different array table")
            }
            SessionError::Isa(e) => write!(f, "instantiation failed: {e}"),
            SessionError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl Error for SessionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SessionError::Isa(e) => Some(e),
            SessionError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IsaError> for SessionError {
    fn from(e: IsaError) -> Self {
        SessionError::Isa(e)
    }
}

impl From<SimError> for SessionError {
    fn from(e: SimError) -> Self {
        SessionError::Sim(e)
    }
}

/// A program loaded onto the simulated machine: the top-level convenience that
/// mirrors the paper's deployment story — one fat binary, one machine, regions
/// entered by name with fresh symbols/parameters each time (`inf_cfg`).
///
/// All regions of the binary must share one array table (the same
/// declarations in the same order), which is how multi-phase workloads share
/// data. See the crate-level quickstart.
#[derive(Debug)]
pub struct Session {
    machine: Machine,
    binary: FatBinary,
    mode: ExecMode,
}

// Compile-time audit: sessions are moved onto worker threads by parallel
// sweeps, and session errors cross thread boundaries inside results. Holds
// with no `unsafe impl` because everything inside is owned plain data.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Session>();
    assert_send::<SessionError>();
};

impl Session {
    /// Opens a session: allocates functional memory for the binary's array
    /// table on a machine configured for `mode`.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::EmptyBinary`] or
    /// [`SessionError::InconsistentArrays`] for malformed binaries.
    pub fn new(cfg: SystemConfig, binary: FatBinary, mode: ExecMode) -> Result<Self, SessionError> {
        let first = binary.regions.first().ok_or(SessionError::EmptyBinary)?;
        let arrays = first.kernel().arrays().to_vec();
        for r in &binary.regions {
            if r.kernel().arrays() != arrays.as_slice() {
                return Err(SessionError::InconsistentArrays(r.name().to_string()));
            }
        }
        Ok(Session {
            machine: Machine::new(cfg, &arrays),
            binary,
            mode,
        })
    }

    /// The execution mode regions run under.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Mutable functional memory (write inputs here).
    pub fn memory(&mut self) -> &mut Memory {
        self.machine.memory()
    }

    /// Read-only functional memory (read results here).
    pub fn memory_ref(&self) -> &Memory {
        self.machine.memory_ref()
    }

    /// The underlying machine (advanced controls: tile overrides,
    /// transposed-data assumptions, timing-only mode).
    pub fn machine(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Enters a region by name with symbol bindings and runtime parameters —
    /// the `inf_cfg` moment: instantiate, decide the paradigm, lay out, JIT,
    /// execute.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::UnknownRegion`] for a bad name, instantiation
    /// errors (bad symbols), or simulation errors.
    pub fn run(
        &mut self,
        region: &str,
        syms: &[i64],
        params: &[f32],
    ) -> Result<RegionReport, SessionError> {
        let compiled = self
            .binary
            .region(region)
            .ok_or_else(|| SessionError::UnknownRegion(region.to_string()))?;
        let instance = compiled.instantiate(syms)?;
        Ok(self.machine.run_region(&instance, params, self.mode)?)
    }

    /// Finishes the session, returning accumulated statistics.
    pub fn finish(self) -> RunStats {
        self.machine.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infs_frontend::{Idx, KernelBuilder, ScalarExpr};
    use infs_isa::Compiler;
    use infs_sdfg::DataType;

    fn binary() -> (FatBinary, infs_sdfg::ArrayId) {
        let n = 256u64;
        let mut k = KernelBuilder::new("scale", DataType::F32);
        let a = k.array("A", vec![n]);
        let i = k.parallel_loop("i", 0, n as i64);
        k.assign(
            a,
            vec![Idx::var(i)],
            ScalarExpr::mul(ScalarExpr::load(a, vec![Idx::var(i)]), ScalarExpr::Param(0)),
        );
        let mut fb = FatBinary::new();
        fb.push(
            Compiler::default()
                .compile(k.build().unwrap(), &[])
                .unwrap(),
        );
        (fb, a)
    }

    #[test]
    fn run_by_name_with_params() {
        let (fb, a) = binary();
        let mut s = Session::new(SystemConfig::default(), fb, ExecMode::InfS).unwrap();
        s.memory().write_array(a, &vec![2.0; 256]);
        let r = s.run("scale", &[], &[3.0]).unwrap();
        assert!(r.cycles > 0);
        assert!(s.memory_ref().array(a).iter().all(|&x| x == 6.0));
        let stats = s.finish();
        assert!(stats.cycles >= r.cycles);
    }

    #[test]
    fn unknown_region_is_an_error() {
        let (fb, _) = binary();
        let mut s = Session::new(SystemConfig::default(), fb, ExecMode::NearL3).unwrap();
        assert!(matches!(
            s.run("nope", &[], &[]),
            Err(SessionError::UnknownRegion(_))
        ));
    }

    #[test]
    fn empty_binary_rejected() {
        assert!(matches!(
            Session::new(SystemConfig::default(), FatBinary::new(), ExecMode::InfS),
            Err(SessionError::EmptyBinary)
        ));
    }
}

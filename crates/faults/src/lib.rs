//! `infs-faults`: deterministic, seeded fault injection for the Infinity
//! Stream stack — see `DESIGN.md` §10 ("Fault model & degradation ladder").
//!
//! The paper's Inf-S machine decides *at `inf_cfg` time* whether a region
//! runs in-memory, near-memory, or on the host (§4.2, Eq 2). That decision
//! point is also a natural **degradation ladder**: when compute-SRAM banks
//! are unhealthy, a region that would have run on the bitlines can fall back
//! to the stream engines, and when even those are gone, to the cores. This
//! crate provides the machinery every layer shares to *exercise* that ladder
//! deterministically:
//!
//! * [`FaultPlan`] — a seeded schedule of faults ([`FaultConfig`] names the
//!   rates). Every query is a pure function of `(seed, domain, sequence
//!   number)` — **no wall-clock, no global state** — so two runs with the
//!   same seed observe byte-identical fault schedules regardless of thread
//!   interleaving, and a failure seen in CI replays locally from the seed
//!   alone.
//! * [`BankHealth`] — the per-bank health mask the simulated machine carries;
//!   detection (an ECC scrub catching a flipped wordline bit) quarantines a
//!   bank by clearing its mask bit, and the runtime's decision step re-plans
//!   around the survivors.
//! * [`RetryPolicy`] — bounded exponential backoff with *deterministic*
//!   jitter for clients of the serving layer, honoring the server's
//!   `retry_after_ms` backpressure hint as a floor.
//! * [`RetuneTrigger`] — an edge detector over the machine's monotone
//!   degradation counters; the serving layer's autotuner demotes an
//!   artifact's incumbent variant when new events fire (`DESIGN.md` §15).
//!
//! The crate is a dependency leaf (std + serde only): the runtime, simulator,
//! serving layer and bench harness all pull it in without cycles.
//!
//! ```
//! use infs_faults::{FaultConfig, FaultPlan};
//!
//! let plan = FaultPlan::new(FaultConfig { seed: 7, dead_banks: 4, ..FaultConfig::none() });
//! let health = plan.initial_health(64);
//! assert_eq!(health.healthy_count(), 60);
//! // Same seed, same schedule — always.
//! assert_eq!(health, FaultPlan::new(plan.config().clone()).initial_health(64));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod health;
mod plan;
mod retry;
mod retune;
mod rng;

pub use health::BankHealth;
pub use plan::{FaultConfig, FaultPlan, NocFault, ScheduledFault, SramFlip};
pub use retry::RetryPolicy;
pub use retune::RetuneTrigger;
pub use rng::{mix64, Xorshift64};

//! Seeded pseudo-random primitives used by fault plans and retry jitter.
//!
//! Two flavors:
//!
//! * [`Xorshift64`] — a tiny sequential PRNG (xorshift64\*) for places that
//!   draw a *stream* of values under one owner (e.g. picking the initially
//!   dead banks inside [`crate::FaultPlan::initial_health`]).
//! * [`mix64`] — a stateless splitmix64-style finalizer over
//!   `(seed, domain, index)`. Fault-plan queries use this so the answer for
//!   sequence number `i` is independent of the order in which worker threads
//!   ask — a requirement for deterministic schedules under real concurrency.

/// A minimal xorshift64\* PRNG. Deterministic, `no_std`-friendly, and cheap.
///
/// Not cryptographic; used only for reproducible fault schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xorshift64 {
    state: u64,
}

impl Xorshift64 {
    /// Create a generator from `seed`. A zero seed is remapped to a fixed
    /// non-zero constant (xorshift has a zero fixed point).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// Next 64-bit value (xorshift64\* output scrambling).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform-ish value in `0..bound` (`bound == 0` returns 0).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// Stateless splitmix64-style hash of `(seed, domain, index)`.
///
/// Every [`crate::FaultPlan`] query is a pure function of this value, so the
/// schedule is independent of thread interleaving: whichever worker asks
/// about sequence number `i` gets the same answer.
pub fn mix64(seed: u64, domain: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(domain.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Xorshift64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xorshift64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Xorshift64::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = Xorshift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = Xorshift64::new(7);
        for _ in 0..100 {
            assert!(r.next_below(13) < 13);
        }
        assert_eq!(r.next_below(0), 0);
    }

    #[test]
    fn mix64_is_a_pure_function() {
        assert_eq!(mix64(1, 2, 3), mix64(1, 2, 3));
        assert_ne!(mix64(1, 2, 3), mix64(2, 2, 3));
        assert_ne!(mix64(1, 2, 3), mix64(1, 3, 3));
        assert_ne!(mix64(1, 2, 3), mix64(1, 2, 4));
    }
}

//! Seeded fault schedules: what breaks, and when.

use serde::{Deserialize, Serialize};

use crate::health::BankHealth;
use crate::rng::{mix64, Xorshift64};

// Domain tags keep the per-fault-kind schedules statistically independent
// even though they share one seed.
const DOM_DEAD_BANKS: u64 = 1;
const DOM_SRAM_FLIP: u64 = 2;
const DOM_NOC: u64 = 3;
const DOM_ARTIFACT: u64 = 4;
const DOM_WORKER: u64 = 5;
const DOM_SHARD: u64 = 6;

/// Rates and seed for a [`FaultPlan`]. All `*_period` fields mean "roughly
/// one fault per `period` events, pseudo-randomly placed"; `0` disables that
/// fault class entirely.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed for every schedule; identical seeds reproduce identical faults.
    pub seed: u64,
    /// Number of banks marked dead from the start (hard manufacturing
    /// faults), chosen pseudo-randomly from the machine's bank range.
    pub dead_banks: u32,
    /// One SRAM wordline bit flip per ~`period` regions executed.
    pub sram_flip_period: u64,
    /// One dropped NoC shift message per ~`period` offloaded regions.
    pub noc_drop_period: u64,
    /// One delayed NoC shift message per ~`period` offloaded regions.
    pub noc_delay_period: u64,
    /// Maximum extra cycles an injected NoC delay can add.
    pub noc_delay_max_cycles: u64,
    /// One corrupted `ArtifactCache` entry per ~`period` fresh inserts.
    pub artifact_corrupt_period: u64,
    /// One injected worker panic per ~`period` served requests.
    pub worker_panic_period: u64,
    /// Number of whole *shards* (simulated machines behind the consistent-hash
    /// router) dead from the start, chosen pseudo-randomly from the cluster's
    /// shard range. Only the shard router consumes this; single-server plans
    /// ignore it.
    pub dead_shards: u32,
}

impl FaultConfig {
    /// Everything off: no faults regardless of seed.
    pub fn none() -> Self {
        Self {
            seed: 0,
            dead_banks: 0,
            sram_flip_period: 0,
            noc_drop_period: 0,
            noc_delay_period: 0,
            noc_delay_max_cycles: 0,
            artifact_corrupt_period: 0,
            worker_panic_period: 0,
            dead_shards: 0,
        }
    }

    /// The preset the chaos harness uses: every fault class enabled at
    /// rates that fire several times over a few hundred requests.
    pub fn chaos(seed: u64) -> Self {
        Self {
            seed,
            dead_banks: 8,
            sram_flip_period: 53,
            noc_drop_period: 29,
            noc_delay_period: 11,
            noc_delay_max_cycles: 2_000,
            artifact_corrupt_period: 13,
            worker_panic_period: 97,
            dead_shards: 0,
        }
    }

    /// Derives the per-shard plan a cluster hands to shard `shard`: the same
    /// rates, but a seed mixed with the shard index (separate [`mix64`]
    /// domain), so shards fail *independently* — one shard's dead banks say
    /// nothing about its ring neighbors' — while the whole cluster still
    /// replays from the root seed alone. `dead_shards` is zeroed: whole-shard
    /// outages are the *router's* schedule, not the member's.
    pub fn for_shard(&self, shard: u32) -> FaultConfig {
        FaultConfig {
            seed: mix64(self.seed, DOM_SHARD, u64::from(shard).wrapping_add(1)),
            dead_shards: 0,
            ..self.clone()
        }
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// A detected SRAM wordline bit flip, locating the upset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SramFlip {
    /// Bank whose compute SRAM took the upset.
    pub bank: u32,
    /// Wordline index within the bank's SRAM geometry.
    pub wordline: u32,
    /// Bit position along the wordline.
    pub bit: u32,
}

/// Outcome of the NoC fault query for one offloaded region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NocFault {
    /// No fault: the shift messages all arrive on time.
    None,
    /// A shift message is delayed by the given number of cycles.
    Delay(u64),
    /// A shift message is dropped and must be retransmitted.
    Drop,
}

/// One rendered entry of a fault schedule, for logs and determinism checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduledFault {
    /// Bank dead from the start.
    DeadBank(u32),
    /// SRAM flip at region sequence `seq`.
    Sram {
        /// Region sequence number at which the flip is detected.
        seq: u64,
        /// Location of the upset.
        flip: SramFlip,
    },
    /// NoC fault at offload sequence `seq`.
    Noc {
        /// Offload sequence number the fault applies to.
        seq: u64,
        /// Delay or drop.
        fault: NocFault,
    },
    /// Artifact corruption at insert sequence `seq`.
    Artifact {
        /// Fresh-insert sequence number that gets corrupted.
        seq: u64,
    },
    /// Worker panic at request sequence `seq`.
    WorkerPanic {
        /// Request sequence number that panics.
        seq: u64,
    },
}

/// A deterministic fault schedule derived from a [`FaultConfig`].
///
/// Every query is a pure function of the seed and the caller-supplied
/// sequence number ([`mix64`] under the hood), so answers do not depend on
/// which thread asks first. Sequence numbers are allocated by the layer that
/// owns the event stream (the simulator counts regions, the server counts
/// requests and inserts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    cfg: FaultConfig,
}

impl FaultPlan {
    /// Build a plan from a config.
    pub fn new(cfg: FaultConfig) -> Self {
        Self { cfg }
    }

    /// The config this plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Initial bank-health mask for a machine with `n_banks` banks:
    /// `dead_banks` distinct banks are dead from the start.
    pub fn initial_health(&self, n_banks: u32) -> BankHealth {
        let mut health = BankHealth::all_healthy(n_banks);
        if self.cfg.dead_banks == 0 || n_banks == 0 {
            return health;
        }
        let mut rng = Xorshift64::new(mix64(self.cfg.seed, DOM_DEAD_BANKS, 0));
        let target = self.cfg.dead_banks.min(n_banks);
        let mut killed = 0;
        while killed < target {
            let b = rng.next_below(n_banks as u64) as u32;
            if health.mark_dead(b) {
                killed += 1;
            }
        }
        health
    }

    fn fires(&self, domain: u64, period: u64, seq: u64) -> bool {
        period != 0 && mix64(self.cfg.seed, domain, seq).is_multiple_of(period)
    }

    /// Does region number `seq` suffer a detected SRAM wordline flip, and
    /// where? `n_banks`/`wordlines` bound the location draw.
    pub fn sram_flip(&self, seq: u64, n_banks: u32, wordlines: u32) -> Option<SramFlip> {
        if !self.fires(DOM_SRAM_FLIP, self.cfg.sram_flip_period, seq) || n_banks == 0 {
            return None;
        }
        let h = mix64(self.cfg.seed, DOM_SRAM_FLIP, seq.wrapping_add(0x5151_5151));
        Some(SramFlip {
            bank: (h % n_banks as u64) as u32,
            wordline: ((h >> 16) % wordlines.max(1) as u64) as u32,
            bit: ((h >> 40) % 64) as u32,
        })
    }

    /// NoC fault (if any) for offloaded region number `seq`. Drop takes
    /// precedence over delay when both schedules fire.
    pub fn noc_fault(&self, seq: u64) -> NocFault {
        if self.fires(DOM_NOC, self.cfg.noc_drop_period, seq) {
            return NocFault::Drop;
        }
        if self.fires(
            DOM_NOC,
            self.cfg.noc_delay_period,
            seq.wrapping_add(0x0d0d_0d0d),
        ) {
            let h = mix64(self.cfg.seed, DOM_NOC, seq.wrapping_add(0xde1a_de1a));
            let max = self.cfg.noc_delay_max_cycles;
            return NocFault::Delay(if max == 0 { 0 } else { 1 + h % max });
        }
        NocFault::None
    }

    /// Should the `seq`-th fresh artifact-cache insert be corrupted?
    pub fn corrupt_artifact(&self, seq: u64) -> bool {
        self.fires(DOM_ARTIFACT, self.cfg.artifact_corrupt_period, seq)
    }

    /// Should the worker handling request number `seq` panic?
    pub fn worker_panic(&self, seq: u64) -> bool {
        self.fires(DOM_WORKER, self.cfg.worker_panic_period, seq)
    }

    /// Initial whole-shard health for a cluster of `n_shards`: `dead_shards`
    /// distinct shards are dead from the start (`false` slots). The shard
    /// router kills these members at construction, so their tenants shed to
    /// ring neighbors from the first request.
    pub fn initial_shard_health(&self, n_shards: u32) -> Vec<bool> {
        let mut alive = vec![true; n_shards as usize];
        if self.cfg.dead_shards == 0 || n_shards == 0 {
            return alive;
        }
        let mut rng = Xorshift64::new(mix64(self.cfg.seed, DOM_SHARD, 0));
        let target = self.cfg.dead_shards.min(n_shards);
        let mut killed = 0;
        while killed < target {
            let s = rng.next_below(u64::from(n_shards)) as usize;
            if alive[s] {
                alive[s] = false;
                killed += 1;
            }
        }
        alive
    }

    /// Render the first `len` sequence slots of every schedule into a flat
    /// list. Used by determinism tests and the chaos report: two plans with
    /// the same config must render byte-identical schedules.
    pub fn schedule(&self, len: u64, n_banks: u32, wordlines: u32) -> Vec<ScheduledFault> {
        let mut out: Vec<ScheduledFault> = self
            .initial_health(n_banks)
            .dead_banks()
            .into_iter()
            .map(ScheduledFault::DeadBank)
            .collect();
        for seq in 0..len {
            if let Some(flip) = self.sram_flip(seq, n_banks, wordlines) {
                out.push(ScheduledFault::Sram { seq, flip });
            }
            match self.noc_fault(seq) {
                NocFault::None => {}
                fault => out.push(ScheduledFault::Noc { seq, fault }),
            }
            if self.corrupt_artifact(seq) {
                out.push(ScheduledFault::Artifact { seq });
            }
            if self.worker_panic(seq) {
                out.push(ScheduledFault::WorkerPanic { seq });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_config_never_fires() {
        let plan = FaultPlan::new(FaultConfig::none());
        assert!(plan.initial_health(64).fully_healthy());
        for seq in 0..500 {
            assert_eq!(plan.sram_flip(seq, 64, 256), None);
            assert_eq!(plan.noc_fault(seq), NocFault::None);
            assert!(!plan.corrupt_artifact(seq));
            assert!(!plan.worker_panic(seq));
        }
        assert!(plan.schedule(500, 64, 256).is_empty());
    }

    #[test]
    fn initial_health_kills_exactly_dead_banks() {
        let plan = FaultPlan::new(FaultConfig {
            seed: 11,
            dead_banks: 8,
            ..FaultConfig::none()
        });
        let h = plan.initial_health(64);
        assert_eq!(h.healthy_count(), 56);
        assert_eq!(h.dead_banks().len(), 8);
    }

    #[test]
    fn dead_banks_clamped_to_n_banks() {
        let plan = FaultPlan::new(FaultConfig {
            seed: 3,
            dead_banks: 100,
            ..FaultConfig::none()
        });
        let h = plan.initial_health(16);
        assert_eq!(h.healthy_count(), 0);
    }

    #[test]
    fn chaos_preset_fires_every_class() {
        let plan = FaultPlan::new(FaultConfig::chaos(0xC0FFEE));
        let sched = plan.schedule(400, 64, 256);
        let has = |f: fn(&ScheduledFault) -> bool| sched.iter().any(f);
        assert!(has(|s| matches!(s, ScheduledFault::DeadBank(_))));
        assert!(has(|s| matches!(s, ScheduledFault::Sram { .. })));
        assert!(has(|s| matches!(
            s,
            ScheduledFault::Noc {
                fault: NocFault::Drop,
                ..
            }
        )));
        assert!(has(|s| matches!(
            s,
            ScheduledFault::Noc {
                fault: NocFault::Delay(_),
                ..
            }
        )));
        assert!(has(|s| matches!(s, ScheduledFault::Artifact { .. })));
        assert!(has(|s| matches!(s, ScheduledFault::WorkerPanic { .. })));
    }

    #[test]
    fn sram_flip_locations_are_in_range() {
        let plan = FaultPlan::new(FaultConfig::chaos(9));
        let mut saw = 0;
        for seq in 0..2_000 {
            if let Some(f) = plan.sram_flip(seq, 64, 256) {
                assert!(f.bank < 64);
                assert!(f.wordline < 256);
                assert!(f.bit < 64);
                saw += 1;
            }
        }
        assert!(saw > 0);
    }

    #[test]
    fn delays_respect_max_cycles() {
        let plan = FaultPlan::new(FaultConfig::chaos(21));
        for seq in 0..2_000 {
            if let NocFault::Delay(d) = plan.noc_fault(seq) {
                assert!((1..=2_000).contains(&d));
            }
        }
    }

    #[test]
    fn per_shard_plans_are_independent_and_replayable() {
        let root = FaultConfig::chaos(42);
        let a = root.for_shard(0);
        let b = root.for_shard(1);
        assert_ne!(a.seed, b.seed, "shards must draw independent schedules");
        assert_eq!(a.dead_shards, 0, "member plans carry no shard outages");
        assert_eq!(a.worker_panic_period, root.worker_panic_period);
        // Same root seed, same shard → same derived plan, always.
        assert_eq!(a, FaultConfig::chaos(42).for_shard(0));
        // Derived schedules really differ.
        let pa = FaultPlan::new(a);
        let pb = FaultPlan::new(b);
        assert_ne!(pa.initial_health(64), pb.initial_health(64));
    }

    #[test]
    fn initial_shard_health_kills_exactly_dead_shards() {
        let plan = FaultPlan::new(FaultConfig {
            seed: 9,
            dead_shards: 1,
            ..FaultConfig::none()
        });
        let alive = plan.initial_shard_health(4);
        assert_eq!(alive.len(), 4);
        assert_eq!(alive.iter().filter(|a| !**a).count(), 1);
        // Deterministic across identical plans; clamped to the shard count.
        assert_eq!(alive, plan.initial_shard_health(4));
        let all_dead = FaultPlan::new(FaultConfig {
            seed: 9,
            dead_shards: 99,
            ..FaultConfig::none()
        })
        .initial_shard_health(4);
        assert!(all_dead.iter().all(|a| !a));
        assert!(plan.initial_shard_health(0).is_empty());
    }

    #[test]
    fn queries_are_order_independent() {
        // Ask in two different orders; answers must match slot by slot.
        let plan = FaultPlan::new(FaultConfig::chaos(77));
        let forward: Vec<NocFault> = (0..100).map(|s| plan.noc_fault(s)).collect();
        let backward: Vec<NocFault> = (0..100).rev().map(|s| plan.noc_fault(s)).collect();
        for (i, f) in forward.iter().enumerate() {
            assert_eq!(*f, backward[99 - i]);
        }
    }
}

//! The retune trigger: the hook through which degradation events reach the
//! serving layer's autotuner (`DESIGN.md` §15).
//!
//! The simulated machine accumulates monotone degradation counters (banks
//! quarantined, regions degraded off their Eq-2 tier). The autotuner does not
//! care about the totals — it cares about *new* events since it last looked,
//! because a fresh quarantine invalidates whatever placement the incumbent
//! variant was promoted on. [`RetuneTrigger`] is that edge detector: a
//! watermark over any monotonically non-decreasing event count.

/// Edge detector over a monotone degradation-event counter.
///
/// One trigger rides along with each pooled serve session; after every
/// region execution the worker feeds it the machine's current
/// `degradation_events()` total and demotes the artifact's incumbent tune
/// variant iff new events fired during that execution.
#[derive(Debug, Clone, Default)]
pub struct RetuneTrigger {
    watermark: u64,
}

impl RetuneTrigger {
    /// A trigger that has seen no events.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes the current monotone event total and returns how many events
    /// are *new* since the previous observation (0 when nothing changed).
    /// A total below the watermark (a machine rebuilt from scratch) resets
    /// the watermark rather than underflowing.
    pub fn observe(&mut self, total: u64) -> u64 {
        let new = total.saturating_sub(self.watermark);
        self.watermark = total;
        new
    }

    /// The highest total observed so far.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_only_new_events() {
        let mut t = RetuneTrigger::new();
        assert_eq!(t.observe(0), 0);
        assert_eq!(t.observe(3), 3);
        assert_eq!(t.observe(3), 0);
        assert_eq!(t.observe(5), 2);
        assert_eq!(t.watermark(), 5);
    }

    #[test]
    fn rebuilt_machine_resets_watermark() {
        let mut t = RetuneTrigger::new();
        assert_eq!(t.observe(4), 4);
        // A fresh machine starts its counters at zero again; the trigger
        // must not underflow or report phantom events.
        assert_eq!(t.observe(0), 0);
        assert_eq!(t.observe(2), 2);
    }
}

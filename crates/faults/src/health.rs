//! Per-bank health mask carried by the simulated machine.

/// Health mask over the L3 compute-SRAM banks: bit `b` set means bank `b`
/// is healthy. The simulator quarantines a bank (clears its bit) when the
/// modeled ECC scrub detects an injected wordline flip; the runtime's
/// decide/placement step then re-plans around the survivors (see
/// `DESIGN.md` §10).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankHealth {
    bits: Vec<u64>,
    n: u32,
}

impl BankHealth {
    /// A mask with all `n` banks healthy.
    pub fn all_healthy(n: u32) -> Self {
        let words = (n as usize).div_ceil(64);
        let mut bits = vec![!0u64; words];
        // Clear the padding bits in the last word so equality and counts
        // only look at real banks.
        let rem = n as usize % 64;
        if rem != 0 {
            if let Some(last) = bits.last_mut() {
                *last = (1u64 << rem) - 1;
            }
        }
        if n == 0 {
            bits.clear();
        }
        Self { bits, n }
    }

    /// Number of banks tracked by this mask.
    pub fn n_banks(&self) -> u32 {
        self.n
    }

    /// Is bank `b` healthy? Out-of-range banks report unhealthy.
    pub fn is_healthy(&self, b: u32) -> bool {
        if b >= self.n {
            return false;
        }
        self.bits[b as usize / 64] >> (b % 64) & 1 == 1
    }

    /// Quarantine bank `b`. Returns `true` if this call changed the mask
    /// (the bank was healthy before).
    pub fn mark_dead(&mut self, b: u32) -> bool {
        if !self.is_healthy(b) {
            return false;
        }
        self.bits[b as usize / 64] &= !(1u64 << (b % 64));
        true
    }

    /// How many banks are currently healthy.
    pub fn healthy_count(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// Are any banks healthy at all?
    pub fn any_healthy(&self) -> bool {
        self.bits.iter().any(|&w| w != 0)
    }

    /// Is every bank healthy?
    pub fn fully_healthy(&self) -> bool {
        self.healthy_count() == self.n
    }

    /// Indices of healthy banks, ascending.
    pub fn healthy_banks(&self) -> Vec<u32> {
        (0..self.n).filter(|&b| self.is_healthy(b)).collect()
    }

    /// Indices of dead banks, ascending.
    pub fn dead_banks(&self) -> Vec<u32> {
        (0..self.n).filter(|&b| !self.is_healthy(b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_healthy_counts() {
        for n in [0u32, 1, 63, 64, 65, 128, 200] {
            let h = BankHealth::all_healthy(n);
            assert_eq!(h.healthy_count(), n);
            assert!(h.fully_healthy());
            assert_eq!(h.any_healthy(), n > 0);
            assert_eq!(h.healthy_banks().len(), n as usize);
            assert!(h.dead_banks().is_empty());
        }
    }

    #[test]
    fn mark_dead_is_idempotent() {
        let mut h = BankHealth::all_healthy(64);
        assert!(h.mark_dead(5));
        assert!(!h.mark_dead(5));
        assert!(!h.is_healthy(5));
        assert_eq!(h.healthy_count(), 63);
        assert!(!h.fully_healthy());
        assert_eq!(h.dead_banks(), vec![5]);
    }

    #[test]
    fn out_of_range_is_unhealthy() {
        let mut h = BankHealth::all_healthy(8);
        assert!(!h.is_healthy(8));
        assert!(!h.mark_dead(8));
        assert_eq!(h.healthy_count(), 8);
    }

    #[test]
    fn kill_everything() {
        let mut h = BankHealth::all_healthy(66);
        for b in 0..66 {
            h.mark_dead(b);
        }
        assert_eq!(h.healthy_count(), 0);
        assert!(!h.any_healthy());
        assert_eq!(h.dead_banks().len(), 66);
    }
}

//! Bounded exponential backoff with deterministic jitter.

use crate::rng::mix64;

// Separate domain from the fault-plan tags so a shared seed doesn't
// correlate backoff jitter with fault placement.
const DOM_BACKOFF: u64 = 0x0042_4143_4b4f_4646; // "BACKOFF"

/// Client retry policy: bounded attempts, exponential backoff, deterministic
/// jitter, and the server's `retry_after_ms` hint honored as a floor.
///
/// Jitter is derived from [`mix64`] over `(seed, attempt)` rather than a
/// wall-clock entropy source, so a recorded client run replays exactly —
/// the same property the fault plans have (see `DESIGN.md` §10).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `max_attempts == 1` means
    /// no retries). Zero is treated as one.
    pub max_attempts: u32,
    /// Base delay before the first retry, in milliseconds.
    pub base_ms: u64,
    /// Upper bound on any single backoff delay, in milliseconds.
    pub cap_ms: u64,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_ms: 10,
            cap_ms: 1_000,
            seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (0 = first retry), jittered
    /// into `[d/2, d]` for `d = min(cap, base << attempt)` and floored by
    /// the server's `retry_after_ms` hint when present.
    pub fn backoff_ms(&self, attempt: u32, hint: Option<u64>) -> u64 {
        let d = self
            .base_ms
            .saturating_mul(1u64 << attempt.min(32))
            .min(self.cap_ms.max(self.base_ms));
        let jittered = d / 2 + mix64(self.seed, DOM_BACKOFF, attempt as u64) % (d / 2 + 1);
        jittered.max(hint.unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic() {
        let p = RetryPolicy::default();
        for a in 0..6 {
            assert_eq!(p.backoff_ms(a, None), p.backoff_ms(a, None));
        }
        let q = RetryPolicy {
            seed: 99,
            ..RetryPolicy::default()
        };
        // Different seeds should disagree on at least one attempt.
        assert!((0..6).any(|a| p.backoff_ms(a, None) != q.backoff_ms(a, None)));
    }

    #[test]
    fn backoff_stays_in_window() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_ms: 10,
            cap_ms: 500,
            seed: 1,
        };
        for a in 0..10 {
            let d = 10u64.saturating_mul(1 << a).min(500);
            let b = p.backoff_ms(a, None);
            assert!(
                b >= d / 2 && b <= d,
                "attempt {a}: {b} outside [{}, {d}]",
                d / 2
            );
        }
    }

    #[test]
    fn hint_is_a_floor() {
        let p = RetryPolicy::default();
        assert!(p.backoff_ms(0, Some(10_000)) >= 10_000);
        // A tiny hint never lowers the computed backoff.
        assert_eq!(p.backoff_ms(3, Some(1)), p.backoff_ms(3, None).max(1));
    }

    #[test]
    fn huge_attempt_does_not_overflow() {
        let p = RetryPolicy::default();
        assert!(p.backoff_ms(u32::MAX, None) <= 1_000);
    }
}

//! Identical seeds must reproduce identical fault schedules — the property
//! the whole chaos harness rests on.

use infs_faults::{FaultConfig, FaultPlan, RetryPolicy};

#[test]
fn same_seed_same_schedule() {
    let a = FaultPlan::new(FaultConfig::chaos(0xDEAD_BEEF));
    let b = FaultPlan::new(FaultConfig::chaos(0xDEAD_BEEF));
    assert_eq!(a.schedule(1_000, 64, 256), b.schedule(1_000, 64, 256));
    assert_eq!(a.initial_health(64), b.initial_health(64));
}

#[test]
fn different_seeds_different_schedules() {
    let a = FaultPlan::new(FaultConfig::chaos(1));
    let b = FaultPlan::new(FaultConfig::chaos(2));
    assert_ne!(a.schedule(1_000, 64, 256), b.schedule(1_000, 64, 256));
}

#[test]
fn schedule_matches_pointwise_queries() {
    // The rendered schedule is exactly what the point queries report.
    let plan = FaultPlan::new(FaultConfig::chaos(42));
    let sched = plan.schedule(300, 64, 256);
    for f in &sched {
        match f {
            infs_faults::ScheduledFault::DeadBank(b) => {
                assert!(!plan.initial_health(64).is_healthy(*b));
            }
            infs_faults::ScheduledFault::Sram { seq, flip } => {
                assert_eq!(plan.sram_flip(*seq, 64, 256), Some(*flip));
            }
            infs_faults::ScheduledFault::Noc { seq, fault } => {
                assert_eq!(plan.noc_fault(*seq), *fault);
            }
            infs_faults::ScheduledFault::Artifact { seq } => {
                assert!(plan.corrupt_artifact(*seq));
            }
            infs_faults::ScheduledFault::WorkerPanic { seq } => {
                assert!(plan.worker_panic(*seq));
            }
        }
    }
}

#[test]
fn config_round_trips_through_json() {
    let cfg = FaultConfig::chaos(7);
    let json = serde_json::to_string(&cfg).unwrap();
    let back: FaultConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(cfg, back);
}

#[test]
fn retry_schedule_is_reproducible() {
    let p = RetryPolicy::default();
    let a: Vec<u64> = (0..p.max_attempts).map(|i| p.backoff_ms(i, None)).collect();
    let b: Vec<u64> = (0..p.max_attempts).map(|i| p.backoff_ms(i, None)).collect();
    assert_eq!(a, b);
    // Backoff grows (weakly) with attempt until the cap.
    for w in a.windows(2) {
        assert!(w[1] >= w[0] / 2, "backoff should not collapse: {a:?}");
    }
}

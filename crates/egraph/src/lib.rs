//! Equality-saturation optimizer for the Infinity Stream tDFG.
//!
//! The paper (§3.2 and Appendix A) optimizes tensor dataflow graphs with
//! *equality graphs*: a compact representation of every reachable rewrite of the
//! original graph, grown by repeatedly applying equivalence rules, from which the
//! best graph is selected by architecture-informed cost metrics. The interesting
//! twist over classic e-graphs is that tDFG equivalence is domain-sensitive —
//! two nodes are equivalent only if they compute the same values *and share the
//! same hyperrectangular domain* in the lattice space — so every e-class carries
//! a domain analysis, and `shrink` nodes track domain changes through rewrites
//! (they lower to no-ops, like SSA φ-nodes).
//!
//! Implemented rewrite rules (numbering follows the paper's appendix):
//!
//! * **3a/3b/3c** — associativity, commutativity, distributivity/factoring of
//!   element-wise computes;
//! * **4a/4b** — exchanging compute with move/broadcast (hoist and push);
//! * **5** — tensor expansion: a tensor region is a `shrink` of any enclosing
//!   region of the same array (enclosing covers are synthesized from pairs of
//!   input tensors, which is how common computation over overlapping stencil
//!   taps is discovered);
//! * **6a/6b** — commuting/merging shrink with shrink;
//! * **7a/7b** — commuting shrink with move;
//! * **8a/8b** — commuting/absorbing shrink with broadcast;
//! * **9** — commuting shrink with compute;
//! * plus mv-merge/identity and shrink-elimination housekeeping rules.
//!
//! Extraction uses a two-phase scheme: a bottom-up tree-cost fixpoint for
//! feasibility, then a DAG-aware greedy selection with an iterative improvement
//! loop, so that *reusing* a shared subcomputation (the whole point of rules 5/9)
//! is actually rewarded — tree-cost extraction alone would double-count shared
//! children and never choose them.
//!
//! # Example
//!
//! ```
//! use infs_egraph::{optimize, CostParams};
//! use infs_geom::HyperRect;
//! use infs_sdfg::{ArrayDecl, DataType};
//! use infs_tdfg::{ComputeOp, OutputTarget, TdfgBuilder};
//!
//! // B = V*A[0,6) (shifted right) + V*A[2,8) (shifted left): the multiply can
//! // be computed once over A[0,8) and shrunk (Fig 20 of the paper).
//! let mut b = TdfgBuilder::new(1, DataType::F32);
//! let a = b.declare_array(ArrayDecl::new("A", vec![8], DataType::F32));
//! let out = b.declare_array(ArrayDecl::new("B", vec![8], DataType::F32));
//! let v = b.constant(3.0);
//! let a0 = b.input(a, HyperRect::new(vec![(0, 6)]).unwrap()).unwrap();
//! let a1 = b.input(a, HyperRect::new(vec![(2, 8)]).unwrap()).unwrap();
//! let m0 = b.compute(ComputeOp::Mul, &[a0, v]).unwrap();
//! let m1 = b.compute(ComputeOp::Mul, &[a1, v]).unwrap();
//! let s0 = b.mv(m0, 0, 1).unwrap();
//! let s1 = b.mv(m1, 0, -1).unwrap();
//! let sum = b.compute(ComputeOp::Add, &[s0, s1]).unwrap();
//! b.output(sum, OutputTarget::array(out, HyperRect::new(vec![(1, 7)]).unwrap()));
//! let g = b.build().unwrap();
//!
//! let opt = optimize(&g, &CostParams::default()).unwrap();
//! // The optimized graph multiplies once instead of twice.
//! let muls = opt
//!     .nodes()
//!     .iter()
//!     .filter(|n| matches!(n, infs_tdfg::Node::Compute { op: ComputeOp::Mul, .. }))
//!     .count();
//! assert_eq!(muls, 1);
//! ```
//!
//! `DESIGN.md` §6 records the key optimizer decisions and their measured
//! ablations (`results/ablate_egraph.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod egraph;
mod enode;
mod extract;
mod rules;

pub use cost::CostParams;
pub use egraph::{EClassId, EGraph};
pub use enode::ENode;
pub use extract::extract;
pub use rules::{all_rules, Rewrite};

use infs_tdfg::{Tdfg, TdfgError};

/// Saturation limits: iteration and size caps keep compile time bounded — the
/// paper notes final selection "can be exhaustive or terminated early to reduce
/// compile time".
#[derive(Debug, Clone, Copy)]
pub struct SaturationLimits {
    /// Maximum rule-application rounds.
    pub max_iters: usize,
    /// Stop growing once this many e-nodes exist.
    pub max_nodes: usize,
}

impl Default for SaturationLimits {
    fn default() -> Self {
        SaturationLimits {
            max_iters: 5,
            max_nodes: 4_000,
        }
    }
}

/// Optimizes a tDFG by equality saturation and cost-based extraction.
///
/// The returned graph computes the same function (same outputs over the same
/// domains) with less estimated cost: fewer redundant computes and cheaper data
/// movement. Stream-input nodes and reductions pass through opaquely.
///
/// # Errors
///
/// Returns an error only if re-building the extracted graph fails, which would
/// indicate a rule bug (the rewrite rules preserve validity).
pub fn optimize(g: &Tdfg, params: &CostParams) -> Result<Tdfg, TdfgError> {
    optimize_with_limits(g, params, SaturationLimits::default())
}

/// [`optimize`] with explicit saturation limits.
///
/// # Errors
///
/// See [`optimize`].
pub fn optimize_with_limits(
    g: &Tdfg,
    params: &CostParams,
    limits: SaturationLimits,
) -> Result<Tdfg, TdfgError> {
    let mut opt_span = infs_trace::span!("egraph.optimize", nodes_in = g.nodes().len());
    let mut eg = EGraph::from_tdfg(g);
    let rules = all_rules();
    let mut iters = 0usize;
    for iter in 0..limits.max_iters {
        let _iter_span = infs_trace::span!("egraph.saturate", iter = iter);
        let mut changed = false;
        let mut applications = 0u64;
        for rule in &rules {
            if eg.num_enodes() >= limits.max_nodes {
                break;
            }
            let n = rule.apply(&mut eg);
            applications += n as u64;
            changed |= n > 0;
        }
        eg.rebuild();
        iters = iter + 1;
        infs_trace::counter!("egraph.rule_applications", applications);
        infs_trace::gauge!("egraph.enodes", eg.num_enodes());
        infs_trace::gauge!("egraph.classes", eg.class_ids().len());
        if !changed || eg.num_enodes() >= limits.max_nodes {
            break;
        }
    }
    opt_span.arg("iters", iters);
    opt_span.arg("enodes", eg.num_enodes());
    let _extract_span = infs_trace::span!("egraph.extract", enodes = eg.num_enodes());
    extract(&eg, g, params)
}

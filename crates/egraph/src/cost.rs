use crate::ENode;
use infs_geom::HyperRect;
use infs_sdfg::{DataType, ReduceOp};
use infs_tdfg::{bit_serial_latency, ComputeOp};

/// Architecture-informed cost parameters for tDFG extraction.
///
/// The paper selects the final tDFG with "cost metrics combining the estimated
/// latency of move vs. compute node, the amount of moved/broadcast data, as
/// well as the number of computations" (Appendix A). Compute cost is the
/// bit-serial command latency times the number of bitline rounds the domain
/// needs; movement cost scales with moved elements (broadcast cheaper than
/// shift, §4.1); shrink is free (lowered to a no-op).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CostParams {
    /// Total compute bitlines in the system (Table 2: 64 banks × 16 ways ×
    /// 16 arrays × 256 bitlines = 4 Mi bitlines).
    pub total_bitlines: u64,
    /// Fixed cycles per move command.
    pub mv_fixed: f64,
    /// Cycles per moved element (amortized over parallel lanes).
    pub mv_per_elem: f64,
    /// Fixed cycles per broadcast command.
    pub bc_fixed: f64,
    /// Cycles per broadcast element (cheaper than moves — the source row is
    /// read once and fanned out through the H-tree).
    pub bc_per_elem: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            total_bitlines: 64 * 16 * 16 * 256,
            mv_fixed: 64.0,
            mv_per_elem: 1.0 / 256.0, // one SRAM array's worth of lanes per cycle
            bc_fixed: 32.0,
            bc_per_elem: 1.0 / 1024.0,
        }
    }
}

impl CostParams {
    /// Cost of one e-node given its domain, excluding children.
    pub fn enode_cost(&self, n: &ENode, domain: Option<&HyperRect>, dtype: DataType) -> f64 {
        let elems = domain.map(HyperRect::num_elements).unwrap_or(0);
        let rounds = elems.div_ceil(self.total_bitlines).max(1) as f64;
        match n {
            ENode::Input { .. }
            | ENode::ConstVal { .. }
            | ENode::Param { .. }
            | ENode::StreamIn { .. }
            | ENode::Shrink { .. } => 0.0,
            ENode::Compute { op, .. } => bit_serial_latency(*op, dtype) as f64 * rounds,
            ENode::Mv { dist: 0, .. } => 0.0,
            ENode::Mv { .. } => self.mv_fixed + elems as f64 * self.mv_per_elem,
            ENode::Bc { .. } => self.bc_fixed + elems as f64 * self.bc_per_elem,
            ENode::Reduce { op, .. } => {
                // Rounds of compute+shift; extent unknown here without the input
                // domain, so charge a conservative single round per element bit.
                let eq = match op {
                    ReduceOp::Sum => ComputeOp::Add,
                    ReduceOp::Min => ComputeOp::Min,
                    ReduceOp::Max => ComputeOp::Max,
                };
                (bit_serial_latency(eq, dtype) + dtype.bits() as u64) as f64 * rounds
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EClassId;

    #[test]
    fn shrink_and_leaves_are_free() {
        let p = CostParams::default();
        let r = HyperRect::new(vec![(0, 8)]).unwrap();
        assert_eq!(
            p.enode_cost(
                &ENode::Shrink {
                    input: EClassId(0),
                    dim: 0,
                    p: 0,
                    q: 4
                },
                Some(&r),
                DataType::F32
            ),
            0.0
        );
        assert_eq!(
            p.enode_cost(&ENode::ConstVal { bits: 0 }, None, DataType::F32),
            0.0
        );
    }

    #[test]
    fn compute_scales_with_bitline_rounds() {
        let p = CostParams {
            total_bitlines: 16,
            ..Default::default()
        };
        let small = HyperRect::new(vec![(0, 16)]).unwrap();
        let big = HyperRect::new(vec![(0, 64)]).unwrap();
        let n = ENode::Compute {
            op: ComputeOp::Add,
            inputs: vec![],
        };
        let c_small = p.enode_cost(&n, Some(&small), DataType::F32);
        let c_big = p.enode_cost(&n, Some(&big), DataType::F32);
        assert_eq!(c_big, 4.0 * c_small);
    }

    #[test]
    fn zero_distance_move_is_free_and_bc_cheaper_than_mv() {
        let p = CostParams::default();
        let r = HyperRect::new(vec![(0, 1024)]).unwrap();
        let mv0 = ENode::Mv {
            input: EClassId(0),
            dim: 0,
            dist: 0,
        };
        let mv = ENode::Mv {
            input: EClassId(0),
            dim: 0,
            dist: 3,
        };
        let bc = ENode::Bc {
            input: EClassId(0),
            dim: 0,
            dist: 0,
            count: 1024,
        };
        assert_eq!(p.enode_cost(&mv0, Some(&r), DataType::F32), 0.0);
        assert!(
            p.enode_cost(&bc, Some(&r), DataType::F32) < p.enode_cost(&mv, Some(&r), DataType::F32)
        );
    }
}

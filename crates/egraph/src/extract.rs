//! Cost-based extraction of the best tDFG from a saturated e-graph.
//!
//! Phase 1 computes classic *tree costs* by bottom-up fixpoint — this
//! establishes feasibility (every reachable class has at least one acyclic
//! derivation) and a baseline choice per class. Phase 2 improves the selection
//! *DAG-aware*: the real cost of a selection counts each selected class once,
//! which is what makes "compute once over the expanded tensor, shrink twice"
//! (rules 5/9) cheaper than two independent computes. The improvement loop
//! greedily switches per-class choices while the global DAG cost decreases,
//! with a tie-break that prefers shrink nodes (they are free and enable
//! sharing).

use crate::{CostParams, EClassId, EGraph, ENode};
use infs_tdfg::{NodeId, Tdfg, TdfgBuilder, TdfgError};
use std::collections::HashMap;

const EPS: f64 = 1e-9;

/// Extracts the minimum-cost equivalent of `orig` from the saturated e-graph.
///
/// # Errors
///
/// Returns an error if the extracted graph fails tDFG validation, which would
/// indicate an unsound rewrite rule.
pub fn extract(eg: &EGraph, orig: &Tdfg, params: &CostParams) -> Result<Tdfg, TdfgError> {
    let dtype = orig.dtype();
    let ids = eg.class_ids();
    let index: HashMap<EClassId, usize> = ids.iter().enumerate().map(|(i, &c)| (c, i)).collect();
    let n = ids.len();
    let class_nodes: Vec<Vec<ENode>> = ids.iter().map(|&c| eg.nodes(c)).collect();
    let own: Vec<Vec<f64>> = ids
        .iter()
        .zip(&class_nodes)
        .map(|(&c, nodes)| {
            nodes
                .iter()
                .map(|nd| params.enode_cost(nd, eg.domain(c), dtype))
                .collect()
        })
        .collect();
    let children: Vec<Vec<Vec<usize>>> = class_nodes
        .iter()
        .map(|nodes| {
            nodes
                .iter()
                .map(|nd| {
                    nd.children()
                        .into_iter()
                        .map(|c| index[&eg.find(c)])
                        .collect()
                })
                .collect()
        })
        .collect();

    // Phase 1: tree-cost fixpoint.
    let mut tree: Vec<Option<f64>> = vec![None; n];
    let mut chosen: Vec<Option<usize>> = vec![None; n];
    loop {
        let mut changed = false;
        for ci in 0..n {
            for (k, kids) in children[ci].iter().enumerate() {
                let mut total = own[ci][k];
                let mut feasible = true;
                for &kid in kids {
                    match tree[kid] {
                        Some(c) => total += c,
                        None => {
                            feasible = false;
                            break;
                        }
                    }
                }
                if feasible && tree[ci].is_none_or(|cur| total < cur - EPS) {
                    tree[ci] = Some(total);
                    chosen[ci] = Some(k);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let roots: Vec<usize> = orig
        .outputs()
        .iter()
        .map(|o| index[&eg.class_of_node(o.node)])
        .collect();
    for &r in &roots {
        assert!(
            chosen[r].is_some(),
            "every output class must have an acyclic derivation"
        );
    }

    // Phase 2: DAG-aware greedy improvement.
    let dag = |chosen: &[Option<usize>]| dag_cost(&roots, chosen, &children, &own);
    let mut current = dag(&chosen).expect("phase-1 selection is acyclic");
    for _pass in 0..4 {
        let mut improved = false;
        let reachable = reachable_set(&roots, &chosen, &children);
        for ci in reachable {
            let cur_k = chosen[ci].expect("reachable classes are chosen");
            for k in 0..class_nodes[ci].len() {
                if k == cur_k {
                    continue;
                }
                let old = chosen[ci];
                chosen[ci] = Some(k);
                let accept = match dag(&chosen) {
                    Some(c) if c < current - EPS => {
                        current = c;
                        true
                    }
                    // Tie-break: move onto a free shrink (enables sharing in a
                    // later switch) as long as the cost does not regress.
                    Some(c)
                        if c < current + EPS
                            && matches!(class_nodes[ci][k], ENode::Shrink { .. })
                            && !matches!(class_nodes[ci][cur_k], ENode::Shrink { .. }) =>
                    {
                        current = c;
                        true
                    }
                    _ => false,
                };
                if accept {
                    improved = true;
                    break;
                }
                chosen[ci] = old;
            }
        }
        if !improved {
            break;
        }
    }

    // Rebuild the tDFG from the selection.
    let mut b = TdfgBuilder::new(orig.ndim(), dtype);
    b.set_arrays(orig.arrays().to_vec());
    let mut memo: Vec<Option<NodeId>> = vec![None; n];
    for &r in &roots {
        build_class(r, &mut b, &mut memo, &chosen, &class_nodes, &children)?;
    }
    for out in orig.outputs() {
        let r = index[&eg.class_of_node(out.node)];
        let node = memo[r].expect("root classes were built");
        b.output(node, out.target.clone());
    }
    b.build()
}

/// Total cost of a selection, counting each reachable class once; `None` if the
/// selection is cyclic or incomplete.
fn dag_cost(
    roots: &[usize],
    chosen: &[Option<usize>],
    children: &[Vec<Vec<usize>>],
    own: &[Vec<f64>],
) -> Option<f64> {
    // 0 = unvisited, 1 = on stack, 2 = done.
    let mut state = vec![0u8; chosen.len()];
    let mut total = 0.0;
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for &r in roots {
        if state[r] == 2 {
            continue;
        }
        stack.push((r, 0));
        state[r] = 1;
        while let Some(&mut (ci, ref mut next)) = stack.last_mut() {
            let k = chosen[ci]?;
            let kids = &children[ci][k];
            if *next == 0 {
                total += own[ci][k];
            }
            if *next < kids.len() {
                let kid = kids[*next];
                *next += 1;
                match state[kid] {
                    0 => {
                        state[kid] = 1;
                        stack.push((kid, 0));
                    }
                    1 => return None, // cycle
                    _ => {}
                }
            } else {
                state[ci] = 2;
                stack.pop();
            }
        }
    }
    Some(total)
}

fn reachable_set(
    roots: &[usize],
    chosen: &[Option<usize>],
    children: &[Vec<Vec<usize>>],
) -> Vec<usize> {
    let mut seen = vec![false; chosen.len()];
    let mut stack: Vec<usize> = roots.to_vec();
    let mut out = Vec::new();
    while let Some(ci) = stack.pop() {
        if seen[ci] {
            continue;
        }
        seen[ci] = true;
        out.push(ci);
        if let Some(k) = chosen[ci] {
            stack.extend(children[ci][k].iter().copied());
        }
    }
    out
}

/// Builds the selected node of a class into the builder (post-order, iterative).
fn build_class(
    root: usize,
    b: &mut TdfgBuilder,
    memo: &mut [Option<NodeId>],
    chosen: &[Option<usize>],
    class_nodes: &[Vec<ENode>],
    children: &[Vec<Vec<usize>>],
) -> Result<(), TdfgError> {
    let mut stack: Vec<(usize, bool)> = vec![(root, false)];
    while let Some((ci, expanded)) = stack.pop() {
        if memo[ci].is_some() {
            continue;
        }
        let k = chosen[ci].expect("reachable classes are chosen");
        if !expanded {
            stack.push((ci, true));
            for &kid in &children[ci][k] {
                if memo[kid].is_none() {
                    stack.push((kid, false));
                }
            }
            continue;
        }
        let kid_ids: Vec<NodeId> = children[ci][k]
            .iter()
            .map(|&kid| memo[kid].expect("children are built first"))
            .collect();
        let id = match &class_nodes[ci][k] {
            ENode::Input {
                array,
                rect,
                array_offset,
            } => b.input_at(*array, rect.clone(), array_offset.clone())?,
            ENode::ConstVal { bits } => b.constant(f32::from_bits(*bits)),
            ENode::Param { index } => b.param(*index),
            ENode::Compute { op, .. } => b.compute(*op, &kid_ids)?,
            ENode::Mv { dim, dist, .. } => b.mv(kid_ids[0], *dim, *dist)?,
            ENode::Bc {
                dim, dist, count, ..
            } => b.bc(kid_ids[0], *dim, *dist, *count)?,
            ENode::Shrink { dim, p, q, .. } => b.shrink(kid_ids[0], *dim, *p, *q)?,
            ENode::Reduce { dim, op, .. } => b.reduce(kid_ids[0], *dim, *op)?,
            ENode::StreamIn { stream, rect } => b.stream_in(*stream, rect.clone())?,
        };
        memo[ci] = Some(id);
    }
    Ok(())
}

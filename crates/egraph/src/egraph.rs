use crate::ENode;
use infs_geom::HyperRect;
use infs_tdfg::{Node, NodeId, Tdfg};
use std::collections::HashMap;
use std::fmt;

/// Identifier of an equivalence class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EClassId(pub u32);

impl fmt::Display for EClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[derive(Debug, Clone, Default)]
struct EClass {
    nodes: Vec<ENode>,
    domain: Option<HyperRect>, // None = infinite (constant) tensor
    parents: Vec<(ENode, EClassId)>,
}

/// A domain-aware e-graph over tDFG nodes.
///
/// Each e-class carries its tensor domain as an analysis; two classes may only
/// be unioned when their domains agree, which is the paper's definition of tDFG
/// node equivalence ("same result *and* same domain in the lattice space").
#[derive(Debug, Clone)]
pub struct EGraph {
    ndim: usize,
    bounding: HyperRect,
    uf: Vec<u32>,
    classes: Vec<EClass>,
    memo: HashMap<ENode, EClassId>,
    dirty: Vec<EClassId>,
    n_enodes: usize,
    node_class: Vec<EClassId>, // original tDFG NodeId -> class
}

impl EGraph {
    /// Builds an e-graph seeded with every node of a validated tDFG.
    pub fn from_tdfg(g: &Tdfg) -> Self {
        let mut eg = EGraph {
            ndim: g.ndim(),
            bounding: g.bounding().clone(),
            uf: Vec::new(),
            classes: Vec::new(),
            memo: HashMap::new(),
            dirty: Vec::new(),
            n_enodes: 0,
            node_class: Vec::new(),
        };
        for (i, n) in g.nodes().iter().enumerate() {
            let map = |x: &NodeId| eg.node_class[x.0 as usize];
            let en = match n {
                Node::Input {
                    array,
                    rect,
                    array_offset,
                } => ENode::Input {
                    array: *array,
                    rect: rect.clone(),
                    array_offset: array_offset.clone(),
                },
                Node::ConstVal { value } => ENode::ConstVal {
                    bits: value.to_bits(),
                },
                Node::Param { index } => ENode::Param { index: *index },
                Node::Compute { op, inputs } => ENode::Compute {
                    op: *op,
                    inputs: inputs.iter().map(map).collect(),
                },
                Node::Mv { input, dim, dist } => ENode::Mv {
                    input: map(input),
                    dim: *dim,
                    dist: *dist,
                },
                Node::Bc {
                    input,
                    dim,
                    dist,
                    count,
                } => ENode::Bc {
                    input: map(input),
                    dim: *dim,
                    dist: *dist,
                    count: *count,
                },
                Node::Shrink { input, dim, p, q } => ENode::Shrink {
                    input: map(input),
                    dim: *dim,
                    p: *p,
                    q: *q,
                },
                Node::Reduce { input, dim, op } => ENode::Reduce {
                    input: map(input),
                    dim: *dim,
                    op: *op,
                },
                Node::StreamIn { stream, rect } => ENode::StreamIn {
                    stream: *stream,
                    rect: rect.clone(),
                },
            };
            let class = eg
                .add(en)
                .expect("nodes of a validated tDFG have non-empty domains");
            debug_assert_eq!(
                eg.domain(class).cloned(),
                g.domain(NodeId(i as u32)).cloned(),
                "e-graph domain analysis must match tDFG build for node %{i}"
            );
            eg.node_class.push(class);
        }
        eg
    }

    /// Lattice dimensionality.
    pub fn ndim(&self) -> usize {
        self.ndim
    }

    /// The global bounding hyperrectangle inherited from the source graph.
    pub fn bounding(&self) -> &HyperRect {
        &self.bounding
    }

    /// Total e-nodes currently stored (across all classes).
    pub fn num_enodes(&self) -> usize {
        self.n_enodes
    }

    /// Canonical class currently holding an original tDFG node.
    pub fn class_of_node(&self, id: NodeId) -> EClassId {
        self.find(self.node_class[id.0 as usize])
    }

    /// Canonical representative of a class.
    pub fn find(&self, id: EClassId) -> EClassId {
        let mut x = id.0;
        while self.uf[x as usize] != x {
            x = self.uf[x as usize];
        }
        EClassId(x)
    }

    fn find_mut(&mut self, id: EClassId) -> EClassId {
        let mut x = id.0;
        while self.uf[x as usize] != x {
            // Path halving.
            self.uf[x as usize] = self.uf[self.uf[x as usize] as usize];
            x = self.uf[x as usize];
        }
        EClassId(x)
    }

    /// The domain analysis of a class.
    pub fn domain(&self, id: EClassId) -> Option<&HyperRect> {
        self.classes[self.find(id).0 as usize].domain.as_ref()
    }

    /// Canonicalized, deduplicated e-nodes of a class (allocates; the rule
    /// engine's hot path uses [`class_nodes`](Self::class_nodes) instead).
    pub fn nodes(&self, id: EClassId) -> Vec<ENode> {
        let c = &self.classes[self.find(id).0 as usize];
        let mut out: Vec<ENode> = Vec::with_capacity(c.nodes.len());
        for n in &c.nodes {
            let canon = n.map_children(|x| self.find(x));
            if !out.contains(&canon) {
                out.push(canon);
            }
        }
        out
    }

    /// The stored e-nodes of a class, borrowed without cloning.
    ///
    /// Immediately after [`rebuild`](Self::rebuild) the stored nodes are
    /// canonical and deduplicated. Between rebuilds (i.e. while rules in the
    /// same saturation iteration are mutating the graph), child ids may be
    /// stale — they still resolve to the right class through
    /// [`find`](Self::find), and [`add`](Self::add)/[`union`](Self::union)
    /// re-canonicalize, so pattern scans over this slice stay sound; at worst
    /// a stale id hides an equality until the next iteration's rebuild.
    pub fn class_nodes(&self, id: EClassId) -> &[ENode] {
        &self.classes[self.find(id).0 as usize].nodes
    }

    /// Iterates over canonical class ids without allocating.
    pub fn classes_iter(&self) -> impl Iterator<Item = EClassId> + '_ {
        (0..self.uf.len() as u32)
            .map(EClassId)
            .filter(move |&i| self.find(i) == i)
    }

    /// Canonical class ids, collected (see [`classes_iter`](Self::classes_iter)).
    pub fn class_ids(&self) -> Vec<EClassId> {
        self.classes_iter().collect()
    }

    /// Computes the domain an e-node would have, per the tDFG domain rules.
    ///
    /// Returns `Err(())` when the node is ill-formed (empty domain, broadcast of
    /// a non-thin tensor, movement of an infinite tensor) — rules treat this as
    /// "skip this rewrite".
    #[allow(clippy::result_unit_err)]
    pub fn compute_domain(&self, n: &ENode) -> Result<Option<HyperRect>, ()> {
        let dom_of = |c: &EClassId| self.domain(*c).cloned();
        match n {
            ENode::Input { rect, .. } | ENode::StreamIn { rect, .. } => Ok(Some(rect.clone())),
            ENode::ConstVal { .. } | ENode::Param { .. } => Ok(None),
            ENode::Compute { inputs, .. } => {
                let mut acc: Option<HyperRect> = None;
                for c in inputs {
                    if let Some(d) = dom_of(c) {
                        acc = Some(match acc {
                            Some(a) => a.intersect(&d).map_err(|_| ())?.ok_or(())?,
                            None => d,
                        });
                    }
                }
                Ok(acc)
            }
            ENode::Mv { input, dim, dist } => {
                let d = dom_of(input).ok_or(())?;
                let moved = d.translated(*dim, *dist).map_err(|_| ())?;
                Ok(Some(
                    moved.intersect(&self.bounding).map_err(|_| ())?.ok_or(())?,
                ))
            }
            ENode::Bc {
                input,
                dim,
                dist,
                count,
            } => {
                let d = dom_of(input).ok_or(())?;
                if d.extent(*dim) != 1 {
                    return Err(());
                }
                let spread = d
                    .with_interval(*dim, *dist, *dist + *count as i64)
                    .map_err(|_| ())?;
                Ok(Some(
                    spread
                        .intersect(&self.bounding)
                        .map_err(|_| ())?
                        .ok_or(())?,
                ))
            }
            ENode::Shrink { input, dim, p, q } => {
                let d = dom_of(input).ok_or(())?;
                let (ip, iq) = d.interval(*dim);
                let (np, nq) = ((*p).max(ip), (*q).min(iq));
                if np >= nq {
                    return Err(());
                }
                Ok(Some(d.with_interval(*dim, np, nq).map_err(|_| ())?))
            }
            ENode::Reduce { input, dim, .. } => {
                let d = dom_of(input).ok_or(())?;
                let s = d.start(*dim);
                Ok(Some(d.with_interval(*dim, s, s + 1).map_err(|_| ())?))
            }
        }
    }

    /// Adds an e-node (hash-consed), returning its class, or `None` if the node
    /// is ill-formed (see [`compute_domain`](Self::compute_domain)).
    pub fn add(&mut self, n: ENode) -> Option<EClassId> {
        let canon = n.map_children(|x| self.find(x));
        if let Some(&id) = self.memo.get(&canon) {
            return Some(self.find(id));
        }
        let domain = self.compute_domain(&canon).ok()?;
        let id = EClassId(self.uf.len() as u32);
        self.uf.push(id.0);
        self.classes.push(EClass {
            nodes: vec![canon.clone()],
            domain,
            parents: Vec::new(),
        });
        self.n_enodes += 1;
        for c in canon.children() {
            let c = self.find(c);
            self.classes[c.0 as usize].parents.push((canon.clone(), id));
        }
        self.memo.insert(canon, id);
        Some(id)
    }

    /// Unions two classes; returns true if they were distinct and their domains
    /// agree (the tDFG equivalence precondition).
    pub fn union(&mut self, a: EClassId, b: EClassId) -> bool {
        let a = self.find_mut(a);
        let b = self.find_mut(b);
        if a == b {
            return false;
        }
        let da = &self.classes[a.0 as usize].domain;
        let db = &self.classes[b.0 as usize].domain;
        if da != db {
            // Not an error: rewrite rules attempt unions and rely on this check
            // to reject rewrites invalidated by bounding-box clipping.
            return false;
        }
        // Keep the smaller id canonical for determinism.
        let (keep, merge) = if a < b { (a, b) } else { (b, a) };
        self.uf[merge.0 as usize] = keep.0;
        let merged = std::mem::take(&mut self.classes[merge.0 as usize]);
        let kc = &mut self.classes[keep.0 as usize];
        for n in merged.nodes {
            // Exact duplicates would survive every later scan; canonical-form
            // duplicates are collapsed by `rebuild`.
            if kc.nodes.contains(&n) {
                self.n_enodes -= 1;
            } else {
                kc.nodes.push(n);
            }
        }
        kc.parents.extend(merged.parents);
        self.dirty.push(keep);
        true
    }

    /// Restores congruence after unions: parents of merged classes are
    /// re-canonicalized and congruent parents are unioned transitively.
    pub fn rebuild(&mut self) {
        while let Some(c) = self.dirty.pop() {
            let c = self.find_mut(c);
            let parents = std::mem::take(&mut self.classes[c.0 as usize].parents);
            let mut new_parents: Vec<(ENode, EClassId)> = Vec::with_capacity(parents.len());
            for (pnode, pclass) in parents {
                self.memo.remove(&pnode);
                let canon = pnode.map_children(|x| self.find(x));
                let pclass = self.find_mut(pclass);
                if let Some(&existing) = self.memo.get(&canon) {
                    let existing = self.find_mut(existing);
                    if existing != pclass {
                        self.union(existing, pclass);
                    }
                }
                let pclass = self.find_mut(pclass);
                // Keep the stored node list canonical too: swap the stale copy
                // of `pnode` inside its owning class for `canon` (or drop it if
                // `canon` is already stored), so borrowed `class_nodes` slices
                // see canonical, deduplicated nodes after every rebuild.
                if canon != pnode {
                    let nodes = &mut self.classes[pclass.0 as usize].nodes;
                    if let Some(pos) = nodes.iter().position(|n| *n == pnode) {
                        if nodes.contains(&canon) {
                            nodes.remove(pos);
                            self.n_enodes -= 1;
                        } else {
                            nodes[pos] = canon.clone();
                        }
                    }
                }
                self.memo.insert(canon.clone(), pclass);
                if !new_parents
                    .iter()
                    .any(|(n, c2)| *n == canon && *c2 == pclass)
                {
                    new_parents.push((canon, pclass));
                }
            }
            let c = self.find_mut(c);
            self.classes[c.0 as usize].parents.extend(new_parents);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infs_sdfg::{ArrayDecl, ArrayId, DataType};
    use infs_tdfg::{ComputeOp, OutputTarget, TdfgBuilder};

    fn rect(iv: &[(i64, i64)]) -> HyperRect {
        HyperRect::new(iv.to_vec()).unwrap()
    }

    fn sample_graph() -> Tdfg {
        let mut b = TdfgBuilder::new(1, DataType::F32);
        let a = b.declare_array(ArrayDecl::new("A", vec![8], DataType::F32));
        let x = b.input(a, rect(&[(0, 8)])).unwrap();
        let y = b.mv(x, 0, 1).unwrap();
        let s = b.compute(ComputeOp::Add, &[x, y]).unwrap();
        b.output(s, OutputTarget::array(a, rect(&[(1, 8)])));
        b.build().unwrap()
    }

    #[test]
    fn from_tdfg_hashconses() {
        let g = sample_graph();
        let eg = EGraph::from_tdfg(&g);
        assert_eq!(eg.num_enodes(), 3);
        assert_eq!(eg.class_ids().len(), 3);
    }

    #[test]
    fn add_is_idempotent() {
        let g = sample_graph();
        let mut eg = EGraph::from_tdfg(&g);
        let c0 = eg.class_of_node(NodeId(0));
        let dup = eg
            .add(ENode::Mv {
                input: c0,
                dim: 0,
                dist: 1,
            })
            .unwrap();
        assert_eq!(dup, eg.class_of_node(NodeId(1)));
        assert_eq!(eg.num_enodes(), 3);
    }

    #[test]
    fn add_rejects_empty_domains() {
        let g = sample_graph();
        let mut eg = EGraph::from_tdfg(&g);
        let c0 = eg.class_of_node(NodeId(0));
        // Move everything outside the bounding box.
        assert!(eg
            .add(ENode::Mv {
                input: c0,
                dim: 0,
                dist: 100,
            })
            .is_none());
        // Shrink to an empty interval.
        assert!(eg
            .add(ENode::Shrink {
                input: c0,
                dim: 0,
                p: 5,
                q: 5,
            })
            .is_none());
    }

    #[test]
    fn union_requires_matching_domains() {
        let g = sample_graph();
        let mut eg = EGraph::from_tdfg(&g);
        let full = eg.class_of_node(NodeId(0)); // [0,8)
        let moved = eg.class_of_node(NodeId(1)); // [1,8)
                                                 // Different domains: refuse.
        assert!(!eg.union(full, moved));
        let c = eg
            .add(ENode::Compute {
                op: ComputeOp::Copy,
                inputs: vec![moved],
            })
            .unwrap();
        // Same domain [1,8): union succeeds.
        assert!(eg.union(c, moved));
        assert!(!eg.union(c, moved));
        assert_eq!(eg.find(c), eg.find(moved));
    }

    #[test]
    fn congruence_closure_merges_parents() {
        let g = sample_graph();
        let mut eg = EGraph::from_tdfg(&g);
        let x = eg.class_of_node(NodeId(0));
        // Two copies-of-copies: cp1 = Copy(x); cp2 = Copy(cp1). If cp1 ≡ x then
        // Copy(cp1) must become congruent to Copy(x) = cp1 ≡ x after rebuild.
        let cp1 = eg
            .add(ENode::Compute {
                op: ComputeOp::Copy,
                inputs: vec![x],
            })
            .unwrap();
        let cp2 = eg
            .add(ENode::Compute {
                op: ComputeOp::Copy,
                inputs: vec![cp1],
            })
            .unwrap();
        assert_ne!(eg.find(cp1), eg.find(cp2));
        eg.union(cp1, x);
        eg.rebuild();
        assert_eq!(
            eg.find(cp2),
            eg.find(cp1),
            "congruence must merge Copy(x) chain"
        );
    }

    #[test]
    fn nodes_are_canonicalized_and_deduped() {
        let g = sample_graph();
        let mut eg = EGraph::from_tdfg(&g);
        let x = eg.class_of_node(NodeId(0));
        let cp = eg
            .add(ENode::Compute {
                op: ComputeOp::Copy,
                inputs: vec![x],
            })
            .unwrap();
        eg.union(cp, x);
        eg.rebuild();
        let nodes = eg.nodes(x);
        // Input + Copy(self-loop).
        assert_eq!(nodes.len(), 2);
        assert!(nodes
            .iter()
            .any(|n| matches!(n, ENode::Input { array, .. } if *array == ArrayId(0))));
    }
}

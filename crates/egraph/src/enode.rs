use crate::EClassId;
use infs_geom::HyperRect;
use infs_sdfg::{ArrayId, ReduceOp, StreamId};
use infs_tdfg::ComputeOp;

/// An e-graph node: structurally identical to [`infs_tdfg::Node`] but with
/// children referring to e-classes instead of SSA ids, and the constant value
/// stored as raw bits so the node is `Eq + Hash` for hash-consing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ENode {
    /// Array region tensor (leaf).
    Input {
        /// Source array.
        array: ArrayId,
        /// Lattice domain.
        rect: HyperRect,
        /// Lattice→array coordinate offset.
        array_offset: Vec<i64>,
    },
    /// Compile-time constant (leaf); `bits` is the `f32` bit pattern.
    ConstVal {
        /// `f32::to_bits` of the constant.
        bits: u32,
    },
    /// Runtime parameter (leaf).
    Param {
        /// Parameter index.
        index: u32,
    },
    /// Element-wise compute.
    Compute {
        /// Operation.
        op: ComputeOp,
        /// Operand e-classes.
        inputs: Vec<EClassId>,
    },
    /// Shift along a dimension.
    Mv {
        /// Operand e-class.
        input: EClassId,
        /// Shifted dimension.
        dim: usize,
        /// Distance.
        dist: i64,
    },
    /// Broadcast along a dimension.
    Bc {
        /// Operand e-class.
        input: EClassId,
        /// Broadcast dimension.
        dim: usize,
        /// First destination coordinate.
        dist: i64,
        /// Copy count.
        count: u64,
    },
    /// Domain restriction (no-op at lowering).
    Shrink {
        /// Operand e-class.
        input: EClassId,
        /// Restricted dimension.
        dim: usize,
        /// New start.
        p: i64,
        /// New end.
        q: i64,
    },
    /// Reduction along a dimension (opaque to rewrites).
    Reduce {
        /// Operand e-class.
        input: EClassId,
        /// Reduced dimension.
        dim: usize,
        /// Operator.
        op: ReduceOp,
    },
    /// Stream-produced tensor (leaf, opaque).
    StreamIn {
        /// Producing stream.
        stream: StreamId,
        /// Domain.
        rect: HyperRect,
    },
}

impl ENode {
    /// Child e-classes, in operand order.
    pub fn children(&self) -> Vec<EClassId> {
        match self {
            ENode::Input { .. }
            | ENode::ConstVal { .. }
            | ENode::Param { .. }
            | ENode::StreamIn { .. } => Vec::new(),
            ENode::Compute { inputs, .. } => inputs.clone(),
            ENode::Mv { input, .. }
            | ENode::Bc { input, .. }
            | ENode::Shrink { input, .. }
            | ENode::Reduce { input, .. } => vec![*input],
        }
    }

    /// The same node with children rewritten through `f` (canonicalization).
    pub fn map_children(&self, mut f: impl FnMut(EClassId) -> EClassId) -> ENode {
        let mut n = self.clone();
        match &mut n {
            ENode::Compute { inputs, .. } => {
                for i in inputs {
                    *i = f(*i);
                }
            }
            ENode::Mv { input, .. }
            | ENode::Bc { input, .. }
            | ENode::Shrink { input, .. }
            | ENode::Reduce { input, .. } => *input = f(*input),
            _ => {}
        }
        n
    }
}

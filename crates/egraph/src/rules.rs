//! The tDFG rewrite rules of Appendix A.
//!
//! Rules are programmatic: each scans the current e-graph for its pattern,
//! then adds the rewritten e-nodes and unions them with the matched class.
//! Every union passes through the e-graph's domain check, so rewrites that a
//! bounding-box clip or an empty intersection would invalidate are silently
//! rejected — the rules only need to be *sound up to domain equality*.

use crate::{EClassId, EGraph, ENode};

/// A rewrite rule over the e-graph.
pub trait Rewrite {
    /// Rule name for diagnostics.
    fn name(&self) -> &'static str;
    /// Applies the rule everywhere it matches; returns the number of unions
    /// actually performed.
    fn apply(&self, eg: &mut EGraph) -> usize;
}

/// The full Appendix-A rule set, in application order.
pub fn all_rules() -> Vec<Box<dyn Rewrite>> {
    vec![
        Box::new(Commutativity),
        Box::new(Associativity),
        Box::new(Factor),
        Box::new(MvComputeExchange),
        Box::new(BcComputeExchange),
        Box::new(TensorExpansion),
        Box::new(ShrinkThroughCompute),
        Box::new(ShrinkThroughMv),
        Box::new(ShrinkThroughBc),
        Box::new(ShrinkMerge),
        Box::new(MvMerge),
        Box::new(MvIdentity),
        Box::new(ShrinkElim),
    ]
}

/// Adds `n` and unions it with `class`; returns 1 on a successful new union.
fn add_union(eg: &mut EGraph, class: EClassId, n: ENode) -> usize {
    match eg.add(n) {
        Some(id) => usize::from(eg.union(class, id)),
        None => 0,
    }
}

/// Drives `f` over every `(class, e-node)` pair, borrowing the stored node
/// lists directly (`class_nodes`) instead of cloning/canonicalizing them —
/// the scan phase of every rule, so this is the e-graph's hottest loop.
/// Rules collect matches first and mutate afterwards, so the borrows are safe;
/// ids read out of stored nodes may be stale between rebuilds but resolve to
/// the right class through `find` inside `add`/`union`/`domain`.
fn each_match(eg: &EGraph, mut f: impl FnMut(EClassId, &ENode)) {
    for id in eg.classes_iter() {
        for n in eg.class_nodes(id) {
            f(id, n);
        }
    }
}

/// Rule 3b: `C(f, A, B) ⇔ C(f, B, A)` for commutative `f`.
struct Commutativity;

impl Rewrite for Commutativity {
    fn name(&self) -> &'static str {
        "commutativity"
    }

    fn apply(&self, eg: &mut EGraph) -> usize {
        let mut matches = Vec::new();
        each_match(eg, |id, n| {
            if let ENode::Compute { op, inputs } = n {
                if op.is_commutative() && inputs.len() == 2 && inputs[0] != inputs[1] {
                    matches.push((
                        id,
                        ENode::Compute {
                            op: *op,
                            inputs: vec![inputs[1], inputs[0]],
                        },
                    ));
                }
            }
        });
        matches
            .into_iter()
            .map(|(id, n)| add_union(eg, id, n))
            .sum()
    }
}

/// Rule 3a: `C(f, C(f, A, B), C) ⇔ C(f, A, C(f, B, C))` for associative `f`.
struct Associativity;

impl Rewrite for Associativity {
    fn name(&self) -> &'static str {
        "associativity"
    }

    fn apply(&self, eg: &mut EGraph) -> usize {
        // (outer class, op, a, b, c) for outer = f(f(a,b), c).
        let mut left = Vec::new();
        // (outer class, op, a, b, c) for outer = f(a, f(b,c)).
        let mut right = Vec::new();
        each_match(eg, |id, n| {
            if let ENode::Compute { op, inputs } = n {
                if op.is_associative() && inputs.len() == 2 {
                    for inner in eg.class_nodes(inputs[0]) {
                        if let ENode::Compute {
                            op: iop,
                            inputs: iin,
                        } = inner
                        {
                            if iop == op && iin.len() == 2 {
                                left.push((id, *op, iin[0], iin[1], inputs[1]));
                            }
                        }
                    }
                    for inner in eg.class_nodes(inputs[1]) {
                        if let ENode::Compute {
                            op: iop,
                            inputs: iin,
                        } = inner
                        {
                            if iop == op && iin.len() == 2 {
                                right.push((id, *op, inputs[0], iin[0], iin[1]));
                            }
                        }
                    }
                }
            }
        });
        let mut unions = 0;
        for (id, op, a, bb, c) in left {
            // f(f(a,b), c) -> f(a, f(b,c))
            if let Some(bc) = eg.add(ENode::Compute {
                op,
                inputs: vec![bb, c],
            }) {
                unions += add_union(
                    eg,
                    id,
                    ENode::Compute {
                        op,
                        inputs: vec![a, bc],
                    },
                );
            }
        }
        for (id, op, a, bb, c) in right {
            // f(a, f(b,c)) -> f(f(a,b), c)
            if let Some(ab) = eg.add(ENode::Compute {
                op,
                inputs: vec![a, bb],
            }) {
                unions += add_union(
                    eg,
                    id,
                    ENode::Compute {
                        op,
                        inputs: vec![ab, c],
                    },
                );
            }
        }
        unions
    }
}

/// Rule 3c: factoring/distribution, `C(+, C(×, A, K), C(×, B, K)) ⇔
/// C(×, C(+, A, B), K)` where `K` is a shared e-class (typically a constant).
struct Factor;

impl Rewrite for Factor {
    fn name(&self) -> &'static str {
        "factor"
    }

    fn apply(&self, eg: &mut EGraph) -> usize {
        use infs_tdfg::ComputeOp::{Add, Mul};
        let mut factors = Vec::new();
        let mut distributes = Vec::new();
        each_match(eg, |id, n| {
            if let ENode::Compute { op, inputs } = n {
                if *op == Add && inputs.len() == 2 {
                    // Find Mul children sharing a factor (in any operand slot).
                    let muls_of = |c: EClassId| -> Vec<(EClassId, EClassId)> {
                        eg.class_nodes(c)
                            .iter()
                            .filter_map(|m| match m {
                                ENode::Compute {
                                    op: Mul,
                                    inputs: mi,
                                    // Canonicalize here: the shared-factor test
                                    // below compares class ids, and stored child
                                    // ids can be stale between rebuilds.
                                } if mi.len() == 2 => Some((eg.find(mi[0]), eg.find(mi[1]))),
                                _ => None,
                            })
                            .flat_map(|(x, k)| vec![(x, k), (k, x)])
                            .collect()
                    };
                    for (a, k1) in muls_of(inputs[0]) {
                        for (b, k2) in muls_of(inputs[1]) {
                            if k1 == k2 {
                                factors.push((id, a, b, k1));
                            }
                        }
                    }
                } else if *op == Mul && inputs.len() == 2 {
                    // Distribute over an Add child in either slot.
                    for (sum_slot, k) in [(inputs[0], inputs[1]), (inputs[1], inputs[0])] {
                        for s in eg.class_nodes(sum_slot) {
                            if let ENode::Compute {
                                op: Add,
                                inputs: si,
                            } = s
                            {
                                if si.len() == 2 {
                                    distributes.push((id, si[0], si[1], k));
                                }
                            }
                        }
                    }
                }
            }
        });
        let mut unions = 0;
        for (id, a, b, k) in factors {
            if let Some(sum) = eg.add(ENode::Compute {
                op: Add,
                inputs: vec![a, b],
            }) {
                unions += add_union(
                    eg,
                    id,
                    ENode::Compute {
                        op: Mul,
                        inputs: vec![sum, k],
                    },
                );
            }
        }
        for (id, a, b, k) in distributes {
            let ma = eg.add(ENode::Compute {
                op: Mul,
                inputs: vec![a, k],
            });
            let mb = eg.add(ENode::Compute {
                op: Mul,
                inputs: vec![b, k],
            });
            if let (Some(ma), Some(mb)) = (ma, mb) {
                unions += add_union(
                    eg,
                    id,
                    ENode::Compute {
                        op: Add,
                        inputs: vec![ma, mb],
                    },
                );
            }
        }
        unions
    }
}

/// Rule 4a: `C(f, M(A…)) ⇔ M(C(f, A…))` — both push (move into operands) and
/// hoist (common move out of all finite operands). Infinite (constant) operands
/// are shift-invariant and pass through unchanged.
struct MvComputeExchange;

impl Rewrite for MvComputeExchange {
    fn name(&self) -> &'static str {
        "mv-compute-exchange"
    }

    fn apply(&self, eg: &mut EGraph) -> usize {
        let mut pushes = Vec::new(); // (class, op, inputs, dim, dist)
        let mut hoists = Vec::new(); // (class, op, sources, dim, dist)
        each_match(eg, |id, n| {
            match n {
                ENode::Mv { input, dim, dist } => {
                    for inner in eg.class_nodes(*input) {
                        if let ENode::Compute { op, inputs } = inner {
                            pushes.push((id, *op, inputs.clone(), *dim, *dist));
                        }
                    }
                }
                ENode::Compute { op, inputs } => {
                    // Candidate (dim, dist) pairs from the first finite input.
                    let finite: Vec<usize> = inputs
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| eg.domain(**c).is_some())
                        .map(|(i, _)| i)
                        .collect();
                    if finite.is_empty() {
                        return;
                    }
                    let cands: Vec<(usize, i64)> = eg
                        .class_nodes(inputs[finite[0]])
                        .iter()
                        .filter_map(|m| match m {
                            ENode::Mv { dim, dist, .. } if *dist != 0 => Some((*dim, *dist)),
                            _ => None,
                        })
                        .collect();
                    'cand: for (dim, dist) in cands {
                        let mut sources = inputs.clone();
                        for &fi in &finite {
                            let src = eg.class_nodes(inputs[fi]).iter().find_map(|m| match m {
                                ENode::Mv {
                                    input: s,
                                    dim: d2,
                                    dist: t2,
                                } if *d2 == dim && *t2 == dist => Some(*s),
                                _ => None,
                            });
                            match src {
                                Some(s) => sources[fi] = s,
                                None => continue 'cand,
                            }
                        }
                        hoists.push((id, *op, sources, dim, dist));
                    }
                }
                _ => {}
            }
        });
        let mut unions = 0;
        for (id, op, inputs, dim, dist) in pushes {
            let mut moved = Vec::with_capacity(inputs.len());
            let mut ok = true;
            for c in inputs {
                if eg.domain(c).is_some() {
                    match eg.add(ENode::Mv {
                        input: c,
                        dim,
                        dist,
                    }) {
                        Some(m) => moved.push(m),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                } else {
                    moved.push(c);
                }
            }
            if ok {
                unions += add_union(eg, id, ENode::Compute { op, inputs: moved });
            }
        }
        for (id, op, sources, dim, dist) in hoists {
            if let Some(pre) = eg.add(ENode::Compute {
                op,
                inputs: sources,
            }) {
                unions += add_union(
                    eg,
                    id,
                    ENode::Mv {
                        input: pre,
                        dim,
                        dist,
                    },
                );
            }
        }
        unions
    }
}

/// Rule 4b: `C(f, B(A…)) ⇔ B(C(f, A…))` — push and hoist broadcasts, mirroring
/// [`MvComputeExchange`].
struct BcComputeExchange;

impl Rewrite for BcComputeExchange {
    fn name(&self) -> &'static str {
        "bc-compute-exchange"
    }

    fn apply(&self, eg: &mut EGraph) -> usize {
        let mut pushes = Vec::new();
        let mut hoists = Vec::new();
        each_match(eg, |id, n| match n {
            ENode::Bc {
                input,
                dim,
                dist,
                count,
            } => {
                for inner in eg.class_nodes(*input) {
                    if let ENode::Compute { op, inputs } = inner {
                        pushes.push((id, *op, inputs.clone(), *dim, *dist, *count));
                    }
                }
            }
            ENode::Compute { op, inputs } => {
                let finite: Vec<usize> = inputs
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| eg.domain(**c).is_some())
                    .map(|(i, _)| i)
                    .collect();
                if finite.is_empty() {
                    return;
                }
                let cands: Vec<(usize, i64, u64)> = eg
                    .class_nodes(inputs[finite[0]])
                    .iter()
                    .filter_map(|m| match m {
                        ENode::Bc {
                            dim, dist, count, ..
                        } => Some((*dim, *dist, *count)),
                        _ => None,
                    })
                    .collect();
                'cand: for (dim, dist, count) in cands {
                    let mut sources = inputs.clone();
                    for &fi in &finite {
                        let src = eg.class_nodes(inputs[fi]).iter().find_map(|m| match m {
                            ENode::Bc {
                                input: s,
                                dim: d2,
                                dist: t2,
                                count: c2,
                            } if *d2 == dim && *t2 == dist && *c2 == count => Some(*s),
                            _ => None,
                        });
                        match src {
                            Some(s) => sources[fi] = s,
                            None => continue 'cand,
                        }
                    }
                    hoists.push((id, *op, sources, dim, dist, count));
                }
            }
            _ => {}
        });
        let mut unions = 0;
        for (id, op, inputs, dim, dist, count) in pushes {
            let mut spread = Vec::with_capacity(inputs.len());
            let mut ok = true;
            for c in inputs {
                if eg.domain(c).is_some() {
                    match eg.add(ENode::Bc {
                        input: c,
                        dim,
                        dist,
                        count,
                    }) {
                        Some(m) => spread.push(m),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                } else {
                    spread.push(c);
                }
            }
            if ok {
                unions += add_union(eg, id, ENode::Compute { op, inputs: spread });
            }
        }
        for (id, op, sources, dim, dist, count) in hoists {
            if let Some(pre) = eg.add(ENode::Compute {
                op,
                inputs: sources,
            }) {
                unions += add_union(
                    eg,
                    id,
                    ENode::Bc {
                        input: pre,
                        dim,
                        dist,
                        count,
                    },
                );
            }
        }
        unions
    }
}

/// Rule 5: tensor expansion. For input tensors of the same array (and offset),
/// the smaller region equals a chain of shrinks of any enclosing region; the
/// enclosing covers are synthesized as the bounding rectangle of pairs, which
/// is how `A[0,n-2)` and `A[2,n)` discover the common cover `A[0,n)`.
struct TensorExpansion;

impl Rewrite for TensorExpansion {
    fn name(&self) -> &'static str {
        "tensor-expansion"
    }

    fn apply(&self, eg: &mut EGraph) -> usize {
        let mut inputs = Vec::new();
        each_match(eg, |id, n| {
            if let ENode::Input {
                array,
                rect,
                array_offset,
            } = n
            {
                inputs.push((id, *array, rect.clone(), array_offset.clone()));
            }
        });
        let mut unions = 0;
        for i in 0..inputs.len() {
            for j in (i + 1)..inputs.len() {
                let (ca, aa, ra, oa) = &inputs[i];
                let (cb, ab, rb, ob) = &inputs[j];
                if aa != ab || oa != ob || ra == rb {
                    continue;
                }
                let Ok(cover) = ra.bounding(rb) else { continue };
                let Some(big) = eg.add(ENode::Input {
                    array: *aa,
                    rect: cover.clone(),
                    array_offset: oa.clone(),
                }) else {
                    continue;
                };
                for (class, r) in [(*ca, ra.clone()), (*cb, rb.clone())] {
                    let mut cur = big;
                    let mut ok = true;
                    for d in 0..r.ndim() {
                        if r.interval(d) != cover.interval(d) {
                            let (p, q) = r.interval(d);
                            match eg.add(ENode::Shrink {
                                input: cur,
                                dim: d,
                                p,
                                q,
                            }) {
                                Some(s) => cur = s,
                                None => {
                                    ok = false;
                                    break;
                                }
                            }
                        }
                    }
                    if ok && cur != big {
                        unions += usize::from(eg.union(class, cur));
                    }
                }
            }
        }
        unions
    }
}

/// Rule 9: `C(f, S(A), X…) ⇔ S(C(f, A, X…))` — hoisting a shrink out of any
/// compute operand, which is what exposes common subcomputation over expanded
/// tensors.
struct ShrinkThroughCompute;

impl Rewrite for ShrinkThroughCompute {
    fn name(&self) -> &'static str {
        "shrink-through-compute"
    }

    fn apply(&self, eg: &mut EGraph) -> usize {
        let mut matches = Vec::new();
        each_match(eg, |id, n| {
            if let ENode::Compute { op, inputs } = n {
                for (slot, c) in inputs.iter().enumerate() {
                    for inner in eg.class_nodes(*c) {
                        if let ENode::Shrink {
                            input: src,
                            dim,
                            p,
                            q,
                        } = inner
                        {
                            let mut new_inputs = inputs.clone();
                            new_inputs[slot] = *src;
                            matches.push((id, *op, new_inputs, *dim, *p, *q));
                        }
                    }
                }
            }
        });
        let mut unions = 0;
        for (id, op, inputs, dim, p, q) in matches {
            if let Some(pre) = eg.add(ENode::Compute { op, inputs }) {
                unions += add_union(
                    eg,
                    id,
                    ENode::Shrink {
                        input: pre,
                        dim,
                        p,
                        q,
                    },
                );
            }
        }
        unions
    }
}

/// Rules 7a/7b: `M(S(A, i, p, q), j, d) ⇔ S(M(A, j, d), i', p', q')` with the
/// shrink window shifted when `i == j`.
struct ShrinkThroughMv;

impl Rewrite for ShrinkThroughMv {
    fn name(&self) -> &'static str {
        "shrink-through-mv"
    }

    fn apply(&self, eg: &mut EGraph) -> usize {
        let mut matches = Vec::new();
        each_match(eg, |id, n| {
            if let ENode::Mv { input, dim, dist } = n {
                for inner in eg.class_nodes(*input) {
                    if let ENode::Shrink {
                        input: src,
                        dim: sdim,
                        p,
                        q,
                    } = inner
                    {
                        matches.push((id, *src, *dim, *dist, *sdim, *p, *q));
                    }
                }
            }
        });
        let mut unions = 0;
        for (id, src, mdim, dist, sdim, p, q) in matches {
            let Some(moved) = eg.add(ENode::Mv {
                input: src,
                dim: mdim,
                dist,
            }) else {
                continue;
            };
            let (np, nq) = if sdim == mdim {
                (p + dist, q + dist)
            } else {
                (p, q)
            };
            unions += add_union(
                eg,
                id,
                ENode::Shrink {
                    input: moved,
                    dim: sdim,
                    p: np,
                    q: nq,
                },
            );
        }
        unions
    }
}

/// Rules 8a/8b: commute shrink with broadcast on different dimensions; absorb a
/// shrink into the broadcast window on the same dimension.
struct ShrinkThroughBc;

impl Rewrite for ShrinkThroughBc {
    fn name(&self) -> &'static str {
        "shrink-through-bc"
    }

    fn apply(&self, eg: &mut EGraph) -> usize {
        let mut commutes = Vec::new();
        let mut absorbs = Vec::new();
        each_match(eg, |id, n| match n {
            ENode::Bc {
                input,
                dim,
                dist,
                count,
            } => {
                for inner in eg.class_nodes(*input) {
                    if let ENode::Shrink {
                        input: src,
                        dim: sdim,
                        p,
                        q,
                    } = inner
                    {
                        if sdim != dim {
                            commutes.push((id, *src, *dim, *dist, *count, *sdim, *p, *q));
                        }
                    }
                }
            }
            ENode::Shrink { input, dim, p, q } => {
                for inner in eg.class_nodes(*input) {
                    if let ENode::Bc {
                        input: src,
                        dim: bdim,
                        dist,
                        count,
                    } = inner
                    {
                        if bdim == dim {
                            let np = (*p).max(*dist);
                            let nq = (*q).min(*dist + *count as i64);
                            if np < nq {
                                absorbs.push((id, *src, *dim, np, (nq - np) as u64));
                            }
                        }
                    }
                }
            }
            _ => {}
        });
        let mut unions = 0;
        for (id, src, bdim, dist, count, sdim, p, q) in commutes {
            let Some(spread) = eg.add(ENode::Bc {
                input: src,
                dim: bdim,
                dist,
                count,
            }) else {
                continue;
            };
            unions += add_union(
                eg,
                id,
                ENode::Shrink {
                    input: spread,
                    dim: sdim,
                    p,
                    q,
                },
            );
        }
        for (id, src, dim, dist, count) in absorbs {
            unions += add_union(
                eg,
                id,
                ENode::Bc {
                    input: src,
                    dim,
                    dist,
                    count,
                },
            );
        }
        unions
    }
}

/// Rules 6a/6b: merge shrinks on the same dimension; commute on different ones.
struct ShrinkMerge;

impl Rewrite for ShrinkMerge {
    fn name(&self) -> &'static str {
        "shrink-merge"
    }

    fn apply(&self, eg: &mut EGraph) -> usize {
        let mut matches = Vec::new();
        each_match(eg, |id, n| {
            if let ENode::Shrink { input, dim, p, q } = n {
                for inner in eg.class_nodes(*input) {
                    if let ENode::Shrink {
                        input: src,
                        dim: idim,
                        p: ip,
                        q: iq,
                    } = inner
                    {
                        matches.push((id, *src, *dim, *p, *q, *idim, *ip, *iq));
                    }
                }
            }
        });
        let mut unions = 0;
        for (id, src, dim, p, q, idim, ip, iq) in matches {
            if dim == idim {
                unions += add_union(
                    eg,
                    id,
                    ENode::Shrink {
                        input: src,
                        dim,
                        p: p.max(ip),
                        q: q.min(iq),
                    },
                );
            } else {
                let Some(outer_first) = eg.add(ENode::Shrink {
                    input: src,
                    dim,
                    p,
                    q,
                }) else {
                    continue;
                };
                unions += add_union(
                    eg,
                    id,
                    ENode::Shrink {
                        input: outer_first,
                        dim: idim,
                        p: ip,
                        q: iq,
                    },
                );
            }
        }
        unions
    }
}

/// Housekeeping: merge consecutive moves on the same dimension and commute
/// moves on different dimensions.
struct MvMerge;

impl Rewrite for MvMerge {
    fn name(&self) -> &'static str {
        "mv-merge"
    }

    fn apply(&self, eg: &mut EGraph) -> usize {
        let mut matches = Vec::new();
        each_match(eg, |id, n| {
            if let ENode::Mv { input, dim, dist } = n {
                for inner in eg.class_nodes(*input) {
                    if let ENode::Mv {
                        input: src,
                        dim: idim,
                        dist: idist,
                    } = inner
                    {
                        matches.push((id, *src, *dim, *dist, *idim, *idist));
                    }
                }
            }
        });
        let mut unions = 0;
        for (id, src, dim, dist, idim, idist) in matches {
            if dim == idim {
                unions += add_union(
                    eg,
                    id,
                    ENode::Mv {
                        input: src,
                        dim,
                        dist: dist + idist,
                    },
                );
            } else {
                let Some(outer_first) = eg.add(ENode::Mv {
                    input: src,
                    dim,
                    dist,
                }) else {
                    continue;
                };
                unions += add_union(
                    eg,
                    id,
                    ENode::Mv {
                        input: outer_first,
                        dim: idim,
                        dist: idist,
                    },
                );
            }
        }
        unions
    }
}

/// Housekeeping: a zero-distance move is the identity.
struct MvIdentity;

impl Rewrite for MvIdentity {
    fn name(&self) -> &'static str {
        "mv-identity"
    }

    fn apply(&self, eg: &mut EGraph) -> usize {
        let mut matches = Vec::new();
        each_match(eg, |id, n| {
            if let ENode::Mv { input, dist: 0, .. } = n {
                matches.push((id, *input));
            }
        });
        matches
            .into_iter()
            .map(|(id, input)| usize::from(eg.union(id, input)))
            .sum()
    }
}

/// Housekeeping: a shrink that does not actually restrict its input's domain is
/// the identity.
struct ShrinkElim;

impl Rewrite for ShrinkElim {
    fn name(&self) -> &'static str {
        "shrink-elim"
    }

    fn apply(&self, eg: &mut EGraph) -> usize {
        let mut matches = Vec::new();
        each_match(eg, |id, n| {
            if let ENode::Shrink { input, dim, p, q } = n {
                if let Some(d) = eg.domain(*input) {
                    let (ip, iq) = d.interval(*dim);
                    if *p <= ip && iq <= *q {
                        matches.push((id, *input));
                    }
                }
            }
        });
        matches
            .into_iter()
            .map(|(id, input)| usize::from(eg.union(id, input)))
            .sum()
    }
}

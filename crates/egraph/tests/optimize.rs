//! End-to-end tests for the e-graph optimizer: rewrites must preserve the
//! reference interpreter's semantics, and the canonical paper examples must
//! discover their intended reuse.

use infs_egraph::{optimize, optimize_with_limits, CostParams, SaturationLimits};
use infs_geom::HyperRect;
use infs_sdfg::{ArrayDecl, DataType, Memory};
use infs_tdfg::{ComputeOp, Node, OutputTarget, Tdfg, TdfgBuilder};
use proptest::prelude::*;
use std::collections::HashMap;

fn rect(iv: &[(i64, i64)]) -> HyperRect {
    HyperRect::new(iv.to_vec()).unwrap()
}

fn count_op(g: &Tdfg, op: ComputeOp) -> usize {
    g.nodes()
        .iter()
        .filter(|n| matches!(n, Node::Compute { op: o, .. } if *o == op))
        .count()
}

/// Runs both graphs on the same inputs and compares all array/scalar outputs.
fn assert_equivalent(a: &Tdfg, b: &Tdfg, inputs: &[(infs_sdfg::ArrayId, Vec<f32>)]) {
    let mut ma = Memory::for_arrays(a.arrays());
    let mut mb = Memory::for_arrays(b.arrays());
    for (arr, vals) in inputs {
        ma.write_array(*arr, vals);
        mb.write_array(*arr, vals);
    }
    let oa = infs_tdfg::interp::execute(a, &mut ma, &[], &HashMap::new()).unwrap();
    let ob = infs_tdfg::interp::execute(b, &mut mb, &[], &HashMap::new()).unwrap();
    for (i, decl) in a.arrays().iter().enumerate() {
        let id = infs_sdfg::ArrayId(i as u32);
        let (va, vb) = (ma.array(id), mb.array(id));
        for (j, (&x, &y)) in va.iter().zip(vb).enumerate() {
            assert!(
                (x - y).abs() <= 1e-4 * x.abs().max(1.0),
                "array {} ({}) differs at {j}: {x} vs {y}",
                decl.name,
                id
            );
        }
    }
    assert_eq!(oa.scalars.len(), ob.scalars.len());
    for (name, v) in &oa.scalars {
        let w = ob.scalar(name).expect("same scalar outputs");
        assert!(
            (v - w).abs() <= 1e-4 * v.abs().max(1.0),
            "{name}: {v} vs {w}"
        );
    }
}

/// Fig 20: two shifted constant multiplies collapse into one multiply over the
/// expanded tensor.
#[test]
fn fig20_reuses_constant_multiply() {
    let n = 16i64;
    let mut b = TdfgBuilder::new(1, DataType::F32);
    let a = b.declare_array(ArrayDecl::new("A", vec![n as u64], DataType::F32));
    let out = b.declare_array(ArrayDecl::new("B", vec![n as u64], DataType::F32));
    let v = b.constant(3.0);
    let a0 = b.input(a, rect(&[(0, n - 2)])).unwrap();
    let a1 = b.input(a, rect(&[(2, n)])).unwrap();
    let m0 = b.compute(ComputeOp::Mul, &[a0, v]).unwrap();
    let m1 = b.compute(ComputeOp::Mul, &[a1, v]).unwrap();
    let s0 = b.mv(m0, 0, 1).unwrap();
    let s1 = b.mv(m1, 0, -1).unwrap();
    let sum = b.compute(ComputeOp::Add, &[s0, s1]).unwrap();
    b.output(sum, OutputTarget::array(out, rect(&[(1, n - 1)])));
    let g = b.build().unwrap();

    let opt = optimize(&g, &CostParams::default()).unwrap();
    assert_eq!(count_op(&g, ComputeOp::Mul), 2);
    assert_eq!(
        count_op(&opt, ComputeOp::Mul),
        1,
        "multiply should be reused:\n{opt}"
    );

    let data: Vec<f32> = (0..n).map(|i| (i * 7 % 13) as f32).collect();
    assert_equivalent(&g, &opt, &[(a, data)]);
}

/// A 3-tap stencil where every tap is scaled by the same constant: the
/// optimizer should multiply once, not three times.
#[test]
fn three_tap_stencil_shares_scale() {
    let n = 32i64;
    let mut b = TdfgBuilder::new(1, DataType::F32);
    let a = b.declare_array(ArrayDecl::new("A", vec![n as u64], DataType::F32));
    let out = b.declare_array(ArrayDecl::new("B", vec![n as u64], DataType::F32));
    let k = b.constant(0.25);
    let center = rect(&[(1, n - 1)]);
    let t0 = b.input(a, rect(&[(0, n - 2)])).unwrap();
    let t1 = b.input(a, center.clone()).unwrap();
    let t2 = b.input(a, rect(&[(2, n)])).unwrap();
    let m0 = b.compute(ComputeOp::Mul, &[t0, k]).unwrap();
    let m1 = b.compute(ComputeOp::Mul, &[t1, k]).unwrap();
    let m2 = b.compute(ComputeOp::Mul, &[t2, k]).unwrap();
    let m0s = b.mv(m0, 0, 1).unwrap();
    let m2s = b.mv(m2, 0, -1).unwrap();
    let s1 = b.compute(ComputeOp::Add, &[m0s, m1]).unwrap();
    let s2 = b.compute(ComputeOp::Add, &[s1, m2s]).unwrap();
    b.output(s2, OutputTarget::array(out, center));
    let g = b.build().unwrap();

    let opt = optimize(&g, &CostParams::default()).unwrap();
    assert!(
        count_op(&opt, ComputeOp::Mul) <= 2,
        "expected scale reuse, got {} muls:\n{opt}",
        count_op(&opt, ComputeOp::Mul)
    );
    let data: Vec<f32> = (0..n).map(|i| (i * 3 % 17) as f32).collect();
    assert_equivalent(&g, &opt, &[(a, data)]);
}

/// Optimization must preserve semantics on a 2-D broadcast/compute graph.
#[test]
fn broadcast_graph_preserved() {
    let (m, n) = (8i64, 8i64);
    let mut b = TdfgBuilder::new(2, DataType::F32);
    let col = b.declare_array(ArrayDecl::new("col", vec![m as u64, 1], DataType::F32));
    let mat = b.declare_array(ArrayDecl::new(
        "mat",
        vec![m as u64, n as u64],
        DataType::F32,
    ));
    let out = b.declare_array(ArrayDecl::new(
        "out",
        vec![m as u64, n as u64],
        DataType::F32,
    ));
    let c = b.input(col, rect(&[(0, m), (0, 1)])).unwrap();
    let cb = b.bc(c, 1, 0, n as u64).unwrap();
    let mm = b.input(mat, rect(&[(0, m), (0, n)])).unwrap();
    let p = b.compute(ComputeOp::Mul, &[cb, mm]).unwrap();
    let q = b.compute(ComputeOp::Add, &[p, mm]).unwrap();
    b.output(q, OutputTarget::array(out, rect(&[(0, m), (0, n)])));
    let g = b.build().unwrap();

    let opt = optimize(&g, &CostParams::default()).unwrap();
    let cv: Vec<f32> = (0..m).map(|i| i as f32 + 1.0).collect();
    let mv: Vec<f32> = (0..m * n).map(|i| (i % 5) as f32).collect();
    assert_equivalent(&g, &opt, &[(col, cv), (mat, mv)]);
}

/// Saturation limits are respected: with zero iterations the graph passes
/// through extraction unchanged in semantics.
#[test]
fn zero_iteration_limits_still_roundtrip() {
    let n = 8i64;
    let mut b = TdfgBuilder::new(1, DataType::F32);
    let a = b.declare_array(ArrayDecl::new("A", vec![n as u64], DataType::F32));
    let x = b.input(a, rect(&[(0, n)])).unwrap();
    let y = b.mv(x, 0, 1).unwrap();
    let s = b.compute(ComputeOp::Add, &[x, y]).unwrap();
    b.output(s, OutputTarget::array(a, rect(&[(1, n)])));
    let g = b.build().unwrap();
    let opt = optimize_with_limits(
        &g,
        &CostParams::default(),
        SaturationLimits {
            max_iters: 0,
            max_nodes: 10,
        },
    )
    .unwrap();
    let data: Vec<f32> = (0..n).map(|i| i as f32).collect();
    assert_equivalent(&g, &opt, &[(a, data)]);
}

/// Scalar reduce outputs survive optimization.
#[test]
fn reduce_scalar_preserved() {
    let n = 16i64;
    let mut b = TdfgBuilder::new(1, DataType::F32);
    let a = b.declare_array(ArrayDecl::new("A", vec![n as u64], DataType::F32));
    let x = b.input(a, rect(&[(0, n)])).unwrap();
    let two = b.constant(2.0);
    let d = b.compute(ComputeOp::Mul, &[x, two]).unwrap();
    let r = b.reduce(d, 0, infs_sdfg::ReduceOp::Sum).unwrap();
    b.output(r, OutputTarget::scalar("sum"));
    let g = b.build().unwrap();
    let opt = optimize(&g, &CostParams::default()).unwrap();
    let data: Vec<f32> = (0..n).map(|i| i as f32).collect();
    assert_equivalent(&g, &opt, &[(a, data)]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random shifted-tap linear stencils: optimization preserves semantics.
    #[test]
    fn prop_random_stencils_preserved(
        taps in proptest::collection::vec((0i64..3, 1u32..5), 1..4),
        data in proptest::collection::vec(-8i32..8, 24),
    ) {
        let n = 24i64;
        let mut b = TdfgBuilder::new(1, DataType::F32);
        let a = b.declare_array(ArrayDecl::new("A", vec![n as u64], DataType::F32));
        let out_arr = b.declare_array(ArrayDecl::new("B", vec![n as u64], DataType::F32));
        // Output domain [2, n-2); tap offsets in [-1, 1].
        let lo = 2i64;
        let hi = n - 2;
        let mut acc: Option<infs_tdfg::NodeId> = None;
        for &(off_raw, scale) in &taps {
            let off = off_raw - 1; // -1..=1
            let t = b.input(a, rect(&[(lo + off, hi + off)])).unwrap();
            let aligned = if off != 0 { b.mv(t, 0, -off).unwrap() } else { t };
            let k = b.constant(scale as f32);
            let m = b.compute(ComputeOp::Mul, &[aligned, k]).unwrap();
            acc = Some(match acc {
                Some(prev) => b.compute(ComputeOp::Add, &[prev, m]).unwrap(),
                None => m,
            });
        }
        b.output(acc.unwrap(), OutputTarget::array(out_arr, rect(&[(lo, hi)])));
        let g = b.build().unwrap();
        let opt = optimize(&g, &CostParams::default()).unwrap();
        let vals: Vec<f32> = data.iter().map(|&x| x as f32).collect();
        assert_equivalent(&g, &opt, &[(a, vals)]);
    }
}

//! ISA layer of Infinity Stream: the fat binary and the static backend.
//!
//! The paper's two-phase compilation (§3.4, §4.2 "division of labor") splits
//! work so the JIT stays fast:
//!
//! * **Static backend** (this crate): serializes the tDFG, schedules nodes in
//!   topological order, and allocates tensor values to *wordline registers*
//!   for each common SRAM geometry (256×256 and 512×512), producing a **fat
//!   binary** of region configurations — analogous to how CUDA fat binaries
//!   carry PTX per SM generation. Register spilling is unsupported, exactly as
//!   in the paper ("no register spilling was observed in the studied
//!   workloads"); a kernel that needs more live 32-bit tensors than the SRAM
//!   has spare wordlines fails to compile for that geometry.
//! * **JIT runtime** (`infs-runtime`): binds the scheduled tDFG to a concrete
//!   transposed layout and lowers it to bit-serial commands at `inf_cfg` time.
//!
//! A [`CompiledRegion`] is a *template*: sequential host loops and sizes enter
//! as kernel symbols, and [`CompiledRegion::instantiate`] re-derives the
//! concrete tDFG/sDFG pair for each region entry (how `inf_cfg` passes fresh
//! runtime parameters each time). Structure is stable across instantiations;
//! only domain extents change.
//!
//! `DESIGN.md` §4 (system inventory) locates this crate in the stack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binary;
mod error;
mod schedule;

pub use binary::{fnv1a, CompileStage, CompiledRegion, Compiler, FatBinary, RegionInstance};
pub use error::IsaError;
pub use schedule::{Schedule, SramGeometry, WlReg};

use crate::IsaError;
use infs_tdfg::{Node, NodeId, Tdfg};
use serde::{Deserialize, Serialize};

/// A compute-SRAM array geometry the fat binary is scheduled for.
///
/// The fat binary carries one schedule per common geometry (the paper uses
/// 256×256 and 512×512) so the JIT never performs register allocation — this is
/// the only microarchitectural parameter the binary exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SramGeometry {
    /// Wordlines (rows) per SRAM array.
    pub wordlines: u32,
    /// Bitlines (columns) per SRAM array.
    pub bitlines: u32,
}

impl SramGeometry {
    /// The 8 kB 256×256 array of Table 2.
    pub const G256: SramGeometry = SramGeometry {
        wordlines: 256,
        bitlines: 256,
    };

    /// The 32 kB 512×512 variant.
    pub const G512: SramGeometry = SramGeometry {
        wordlines: 512,
        bitlines: 512,
    };

    /// Array capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.wordlines as u64 * self.bitlines as u64 / 8
    }
}

impl std::fmt::Display for SramGeometry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.wordlines, self.bitlines)
    }
}

/// A wordline register: one `element_bits`-tall band of wordlines holding a
/// transposed tensor value on every bitline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WlReg(pub u32);

/// The static backend's output for one (tDFG, geometry) pair: a topological
/// node order plus a wordline-register assignment (§3.4: topological
/// scheduling with local register allocation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Geometry this schedule targets.
    pub geometry: SramGeometry,
    /// Execution order (SSA ids are already topological).
    pub order: Vec<NodeId>,
    /// Register per node, `None` for nodes that do not materialize a new
    /// value (inputs live in their array's wordlines; shrinks are aliases).
    pub reg_of_node: Vec<Option<WlReg>>,
    /// Wordline registers available to intermediates.
    pub num_regs: u32,
    /// Peak simultaneously-live intermediate registers.
    pub max_live: u32,
    /// Wordline band `[0, arrays_wordlines)` reserved for the region's arrays.
    pub arrays_wordlines: u32,
    /// Arrays the region actually touches, in band order (only these occupy
    /// wordlines — declared-but-unused arrays of a shared table are free).
    pub used_arrays: Vec<infs_sdfg::ArrayId>,
}

impl Schedule {
    /// Schedules a tDFG for one geometry: assigns every value-producing node a
    /// wordline register via linear scan over the SSA order, freeing registers
    /// at each value's last use.
    ///
    /// The wordline budget is `geometry.wordlines`, of which the region's
    /// arrays reserve `arrays × element_bits` (every transposed array
    /// co-resident in the same SRAM arrays occupies its own wordline band) and
    /// the rest is divided into `element_bits`-tall registers.
    ///
    /// # Errors
    ///
    /// [`IsaError::GeometryTooSmall`] if the arrays alone exceed the wordlines;
    /// [`IsaError::RegisterSpill`] if more intermediates are live than there
    /// are registers (spilling is unsupported, §6).
    pub fn compute(g: &Tdfg, geometry: SramGeometry) -> Result<Schedule, IsaError> {
        let mut span = infs_trace::span!(
            "isa.regalloc",
            nodes = g.nodes().len(),
            wordlines = geometry.wordlines,
        );
        let bits = g.dtype().bits();
        // Only arrays the region reads or writes occupy wordline bands.
        let mut used_arrays: Vec<infs_sdfg::ArrayId> = Vec::new();
        let mut mark = |a: infs_sdfg::ArrayId| {
            if !used_arrays.contains(&a) {
                used_arrays.push(a);
            }
        };
        for n in g.nodes() {
            if let Node::Input { array, .. } = n {
                mark(*array);
            }
        }
        for out in g.outputs() {
            if let infs_tdfg::OutputTarget::Array { array, .. } = out.target {
                mark(array);
            }
        }
        let arrays_wordlines = used_arrays.len() as u32 * bits;
        if arrays_wordlines + bits > geometry.wordlines {
            return Err(IsaError::GeometryTooSmall {
                wordlines: geometry.wordlines,
                required: arrays_wordlines + bits,
            });
        }
        let num_regs = (geometry.wordlines - arrays_wordlines) / bits;

        let n = g.nodes().len();
        // Deserialized graphs bypass the builder's validation: reject dangling
        // ids with a typed error before they can index out of range.
        for node in g.nodes() {
            for input in node.inputs() {
                if input.0 as usize >= n {
                    return Err(IsaError::Tdfg(infs_tdfg::TdfgError::UnknownNode(input)));
                }
            }
        }
        for out in g.outputs() {
            if out.node.0 as usize >= n {
                return Err(IsaError::Tdfg(infs_tdfg::TdfgError::UnknownNode(out.node)));
            }
        }
        // Last use of each node (as an input of a later node or an output).
        let mut last_use = vec![0usize; n];
        for (i, node) in g.nodes().iter().enumerate() {
            for input in node.inputs() {
                last_use[input.0 as usize] = i;
            }
        }
        for out in g.outputs() {
            last_use[out.node.0 as usize] = n; // outputs live to the end
        }

        let mut free: Vec<WlReg> = (0..num_regs).rev().map(WlReg).collect();
        let mut reg_of_node: Vec<Option<WlReg>> = vec![None; n];
        let mut live: Vec<(usize, WlReg)> = Vec::new(); // (last_use, reg)
        let mut max_live = 0u32;
        for (i, node) in g.nodes().iter().enumerate() {
            // Release registers whose value dies before this node.
            live.retain(|&(lu, reg)| {
                if lu <= i {
                    free.push(reg);
                    false
                } else {
                    true
                }
            });
            let needs_reg = match node {
                // Array-backed or alias values occupy no register.
                Node::Input { .. } | Node::StreamIn { .. } | Node::Shrink { .. } => false,
                // Everything else materializes a new transposed value.
                _ => true,
            };
            if needs_reg {
                let reg = free.pop().ok_or(IsaError::RegisterSpill {
                    node: NodeId(i as u32),
                    regs: num_regs,
                })?;
                reg_of_node[i] = Some(reg);
                live.push((last_use[i].max(i + 1), reg));
                max_live = max_live.max(live.len() as u32);
            }
        }

        span.arg("max_live", max_live);
        span.arg("num_regs", num_regs);
        Ok(Schedule {
            geometry,
            order: (0..n as u32).map(NodeId).collect(),
            reg_of_node,
            num_regs,
            max_live,
            arrays_wordlines,
            used_arrays,
        })
    }

    /// First wordline of a register band (registers sit above the arrays).
    pub fn reg_wordline(&self, reg: WlReg, element_bits: u32) -> u32 {
        self.arrays_wordlines + reg.0 * element_bits
    }

    /// First wordline of a used array's band (`None` if the region never
    /// touches the array).
    pub fn array_wordline(&self, array: infs_sdfg::ArrayId, element_bits: u32) -> Option<u32> {
        self.used_arrays
            .iter()
            .position(|&a| a == array)
            .map(|i| i as u32 * element_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infs_geom::HyperRect;
    use infs_sdfg::{ArrayDecl, DataType};
    use infs_tdfg::{ComputeOp, OutputTarget, TdfgBuilder};

    fn rect(iv: &[(i64, i64)]) -> HyperRect {
        HyperRect::new(iv.to_vec()).unwrap()
    }

    fn chain_graph(depth: usize) -> Tdfg {
        // x0 = A; x_{i+1} = x_i + x_i — a chain with short lifetimes.
        let mut b = TdfgBuilder::new(1, DataType::F32);
        let a = b.declare_array(ArrayDecl::new("A", vec![8], DataType::F32));
        let mut cur = b.input(a, rect(&[(0, 8)])).unwrap();
        for _ in 0..depth {
            cur = b.compute(ComputeOp::Add, &[cur, cur]).unwrap();
        }
        b.output(cur, OutputTarget::array(a, rect(&[(0, 8)])));
        b.build().unwrap()
    }

    #[test]
    fn geometry_capacities() {
        assert_eq!(SramGeometry::G256.size_bytes(), 8 * 1024);
        assert_eq!(SramGeometry::G512.size_bytes(), 32 * 1024);
        assert_eq!(SramGeometry::G256.to_string(), "256x256");
    }

    #[test]
    fn chain_reuses_one_or_two_registers() {
        let g = chain_graph(20);
        let s = Schedule::compute(&g, SramGeometry::G256).unwrap();
        // 1 array of fp32 -> 32 wordlines reserved; (256-32)/32 = 7 registers.
        assert_eq!(s.num_regs, 7);
        assert!(
            s.max_live <= 2,
            "chain should need at most 2 live registers"
        );
        // The final value (an output) holds a register.
        assert!(s.reg_of_node.last().unwrap().is_some());
        // The input holds none.
        assert!(s.reg_of_node[0].is_none());
    }

    #[test]
    fn wide_live_set_spills() {
        // Build many values all consumed at the end: live set > 7 registers.
        let mut b = TdfgBuilder::new(1, DataType::F32);
        let a = b.declare_array(ArrayDecl::new("A", vec![8], DataType::F32));
        let x = b.input(a, rect(&[(0, 8)])).unwrap();
        let mut vals = Vec::new();
        for i in 0..8 {
            let c = b.constant(i as f32);
            vals.push(b.compute(ComputeOp::Add, &[x, c]).unwrap());
        }
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.compute(ComputeOp::Add, &[acc, v]).unwrap();
        }
        b.output(acc, OutputTarget::array(a, rect(&[(0, 8)])));
        let g = b.build().unwrap();
        let err = Schedule::compute(&g, SramGeometry::G256).unwrap_err();
        assert!(matches!(err, IsaError::RegisterSpill { .. }));
        // The 512-wordline geometry has 15 registers and fits.
        assert!(Schedule::compute(&g, SramGeometry::G512).is_ok());
    }

    #[test]
    fn too_many_arrays_rejected() {
        let mut b = TdfgBuilder::new(1, DataType::F32);
        let mut sum = None;
        for i in 0..8 {
            let a = b.declare_array(ArrayDecl::new(format!("A{i}"), vec![8], DataType::F32));
            let x = b.input(a, rect(&[(0, 8)])).unwrap();
            sum = Some(match sum {
                Some(prev) => b.compute(ComputeOp::Add, &[prev, x]).unwrap(),
                None => x,
            });
        }
        b.output(
            sum.unwrap(),
            OutputTarget::array(infs_sdfg::ArrayId(0), rect(&[(0, 8)])),
        );
        let g = b.build().unwrap();
        // All 8 arrays are read: 8 × 32 wordlines = 256, no room for the sum.
        assert!(matches!(
            Schedule::compute(&g, SramGeometry::G256),
            Err(IsaError::GeometryTooSmall { .. })
        ));
        // A region over a 9-array table that only touches 2 arrays schedules fine.
        let mut b2 = TdfgBuilder::new(1, DataType::F32);
        for i in 0..9 {
            b2.declare_array(ArrayDecl::new(format!("B{i}"), vec![8], DataType::F32));
        }
        let x = b2.input(infs_sdfg::ArrayId(3), rect(&[(0, 8)])).unwrap();
        let y = b2.compute(ComputeOp::Neg, &[x]).unwrap();
        b2.output(
            y,
            OutputTarget::array(infs_sdfg::ArrayId(7), rect(&[(0, 8)])),
        );
        let g2 = b2.build().unwrap();
        let s2 = Schedule::compute(&g2, SramGeometry::G256).unwrap();
        assert_eq!(s2.used_arrays.len(), 2);
        assert_eq!(s2.array_wordline(infs_sdfg::ArrayId(3), 32), Some(0));
        assert_eq!(s2.array_wordline(infs_sdfg::ArrayId(0), 32), None);
    }

    #[test]
    fn dangling_ids_in_deserialized_graphs_are_typed_errors() {
        use serde_json::Value;
        fn field_mut<'a>(v: &'a mut Value, key: &str) -> &'a mut Value {
            match v {
                Value::Object(o) => &mut o.iter_mut().find(|(k, _)| k == key).unwrap().1,
                _ => panic!("not an object"),
            }
        }
        fn elem_mut(v: &mut Value, i: usize) -> &mut Value {
            match v {
                Value::Array(a) => &mut a[i],
                _ => panic!("not an array"),
            }
        }
        // Deserialization bypasses the builder, so corrupt ids must come back
        // as IsaError::Tdfg(UnknownNode), not an out-of-range index panic.
        let g = chain_graph(3);
        let mut v = serde_json::to_value(&g);
        let out0 = elem_mut(field_mut(&mut v, "outputs"), 0);
        *field_mut(out0, "node") = Value::UInt(999);
        let bad: Tdfg = serde_json::from_value(&v).unwrap();
        assert!(matches!(
            Schedule::compute(&bad, SramGeometry::G256),
            Err(IsaError::Tdfg(infs_tdfg::TdfgError::UnknownNode(_)))
        ));

        let mut v2 = serde_json::to_value(&g);
        let node1 = elem_mut(field_mut(&mut v2, "nodes"), 1);
        let inputs = field_mut(field_mut(node1, "Compute"), "inputs");
        *elem_mut(inputs, 0) = Value::UInt(999);
        let bad2: Tdfg = serde_json::from_value(&v2).unwrap();
        assert!(matches!(
            Schedule::compute(&bad2, SramGeometry::G256),
            Err(IsaError::Tdfg(infs_tdfg::TdfgError::UnknownNode(_)))
        ));
    }

    #[test]
    fn register_bands_are_disjoint_from_arrays() {
        let g = chain_graph(3);
        let s = Schedule::compute(&g, SramGeometry::G256).unwrap();
        let bits = 32;
        assert_eq!(s.array_wordline(infs_sdfg::ArrayId(0), bits), Some(0));
        assert_eq!(s.reg_wordline(WlReg(0), bits), 32);
        assert_eq!(s.reg_wordline(WlReg(6), bits), 32 + 6 * 32);
    }
}

use infs_frontend::FrontendError;
use infs_tdfg::{NodeId, TdfgError};
use std::error::Error;
use std::fmt;

/// Errors from backend scheduling and fat-binary construction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IsaError {
    /// The SRAM geometry cannot hold the region's arrays plus one live
    /// intermediate (too many arrays per bitline).
    GeometryTooSmall {
        /// Wordlines available.
        wordlines: u32,
        /// Wordlines the arrays alone require.
        required: u32,
    },
    /// Register allocation ran out of wordline registers (register spilling is
    /// not supported, §6).
    RegisterSpill {
        /// Node that could not be allocated.
        node: NodeId,
        /// Registers available.
        regs: u32,
    },
    /// Front-end compilation failed.
    Frontend(FrontendError),
    /// tDFG construction failed.
    Tdfg(TdfgError),
    /// Serialization of the fat binary failed.
    Serialize(String),
    /// A staged compilation was cancelled by its progress gate (e.g. a
    /// serving deadline expired between pipeline stages); carries the name of
    /// the stage that was about to run.
    Cancelled(String),
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::GeometryTooSmall {
                wordlines,
                required,
            } => write!(
                f,
                "SRAM geometry has {wordlines} wordlines but the region's arrays need {required}"
            ),
            IsaError::RegisterSpill { node, regs } => write!(
                f,
                "register spill at node {node}: more than {regs} live tensors (spilling unsupported)"
            ),
            IsaError::Frontend(e) => write!(f, "front-end error: {e}"),
            IsaError::Tdfg(e) => write!(f, "tDFG error: {e}"),
            IsaError::Serialize(s) => write!(f, "fat binary serialization failed: {s}"),
            IsaError::Cancelled(stage) => {
                write!(f, "compilation cancelled before the {stage} stage")
            }
        }
    }
}

impl Error for IsaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IsaError::Frontend(e) => Some(e),
            IsaError::Tdfg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrontendError> for IsaError {
    fn from(e: FrontendError) -> Self {
        IsaError::Frontend(e)
    }
}

impl From<TdfgError> for IsaError {
    fn from(e: TdfgError) -> Self {
        IsaError::Tdfg(e)
    }
}

use crate::{IsaError, Schedule, SramGeometry};
use infs_egraph::CostParams;
use infs_frontend::{FrontendError, Kernel};
use infs_geom::layout::LayoutHints;
use infs_sdfg::Sdfg;
use infs_tdfg::{OpProfile, Tdfg};
use serde::{Deserialize, Serialize};

/// The static compiler: front end + e-graph optimizer + per-geometry backend.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Compiler {
    /// SRAM geometries the fat binary is scheduled for.
    pub geometries: Vec<SramGeometry>,
    /// Run the e-graph optimizer (ablation switch).
    pub optimize: bool,
    /// Extraction cost parameters.
    pub cost: CostParams,
}

impl Default for Compiler {
    fn default() -> Self {
        Compiler {
            geometries: vec![SramGeometry::G256, SramGeometry::G512],
            optimize: true,
            cost: CostParams::default(),
        }
    }
}

impl Compiler {
    /// Compiles a kernel into a region template, probing tensorizability and
    /// scheduling against a *representative* symbol binding (typical input
    /// sizes). The structure — node kinds, hints, schedules — is stable across
    /// instantiations; only domain extents vary.
    ///
    /// Kernels that cannot be unrolled (indirect accesses, unsupported index
    /// forms) still compile, flagged near-memory-only.
    ///
    /// # Errors
    ///
    /// Returns an error if the kernel cannot even be streamized, or if the
    /// representative instantiation itself is invalid (unbound symbols, empty
    /// loops).
    pub fn compile(
        &self,
        kernel: Kernel,
        representative_syms: &[i64],
    ) -> Result<CompiledRegion, IsaError> {
        self.compile_with(kernel, representative_syms, &mut |_| true)
    }

    /// [`Compiler::compile`] with a progress gate called **before** each
    /// pipeline stage. Returning `false` abandons compilation with
    /// [`IsaError::Cancelled`] naming the stage that was about to run — this
    /// is how a serving deadline cancels a compile between stages instead of
    /// running an already-doomed request to completion.
    ///
    /// # Errors
    ///
    /// Same as [`Compiler::compile`], plus [`IsaError::Cancelled`].
    pub fn compile_with(
        &self,
        kernel: Kernel,
        representative_syms: &[i64],
        gate: &mut dyn FnMut(CompileStage) -> bool,
    ) -> Result<CompiledRegion, IsaError> {
        let mut span = infs_trace::span!("isa.compile", kernel = kernel.name());
        let mut check = |stage: CompileStage| -> Result<(), IsaError> {
            if gate(stage) {
                Ok(())
            } else {
                Err(IsaError::Cancelled(stage.label().to_string()))
            }
        };
        // The near-memory path must always exist.
        check(CompileStage::Streamize)?;
        kernel.streamize(representative_syms)?;
        // Probe the in-memory path.
        check(CompileStage::Tensorize)?;
        let tensorizable = match kernel.tensorize(representative_syms) {
            Ok(g) => {
                check(CompileStage::Optimize)?;
                let g = self.maybe_optimize(&g)?;
                // At least one geometry must accommodate the region.
                check(CompileStage::Schedule)?;
                let _sched_span = infs_trace::span!(
                    "isa.schedule_probe",
                    geometries = self.geometries.len(),
                    nodes = g.nodes().len(),
                );
                self.geometries
                    .iter()
                    .any(|&geom| Schedule::compute(&g, geom).is_ok())
            }
            Err(FrontendError::NotTensorizable { .. }) => false,
            Err(e) => return Err(e.into()),
        };
        span.arg("tensorizable", tensorizable);
        let mut region = CompiledRegion {
            kernel,
            geometries: self.geometries.clone(),
            optimize: self.optimize,
            cost: self.cost,
            tensorizable,
            representative: None,
        };
        check(CompileStage::Instantiate)?;
        region.representative = Some(region.instantiate(representative_syms)?);
        Ok(region)
    }

    fn maybe_optimize(&self, g: &Tdfg) -> Result<Tdfg, IsaError> {
        if self.optimize {
            infs_egraph::optimize(g, &self.cost).map_err(IsaError::from)
        } else {
            Ok(g.clone())
        }
    }
}

/// The static-compilation pipeline stages, in execution order — what
/// [`Compiler::compile_with`] reports to its progress gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompileStage {
    /// Stream extraction (the near-memory path; must always succeed).
    Streamize,
    /// Tensor unrolling into the tDFG (the in-memory probe).
    Tensorize,
    /// E-graph equality saturation + extraction.
    Optimize,
    /// Per-geometry backend scheduling / register allocation.
    Schedule,
    /// Embedding the representative instantiation into the fat binary.
    Instantiate,
}

impl CompileStage {
    /// Human-readable stage name (used in [`IsaError::Cancelled`]).
    pub fn label(self) -> &'static str {
        match self {
            CompileStage::Streamize => "streamize",
            CompileStage::Tensorize => "tensorize",
            CompileStage::Optimize => "optimize",
            CompileStage::Schedule => "schedule",
            CompileStage::Instantiate => "instantiate",
        }
    }
}

/// One compiled region template of the fat binary: the kernel plus everything
/// the static compiler decided (tensorizability, geometries, optimization).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompiledRegion {
    kernel: Kernel,
    geometries: Vec<SramGeometry>,
    optimize: bool,
    cost: CostParams,
    /// Whether the region has an in-memory (tDFG) version at all.
    pub tensorizable: bool,
    /// The representative instantiation embedded at compile time (the actual
    /// serialized tDFG configurations of the fat binary).
    pub representative: Option<RegionInstance>,
}

impl CompiledRegion {
    /// Region (kernel) name.
    pub fn name(&self) -> &str {
        self.kernel.name()
    }

    /// The source kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Instantiates the region for concrete symbol values — the `inf_cfg`
    /// moment: produces the concrete tDFG (optimized + scheduled) and sDFG.
    ///
    /// # Errors
    ///
    /// Returns symbol/bound errors, or backend errors if no geometry can
    /// schedule this instantiation (e.g. the live set grew with the sizes).
    pub fn instantiate(&self, syms: &[i64]) -> Result<RegionInstance, IsaError> {
        let _span = infs_trace::span!("isa.instantiate", kernel = self.kernel.name());
        let sdfg = self.kernel.streamize(syms)?;
        let (tdfg, schedules, hints, profile) = if self.tensorizable {
            let g = self.kernel.tensorize(syms)?;
            let g = if self.optimize {
                infs_egraph::optimize(&g, &self.cost)?
            } else {
                g
            };
            let schedules: Vec<Schedule> = self
                .geometries
                .iter()
                .filter_map(|&geom| Schedule::compute(&g, geom).ok())
                .collect();
            if schedules.is_empty() {
                (
                    None,
                    Vec::new(),
                    LayoutHints::default(),
                    OpProfile::default(),
                )
            } else {
                let hints = g.layout_hints();
                let profile = g.op_profile();
                (Some(g), schedules, hints, profile)
            }
        } else {
            (
                None,
                Vec::new(),
                LayoutHints::default(),
                OpProfile::default(),
            )
        };
        Ok(RegionInstance {
            name: self.kernel.name().to_string(),
            syms: syms.to_vec(),
            tdfg,
            sdfg,
            schedules,
            hints,
            profile,
        })
    }
}

/// A concrete region ready for offload: the unit the runtime configures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionInstance {
    /// Region name.
    pub name: String,
    /// Symbol values this instance was built for.
    pub syms: Vec<i64>,
    /// In-memory version, if the region is tensorizable and schedulable.
    pub tdfg: Option<Tdfg>,
    /// Near-memory version (always present).
    pub sdfg: Sdfg,
    /// Backend schedules, one per geometry that fits.
    pub schedules: Vec<Schedule>,
    /// Layout hints for the runtime's tiling decision (§3.4).
    pub hints: LayoutHints,
    /// Aggregate op info for the in-/near-memory decision (Eq 2).
    pub profile: OpProfile,
}

impl RegionInstance {
    /// The schedule matching a hardware geometry, if the fat binary carries one.
    pub fn schedule_for(&self, geometry: SramGeometry) -> Option<&Schedule> {
        self.schedules.iter().find(|s| s.geometry == geometry)
    }

    /// True if the instance can execute in-memory on the given geometry.
    pub fn supports_in_memory(&self, geometry: SramGeometry) -> bool {
        self.tdfg.is_some() && self.schedule_for(geometry).is_some()
    }
}

/// The fat binary: every compiled region of a program, serializable so the
/// artifact can be inspected and shipped (we use JSON rather than an opaque
/// encoding to keep the reproduction debuggable).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FatBinary {
    /// Compiled regions.
    pub regions: Vec<CompiledRegion>,
}

impl FatBinary {
    /// An empty binary.
    pub fn new() -> Self {
        FatBinary::default()
    }

    /// Adds a region and returns its index.
    pub fn push(&mut self, region: CompiledRegion) -> usize {
        self.regions.push(region);
        self.regions.len() - 1
    }

    /// Looks up a region by kernel name.
    pub fn region(&self, name: &str) -> Option<&CompiledRegion> {
        self.regions.iter().find(|r| r.name() == name)
    }

    /// Serializes to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::Serialize`] on encoder failure.
    pub fn to_json(&self) -> Result<String, IsaError> {
        serde_json::to_string(self).map_err(|e| IsaError::Serialize(e.to_string()))
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::Serialize`] on malformed input.
    pub fn from_json(s: &str) -> Result<Self, IsaError> {
        serde_json::from_str(s).map_err(|e| IsaError::Serialize(e.to_string()))
    }

    /// A stable 64-bit content hash of the binary (FNV-1a over its canonical
    /// JSON encoding, which writes struct fields in declaration order).
    /// Binaries that serialize identically hash identically — the
    /// content-addressing key the serving layer's artifact cache uses, so a
    /// kernel compiled by one tenant is found by every other tenant.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::Serialize`] if the binary cannot be encoded.
    pub fn content_hash(&self) -> Result<u64, IsaError> {
        Ok(fnv1a(self.to_json()?.as_bytes()))
    }
}

/// FNV-1a over a byte string: tiny, dependency-free, stable across platforms
/// and processes (unlike `DefaultHasher`, which is seeded per process).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use infs_frontend::{Idx, KernelBuilder, ScalarExpr};
    use infs_sdfg::DataType;

    fn stencil_kernel() -> Kernel {
        let mut k = KernelBuilder::new("stencil1d", DataType::F32);
        let n = k.sym("n");
        let a = k.array("A", vec![64]);
        let b = k.array("B", vec![64]);
        let i = k.parallel_loop_bounds("i", Idx::constant(1), Idx::sym_plus(n, -1));
        let e = ScalarExpr::add(
            ScalarExpr::add(
                ScalarExpr::load(a, vec![Idx::var_plus(i, -1)]),
                ScalarExpr::load(a, vec![Idx::var(i)]),
            ),
            ScalarExpr::load(a, vec![Idx::var_plus(i, 1)]),
        );
        k.assign(b, vec![Idx::var(i)], e);
        k.build().unwrap()
    }

    fn gather_kernel() -> Kernel {
        let mut k = KernelBuilder::new("gather", DataType::F32);
        let data = k.array("data", vec![64]);
        let idx = k.array_typed("idx", vec![16], DataType::I32);
        let out = k.array("out", vec![16]);
        let i = k.parallel_loop("i", 0, 16);
        k.assign(
            out,
            vec![Idx::var(i)],
            ScalarExpr::LoadIndirect {
                array: data,
                dim: 0,
                index: Box::new(ScalarExpr::load(idx, vec![Idx::var(i)])),
                rest: vec![Idx::constant(0)],
            },
        );
        k.build().unwrap()
    }

    #[test]
    fn compile_tensorizable_region() {
        let c = Compiler::default();
        let region = c.compile(stencil_kernel(), &[64]).unwrap();
        assert!(region.tensorizable);
        let inst = region.instantiate(&[64]).unwrap();
        assert!(inst.tdfg.is_some());
        assert_eq!(inst.schedules.len(), 2);
        assert!(inst.supports_in_memory(SramGeometry::G256));
        assert!(!inst.hints.shift_dims.is_empty());
        assert!(inst.profile.max_domain_elems > 0);
    }

    #[test]
    fn compile_irregular_region_is_near_memory_only() {
        let c = Compiler::default();
        let region = c.compile(gather_kernel(), &[]).unwrap();
        assert!(!region.tensorizable);
        let inst = region.instantiate(&[]).unwrap();
        assert!(inst.tdfg.is_none());
        assert!(!inst.supports_in_memory(SramGeometry::G256));
        assert!(!inst.sdfg.streams().is_empty());
    }

    #[test]
    fn reinstantiation_changes_domains_not_structure() {
        let c = Compiler::default();
        let region = c.compile(stencil_kernel(), &[64]).unwrap();
        let a = region.instantiate(&[32]).unwrap();
        let b = region.instantiate(&[64]).unwrap();
        let (ga, gb) = (a.tdfg.unwrap(), b.tdfg.unwrap());
        assert_eq!(ga.nodes().len(), gb.nodes().len());
        assert_ne!(
            ga.domain(ga.outputs()[0].node),
            gb.domain(gb.outputs()[0].node)
        );
    }

    #[test]
    fn fat_binary_roundtrips_json() {
        let c = Compiler::default();
        let mut fb = FatBinary::new();
        fb.push(c.compile(stencil_kernel(), &[64]).unwrap());
        fb.push(c.compile(gather_kernel(), &[]).unwrap());
        let json = fb.to_json().unwrap();
        let back = FatBinary::from_json(&json).unwrap();
        assert_eq!(back.regions.len(), 2);
        assert!(back.region("stencil1d").unwrap().tensorizable);
        assert!(!back.region("gather").unwrap().tensorizable);
        assert!(back.region("nope").is_none());
    }

    /// Content hashes are stable across serialize→parse round trips, equal
    /// for equal content, and (practically) distinct for different content.
    #[test]
    fn content_hash_is_stable_and_content_addressed() {
        let c = Compiler::default();
        let mut fb = FatBinary::new();
        fb.push(c.compile(stencil_kernel(), &[64]).unwrap());
        let h1 = fb.content_hash().unwrap();
        let back = FatBinary::from_json(&fb.to_json().unwrap()).unwrap();
        assert_eq!(back.content_hash().unwrap(), h1);
        let mut other = FatBinary::new();
        other.push(c.compile(gather_kernel(), &[]).unwrap());
        assert_ne!(other.content_hash().unwrap(), h1);
        assert_ne!(FatBinary::new().content_hash().unwrap(), h1);
        // fnv1a itself is the published FNV-1a (empty-string basis check).
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }

    /// The progress gate sees every stage in order for a tensorizable kernel,
    /// and returning `false` cancels with the stage's name.
    #[test]
    fn staged_compile_gates_and_cancels() {
        let c = Compiler::default();
        let mut seen = Vec::new();
        c.compile_with(stencil_kernel(), &[64], &mut |s| {
            seen.push(s);
            true
        })
        .unwrap();
        assert_eq!(
            seen,
            vec![
                CompileStage::Streamize,
                CompileStage::Tensorize,
                CompileStage::Optimize,
                CompileStage::Schedule,
                CompileStage::Instantiate,
            ]
        );
        // Cancel before the optimizer: the error names the stage.
        let mut n = 0;
        let err = c
            .compile_with(stencil_kernel(), &[64], &mut |_| {
                n += 1;
                n <= 2
            })
            .unwrap_err();
        match err {
            IsaError::Cancelled(stage) => assert_eq!(stage, "optimize"),
            other => panic!("expected Cancelled, got {other:?}"),
        }
        assert!(err_display_mentions_stage());
    }

    fn err_display_mentions_stage() -> bool {
        IsaError::Cancelled("optimize".into())
            .to_string()
            .contains("optimize")
    }

    /// A non-tensorizable kernel skips the optimize/schedule stages but still
    /// gates streamize, tensorize and instantiate.
    #[test]
    fn staged_compile_skips_in_memory_stages_when_irregular() {
        let c = Compiler::default();
        let mut seen = Vec::new();
        c.compile_with(gather_kernel(), &[], &mut |s| {
            seen.push(s);
            true
        })
        .unwrap();
        assert_eq!(
            seen,
            vec![
                CompileStage::Streamize,
                CompileStage::Tensorize,
                CompileStage::Instantiate,
            ]
        );
    }

    #[test]
    fn optimizer_ablation_switch() {
        let c = Compiler {
            optimize: false,
            ..Default::default()
        };
        let region = c.compile(stencil_kernel(), &[64]).unwrap();
        assert!(region.tensorizable);
        let inst = region.instantiate(&[64]).unwrap();
        assert!(inst.tdfg.is_some());
    }
}

//! Property test for the fat-binary JSON round trip.
//!
//! The fat binary's JSON encoding is now also the serving layer's **wire
//! format** (`infs-serve` ships binaries between client and server as
//! newline-delimited JSON), so serialize → parse → serialize must be
//! byte-identical for arbitrary multi-region binaries — not just the two
//! hand-written examples the unit tests cover.

use infs_frontend::{Idx, KernelBuilder, ScalarExpr};
use infs_isa::{Compiler, FatBinary};
use infs_sdfg::DataType;
use proptest::prelude::*;

/// Builds one compilable kernel from a small parameter tuple. Covers both
/// pipeline outcomes: dense stencil-like kernels (tensorizable, schedules +
/// representative tDFG embedded in the binary) and indirect gathers
/// (near-memory only, no tDFG).
fn kernel_from(
    region: usize,
    n_log: u32,
    halo: bool,
    scale_param: bool,
    indirect: bool,
) -> infs_frontend::Kernel {
    let n = 1u64 << n_log; // 8..=64
    if indirect {
        let mut k = KernelBuilder::new(format!("gather{region}"), DataType::F32);
        let data = k.array("data", vec![n]);
        let idx = k.array_typed("idx", vec![n / 2], DataType::I32);
        let out = k.array("out", vec![n / 2]);
        let i = k.parallel_loop("i", 0, (n / 2) as i64);
        k.assign(
            out,
            vec![Idx::var(i)],
            ScalarExpr::LoadIndirect {
                array: data,
                dim: 0,
                index: Box::new(ScalarExpr::load(idx, vec![Idx::var(i)])),
                rest: vec![Idx::constant(0)],
            },
        );
        return k.build().unwrap();
    }
    let mut k = KernelBuilder::new(format!("dense{region}"), DataType::F32);
    let a = k.array("A", vec![n]);
    let b = k.array("B", vec![n]);
    let (lo, hi) = if halo {
        (1, n as i64 - 1)
    } else {
        (0, n as i64)
    };
    let i = k.parallel_loop("i", lo, hi);
    let mut e = ScalarExpr::load(a, vec![Idx::var(i)]);
    if halo {
        e = ScalarExpr::add(e, ScalarExpr::load(a, vec![Idx::var_plus(i, -1)]));
    }
    if scale_param {
        e = ScalarExpr::mul(e, ScalarExpr::Param(0));
    }
    k.assign(b, vec![Idx::var(i)], e);
    k.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary multi-region binaries survive serialize → parse → serialize
    /// byte-identically, and the parsed binary preserves region identity and
    /// its content address.
    #[test]
    fn prop_fat_binary_json_roundtrip_is_byte_identical(
        shapes in proptest::collection::vec(
            (3u32..7, proptest::bool::ANY, proptest::bool::ANY, proptest::bool::ANY),
            1..4,
        ),
        optimize in proptest::bool::ANY,
    ) {
        let compiler = Compiler { optimize, ..Default::default() };
        let mut fb = FatBinary::new();
        for (region, &(n_log, halo, scale, indirect)) in shapes.iter().enumerate() {
            let k = kernel_from(region, n_log, halo, scale, indirect);
            fb.push(compiler.compile(k, &[]).unwrap());
        }

        let json1 = fb.to_json().unwrap();
        let back = FatBinary::from_json(&json1).unwrap();
        let json2 = back.to_json().unwrap();
        prop_assert_eq!(&json1, &json2, "round trip changed the encoding");

        // The parsed binary is the same artifact: same regions, same names,
        // same tensorizability, same content address.
        prop_assert_eq!(back.regions.len(), fb.regions.len());
        for (orig, parsed) in fb.regions.iter().zip(&back.regions) {
            prop_assert_eq!(orig.name(), parsed.name());
            prop_assert_eq!(orig.tensorizable, parsed.tensorizable);
        }
        prop_assert_eq!(
            back.content_hash().unwrap(),
            fb.content_hash().unwrap(),
            "content address changed across the wire"
        );
    }
}

//! Property tests for the degradation ladder (`DESIGN.md` §10): placement
//! never lands on a dead bank, and the in-memory → near-memory → host
//! fallback is monotone — degrading health never *upgrades* the tier.

use infs_faults::BankHealth;
use infs_runtime::{decide, decide_healthy, place_on_healthy, HwConfig, Paradigm, Tier};
use infs_tdfg::OpProfile;
use proptest::prelude::*;

fn profile(elems: u64, ops: u64, lat: u64) -> OpProfile {
    OpProfile {
        max_domain_elems: elems,
        ops_per_elem: ops,
        total_elem_ops: elems.saturating_mul(ops),
        total_bit_serial_latency: lat,
        node_count: 8,
        moved_elems: 0,
        per_op: Vec::new(),
    }
}

/// Build a health mask over `n` banks from a kill bitmask.
fn mask(n: u32, kill: u64) -> BankHealth {
    let mut h = BankHealth::all_healthy(n);
    for b in 0..n.min(64) {
        if kill >> b & 1 == 1 {
            h.mark_dead(b);
        }
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Placement over a random health mask never lands on a dead bank, and
    /// fails (None) exactly when every bank is dead.
    #[test]
    fn prop_placement_avoids_dead_banks(
        kill in 0u64..u64::MAX,
        n_items in 1usize..100,
    ) {
        let health = mask(64, kill);
        match place_on_healthy(n_items, &health) {
            None => prop_assert!(!health.any_healthy()),
            Some(places) => {
                prop_assert_eq!(places.len(), n_items);
                for b in places {
                    prop_assert!(health.is_healthy(b), "placed on dead bank {b}");
                }
            }
        }
    }

    /// Killing one more healthy bank never moves a region *up* the ladder.
    #[test]
    fn prop_ladder_is_monotone(
        kill in 0u64..u64::MAX,
        extra in 0u32..64,
        elems_log in 10u32..26,
        ops in 1u64..8,
        lat in 0u64..5_000_000,
        jit in 0u64..100_000,
    ) {
        let hw = HwConfig::default();
        let p = profile(1u64 << elems_log, ops, lat);
        let before = mask(64, kill);
        let mut after = before.clone();
        after.mark_dead(extra);
        let t_before = decide_healthy(&p, &hw, jit, &before);
        let t_after = decide_healthy(&p, &hw, jit, &after);
        prop_assert!(
            t_after <= t_before,
            "killing bank {extra} upgraded {:?} -> {:?}", t_before, t_after
        );
    }

    /// With every bank healthy the ladder agrees with the plain Eq 2
    /// decision; with no healthy banks it is always Host.
    #[test]
    fn prop_ladder_endpoints(
        elems_log in 10u32..26,
        ops in 1u64..8,
        lat in 0u64..5_000_000,
        jit in 0u64..100_000,
    ) {
        let hw = HwConfig::default();
        let p = profile(1u64 << elems_log, ops, lat);
        let full = BankHealth::all_healthy(64);
        let expect = match decide(&p, &hw, jit) {
            Paradigm::InMemory => Tier::InMemory,
            Paradigm::NearMemory => Tier::NearMemory,
        };
        prop_assert_eq!(decide_healthy(&p, &hw, jit, &full), expect);
        let dead = mask(64, u64::MAX);
        prop_assert_eq!(decide_healthy(&p, &hw, jit, &dead), Tier::Host);
    }

    /// A dead-bank mask can only *shrink* the set of regions that qualify
    /// for in-memory: anything in-memory under partial health is also
    /// in-memory under full health.
    #[test]
    fn prop_degraded_in_memory_implies_healthy_in_memory(
        kill in 0u64..u64::MAX,
        elems_log in 10u32..26,
        lat in 0u64..5_000_000,
    ) {
        let hw = HwConfig::default();
        let p = profile(1u64 << elems_log, 3, lat);
        let health = mask(64, kill);
        if decide_healthy(&p, &hw, 500, &health) == Tier::InMemory {
            let full = BankHealth::all_healthy(64);
            prop_assert_eq!(decide_healthy(&p, &hw, 500, &full), Tier::InMemory);
        }
    }
}

//! Regression: structurally invalid graphs and schedules must surface typed
//! [`RuntimeError::MalformedGraph`] values from the JIT lowering path, never
//! panics. Built graphs can't be malformed (the builder validates), but a fat
//! binary deserialized from the wire bypasses the builder entirely — a serve
//! worker must survive whatever it is fed.

use infs_frontend::{Idx, KernelBuilder, ScalarExpr};
use infs_isa::{Schedule, SramGeometry};
use infs_runtime::{lower, HwConfig, RuntimeError, TransposedLayout};
use infs_sdfg::DataType;
use infs_tdfg::{NodeId, Tdfg};
use serde_json::Value;

/// Mutable access to an object field of a JSON tree.
fn field_mut<'a>(v: &'a mut Value, key: &str) -> &'a mut Value {
    match v {
        Value::Object(o) => {
            &mut o
                .iter_mut()
                .find(|(k, _)| k == key)
                .unwrap_or_else(|| panic!("no field {key}"))
                .1
        }
        _ => panic!("not an object"),
    }
}

/// Mutable access to an array element of a JSON tree.
fn elem_mut(v: &mut Value, i: usize) -> &mut Value {
    match v {
        Value::Array(a) => &mut a[i],
        _ => panic!("not an array"),
    }
}

/// Index of the first `Mv` node in a serialized graph.
fn first_mv_index(v: &Value) -> usize {
    v.get("nodes")
        .and_then(Value::as_array)
        .unwrap()
        .iter()
        .position(|n| n.get("Mv").is_some())
        .expect("stencil has mv nodes")
}

/// 1-D three-point stencil over 512 cells: tensorizes into inputs, two `mv`
/// alignment nodes, a compute tree, and an array output.
fn stencil1d_tdfg() -> Tdfg {
    let mut k = KernelBuilder::new("s1", DataType::F32);
    let a = k.array("A", vec![512]);
    let b = k.array("B", vec![512]);
    let i = k.parallel_loop("i", 1, 511);
    let e = ScalarExpr::add(
        ScalarExpr::load(a, vec![Idx::var_plus(i, -1)]),
        ScalarExpr::load(a, vec![Idx::var_plus(i, 1)]),
    );
    k.assign(b, vec![Idx::var(i)], e);
    k.build().unwrap().tensorize(&[]).unwrap()
}

fn plan_and_schedule(g: &Tdfg) -> (TransposedLayout, Schedule, HwConfig) {
    let hw = HwConfig::default();
    let layout = TransposedLayout::plan(g, &g.layout_hints(), &hw).unwrap();
    let schedule = Schedule::compute(g, SramGeometry::G256).unwrap();
    (layout, schedule, hw)
}

#[test]
fn dangling_schedule_order_id_is_a_typed_error() {
    let g = stencil1d_tdfg();
    let (layout, mut schedule, hw) = plan_and_schedule(&g);
    schedule.order.push(NodeId(999));
    let err = lower(&g, &schedule, &layout, &hw).unwrap_err();
    assert!(
        matches!(err, RuntimeError::MalformedGraph { node: 999, .. }),
        "got {err:?}"
    );
}

#[test]
fn mv_without_domain_is_a_typed_error() {
    let g = stencil1d_tdfg();
    let (layout, schedule, hw) = plan_and_schedule(&g);
    // Null out an mv node's domain the way a corrupt fat binary would.
    let mut v = serde_json::to_value(&g);
    let mv_idx = first_mv_index(&v);
    *elem_mut(field_mut(&mut v, "domains"), mv_idx) = Value::Null;
    let bad: Tdfg = serde_json::from_value(&v).unwrap();
    let err = lower(&bad, &schedule, &layout, &hw).unwrap_err();
    assert!(
        matches!(err, RuntimeError::MalformedGraph { what, .. } if what.contains("domain")),
        "got {err:?}"
    );
}

#[test]
fn dangling_node_input_is_a_typed_error() {
    let g = stencil1d_tdfg();
    let (layout, schedule, hw) = plan_and_schedule(&g);
    let mut v = serde_json::to_value(&g);
    let mv_idx = first_mv_index(&v);
    let mv = field_mut(elem_mut(field_mut(&mut v, "nodes"), mv_idx), "Mv");
    *field_mut(mv, "input") = Value::UInt(999);
    let bad: Tdfg = serde_json::from_value(&v).unwrap();
    let err = lower(&bad, &schedule, &layout, &hw).unwrap_err();
    assert!(
        matches!(err, RuntimeError::MalformedGraph { .. }),
        "got {err:?}"
    );
}

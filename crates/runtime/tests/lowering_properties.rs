//! Property-based invariants of the JIT lowering (Algorithm 1 + Algorithm 2):
//! conservation (every surviving element moves exactly once), mask/piece
//! disjointness, and tile-choice independence of totals.

use infs_geom::TileShape;
use infs_isa::{Schedule, SramGeometry};
use infs_runtime::{lower, CommandStream, HwConfig, TransposedLayout};
use infs_sdfg::{ArrayDecl, DataType};
use infs_tdfg::{OutputTarget, Tdfg, TdfgBuilder};
use proptest::prelude::*;

/// A machine small enough that proptest can sweep tile shapes meaningfully.
fn hw(bitlines: u32) -> HwConfig {
    HwConfig {
        n_banks: 4,
        arrays_per_bank: 64,
        geometry: SramGeometry {
            wordlines: 256,
            bitlines,
        },
        line_bytes: 4,
        ..Default::default()
    }
}

/// mv of the full `n×n` array by `dist` along `dim`.
fn mv_graph(n: u64, dim: usize, dist: i64) -> Tdfg {
    let mut b = TdfgBuilder::new(2, DataType::F32);
    let a = b.declare_array(ArrayDecl::new("A", vec![n, n], DataType::F32));
    let o = b.declare_array(ArrayDecl::new("O", vec![n, n], DataType::F32));
    let full = infs_geom::HyperRect::new(vec![(0, n as i64), (0, n as i64)]).unwrap();
    let x = b.input(a, full).unwrap();
    let m = b.mv(x, dim, dist).unwrap();
    let dom = {
        let (p, q) = (0i64.max(dist), (n as i64).min(n as i64 + dist));
        let mut iv = vec![(0, n as i64), (0, n as i64)];
        iv[dim] = (p, q);
        infs_geom::HyperRect::new(iv).unwrap()
    };
    b.output(m, OutputTarget::array(o, dom));
    b.build().unwrap()
}

fn moved_elems(cs: &CommandStream) -> u64 {
    cs.stats.intra_elems + cs.stats.inter_local_elems + cs.stats.inter_remote_bytes / 4
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: a mv moves exactly the surviving (unclipped) elements,
    /// regardless of tile shape, dimension or direction.
    #[test]
    fn prop_mv_moves_every_surviving_element_once(
        dim in 0usize..2,
        dist in -7i64..8,
        t0_log in 0u32..5,
    ) {
        prop_assume!(dist != 0);
        let n = 16u64;
        let hw = hw(16);
        let g = mv_graph(n, dim, dist);
        let schedule = Schedule::compute(&g, hw.geometry).unwrap();
        let tile = TileShape::new(vec![1 << t0_log, 16 >> t0_log]).unwrap();
        let layout = TransposedLayout::plan_with_tile(&g, tile, &hw).unwrap();
        let cs = lower(&g, &schedule, &layout, &hw).unwrap();
        let surviving = (n - dist.unsigned_abs()) * n;
        prop_assert_eq!(
            moved_elems(&cs), surviving,
            "dim={} dist={} tile={}", dim, dist, layout.tile()
        );
    }

    /// Tile-shape invariance: total compute elements are identical across all
    /// valid tilings (only the intra/inter split changes).
    #[test]
    fn prop_compute_elems_tile_invariant(t0_log in 0u32..5, n in 8u64..17) {
        let hw = hw(16);
        let mut b = TdfgBuilder::new(2, DataType::F32);
        let a = b.declare_array(ArrayDecl::new("A", vec![32, 32], DataType::F32));
        let full = infs_geom::HyperRect::new(vec![(0, n as i64), (0, n as i64)]).unwrap();
        let x = b.input(a, full.clone()).unwrap();
        let y = b.compute(infs_tdfg::ComputeOp::Relu, &[x]).unwrap();
        b.output(y, OutputTarget::array(a, full));
        let g = b.build().unwrap();
        let schedule = Schedule::compute(&g, hw.geometry).unwrap();
        let tile = TileShape::new(vec![1 << t0_log, 16 >> t0_log]).unwrap();
        let layout = TransposedLayout::plan_with_tile(&g, tile, &hw).unwrap();
        let cs = lower(&g, &schedule, &layout, &hw).unwrap();
        let compute_elems: u64 = cs
            .cmds
            .iter()
            .filter_map(|c| match c {
                infs_runtime::InfCommand::Compute { banks, .. } => {
                    Some(banks.iter().map(|b| b.elems).sum::<u64>())
                }
                _ => None,
            })
            .sum();
        prop_assert_eq!(compute_elems, n * n);
    }

    /// Sync safety: every command with remote transfers is followed by a sync
    /// before any compute/final-reduce command executes.
    #[test]
    fn prop_remote_shifts_are_fenced(dim in 0usize..2, dist in 1i64..6) {
        let hw = hw(16);
        // shift + consume: B = mv(A) + A
        let n = 16u64;
        let mut b = TdfgBuilder::new(2, DataType::F32);
        let a = b.declare_array(ArrayDecl::new("A", vec![n, n], DataType::F32));
        let o = b.declare_array(ArrayDecl::new("O", vec![n, n], DataType::F32));
        let full = infs_geom::HyperRect::new(vec![(0, n as i64), (0, n as i64)]).unwrap();
        let x = b.input(a, full).unwrap();
        let m = b.mv(x, dim, dist).unwrap();
        let s = b.compute(infs_tdfg::ComputeOp::Add, &[x, m]).unwrap();
        let dom = {
            let mut iv = vec![(0, n as i64), (0, n as i64)];
            iv[dim] = (dist, n as i64);
            infs_geom::HyperRect::new(iv).unwrap()
        };
        b.output(s, OutputTarget::array(o, dom));
        let g = b.build().unwrap();
        let schedule = Schedule::compute(&g, hw.geometry).unwrap();
        let layout =
            TransposedLayout::plan(&g, &g.layout_hints(), &hw).unwrap();
        let cs = lower(&g, &schedule, &layout, &hw).unwrap();
        let mut pending_remote = false;
        for cmd in &cs.cmds {
            match cmd {
                infs_runtime::InfCommand::InterShift { remote, .. } if !remote.is_empty() => {
                    pending_remote = true;
                }
                infs_runtime::InfCommand::Sync => pending_remote = false,
                infs_runtime::InfCommand::Compute { .. }
                | infs_runtime::InfCommand::FinalReduce { .. } => {
                    prop_assert!(!pending_remote, "unfenced remote data before compute");
                }
                _ => {}
            }
        }
    }
}

use crate::HwConfig;
use infs_tdfg::OpProfile;
use serde::{Deserialize, Serialize};

/// Where the runtime decides to execute a region (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Paradigm {
    /// Offload the tDFG to the compute SRAM arrays (bit-serial in-memory).
    InMemory,
    /// Offload the sDFG to the L3 stream engines (near-memory).
    NearMemory,
}

/// The Eq 2 in-/near-memory decision:
///
/// ```text
/// N_elem × N_op / TP_core  >  Σᵢ Lat_opᵢ + N_node × Lat_JIT
/// ```
///
/// The left side models a core executing every element operation at peak
/// throughput; the right side is the in-memory latency — independent of
/// `N_elem` because computation is fully parallel across bitlines — plus the
/// JIT lowering time. The compiler's aggregate [`OpProfile`] hints make this a
/// constant-time check, "a basic and conservative heuristic (assuming peak core
/// performance), but sufficient for the studied workloads".
///
/// `expected_jit_cycles` is the memoization-aware lowering estimate: pass
/// [`HwConfig::jit_hit_cycles`] when the command stream is already cached.
pub fn decide(profile: &OpProfile, hw: &HwConfig, expected_jit_cycles: u64) -> Paradigm {
    if profile.max_domain_elems == 0 {
        return Paradigm::NearMemory;
    }
    // TP_core is the offloading core's own peak (the paper offloads from a
    // single-thread scalar version, §7): one 512-bit vector per cycle.
    let lhs = profile
        .max_domain_elems
        .saturating_mul(profile.ops_per_elem)
        / (hw.simd_lanes as u64).max(1);
    // Fixed offload overhead: configuration, way reservation and the final
    // sync barrier — keeps tiny regions (small MLP layers, Fig 19) off the
    // bitlines even when commands are precompiled.
    const OFFLOAD_OVERHEAD: u64 = 2_000;
    let rhs = profile.total_bit_serial_latency + expected_jit_cycles + OFFLOAD_OVERHEAD;
    if lhs > rhs {
        Paradigm::InMemory
    } else {
        Paradigm::NearMemory
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(elems: u64, ops: u64, lat: u64, nodes: u64) -> OpProfile {
        OpProfile {
            max_domain_elems: elems,
            ops_per_elem: ops,
            total_elem_ops: elems * ops,
            total_bit_serial_latency: lat,
            node_count: nodes,
            moved_elems: 0,
            per_op: Vec::new(),
        }
    }

    #[test]
    fn large_inputs_go_in_memory() {
        let hw = HwConfig::default();
        // 4M elements, 3 ops each: core side ~12k cycles vs ~1k bit-serial.
        let p = profile(4 << 20, 3, 1_000, 8);
        assert_eq!(decide(&p, &hw, 10_000), Paradigm::InMemory);
    }

    #[test]
    fn small_inputs_stay_near_memory() {
        let hw = HwConfig::default();
        // 16k elements: core finishes in ~48 cycles; bit-serial alone is ~1k.
        let p = profile(16 << 10, 3, 1_000, 8);
        assert_eq!(decide(&p, &hw, 10_000), Paradigm::NearMemory);
    }

    #[test]
    fn jit_cost_can_flip_the_decision() {
        let hw = HwConfig::default();
        let p = profile(1 << 20, 2, 1_000, 8);
        // LHS = 2M/1024 = 2048.
        assert_eq!(decide(&p, &hw, 500), Paradigm::InMemory);
        assert_eq!(decide(&p, &hw, 2_000_000), Paradigm::NearMemory);
    }

    #[test]
    fn empty_profile_is_near_memory() {
        let hw = HwConfig::default();
        assert_eq!(decide(&OpProfile::default(), &hw, 0), Paradigm::NearMemory);
    }
}

//! JIT lowering of scheduled tDFGs into bit-serial in-memory commands
//! (paper §4.2): tensor decomposition (Alg 1), shift compilation (Alg 2),
//! mapping to L3 banks, and synchronization insertion.
//!
//! Commands carry exact per-bank tile/element loads and remote (cross-bank)
//! transfer lists. They are the *timing* representation consumed by the
//! simulator; functional values always come from the tDFG interpreter.
//!
//! Two entry points share one emission core:
//!
//! - [`lower`] walks the graph directly (the cold path);
//! - [`instantiate`] walks a relocatable [`CommandTemplate`] plus a fresh
//!   slot table (the template-hit path of the shape-polymorphic JIT).
//!
//! Because both paths drive the same decomposition/masking/bank-mapping
//! helpers, a template distilled from one instance and patched with another
//! instance's slots must reproduce the re-lowered stream bit for bit — the
//! `check` auditor and the differential fuzzer enforce exactly that.

use crate::template::{CommandTemplate, TemplateOp};
use crate::{HwConfig, RuntimeError, TransposedLayout};
use infs_geom::{decompose, HyperRect};
use infs_isa::Schedule;
use infs_sdfg::ReduceOp;
use infs_tdfg::{bit_serial_latency, ComputeOp, Node, NodeId, Tdfg};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Work one command performs at one L3 bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankLoad {
    /// Bank id.
    pub bank: u32,
    /// Tiles of the command mapped to this bank.
    pub tiles: u64,
    /// Elements processed at this bank.
    pub elems: u64,
}

/// A cross-bank transfer a command injects into the NoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemoteTransfer {
    /// Source bank.
    pub src_bank: u32,
    /// Destination bank.
    pub dst_bank: u32,
    /// Payload bytes.
    pub bytes: u64,
}

/// One lowered in-memory command.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InfCommand {
    /// Bit-serial element-wise computation across all participating bitlines.
    Compute {
        /// Producing tDFG node.
        node: NodeId,
        /// Operation.
        op: ComputeOp,
        /// Bit-serial latency in SRAM cycles.
        latency: u64,
        /// Bytes of constant operands broadcast to bitlines first (§5.2).
        imm_bytes: u64,
        /// Per-bank load.
        banks: Vec<BankLoad>,
    },
    /// Shift of selected bitlines within each tile (stays inside each SRAM
    /// array; massive parallelism, no NoC traffic).
    IntraShift {
        /// tDFG node being lowered.
        node: NodeId,
        /// Shifted dimension.
        dim: usize,
        /// Intra-tile distance in bitline positions (signed).
        dist: i64,
        /// Per-bank load.
        banks: Vec<BankLoad>,
    },
    /// Shift of selected bitlines across tile boundaries: through the H-tree
    /// within a bank, through the NoC when the destination tile lives in
    /// another bank.
    InterShift {
        /// tDFG node being lowered.
        node: NodeId,
        /// Shifted dimension.
        dim: usize,
        /// Whole tiles of distance (signed).
        tile_dist: i64,
        /// Residual intra-tile distance (signed).
        intra_dist: i64,
        /// Per-source-bank load.
        banks: Vec<BankLoad>,
        /// Cross-bank payloads.
        remote: Vec<RemoteTransfer>,
    },
    /// Broadcast of a unit-thick tensor to many tiles (H-tree multicast within
    /// banks, one NoC copy per destination bank).
    Broadcast {
        /// tDFG node being lowered.
        node: NodeId,
        /// Broadcast dimension.
        dim: usize,
        /// Source elements (read once).
        src_elems: u64,
        /// Per-destination-bank load (tiles written).
        banks: Vec<BankLoad>,
        /// Cross-bank payloads.
        remote: Vec<RemoteTransfer>,
    },
    /// Near-memory collection of per-tile partial reductions into final values
    /// (executed by the L3 stream engines, §3.3 / Fig 10).
    FinalReduce {
        /// tDFG reduce node.
        node: NodeId,
        /// Partial values to collect and reduce.
        partials: u64,
        /// Per-bank partial counts.
        banks: Vec<BankLoad>,
    },
    /// Global memory barrier: all prior inter-tile movement must be visible
    /// before anything after executes (§4.2).
    Sync,
}

impl InfCommand {
    /// Per-bank loads, empty for `Sync`.
    pub fn banks(&self) -> &[BankLoad] {
        match self {
            InfCommand::Compute { banks, .. }
            | InfCommand::IntraShift { banks, .. }
            | InfCommand::InterShift { banks, .. }
            | InfCommand::Broadcast { banks, .. }
            | InfCommand::FinalReduce { banks, .. } => banks,
            InfCommand::Sync => &[],
        }
    }
}

/// Aggregate statistics of a lowered command stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoweredStats {
    /// Total commands (including syncs).
    pub n_cmds: u64,
    /// Elements moved by intra-tile shifts.
    pub intra_elems: u64,
    /// Elements moved across tiles but within a bank.
    pub inter_local_elems: u64,
    /// Bytes injected into the NoC by inter-tile shifts and broadcasts.
    pub inter_remote_bytes: u64,
    /// Sync barriers inserted.
    pub syncs: u64,
    /// Partial values collected by near-memory final reduction.
    pub final_reduce_partials: u64,
    /// Bit-serial compute commands.
    pub compute_cmds: u64,
    /// Commands whose emission class (operator kind + immediate width) was
    /// already materialized earlier in the same stream. The JIT charges these
    /// the copy-and-patch rate instead of the full per-command rate
    /// ([`HwConfig::jit_cycles_templated`]); cache accounting attributes them
    /// to the template path even on a cold lowering.
    pub cmds_from_template: u64,
}

/// A lowered region: the command stream plus the modeled JIT lowering cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommandStream {
    /// Commands in execution order.
    pub cmds: Vec<InfCommand>,
    /// Modeled JIT lowering cycles (steps 1–3 of §4.2).
    pub jit_cycles: u64,
    /// Aggregate statistics.
    pub stats: LoweredStats,
}

/// Emission class of a command: the key under which a later command can
/// reuse the materialized skeleton of an earlier one in the same stream,
/// paying the copy-and-patch rate instead of the full per-command rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CmdClass {
    Compute(ComputeOp, u64),
    IntraShift,
    InterShift,
    Broadcast,
    FinalReduce,
    Sync,
}

fn class_of(cmd: &InfCommand) -> CmdClass {
    match cmd {
        InfCommand::Compute { op, imm_bytes, .. } => CmdClass::Compute(*op, *imm_bytes),
        InfCommand::IntraShift { .. } => CmdClass::IntraShift,
        InfCommand::InterShift { .. } => CmdClass::InterShift,
        InfCommand::Broadcast { .. } => CmdClass::Broadcast,
        InfCommand::FinalReduce { .. } => CmdClass::FinalReduce,
        InfCommand::Sync => CmdClass::Sync,
    }
}

/// The emission core shared by [`lower`] (direct graph walk) and
/// [`instantiate`] (template + slot table walk). Knows nothing about graphs
/// or templates — only layouts, rects and the per-node emission rules.
struct Emitter<'a> {
    layout: &'a TransposedLayout,
    cmds: Vec<InfCommand>,
    stats: LoweredStats,
    pending_sync: bool,
    elem_bytes: u64,
    seen: HashSet<CmdClass>,
}

/// JIT-lowers a scheduled tDFG into a command stream for the given layout.
///
/// # Errors
///
/// Returns [`RuntimeError::BadBounding`] if a node's domain escapes the
/// layout's lattice (cannot happen for graphs the layout was planned for).
pub fn lower(
    g: &Tdfg,
    schedule: &Schedule,
    layout: &TransposedLayout,
    hw: &HwConfig,
) -> Result<CommandStream, RuntimeError> {
    let mut span = infs_trace::span!("runtime.lower", nodes = g.nodes().len());
    // Deserialized fat binaries bypass the builder's validation: reject
    // dangling ids up front so every later indexed access is in range.
    let n_nodes = g.nodes().len();
    for &id in &schedule.order {
        if id.0 as usize >= n_nodes {
            return Err(RuntimeError::MalformedGraph {
                node: id.0,
                what: "schedule order references a node the graph does not have",
            });
        }
        for input in g.node(id).inputs() {
            if input.0 as usize >= n_nodes {
                return Err(RuntimeError::MalformedGraph {
                    node: id.0,
                    what: "node input references a node the graph does not have",
                });
            }
        }
    }
    let mut em = Emitter::new(layout, g.dtype().size_bytes() as u64);
    for &id in &schedule.order {
        match g.node(id) {
            Node::Input { .. }
            | Node::StreamIn { .. }
            | Node::Shrink { .. }
            | Node::ConstVal { .. }
            | Node::Param { .. } => {} // no commands: array-backed, alias, or immediate
            Node::Compute { op, inputs } => {
                let Some(domain) = g.domain(id) else {
                    continue; // constant-folded compute
                };
                let imm_inputs = inputs.iter().filter(|&&x| g.domain(x).is_none()).count() as u64;
                em.emit_compute(
                    id,
                    *op,
                    bit_serial_latency(*op, g.dtype()),
                    imm_inputs * em.elem_bytes,
                    &domain.clone(),
                )?;
            }
            Node::Mv { dim, dist, .. } => {
                let domain = g.domain(id).cloned();
                em.emit_mv(id, *dim, *dist, domain.as_ref())?;
            }
            Node::Bc { input, dim, .. } => {
                let domain = g.domain(id).cloned().ok_or(RuntimeError::MalformedGraph {
                    node: id.0,
                    what: "bc node has no finite domain",
                })?;
                let src = g
                    .domain(*input)
                    .cloned()
                    .ok_or(RuntimeError::MalformedGraph {
                        node: id.0,
                        what: "bc input has no finite domain",
                    })?;
                em.emit_bc(id, &src, &domain, *dim)?;
            }
            Node::Reduce { input, dim, op } => {
                let in_dom = g
                    .domain(*input)
                    .cloned()
                    .ok_or(RuntimeError::MalformedGraph {
                        node: id.0,
                        what: "reduce input has no finite domain",
                    })?;
                let eq = match op {
                    ReduceOp::Sum => ComputeOp::Add,
                    ReduceOp::Min => ComputeOp::Min,
                    ReduceOp::Max => ComputeOp::Max,
                };
                em.emit_reduce(id, &in_dom, *dim, eq, bit_serial_latency(eq, g.dtype()))?;
            }
        }
    }
    let cs = em.finish(hw);
    span.arg("cmds", cs.stats.n_cmds);
    span.arg("jit_cycles", cs.jit_cycles);
    Ok(cs)
}

/// Stamps a cached relocatable template out against a fresh slot table — the
/// template-hit path of the shape-polymorphic JIT (§4.2 extension).
///
/// Geometry is recomputed through the same emission core as [`lower`], so the
/// result is bitwise identical to fully re-lowering the instance the slots
/// were distilled from; only the *modeled* hardware cost differs (an
/// O(commands) copy-and-patch, [`HwConfig::jit_patch_cycles`], which the
/// caller charges instead of `CommandStream::jit_cycles`).
///
/// # Errors
///
/// [`RuntimeError::MalformedGraph`] if the slot table does not fit the
/// template (wrong length, escaping or inverted rects, out-of-range
/// dimension slots — possible only with a corrupted cache entry, which the
/// checksum catches first), [`RuntimeError::BadBounding`] as for [`lower`].
pub fn instantiate(
    t: &CommandTemplate,
    slots: &[i64],
    layout: &TransposedLayout,
    hw: &HwConfig,
) -> Result<CommandStream, RuntimeError> {
    let mut span = infs_trace::span!("runtime.instantiate", ops = t.ops.len());
    if slots.len() as u32 != t.n_slots {
        return Err(RuntimeError::MalformedGraph {
            node: 0,
            what: "slot table length does not match template",
        });
    }
    if t.ndim as usize != layout.tile().dims().len() {
        return Err(RuntimeError::MalformedGraph {
            node: 0,
            what: "template dimensionality does not match layout",
        });
    }
    let mut em = Emitter::new(layout, t.elem_bytes);
    for op in &t.ops {
        match op {
            TemplateOp::Compute {
                node,
                op,
                latency,
                imm_bytes,
                domain,
            } => {
                let d = t.rect(slots, *domain, *node)?;
                em.emit_compute(*node, *op, *latency, *imm_bytes, &d)?;
            }
            TemplateOp::Mv {
                node,
                dim,
                dist,
                domain,
            } => {
                let dist = t.value(slots, *dist, *node)?;
                if dist == 0 {
                    continue;
                }
                let dim = t.dim(slots, *dim, *node)?;
                let d = match domain {
                    Some(r) => Some(t.rect(slots, *r, *node)?),
                    None => None,
                };
                em.emit_mv(*node, dim, dist, d.as_ref())?;
            }
            TemplateOp::Bc {
                node,
                dim,
                src,
                dest,
            } => {
                let dim = t.dim(slots, *dim, *node)?;
                let src = t.rect(slots, *src, *node)?;
                let dest = t.rect(slots, *dest, *node)?;
                em.emit_bc(*node, &src, &dest, dim)?;
            }
            TemplateOp::Reduce {
                node,
                eq,
                latency,
                dim,
                domain,
            } => {
                let dim = t.dim(slots, *dim, *node)?;
                let in_dom = t.rect(slots, *domain, *node)?;
                em.emit_reduce(*node, &in_dom, dim, *eq, *latency)?;
            }
        }
    }
    let cs = em.finish(hw);
    span.arg("cmds", cs.stats.n_cmds);
    infs_trace::counter!("jit.instantiations", 1u64);
    Ok(cs)
}

impl<'a> Emitter<'a> {
    fn new(layout: &'a TransposedLayout, elem_bytes: u64) -> Self {
        Emitter {
            layout,
            cmds: Vec::new(),
            stats: LoweredStats::default(),
            pending_sync: false,
            elem_bytes,
            seen: HashSet::new(),
        }
    }

    /// Appends a command, tracking emission-class reuse for the templated
    /// JIT cost model.
    fn push(&mut self, cmd: InfCommand) {
        if !self.seen.insert(class_of(&cmd)) {
            self.stats.cmds_from_template += 1;
        }
        self.cmds.push(cmd);
    }

    /// Seals the stream: counts commands and applies the templated JIT cycle
    /// model (commands that reused an already-materialized emission class pay
    /// the copy-and-patch rate).
    fn finish(mut self, hw: &HwConfig) -> CommandStream {
        self.stats.n_cmds = self.cmds.len() as u64;
        let jit_cycles = hw.jit_cycles_templated(self.stats.n_cmds, self.stats.cmds_from_template);
        infs_trace::counter!("jit.commands", self.stats.n_cmds);
        infs_trace::counter!("jit.syncs", self.stats.syncs);
        CommandStream {
            cmds: self.cmds,
            jit_cycles,
            stats: self.stats,
        }
    }

    fn tile_dims(&self) -> Vec<u64> {
        self.layout.tile().dims().to_vec()
    }

    /// Barrier before a consuming command if inter-tile data is in flight.
    fn sync_if_pending(&mut self) {
        if self.pending_sync {
            self.push(InfCommand::Sync);
            self.stats.syncs += 1;
            self.pending_sync = false;
        }
    }

    /// Per-bank (tiles, elems) of a rectangle.
    fn bank_loads(&self, rect: &HyperRect) -> Vec<BankLoad> {
        infs_trace::counter!("runtime.bank_maps", 1u64);
        let mut per_bank: HashMap<u32, BankLoad> = HashMap::new();
        for t in self.layout.grid().tiles_overlapping(rect) {
            let elems = self.layout.tile_overlap_elems(t, rect);
            if elems == 0 {
                continue;
            }
            let bank = self.layout.grid().bank_of_tile(t);
            let e = per_bank.entry(bank).or_insert(BankLoad {
                bank,
                tiles: 0,
                elems: 0,
            });
            e.tiles += 1;
            e.elems += elems;
        }
        let mut v: Vec<BankLoad> = per_bank.into_values().collect();
        v.sort_by_key(|b| b.bank);
        v
    }

    /// Emits one element-wise compute node as a single *fused* command.
    ///
    /// The domain still decomposes into tile-aligned pieces (boundary tiles
    /// need their own bitline masks — the stencil3d blow-up of §8), but the
    /// pieces of one node are pairwise disjoint, so their per-bank loads
    /// merge: a bank appearing in several pieces runs them on different
    /// arrays in parallel and pays the bit-serial latency once, exactly the
    /// parallelism the execution model already grants same-command banks.
    fn emit_compute(
        &mut self,
        node: NodeId,
        op: ComputeOp,
        latency: u64,
        imm_bytes: u64,
        domain: &HyperRect,
    ) -> Result<(), RuntimeError> {
        self.sync_if_pending();
        let _span = infs_trace::span!("runtime.decompose", node = node.0);
        let mut merged: HashMap<u32, BankLoad> = HashMap::new();
        for sub in decompose(domain, &self.tile_dims()) {
            for b in self.bank_loads(&sub) {
                let e = merged.entry(b.bank).or_insert(BankLoad {
                    bank: b.bank,
                    tiles: 0,
                    elems: 0,
                });
                e.tiles += b.tiles;
                e.elems += b.elems;
            }
        }
        if merged.is_empty() {
            return Ok(());
        }
        let mut banks: Vec<BankLoad> = merged.into_values().collect();
        banks.sort_by_key(|b| b.bank);
        self.stats.compute_cmds += 1;
        self.push(InfCommand::Compute {
            node,
            op,
            latency,
            imm_bytes,
            banks,
        });
        Ok(())
    }

    /// Emits one `mv` node. A zero distance is a no-op *at emission time* —
    /// the distance is data (a template slot), so zero-ness may differ
    /// between instances sharing a template.
    fn emit_mv(
        &mut self,
        node: NodeId,
        dim: usize,
        dist: i64,
        domain: Option<&HyperRect>,
    ) -> Result<(), RuntimeError> {
        if dist == 0 {
            return Ok(());
        }
        let domain = domain.ok_or(RuntimeError::MalformedGraph {
            node: node.0,
            what: "mv node has no finite domain",
        })?;
        // Effective source: only elements whose destination survives the
        // bounding clip are moved.
        let eff_src = domain
            .translated(dim, -dist)
            .map_err(|e| RuntimeError::BadBounding(e.to_string()))?;
        self.lower_shift(node, &eff_src, dim, dist)
    }

    /// Algorithm 2: compile one `mv` into intra-/inter-tile shift commands over
    /// the tensor's tile decomposition.
    fn lower_shift(
        &mut self,
        node: NodeId,
        eff_src: &HyperRect,
        dim: usize,
        dist: i64,
    ) -> Result<(), RuntimeError> {
        let _span = infs_trace::span!("runtime.shift_lower", node = node.0, dim = dim, dist = dist);
        let t = self.layout.tile().dim(dim) as i64;
        let d_inter = dist.abs() / t;
        let d_intra = dist.abs() % t;
        let comp = t - d_intra;
        let subs = decompose(eff_src, &self.tile_dims());
        // (mask_lo, mask_hi, inter_tiles_signed, intra_signed)
        let pieces: Vec<(i64, i64, i64, i64)> = if dist > 0 {
            let mut v = vec![(0, comp, d_inter, d_intra)];
            if d_intra > 0 {
                v.push((comp, t, d_inter + 1, -comp));
            }
            v
        } else {
            let mut v = Vec::new();
            if d_intra > 0 {
                v.push((0, d_intra, -(d_inter + 1), comp));
            }
            v.push((d_intra, t, -d_inter, -d_intra));
            v
        };
        for sub in &subs {
            for &(mlo, mhi, inter, intra) in &pieces {
                self.emit_shift(node, sub, dim, mlo, mhi, inter, intra)?;
            }
        }
        Ok(())
    }

    /// Emits one shift command: intersects the mask with the subtensor per
    /// tile, classifies intra vs inter (local / remote), and maps to banks.
    #[allow(clippy::too_many_arguments)]
    fn emit_shift(
        &mut self,
        node: NodeId,
        sub: &HyperRect,
        dim: usize,
        mask_lo: i64,
        mask_hi: i64,
        inter: i64,
        intra: i64,
    ) -> Result<(), RuntimeError> {
        let grid = self.layout.grid().clone();
        let t = self.layout.tile().dim(dim) as i64;
        let mut per_bank: HashMap<u32, BankLoad> = HashMap::new();
        let mut remote: HashMap<(u32, u32), u64> = HashMap::new();
        let mut local_inter = 0u64;
        let mut total = 0u64;
        for tile in grid.tiles_overlapping(sub) {
            let tr = grid.tile_rect(tile);
            let Ok(Some(part)) = tr.intersect(sub) else {
                continue;
            };
            // Elements whose intra-tile coordinate along `dim` is in the mask.
            let (plo, phi) = part.interval(dim);
            let tile_base = tr.start(dim).div_euclid(t) * t;
            let ilo = (plo - tile_base).max(mask_lo);
            let ihi = (phi - tile_base).min(mask_hi);
            if ilo >= ihi {
                continue;
            }
            let other: u64 = (0..part.ndim())
                .filter(|&d| d != dim)
                .map(|d| part.extent(d))
                .product();
            let elems = (ihi - ilo) as u64 * other;
            total += elems;
            let src_bank = grid.bank_of_tile(tile);
            let e = per_bank.entry(src_bank).or_insert(BankLoad {
                bank: src_bank,
                tiles: 0,
                elems: 0,
            });
            e.tiles += 1;
            e.elems += elems;
            if inter != 0 {
                let mut coord = grid.tile_coord_of_index(tile);
                let dest = coord[dim] as i64 + inter;
                if dest < 0 || dest as u64 >= grid.tiles_per_dim()[dim] {
                    continue; // destination clipped at the lattice edge
                }
                coord[dim] = dest as u64;
                let dst_bank = grid.bank_of_tile(grid.tile_index(&coord));
                if dst_bank == src_bank {
                    local_inter += elems;
                } else {
                    *remote.entry((src_bank, dst_bank)).or_insert(0) += elems * self.elem_bytes;
                }
            }
        }
        if total == 0 {
            return Ok(()); // empty mask/tensor intersection: filtered out (§4.2)
        }
        let mut banks: Vec<BankLoad> = per_bank.into_values().collect();
        banks.sort_by_key(|b| b.bank);
        if inter == 0 {
            self.stats.intra_elems += total;
            self.push(InfCommand::IntraShift {
                node,
                dim,
                dist: intra,
                banks,
            });
        } else {
            self.stats.inter_local_elems += local_inter;
            let remote: Vec<RemoteTransfer> = {
                let mut v: Vec<RemoteTransfer> = remote
                    .into_iter()
                    .map(|((s, d), bytes)| RemoteTransfer {
                        src_bank: s,
                        dst_bank: d,
                        bytes,
                    })
                    .collect();
                v.sort_by_key(|r| (r.src_bank, r.dst_bank));
                v
            };
            self.stats.inter_remote_bytes += remote.iter().map(|r| r.bytes).sum::<u64>();
            if !remote.is_empty() {
                self.pending_sync = true;
            }
            self.push(InfCommand::InterShift {
                node,
                dim,
                tile_dist: inter,
                intra_dist: intra,
                banks,
                remote,
            });
        }
        Ok(())
    }

    /// Lowers a broadcast: every destination tile receives the source slice it
    /// overlaps; one NoC copy per (source tile, destination bank) — the H-tree
    /// multicasts within a bank.
    fn emit_bc(
        &mut self,
        node: NodeId,
        src: &HyperRect,
        dest: &HyperRect,
        dim: usize,
    ) -> Result<(), RuntimeError> {
        let _span = infs_trace::span!("runtime.broadcast_lower", node = node.0, dim = dim);
        let grid = self.layout.grid().clone();
        let src_coord = src.start(dim);
        let mut per_bank: HashMap<u32, BankLoad> = HashMap::new();
        let mut remote: HashMap<(u32, u32), u64> = HashMap::new();
        let mut seen: std::collections::HashSet<(u32, u64)> = std::collections::HashSet::new();
        for tile in grid.tiles_overlapping(dest) {
            let elems = self.layout.tile_overlap_elems(tile, dest);
            if elems == 0 {
                continue;
            }
            let dst_bank = grid.bank_of_tile(tile);
            let e = per_bank.entry(dst_bank).or_insert(BankLoad {
                bank: dst_bank,
                tiles: 0,
                elems: 0,
            });
            e.tiles += 1;
            e.elems += elems;
            // The source slice this tile needs: project the tile onto the
            // source hyperplane.
            let tr = grid.tile_rect(tile);
            let needed = tr
                .with_interval(dim, src_coord, src_coord + 1)
                .and_then(|r| r.intersect(src))
                .ok()
                .flatten();
            let Some(needed) = needed else { continue };
            for src_tile in grid.tiles_overlapping(&needed) {
                let src_bank = grid.bank_of_tile(src_tile);
                if src_bank == dst_bank {
                    continue; // intra-bank H-tree fan-out
                }
                // Multicast: one copy per (source tile, destination bank).
                if seen.insert((dst_bank, src_tile)) {
                    let bytes = self.layout.tile_overlap_elems(src_tile, &needed) * self.elem_bytes;
                    if bytes > 0 {
                        *remote.entry((src_bank, dst_bank)).or_insert(0) += bytes;
                    }
                }
            }
        }
        let mut banks: Vec<BankLoad> = per_bank.into_values().collect();
        banks.sort_by_key(|b| b.bank);
        if banks.is_empty() {
            return Ok(());
        }
        let remote: Vec<RemoteTransfer> = {
            let mut v: Vec<RemoteTransfer> = remote
                .into_iter()
                .map(|((s, d), bytes)| RemoteTransfer {
                    src_bank: s,
                    dst_bank: d,
                    bytes,
                })
                .collect();
            v.sort_by_key(|r| (r.src_bank, r.dst_bank));
            v
        };
        self.stats.inter_remote_bytes += remote.iter().map(|r| r.bytes).sum::<u64>();
        if !remote.is_empty() {
            self.pending_sync = true;
        }
        self.push(InfCommand::Broadcast {
            node,
            dim,
            src_elems: src.num_elements(),
            banks,
            remote,
        });
        Ok(())
    }

    /// Lowers a reduction: interleaved compute + intra-tile shift rounds fully
    /// reduce each tile along the dimension; partials across tiles go to a
    /// near-memory final-reduce stream (§4.2 "Other tDFG Nodes").
    fn emit_reduce(
        &mut self,
        node: NodeId,
        in_dom: &HyperRect,
        dim: usize,
        eq: ComputeOp,
        latency: u64,
    ) -> Result<(), RuntimeError> {
        self.sync_if_pending();
        let t = self.layout.tile().dim(dim);
        let extent = in_dom.extent(dim);
        let within = extent.min(t);
        let rounds = if within <= 1 {
            0
        } else {
            64 - (within - 1).leading_zeros() as u64
        };
        let banks = self.bank_loads(in_dom);
        let mut active = in_dom.num_elements();
        for r in 0..rounds {
            active /= 2;
            let scaled: Vec<BankLoad> = banks
                .iter()
                .map(|b| BankLoad {
                    bank: b.bank,
                    tiles: b.tiles,
                    elems: (b.elems >> (r + 1)).max(1),
                })
                .collect();
            self.stats.intra_elems += active;
            self.push(InfCommand::IntraShift {
                node,
                dim,
                dist: -(1i64 << r),
                banks: scaled.clone(),
            });
            self.stats.compute_cmds += 1;
            self.push(InfCommand::Compute {
                node,
                op: eq,
                latency,
                imm_bytes: 0,
                banks: scaled,
            });
        }
        // Cross-tile partials collected near-memory.
        let tiles_along = extent.div_ceil(t);
        if tiles_along > 1 {
            let partials_per_tile_row = in_dom.num_elements() / extent;
            let partials = partials_per_tile_row * tiles_along;
            let pb: Vec<BankLoad> = banks
                .iter()
                .map(|b| BankLoad {
                    bank: b.bank,
                    tiles: b.tiles,
                    elems: b.tiles, // one partial per tile row chunk
                })
                .collect();
            self.stats.final_reduce_partials += partials;
            self.push(InfCommand::FinalReduce {
                node,
                partials,
                banks: pb,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infs_frontend::{Idx, KernelBuilder, ScalarExpr};
    use infs_geom::TileShape;
    use infs_sdfg::DataType;
    use infs_tdfg::OutputTarget;

    fn hw_small() -> HwConfig {
        // A miniature machine: 2 banks, 2 arrays per bank, 4-bitline tiles —
        // mirrors the Fig 9 setting closely enough to hand-check.
        HwConfig {
            n_banks: 2,
            arrays_per_bank: 2,
            geometry: infs_isa::SramGeometry {
                wordlines: 256,
                bitlines: 4,
            },
            line_bytes: 4,
            ..Default::default()
        }
    }

    fn mv_graph(n: u64, dist: i64) -> Tdfg {
        let mut b = infs_tdfg::TdfgBuilder::new(2, DataType::F32);
        let a = b.declare_array(infs_sdfg::ArrayDecl::new("A", vec![n, n], DataType::F32));
        let o = b.declare_array(infs_sdfg::ArrayDecl::new("O", vec![n, n], DataType::F32));
        let full = HyperRect::new(vec![(0, n as i64), (0, n as i64)]).unwrap();
        let x = b.input(a, full.clone()).unwrap();
        let m = b.mv(x, 1, dist).unwrap();
        let out_rect = if dist >= 0 {
            HyperRect::new(vec![(0, n as i64), (dist, n as i64)]).unwrap()
        } else {
            HyperRect::new(vec![(0, n as i64), (0, n as i64 + dist)]).unwrap()
        };
        b.output(m, OutputTarget::array(o, out_rect));
        b.build().unwrap()
    }

    fn lower_graph(g: &Tdfg, hw: &HwConfig) -> CommandStream {
        let schedule = Schedule::compute(g, hw.geometry).unwrap();
        let layout = TransposedLayout::plan(g, &g.layout_hints(), hw).unwrap();
        lower(g, &schedule, &layout, hw).unwrap()
    }

    #[test]
    fn fig9_style_shift_commands() {
        // 4x4 lattice, 2x2 tiles, right shift of column range by 1:
        // expect one intra-tile and one inter-tile shift per aligned piece.
        let hw = hw_small();
        let g = mv_graph(4, 1);
        let cs = lower_graph(&g, &hw);
        let intra = cs
            .cmds
            .iter()
            .filter(|c| matches!(c, InfCommand::IntraShift { .. }))
            .count();
        let inter = cs
            .cmds
            .iter()
            .filter(|c| matches!(c, InfCommand::InterShift { .. }))
            .count();
        assert!(intra >= 1, "expected intra-tile shifts: {:?}", cs.cmds);
        assert!(inter >= 1, "expected inter-tile shifts: {:?}", cs.cmds);
        assert!(cs.stats.intra_elems > 0);
        assert_eq!(
            cs.stats.intra_elems + cs.stats.inter_local_elems + cs.stats.inter_remote_bytes / 4,
            g.domain(infs_tdfg::NodeId(1)).unwrap().num_elements(),
            "every surviving element is moved exactly once"
        );
    }

    #[test]
    fn tile_aligned_shift_has_no_intra_piece() {
        // Shift by a whole tile (2): d_intra = 0, single inter-tile command
        // per decomposed piece.
        let hw = hw_small();
        let g = mv_graph(4, 2);
        let cs = lower_graph(&g, &hw);
        assert!(cs
            .cmds
            .iter()
            .all(|c| !matches!(c, InfCommand::IntraShift { .. })));
        assert!(cs.cmds.iter().any(|c| matches!(
            c,
            InfCommand::InterShift {
                tile_dist: 1,
                intra_dist: 0,
                ..
            }
        )));
    }

    #[test]
    fn negative_shift_mirrors_positive() {
        let hw = hw_small();
        let pos = lower_graph(&mv_graph(4, 1), &hw);
        let neg = lower_graph(&mv_graph(4, -1), &hw);
        let moved = |cs: &CommandStream| {
            cs.stats.intra_elems + cs.stats.inter_local_elems + cs.stats.inter_remote_bytes / 4
        };
        assert_eq!(moved(&pos), moved(&neg));
    }

    #[test]
    fn sync_inserted_between_remote_shift_and_compute() {
        // B[i][j] = A[i][j-2] + A[i][j]: the 2-tile shift crosses banks, so a
        // sync must separate it from the consuming compute.
        let n = 4u64;
        let mut kb = KernelBuilder::new("s", DataType::F32);
        let a = kb.array("A", vec![n, n]);
        let o = kb.array("B", vec![n, n]);
        let i = kb.parallel_loop("i", 0, n as i64);
        let j = kb.parallel_loop("j", 2, n as i64);
        kb.assign(
            o,
            vec![Idx::var(i), Idx::var(j)],
            ScalarExpr::add(
                ScalarExpr::load(a, vec![Idx::var(i), Idx::var_plus(j, -2)]),
                ScalarExpr::load(a, vec![Idx::var(i), Idx::var(j)]),
            ),
        );
        let g = kb.build().unwrap().tensorize(&[]).unwrap();
        let hw = hw_small();
        let cs = lower_graph(&g, &hw);
        let sync_pos = cs.cmds.iter().position(|c| matches!(c, InfCommand::Sync));
        let compute_pos = cs
            .cmds
            .iter()
            .position(|c| matches!(c, InfCommand::Compute { .. }));
        let inter_pos = cs
            .cmds
            .iter()
            .position(|c| matches!(c, InfCommand::InterShift { .. }));
        if let (Some(s), Some(c), Some(m)) = (sync_pos, compute_pos, inter_pos) {
            assert!(m < s && s < c, "inter-shift {m} < sync {s} < compute {c}");
        } else {
            panic!("expected inter-shift, sync and compute: {:?}", cs.cmds);
        }
        assert!(cs.stats.syncs >= 1);
    }

    #[test]
    fn broadcast_multicasts_once_per_destination_bank() {
        // Broadcast one row across the whole 4x4 lattice.
        let n = 4i64;
        let mut b = infs_tdfg::TdfgBuilder::new(2, DataType::F32);
        let a = b.declare_array(infs_sdfg::ArrayDecl::new(
            "A",
            vec![n as u64, n as u64],
            DataType::F32,
        ));
        let row = b
            .input(a, HyperRect::new(vec![(0, n), (0, 1)]).unwrap())
            .unwrap();
        let bc = b.bc(row, 1, 0, n as u64).unwrap();
        b.output(
            bc,
            OutputTarget::array(a, HyperRect::new(vec![(0, n), (0, n)]).unwrap()),
        );
        let g = b.build().unwrap();
        let hw = hw_small();
        // Pin 2x2 tiles: the planner's own choice (1x4 column tiles) makes the
        // broadcast entirely tile-local, which is exactly the §4.1 heuristic
        // working — but here we want to observe the cross-bank path.
        let schedule = Schedule::compute(&g, hw.geometry).unwrap();
        let layout = TransposedLayout::plan_with_tile(
            &g,
            infs_geom::TileShape::new(vec![2, 2]).unwrap(),
            &hw,
        )
        .unwrap();
        let cs = lower(&g, &schedule, &layout, &hw).unwrap();
        let bc_cmd = cs
            .cmds
            .iter()
            .find_map(|c| match c {
                InfCommand::Broadcast { banks, remote, .. } => {
                    Some((banks.clone(), remote.clone()))
                }
                _ => None,
            })
            .expect("broadcast command");
        let (banks, remote) = bc_cmd;
        assert_eq!(banks.len(), 2, "both banks receive tiles");
        // Source row lives in bank 0 (tiles 0,1); bank 1's tiles need remote
        // copies — one per (source tile, destination bank).
        assert!(!remote.is_empty());
        assert!(remote.iter().all(|r| r.src_bank != r.dst_bank));
    }

    #[test]
    fn reduce_emits_log_rounds_and_final_reduce() {
        let n = 8u64;
        let mut kb = KernelBuilder::new("sum", DataType::F32);
        let a = kb.array("A", vec![n, n]);
        let i = kb.parallel_loop("i", 0, n as i64);
        let j = kb.parallel_loop("j", 0, n as i64);
        kb.scalar_reduce(
            "s",
            ReduceOp::Sum,
            ScalarExpr::load(a, vec![Idx::var(i), Idx::var(j)]),
        );
        let g = kb.build().unwrap().tensorize(&[]).unwrap();
        // 8x8 lattice over 2x2 tiles = 16 tiles: needs 16 SRAM arrays.
        let hw = HwConfig {
            arrays_per_bank: 8,
            ..hw_small()
        };
        let cs = lower_graph(&g, &hw);
        // Tile dim = 2 -> 1 in-tile round per reduced dim; 8/2 = 4 tiles along
        // each dim -> final reduce needed.
        let finals = cs
            .cmds
            .iter()
            .filter(|c| matches!(c, InfCommand::FinalReduce { .. }))
            .count();
        assert_eq!(finals, 2, "one cross-tile collection per reduced dim");
        assert!(cs.stats.final_reduce_partials > 0);
        let computes = cs
            .cmds
            .iter()
            .filter(|c| matches!(c, InfCommand::Compute { .. }))
            .count();
        assert!(computes >= 2, "at least one reduction round per dim");
    }

    #[test]
    fn jit_cycle_model_counts_commands() {
        let hw = hw_small();
        let g = mv_graph(4, 1);
        let cs = lower_graph(&g, &hw);
        assert_eq!(
            cs.jit_cycles,
            hw.jit_cycles_templated(cs.stats.n_cmds, cs.stats.cmds_from_template)
        );
        assert!(cs.jit_cycles > hw.jit_base_cycles);
        // Commands reusing an earlier emission class are charged the patch
        // rate, so the stream is never costed above the flat model.
        assert!(cs.jit_cycles <= hw.jit_cycles(cs.stats.n_cmds));
    }

    #[test]
    fn compute_pieces_fuse_into_one_command_per_node() {
        // An unaligned compute domain decomposes into several pieces, but the
        // pieces are disjoint — one fused command per node, with the piece
        // loads merged per bank.
        let n = 4u64;
        let mut kb = KernelBuilder::new("f", DataType::F32);
        let a = kb.array("A", vec![n, n]);
        let o = kb.array("B", vec![n, n]);
        let i = kb.parallel_loop("i", 1, n as i64 - 1);
        let j = kb.parallel_loop("j", 1, n as i64 - 1);
        kb.assign(
            o,
            vec![Idx::var(i), Idx::var(j)],
            ScalarExpr::add(
                ScalarExpr::load(a, vec![Idx::var(i), Idx::var(j)]),
                ScalarExpr::load(a, vec![Idx::var(i), Idx::var(j)]),
            ),
        );
        let g = kb.build().unwrap().tensorize(&[]).unwrap();
        let hw = hw_small();
        let cs = lower_graph(&g, &hw);
        let computes: Vec<_> = cs
            .cmds
            .iter()
            .filter_map(|c| match c {
                InfCommand::Compute { banks, .. } => Some(banks),
                _ => None,
            })
            .collect();
        assert_eq!(computes.len(), 1, "one fused command: {:?}", cs.cmds);
        // The 2x2 interior over 2x2 tiles touches all 4 tiles of both banks.
        let total_elems: u64 = computes[0].iter().map(|b| b.elems).sum();
        assert_eq!(total_elems, 4);
        assert!(computes[0].iter().map(|b| b.tiles).sum::<u64>() > 1);
    }

    /// The template path must reproduce the direct path bit for bit: distill
    /// a template from one instance, instantiate it with that instance's (and
    /// a *different* instance's) slots, compare whole streams.
    #[test]
    fn instantiate_matches_lower_bitwise() {
        let hw = hw_small();
        for (n, dist) in [(4u64, 1i64), (4, 2), (4, -1)] {
            let g = mv_graph(n, dist);
            let schedule = Schedule::compute(&g, hw.geometry).unwrap();
            let layout = TransposedLayout::plan(&g, &g.layout_hints(), &hw).unwrap();
            let direct = lower(&g, &schedule, &layout, &hw).unwrap();
            let (t, slots) = crate::distill(&g, &schedule, &hw).unwrap();
            let stamped = instantiate(&t, &slots, &layout, &hw).unwrap();
            assert_eq!(direct, stamped, "n={n} dist={dist}");
        }
    }

    /// Cross-instance: the template distilled at one shift distance serves a
    /// different distance — same signature, different slots — and still
    /// matches a full re-lowering of the new instance.
    #[test]
    fn foreign_slots_instantiate_to_the_relowered_stream() {
        let hw = hw_small();
        let g1 = mv_graph(4, 1);
        let g2 = mv_graph(4, 2);
        let schedule = Schedule::compute(&g1, hw.geometry).unwrap();
        let (t1, _) = crate::distill(&g1, &schedule, &hw).unwrap();
        let schedule2 = Schedule::compute(&g2, hw.geometry).unwrap();
        let (t2, slots2) = crate::distill(&g2, &schedule2, &hw).unwrap();
        assert_eq!(t1.signature, t2.signature, "instances share a template");
        let layout = TransposedLayout::plan(&g2, &g2.layout_hints(), &hw).unwrap();
        let direct = lower(&g2, &schedule2, &layout, &hw).unwrap();
        let stamped = instantiate(&t1, &slots2, &layout, &hw).unwrap();
        assert_eq!(direct, stamped);
    }

    #[test]
    fn instantiate_rejects_wrong_slot_table_length() {
        let hw = hw_small();
        let g = mv_graph(4, 1);
        let schedule = Schedule::compute(&g, hw.geometry).unwrap();
        let layout = TransposedLayout::plan(&g, &g.layout_hints(), &hw).unwrap();
        let (t, mut slots) = crate::distill(&g, &schedule, &hw).unwrap();
        slots.push(0);
        assert!(matches!(
            instantiate(&t, &slots, &layout, &hw),
            Err(RuntimeError::MalformedGraph { .. })
        ));
    }

    #[test]
    fn boundary_tensor_needs_more_commands_than_aligned() {
        // An unaligned region decomposes into more pieces -> more commands:
        // the stencil3d effect of §8.
        let hw = HwConfig {
            n_banks: 4,
            arrays_per_bank: 16,
            geometry: infs_isa::SramGeometry {
                wordlines: 256,
                bitlines: 16,
            },
            line_bytes: 4,
            ..Default::default()
        };
        let aligned = {
            let g = mv_graph(16, 4); // 4x4 tiles, aligned shift
            lower_graph(&g, &hw)
        };
        let unaligned = {
            let g = mv_graph(16, 3);
            lower_graph(&g, &hw)
        };
        assert!(
            unaligned.stats.n_cmds > aligned.stats.n_cmds,
            "unaligned {} vs aligned {}",
            unaligned.stats.n_cmds,
            aligned.stats.n_cmds
        );
    }

    #[test]
    fn explicit_tile_changes_traffic_split() {
        // With 1xB tiles a dim-1 shift is all inter-tile; with Bx1... the
        // reverse. Checks the Fig 16 mechanism: tile choice moves traffic
        // between intra and inter.
        let g = mv_graph(16, 1);
        let hw = HwConfig {
            n_banks: 4,
            arrays_per_bank: 16,
            geometry: infs_isa::SramGeometry {
                wordlines: 256,
                bitlines: 16,
            },
            line_bytes: 4,
            ..Default::default()
        };
        let schedule = Schedule::compute(&g, hw.geometry).unwrap();
        let tall = TransposedLayout::plan_with_tile(&g, TileShape::new(vec![1, 16]).unwrap(), &hw)
            .unwrap();
        let wide = TransposedLayout::plan_with_tile(&g, TileShape::new(vec![16, 1]).unwrap(), &hw)
            .unwrap();
        let cs_tall = lower(&g, &schedule, &tall, &hw).unwrap();
        let cs_wide = lower(&g, &schedule, &wide, &hw).unwrap();
        // Shift along dim 1: tall tiles (16 in dim 1) keep it intra-tile.
        assert!(cs_tall.stats.intra_elems > 0);
        assert_eq!(
            cs_tall.stats.inter_local_elems + cs_tall.stats.inter_remote_bytes,
            0
        );
        // Wide tiles (1 in dim 1) force every element across tiles.
        assert_eq!(cs_wide.stats.intra_elems, 0);
        assert!(cs_wide.stats.inter_local_elems > 0 || cs_wide.stats.inter_remote_bytes > 0);
    }
}

//! The Infinity Stream JIT runtime (paper §4).
//!
//! The tDFG in the fat binary is neutral to hardware details and input sizes;
//! this runtime binds it to a concrete machine at `inf_cfg` time:
//!
//! 1. [`TransposedLayout::plan`] picks the tiled, transposed data layout —
//!    searching tile sizes under the §4.1 constraints and heuristics (shift →
//!    near-square, reduce → tall on the reduced dimension, broadcast → small
//!    innermost), and mapping lattice cells to L3 banks / SRAM arrays /
//!    bitlines.
//! 2. [`lower`] JIT-lowers the scheduled tDFG into bit-serial
//!    [commands](InfCommand): tensors are decomposed along tile boundaries
//!    (Algorithm 1, in `infs-geom`), moves become intra-/inter-tile shift
//!    commands (Algorithm 2), commands are mapped to the L3 banks owning their
//!    tiles, and `sync` barriers are inserted after inter-tile movement.
//! 3. [`JitCache`] memoizes lowered command streams — re-executing the same
//!    region with the same parameters (iterative stencils, matmul rounds) hits
//!    the cache and skips lowering, the paper's key JIT-overhead optimization.
//! 4. [`decide`] implements the Eq 2 in-/near-memory decision: offload
//!    in-memory only when the core-side latency of the region's element
//!    operations exceeds the summed bit-serial command latencies plus the JIT
//!    lowering time.
//!
//! The commands carry exact per-bank tile/element loads and remote-transfer
//! lists, which is what the cycle-level simulator (`infs-sim`) consumes for
//! timing, NoC-traffic and energy accounting. Functional results always come
//! from the tDFG reference interpreter — command execution is therefore a pure
//! timing model, checked end-to-end against the interpreter by construction.
//!
//! `DESIGN.md` §4 (system inventory) locates this crate in the stack;
//! `DESIGN.md` §10 covers the health-aware side — [`decide_healthy`]'s
//! degradation ladder and the [`JitCache`] load-path checksums.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod decide;
mod error;
mod health;
mod layout;
mod lower;
mod memo;
mod template;

pub use config::HwConfig;
pub use decide::{decide, Paradigm};
pub use error::RuntimeError;
pub use health::{decide_healthy, in_memory_quorum, place_on_healthy, Tier};
pub use layout::TransposedLayout;
pub use lower::{
    instantiate, lower, BankLoad, CommandStream, InfCommand, LoweredStats, RemoteTransfer,
};
pub use memo::{JitCache, JitClass, JitOutcome};
pub use template::{distill, CommandTemplate, SlotRect, TemplateOp};

use crate::CommandStream;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The §4.2 memoization key: `(region name, symbol values, tile shape)` —
/// anything that changes the lowered commands (gauss_elim's shrinking tensors,
/// a different layout) produces a different key.
type MemoKey = (String, Vec<i64>, Vec<u64>);

/// One cached stream plus the logical time of its last hit (for eviction)
/// and an integrity checksum verified on every hit (see `DESIGN.md` §10).
#[derive(Debug)]
struct Entry {
    stream: Arc<CommandStream>,
    last_hit: u64,
    checksum: u64,
}

/// Constant-time integrity digest over a cached stream's scalar summary —
/// a software stand-in for the per-line ECC a hardware command cache would
/// carry. O(1) on purpose: hashing every command on every hit would erase
/// the memoization win the cache exists for (`memo_shards` bench).
fn integrity_digest(stream: &CommandStream) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for word in [stream.jit_cycles, stream.cmds.len() as u64] {
        h ^= word;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One lock stripe of the cache.
type Shard = Mutex<HashMap<MemoKey, Entry>>;

/// Memoization cache for JIT-lowered command streams (§4.2 "Reducing JIT
/// Overheads").
///
/// Re-executing the same tDFG with the same parameters — iterative stencils,
/// the per-`k` rounds of outer-product matmul — reuses the lowered commands;
/// the paper combines a small hardware command cache with software memoization
/// and credits these optimizations with a >1000× JIT-time reduction.
///
/// The cache is lock-striped: keys hash to one of a power-of-two number of
/// independently locked shards, so concurrent sessions (the parallel run
/// matrix runs one simulation per worker thread) contend only when they touch
/// the same shard. Hit/miss counters are lock-free atomics.
///
/// A cache can be **bounded** ([`JitCache::bounded`]): each shard holds at
/// most `capacity / shards` entries and evicts its least-recently-hit key on
/// overflow. A long-lived process (the `infs-serve` server) shares one bounded
/// cache across all sessions via `Arc<JitCache>`; batch sweeps keep the
/// default unbounded behaviour.
#[derive(Debug)]
pub struct JitCache {
    shards: Box<[Shard]>,
    /// Per-shard entry cap (`u64::MAX` = unbounded).
    per_shard_cap: usize,
    /// Logical clock for least-recently-hit eviction; ticks on every hit and
    /// insert.
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    corruptions: AtomicU64,
}

/// Default shard count; enough stripes that a handful of worker threads
/// rarely collide, small enough to stay cache-friendly.
const DEFAULT_SHARDS: usize = 16;

impl Default for JitCache {
    fn default() -> Self {
        JitCache::with_shards(DEFAULT_SHARDS)
    }
}

impl JitCache {
    /// An empty unbounded cache with the default shard count.
    pub fn new() -> Self {
        JitCache::default()
    }

    /// An empty unbounded cache striped over `shards` locks (rounded up to a
    /// power of two; `1` degenerates to a single-map cache, which the
    /// equivalence tests use as the reference).
    pub fn with_shards(shards: usize) -> Self {
        JitCache::build(shards, None)
    }

    /// An empty **bounded** cache: at most `capacity` entries total (rounded
    /// down to a multiple of the shard count, minimum one entry per shard),
    /// with per-shard least-recently-hit eviction. The shard count shrinks so
    /// it never exceeds `capacity` — a cap of 4 gives 4 single-entry shards,
    /// not 16 shards of which 12 can never fill.
    pub fn bounded(capacity: usize) -> Self {
        JitCache::with_shards_bounded(DEFAULT_SHARDS, capacity)
    }

    /// A bounded cache with an explicit shard count (see [`JitCache::bounded`]).
    pub fn with_shards_bounded(shards: usize, capacity: usize) -> Self {
        JitCache::build(shards, Some(capacity.max(1)))
    }

    fn build(shards: usize, capacity: Option<usize>) -> Self {
        let mut n = shards.max(1).next_power_of_two();
        if let Some(cap) = capacity {
            while n > 1 && n > cap {
                n /= 2;
            }
        }
        JitCache {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            per_shard_cap: capacity.map_or(usize::MAX, |cap| (cap / n).max(1)),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            corruptions: AtomicU64::new(0),
        }
    }

    /// Number of lock stripes.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total entry cap (`None` = unbounded). For a bounded cache this is the
    /// *effective* cap — the requested capacity rounded down to a multiple of
    /// the shard count.
    pub fn capacity(&self) -> Option<usize> {
        if self.per_shard_cap == usize::MAX {
            None
        } else {
            Some(self.per_shard_cap * self.shards.len())
        }
    }

    fn shard_of(&self, key: &MemoKey) -> &Shard {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        // Shard count is a power of two, so the mask is a uniform selector.
        &self.shards[(h.finish() as usize) & (self.shards.len() - 1)]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up or lowers a command stream.
    ///
    /// `lower` runs outside the shard lock, so a slow lowering never blocks
    /// lookups of other keys in the same shard; if two threads race to lower
    /// the same key, the first insert wins and both get the same outcome kind
    /// (miss) with a usable stream.
    ///
    /// On a bounded cache, inserting into a full shard first evicts the
    /// shard's least-recently-hit entry.
    ///
    /// # Errors
    ///
    /// Propagates the lowering error on a miss.
    pub fn get_or_lower<E>(
        &self,
        region: &str,
        syms: &[i64],
        tile: &[u64],
        lower: impl FnOnce() -> Result<CommandStream, E>,
    ) -> Result<(Arc<CommandStream>, bool), E> {
        let key = (region.to_string(), syms.to_vec(), tile.to_vec());
        let shard = self.shard_of(&key);
        {
            let mut map = shard.lock();
            if let Some(entry) = map.get_mut(&key) {
                if entry.checksum == integrity_digest(&entry.stream) {
                    entry.last_hit = self.tick();
                    let found = entry.stream.clone();
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    infs_trace::counter!("jit.memo_hits", 1u64);
                    return Ok((found, true));
                }
                // Checksum mismatch: a corrupted entry is a miss — drop it
                // and re-lower rather than replay poisoned commands.
                map.remove(&key);
                self.corruptions.fetch_add(1, Ordering::Relaxed);
                infs_trace::counter!("jit.corruptions", 1u64);
            }
        }
        infs_trace::counter!("jit.memo_misses", 1u64);
        let cs = {
            let _span = infs_trace::span!("runtime.jit_lower", region = region);
            Arc::new(lower()?)
        };
        let stored = {
            let mut map = shard.lock();
            // A racing thread may have inserted while we lowered; only a
            // genuinely new entry counts against the cap.
            if !map.contains_key(&key) && map.len() >= self.per_shard_cap {
                if let Some(victim) = map
                    .iter()
                    .min_by_key(|(_, e)| e.last_hit)
                    .map(|(k, _)| k.clone())
                {
                    map.remove(&victim);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            let stamp = self.tick();
            map.entry(key)
                .or_insert_with(|| Entry {
                    checksum: integrity_digest(&cs),
                    stream: cs.clone(),
                    last_hit: stamp,
                })
                .stream
                .clone()
        };
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok((stored, false))
    }

    /// True if the cache already holds a stream for this key (used by the
    /// offload decision to anticipate a memoization hit).
    pub fn contains(&self, region: &str, syms: &[i64], tile: &[u64]) -> bool {
        let key = (region.to_string(), syms.to_vec(), tile.to_vec());
        self.shard_of(&key).lock().contains_key(&key)
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Entries evicted by the capacity bound so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Entries whose integrity checksum failed on lookup (each was dropped
    /// and re-lowered).
    pub fn corruptions(&self) -> u64 {
        self.corruptions.load(Ordering::Relaxed)
    }

    /// Fault injection: invalidate the stored checksum of every cached
    /// entry, so the next lookup of each key detects corruption, discards
    /// the entry and re-lowers. Returns how many entries were poisoned.
    pub fn corrupt_all(&self) -> usize {
        let mut n = 0;
        for shard in self.shards.iter() {
            for entry in shard.lock().values_mut() {
                entry.checksum ^= 1 << 63;
                n += 1;
            }
        }
        n
    }

    /// Total cached streams across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no stream is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all cached streams (e.g. on a context switch that reclaims LLC).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.lock().clear();
        }
    }
}

// Compile-time audit: the cache is shared by reference across simulator
// threads; striping must not cost the auto traits.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<JitCache>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LoweredStats;

    fn dummy(n: u64) -> CommandStream {
        CommandStream {
            cmds: Vec::new(),
            jit_cycles: n,
            stats: LoweredStats::default(),
        }
    }

    #[test]
    fn hit_after_miss() {
        let cache = JitCache::new();
        let (a, hit) = cache
            .get_or_lower::<()>("r", &[1], &[16, 16], || Ok(dummy(7)))
            .unwrap();
        assert!(!hit);
        let (b, hit) = cache
            .get_or_lower::<()>("r", &[1], &[16, 16], || panic!("must not re-lower"))
            .unwrap();
        assert!(hit);
        assert_eq!(a.jit_cycles, b.jit_cycles);
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn different_syms_or_tiles_miss() {
        let cache = JitCache::new();
        cache
            .get_or_lower::<()>("r", &[1], &[16, 16], || Ok(dummy(1)))
            .unwrap();
        let (_, hit) = cache
            .get_or_lower::<()>("r", &[2], &[16, 16], || Ok(dummy(2)))
            .unwrap();
        assert!(!hit);
        let (_, hit) = cache
            .get_or_lower::<()>("r", &[1], &[4, 64], || Ok(dummy(3)))
            .unwrap();
        assert!(!hit);
        assert_eq!(cache.stats(), (0, 3));
        cache.clear();
        assert!(cache.is_empty());
        let (_, hit) = cache
            .get_or_lower::<()>("r", &[1], &[16, 16], || Ok(dummy(4)))
            .unwrap();
        assert!(!hit);
    }

    #[test]
    fn lowering_errors_propagate() {
        let cache = JitCache::new();
        let r = cache.get_or_lower::<&str>("r", &[], &[], || Err("boom"));
        assert_eq!(r.unwrap_err(), "boom");
        assert_eq!(cache.stats(), (0, 0));
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(JitCache::with_shards(1).num_shards(), 1);
        assert_eq!(JitCache::with_shards(5).num_shards(), 8);
        assert_eq!(JitCache::new().num_shards(), DEFAULT_SHARDS);
    }

    #[test]
    fn unbounded_cache_reports_no_capacity() {
        assert_eq!(JitCache::new().capacity(), None);
        assert_eq!(JitCache::with_shards(4).capacity(), None);
    }

    #[test]
    fn bounded_capacity_shrinks_shards_not_below_one_entry_each() {
        // Cap smaller than the default shard count: shards shrink to the cap.
        let small = JitCache::bounded(4);
        assert_eq!(small.num_shards(), 4);
        assert_eq!(small.capacity(), Some(4));
        // Cap rounds down to a multiple of the shard count.
        let c = JitCache::with_shards_bounded(4, 10);
        assert_eq!(c.num_shards(), 4);
        assert_eq!(c.capacity(), Some(8));
        // Degenerate cap of one entry.
        let one = JitCache::bounded(1);
        assert_eq!(one.num_shards(), 1);
        assert_eq!(one.capacity(), Some(1));
    }

    /// Satellite acceptance: the cap holds under churn and the hit/miss
    /// counters stay consistent with the operation count.
    #[test]
    fn capacity_holds_under_churn() {
        let cap = 8;
        let cache = JitCache::with_shards_bounded(4, cap);
        let ops = 500u64;
        for i in 0..ops {
            let k = (i % 64) as i64; // 64 distinct keys through an 8-entry cache
            cache
                .get_or_lower::<()>("r", &[k], &[16], || Ok(dummy(i)))
                .unwrap();
            assert!(cache.len() <= cap, "len {} exceeds cap {cap}", cache.len());
        }
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, ops);
        assert!(misses > hits, "64 keys churning 8 slots must mostly miss");
        assert_eq!(cache.evictions(), misses - cache.len() as u64);
        assert!(cache.len() <= cap);
    }

    /// Least-recently-hit keys are the ones evicted: a key that is re-hit
    /// every round survives churn that evicts everything else in its shard.
    #[test]
    fn eviction_prefers_least_recently_hit() {
        let cache = JitCache::with_shards_bounded(1, 4);
        cache
            .get_or_lower::<()>("hot", &[], &[], || Ok(dummy(0)))
            .unwrap();
        for i in 0..40 {
            // Refresh the hot key, then push a cold key through.
            let (_, hit) = cache
                .get_or_lower::<()>("hot", &[], &[], || Ok(dummy(0)))
                .unwrap();
            assert!(hit, "hot key evicted at round {i}");
            cache
                .get_or_lower::<()>("cold", &[i], &[], || Ok(dummy(1)))
                .unwrap();
        }
        assert!(cache.contains("hot", &[], &[]));
        assert!(cache.len() <= 4);
    }

    /// Concurrent churn through a bounded cache never exceeds the cap and the
    /// counters add up.
    #[test]
    fn bounded_concurrent_churn_is_consistent() {
        let cap = 16;
        let cache = JitCache::with_shards_bounded(4, cap);
        let n_threads = 8;
        let ops_per_thread = 200u64;
        std::thread::scope(|s| {
            for t in 0..n_threads {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..ops_per_thread {
                        let k = (t as u64 * 31 + i) % 80;
                        cache
                            .get_or_lower::<()>("r", &[k as i64], &[16], || Ok(dummy(k)))
                            .unwrap();
                        assert!(cache.len() <= cap);
                    }
                });
            }
        });
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, n_threads as u64 * ops_per_thread);
        assert!(cache.len() <= cap);
        // Two threads racing on the same key both count a miss but insert
        // once, so evictions can only undershoot `misses - len`.
        assert!(cache.evictions() <= misses - cache.len() as u64);
        assert!(
            cache.evictions() > 0,
            "80 keys churning 16 slots must evict"
        );
    }

    /// Corrupted entries are detected on lookup, dropped, counted, and
    /// transparently re-lowered — the cache self-heals.
    #[test]
    fn corruption_is_detected_and_healed() {
        let cache = JitCache::new();
        cache
            .get_or_lower::<()>("r", &[1], &[16], || Ok(dummy(7)))
            .unwrap();
        cache
            .get_or_lower::<()>("s", &[2], &[16], || Ok(dummy(9)))
            .unwrap();
        assert_eq!(cache.corrupt_all(), 2);
        // Next lookups detect the mismatch, re-lower, and still succeed.
        let (a, hit) = cache
            .get_or_lower::<()>("r", &[1], &[16], || Ok(dummy(7)))
            .unwrap();
        assert!(!hit, "corrupted entry must read as a miss");
        assert_eq!(a.jit_cycles, 7);
        assert_eq!(cache.corruptions(), 1);
        let (_, hit) = cache
            .get_or_lower::<()>("s", &[2], &[16], || Ok(dummy(9)))
            .unwrap();
        assert!(!hit);
        assert_eq!(cache.corruptions(), 2);
        // The healed entries verify clean again.
        let (_, hit) = cache
            .get_or_lower::<()>("r", &[1], &[16], || panic!("must hit"))
            .unwrap();
        assert!(hit);
        assert_eq!(cache.corruptions(), 2);
        assert_eq!(cache.len(), 2);
    }

    /// Sharded cache behaves identically to a single-map (1-shard) cache on
    /// the same key sequence: same hits, misses, and entry count.
    #[test]
    fn sharded_matches_single_map_reference() {
        let sharded = JitCache::with_shards(16);
        let reference = JitCache::with_shards(1);
        let keys: Vec<(String, Vec<i64>, Vec<u64>)> = (0..64)
            .map(|i| {
                (
                    format!("region{}", i % 7),
                    vec![i % 5, i / 8],
                    vec![16, (i % 3 + 1) as u64],
                )
            })
            .collect();
        for (region, syms, tile) in keys.iter().chain(keys.iter()) {
            let (_, h1) = sharded
                .get_or_lower::<()>(region, syms, tile, || Ok(dummy(1)))
                .unwrap();
            let (_, h2) = reference
                .get_or_lower::<()>(region, syms, tile, || Ok(dummy(1)))
                .unwrap();
            assert_eq!(h1, h2);
        }
        assert_eq!(sharded.stats(), reference.stats());
        assert_eq!(sharded.len(), reference.len());
    }

    /// Concurrent mixed lookup/insert traffic from many threads lands every
    /// stream exactly once and counts hits+misses == operations.
    #[test]
    fn concurrent_access_is_consistent() {
        let cache = JitCache::new();
        let n_threads = 8;
        let ops_per_thread = 200u64;
        std::thread::scope(|s| {
            for t in 0..n_threads {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..ops_per_thread {
                        // 50 distinct keys shared across threads.
                        let k = (t as u64 + i) % 50;
                        cache
                            .get_or_lower::<()>("r", &[k as i64], &[16], || Ok(dummy(k)))
                            .unwrap();
                    }
                });
            }
        });
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, n_threads as u64 * ops_per_thread);
        assert_eq!(cache.len(), 50);
        // Every key is eventually cached exactly once per distinct key.
        assert!(misses >= 50, "misses {misses}");
    }
}

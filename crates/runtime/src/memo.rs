use crate::CommandStream;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Memoization cache for JIT-lowered command streams (§4.2 "Reducing JIT
/// Overheads").
///
/// Re-executing the same tDFG with the same parameters — iterative stencils,
/// the per-`k` rounds of outer-product matmul — reuses the lowered commands;
/// the paper combines a small hardware command cache with software memoization
/// and credits these optimizations with a >1000× JIT-time reduction. Keys are
/// `(region name, symbol values, tile shape)`: anything that changes the
/// lowered commands (gauss_elim's shrinking tensors, a different layout)
/// misses.
#[derive(Debug, Default)]
pub struct JitCache {
    #[allow(clippy::type_complexity)] // the key is exactly the §4.2 memo key
    map: Mutex<HashMap<(String, Vec<i64>, Vec<u64>), Arc<CommandStream>>>,
    hits: Mutex<u64>,
    misses: Mutex<u64>,
}

impl JitCache {
    /// An empty cache.
    pub fn new() -> Self {
        JitCache::default()
    }

    /// Looks up or lowers a command stream.
    ///
    /// # Errors
    ///
    /// Propagates the lowering error on a miss.
    pub fn get_or_lower<E>(
        &self,
        region: &str,
        syms: &[i64],
        tile: &[u64],
        lower: impl FnOnce() -> Result<CommandStream, E>,
    ) -> Result<(Arc<CommandStream>, bool), E> {
        let key = (region.to_string(), syms.to_vec(), tile.to_vec());
        if let Some(found) = self.map.lock().get(&key).cloned() {
            *self.hits.lock() += 1;
            return Ok((found, true));
        }
        let cs = Arc::new(lower()?);
        self.map.lock().insert(key, cs.clone());
        *self.misses.lock() += 1;
        Ok((cs, false))
    }

    /// True if the cache already holds a stream for this key (used by the
    /// offload decision to anticipate a memoization hit).
    pub fn contains(&self, region: &str, syms: &[i64], tile: &[u64]) -> bool {
        let key = (region.to_string(), syms.to_vec(), tile.to_vec());
        self.map.lock().contains_key(&key)
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (*self.hits.lock(), *self.misses.lock())
    }

    /// Drops all cached streams (e.g. on a context switch that reclaims LLC).
    pub fn clear(&self) {
        self.map.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LoweredStats;

    fn dummy(n: u64) -> CommandStream {
        CommandStream {
            cmds: Vec::new(),
            jit_cycles: n,
            stats: LoweredStats::default(),
        }
    }

    #[test]
    fn hit_after_miss() {
        let cache = JitCache::new();
        let (a, hit) = cache
            .get_or_lower::<()>("r", &[1], &[16, 16], || Ok(dummy(7)))
            .unwrap();
        assert!(!hit);
        let (b, hit) = cache
            .get_or_lower::<()>("r", &[1], &[16, 16], || panic!("must not re-lower"))
            .unwrap();
        assert!(hit);
        assert_eq!(a.jit_cycles, b.jit_cycles);
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn different_syms_or_tiles_miss() {
        let cache = JitCache::new();
        cache
            .get_or_lower::<()>("r", &[1], &[16, 16], || Ok(dummy(1)))
            .unwrap();
        let (_, hit) = cache
            .get_or_lower::<()>("r", &[2], &[16, 16], || Ok(dummy(2)))
            .unwrap();
        assert!(!hit);
        let (_, hit) = cache
            .get_or_lower::<()>("r", &[1], &[4, 64], || Ok(dummy(3)))
            .unwrap();
        assert!(!hit);
        assert_eq!(cache.stats(), (0, 3));
        cache.clear();
        let (_, hit) = cache
            .get_or_lower::<()>("r", &[1], &[16, 16], || Ok(dummy(4)))
            .unwrap();
        assert!(!hit);
    }

    #[test]
    fn lowering_errors_propagate() {
        let cache = JitCache::new();
        let r = cache.get_or_lower::<&str>("r", &[], &[], || Err("boom"));
        assert_eq!(r.unwrap_err(), "boom");
        assert_eq!(cache.stats(), (0, 0));
    }
}

use crate::CommandStream;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The §4.2 memoization key: `(region name, symbol values, tile shape)` —
/// anything that changes the lowered commands (gauss_elim's shrinking tensors,
/// a different layout) produces a different key.
type MemoKey = (String, Vec<i64>, Vec<u64>);

/// One lock stripe of the cache.
type Shard = Mutex<HashMap<MemoKey, Arc<CommandStream>>>;

/// Memoization cache for JIT-lowered command streams (§4.2 "Reducing JIT
/// Overheads").
///
/// Re-executing the same tDFG with the same parameters — iterative stencils,
/// the per-`k` rounds of outer-product matmul — reuses the lowered commands;
/// the paper combines a small hardware command cache with software memoization
/// and credits these optimizations with a >1000× JIT-time reduction.
///
/// The cache is lock-striped: keys hash to one of a power-of-two number of
/// independently locked shards, so concurrent sessions (the parallel run
/// matrix runs one simulation per worker thread) contend only when they touch
/// the same shard. Hit/miss counters are lock-free atomics.
#[derive(Debug)]
pub struct JitCache {
    shards: Box<[Shard]>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Default shard count; enough stripes that a handful of worker threads
/// rarely collide, small enough to stay cache-friendly.
const DEFAULT_SHARDS: usize = 16;

impl Default for JitCache {
    fn default() -> Self {
        JitCache::with_shards(DEFAULT_SHARDS)
    }
}

impl JitCache {
    /// An empty cache with the default shard count.
    pub fn new() -> Self {
        JitCache::default()
    }

    /// An empty cache striped over `shards` locks (rounded up to a power of
    /// two; `1` degenerates to a single-map cache, which the equivalence
    /// tests use as the reference).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        JitCache {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Number of lock stripes.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: &MemoKey) -> &Shard {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        // Shard count is a power of two, so the mask is a uniform selector.
        &self.shards[(h.finish() as usize) & (self.shards.len() - 1)]
    }

    /// Looks up or lowers a command stream.
    ///
    /// `lower` runs outside the shard lock, so a slow lowering never blocks
    /// lookups of other keys in the same shard; if two threads race to lower
    /// the same key, the first insert wins and both get the same outcome kind
    /// (miss) with a usable stream.
    ///
    /// # Errors
    ///
    /// Propagates the lowering error on a miss.
    pub fn get_or_lower<E>(
        &self,
        region: &str,
        syms: &[i64],
        tile: &[u64],
        lower: impl FnOnce() -> Result<CommandStream, E>,
    ) -> Result<(Arc<CommandStream>, bool), E> {
        let key = (region.to_string(), syms.to_vec(), tile.to_vec());
        let shard = self.shard_of(&key);
        if let Some(found) = shard.lock().get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((found, true));
        }
        let cs = Arc::new(lower()?);
        let stored = shard
            .lock()
            .entry(key)
            .or_insert_with(|| cs.clone())
            .clone();
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok((stored, false))
    }

    /// True if the cache already holds a stream for this key (used by the
    /// offload decision to anticipate a memoization hit).
    pub fn contains(&self, region: &str, syms: &[i64], tile: &[u64]) -> bool {
        let key = (region.to_string(), syms.to_vec(), tile.to_vec());
        self.shard_of(&key).lock().contains_key(&key)
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Total cached streams across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no stream is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all cached streams (e.g. on a context switch that reclaims LLC).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.lock().clear();
        }
    }
}

// Compile-time audit: the cache is shared by reference across simulator
// threads; striping must not cost the auto traits.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<JitCache>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LoweredStats;

    fn dummy(n: u64) -> CommandStream {
        CommandStream {
            cmds: Vec::new(),
            jit_cycles: n,
            stats: LoweredStats::default(),
        }
    }

    #[test]
    fn hit_after_miss() {
        let cache = JitCache::new();
        let (a, hit) = cache
            .get_or_lower::<()>("r", &[1], &[16, 16], || Ok(dummy(7)))
            .unwrap();
        assert!(!hit);
        let (b, hit) = cache
            .get_or_lower::<()>("r", &[1], &[16, 16], || panic!("must not re-lower"))
            .unwrap();
        assert!(hit);
        assert_eq!(a.jit_cycles, b.jit_cycles);
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn different_syms_or_tiles_miss() {
        let cache = JitCache::new();
        cache
            .get_or_lower::<()>("r", &[1], &[16, 16], || Ok(dummy(1)))
            .unwrap();
        let (_, hit) = cache
            .get_or_lower::<()>("r", &[2], &[16, 16], || Ok(dummy(2)))
            .unwrap();
        assert!(!hit);
        let (_, hit) = cache
            .get_or_lower::<()>("r", &[1], &[4, 64], || Ok(dummy(3)))
            .unwrap();
        assert!(!hit);
        assert_eq!(cache.stats(), (0, 3));
        cache.clear();
        assert!(cache.is_empty());
        let (_, hit) = cache
            .get_or_lower::<()>("r", &[1], &[16, 16], || Ok(dummy(4)))
            .unwrap();
        assert!(!hit);
    }

    #[test]
    fn lowering_errors_propagate() {
        let cache = JitCache::new();
        let r = cache.get_or_lower::<&str>("r", &[], &[], || Err("boom"));
        assert_eq!(r.unwrap_err(), "boom");
        assert_eq!(cache.stats(), (0, 0));
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(JitCache::with_shards(1).num_shards(), 1);
        assert_eq!(JitCache::with_shards(5).num_shards(), 8);
        assert_eq!(JitCache::new().num_shards(), DEFAULT_SHARDS);
    }

    /// Sharded cache behaves identically to a single-map (1-shard) cache on
    /// the same key sequence: same hits, misses, and entry count.
    #[test]
    fn sharded_matches_single_map_reference() {
        let sharded = JitCache::with_shards(16);
        let reference = JitCache::with_shards(1);
        let keys: Vec<(String, Vec<i64>, Vec<u64>)> = (0..64)
            .map(|i| {
                (
                    format!("region{}", i % 7),
                    vec![i % 5, i / 8],
                    vec![16, (i % 3 + 1) as u64],
                )
            })
            .collect();
        for (region, syms, tile) in keys.iter().chain(keys.iter()) {
            let (_, h1) = sharded
                .get_or_lower::<()>(region, syms, tile, || Ok(dummy(1)))
                .unwrap();
            let (_, h2) = reference
                .get_or_lower::<()>(region, syms, tile, || Ok(dummy(1)))
                .unwrap();
            assert_eq!(h1, h2);
        }
        assert_eq!(sharded.stats(), reference.stats());
        assert_eq!(sharded.len(), reference.len());
    }

    /// Concurrent mixed lookup/insert traffic from many threads lands every
    /// stream exactly once and counts hits+misses == operations.
    #[test]
    fn concurrent_access_is_consistent() {
        let cache = JitCache::new();
        let n_threads = 8;
        let ops_per_thread = 200u64;
        std::thread::scope(|s| {
            for t in 0..n_threads {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..ops_per_thread {
                        // 50 distinct keys shared across threads.
                        let k = (t as u64 + i) % 50;
                        cache
                            .get_or_lower::<()>("r", &[k as i64], &[16], || Ok(dummy(k)))
                            .unwrap();
                    }
                });
            }
        });
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, n_threads as u64 * ops_per_thread);
        assert_eq!(cache.len(), 50);
        // Every key is eventually cached exactly once per distinct key.
        assert!(misses >= 50, "misses {misses}");
    }
}

use crate::{CommandStream, CommandTemplate};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Memoization key of the concrete (level-A) map. Legacy callers key on the
/// hashed region name plus symbol values (`by_template = false`); the
/// shape-polymorphic path keys on the template's canonical signature plus the
/// full slot table (`by_template = true`) — the region *name* is deliberately
/// absent there, so same-shape regions over different arrays share entries.
/// The tile shape always participates: a different layout lowers differently.
type MemoKey = (bool, u64, Vec<i64>, Vec<u64>);

/// One cached stream plus the slot table it was built from, the logical time
/// of its last hit (for eviction) and an integrity checksum verified on every
/// hit (see `DESIGN.md` §10).
#[derive(Debug)]
struct Entry {
    stream: Arc<CommandStream>,
    slots: Vec<i64>,
    last_hit: u64,
    checksum: u64,
}

/// One cached relocatable template (level B), keyed by `(signature, tile)`.
#[derive(Debug)]
struct TplEntry {
    template: Arc<CommandTemplate>,
    /// Command count of the stream it was distilled from (all instantiations
    /// of one template emit the same command *classes*; the count feeds the
    /// offload decision's expected-patch-cost estimate).
    n_cmds: u64,
    last_hit: u64,
    checksum: u64,
}

/// How the cache served (or failed to serve) a request — the three-way
/// accounting the simulator and the run matrix report per region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JitOutcome {
    /// The exact stream (signature + slots + tile) was cached: no JIT work
    /// beyond the lookup.
    ConcreteHit,
    /// A relocatable template was cached for the signature: the stream was
    /// stamped out by an O(commands) copy-and-patch.
    TemplateHit,
    /// Nothing reusable: full lowering ran (and seeded both cache levels).
    Miss,
}

impl JitOutcome {
    /// True for both hit kinds.
    pub fn is_hit(self) -> bool {
        !matches!(self, JitOutcome::Miss)
    }
}

/// What a non-mutating lookup ([`JitCache::classify`]) anticipates for a
/// request — the offload decision model uses this to price the JIT step
/// before committing to in-memory execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JitClass {
    /// The exact stream is cached.
    Concrete,
    /// A template is cached; `n_cmds` is the command count of the stream it
    /// was distilled from (what a patch would cost).
    Template {
        /// Commands the cached template stamps out.
        n_cmds: u64,
    },
    /// Full lowering would run.
    Miss,
}

/// Constant-time integrity digest over a cached stream's scalar summary *and
/// its slot table* — a software stand-in for the per-line ECC a hardware
/// command cache would carry. Folding the slots means a tampered offset is
/// detected on the next hit even though the commands themselves are not
/// re-hashed (hashing every command on every hit would erase the memoization
/// win the cache exists for — `memo_shards` bench).
fn integrity_digest(stream: &CommandStream, slots: &[i64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for word in [stream.jit_cycles, stream.cmds.len() as u64]
        .into_iter()
        .chain(slots.iter().map(|&s| s as u64))
    {
        h ^= word;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Digest of a cached template (level B): signature, slot arity, op and
/// command counts.
fn template_digest(t: &CommandTemplate, n_cmds: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for word in [t.signature, t.n_slots as u64, t.ops.len() as u64, n_cmds] {
        h ^= word;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn region_tag(region: &str) -> u64 {
    let mut h = DefaultHasher::new();
    region.hash(&mut h);
    h.finish()
}

/// One lock stripe of the cache.
type Shard = Mutex<HashMap<MemoKey, Entry>>;

/// Memoization cache for JIT-lowered command streams (§4.2 "Reducing JIT
/// Overheads").
///
/// Re-executing the same tDFG with the same parameters — iterative stencils,
/// the per-`k` rounds of outer-product matmul — reuses the lowered commands;
/// the paper combines a small hardware command cache with software memoization
/// and credits these optimizations with a >1000× JIT-time reduction.
///
/// The cache is lock-striped: keys hash to one of a power-of-two number of
/// independently locked shards, so concurrent sessions (the parallel run
/// matrix runs one simulation per worker thread) contend only when they touch
/// the same shard. Hit/miss counters are lock-free atomics.
///
/// A cache can be **bounded** ([`JitCache::bounded`]): each shard holds at
/// most `capacity / shards` entries and evicts its least-recently-hit key on
/// overflow. A long-lived process (the `infs-serve` server) shares one bounded
/// cache across all sessions via `Arc<JitCache>`; batch sweeps keep the
/// default unbounded behaviour.
#[derive(Debug)]
pub struct JitCache {
    shards: Box<[Shard]>,
    /// Relocatable templates, keyed by `(signature, tile)` (level B). One
    /// map, not striped: there are as many templates as region *shapes*, a
    /// handful, and the critical sections are pointer clones.
    templates: Mutex<HashMap<(u64, Vec<u64>), TplEntry>>,
    /// Per-shard entry cap (`u64::MAX` = unbounded).
    per_shard_cap: usize,
    /// Logical clock for least-recently-hit eviction; ticks on every hit and
    /// insert.
    clock: AtomicU64,
    hits: AtomicU64,
    template_hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    corruptions: AtomicU64,
}

/// Default shard count; enough stripes that a handful of worker threads
/// rarely collide, small enough to stay cache-friendly.
const DEFAULT_SHARDS: usize = 16;

impl Default for JitCache {
    fn default() -> Self {
        JitCache::with_shards(DEFAULT_SHARDS)
    }
}

impl JitCache {
    /// An empty unbounded cache with the default shard count.
    pub fn new() -> Self {
        JitCache::default()
    }

    /// An empty unbounded cache striped over `shards` locks (rounded up to a
    /// power of two; `1` degenerates to a single-map cache, which the
    /// equivalence tests use as the reference).
    pub fn with_shards(shards: usize) -> Self {
        JitCache::build(shards, None)
    }

    /// An empty **bounded** cache: at most `capacity` entries total (rounded
    /// down to a multiple of the shard count, minimum one entry per shard),
    /// with per-shard least-recently-hit eviction. The shard count shrinks so
    /// it never exceeds `capacity` — a cap of 4 gives 4 single-entry shards,
    /// not 16 shards of which 12 can never fill.
    pub fn bounded(capacity: usize) -> Self {
        JitCache::with_shards_bounded(DEFAULT_SHARDS, capacity)
    }

    /// A bounded cache with an explicit shard count (see [`JitCache::bounded`]).
    pub fn with_shards_bounded(shards: usize, capacity: usize) -> Self {
        JitCache::build(shards, Some(capacity.max(1)))
    }

    fn build(shards: usize, capacity: Option<usize>) -> Self {
        let mut n = shards.max(1).next_power_of_two();
        if let Some(cap) = capacity {
            while n > 1 && n > cap {
                n /= 2;
            }
        }
        JitCache {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            templates: Mutex::new(HashMap::new()),
            per_shard_cap: capacity.map_or(usize::MAX, |cap| (cap / n).max(1)),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            template_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            corruptions: AtomicU64::new(0),
        }
    }

    /// Number of lock stripes.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total entry cap (`None` = unbounded). For a bounded cache this is the
    /// *effective* cap — the requested capacity rounded down to a multiple of
    /// the shard count.
    pub fn capacity(&self) -> Option<usize> {
        if self.per_shard_cap == usize::MAX {
            None
        } else {
            Some(self.per_shard_cap * self.shards.len())
        }
    }

    fn shard_of(&self, key: &MemoKey) -> &Shard {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        // Shard count is a power of two, so the mask is a uniform selector.
        &self.shards[(h.finish() as usize) & (self.shards.len() - 1)]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up or lowers a command stream.
    ///
    /// `lower` runs outside the shard lock, so a slow lowering never blocks
    /// lookups of other keys in the same shard; if two threads race to lower
    /// the same key, the first insert wins and both get the same outcome kind
    /// (miss) with a usable stream.
    ///
    /// On a bounded cache, inserting into a full shard first evicts the
    /// shard's least-recently-hit entry.
    ///
    /// # Errors
    ///
    /// Propagates the lowering error on a miss.
    pub fn get_or_lower<E>(
        &self,
        region: &str,
        syms: &[i64],
        tile: &[u64],
        lower: impl FnOnce() -> Result<CommandStream, E>,
    ) -> Result<(Arc<CommandStream>, bool), E> {
        let key = (false, region_tag(region), syms.to_vec(), tile.to_vec());
        if let Some(found) = self.lookup_verified(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            infs_trace::counter!("jit.memo_hits", 1u64);
            return Ok((found, true));
        }
        infs_trace::counter!("jit.memo_misses", 1u64);
        let cs = {
            let _span = infs_trace::span!("runtime.jit_lower", region = region);
            Arc::new(lower()?)
        };
        let stored = self.insert_stream(key, cs);
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok((stored, false))
    }

    /// Looks up, patches, or lowers a command stream on the
    /// shape-polymorphic path.
    ///
    /// Three-way resolution, checked in order:
    ///
    /// 1. **Concrete hit** — `(signature, slots, tile)` holds a verified
    ///    stream: return it, zero JIT work.
    /// 2. **Template hit** — `(signature, tile)` holds a verified relocatable
    ///    template: run `instantiate` against the *cached* template (an
    ///    O(commands) copy-and-patch), cache the patched stream under its
    ///    concrete key (checksum covering the patched output and the slot
    ///    table), and return it.
    /// 3. **Miss** — run `lower`, seed both the concrete level and the
    ///    template level (`template` is the freshly distilled skeleton).
    ///
    /// Both closures run outside every lock. Racing threads on one key may
    /// each do the work, but the first insert wins and all get usable
    /// streams. Corrupted entries at either level are dropped, counted, and
    /// treated as absent.
    ///
    /// # Errors
    ///
    /// Propagates whatever `instantiate` or `lower` returns.
    pub fn get_or_instantiate<E>(
        &self,
        region: &str,
        template: &CommandTemplate,
        slots: &[i64],
        tile: &[u64],
        instantiate: impl FnOnce(&CommandTemplate) -> Result<CommandStream, E>,
        lower: impl FnOnce() -> Result<CommandStream, E>,
    ) -> Result<(Arc<CommandStream>, JitOutcome), E> {
        let key = (true, template.signature, slots.to_vec(), tile.to_vec());
        if let Some(found) = self.lookup_verified(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            infs_trace::counter!("jit.memo_hits", 1u64);
            return Ok((found, JitOutcome::ConcreteHit));
        }
        let tpl_key = (template.signature, tile.to_vec());
        let cached_tpl = {
            let mut map = self.templates.lock();
            match map.get_mut(&tpl_key) {
                Some(e) if e.checksum == template_digest(&e.template, e.n_cmds) => {
                    e.last_hit = self.tick();
                    Some(e.template.clone())
                }
                Some(_) => {
                    map.remove(&tpl_key);
                    self.corruptions.fetch_add(1, Ordering::Relaxed);
                    infs_trace::counter!("jit.corruptions", 1u64);
                    None
                }
                None => None,
            }
        };
        if let Some(tpl) = cached_tpl {
            let t0 = std::time::Instant::now();
            let cs = {
                let _span = infs_trace::span!("runtime.jit_patch", region = region);
                Arc::new(instantiate(&tpl)?)
            };
            infs_trace::counter!("jit.patch_ns", t0.elapsed().as_nanos() as u64);
            infs_trace::counter!("jit.template_hits", 1u64);
            self.template_hits.fetch_add(1, Ordering::Relaxed);
            let stored = self.insert_stream(key, cs);
            return Ok((stored, JitOutcome::TemplateHit));
        }
        infs_trace::counter!("jit.memo_misses", 1u64);
        let cs = {
            let _span = infs_trace::span!("runtime.jit_lower", region = region);
            Arc::new(lower()?)
        };
        let n_cmds = cs.cmds.len() as u64;
        let stored = self.insert_stream(key, cs);
        {
            let mut map = self.templates.lock();
            let cap = self.capacity().unwrap_or(usize::MAX);
            if !map.contains_key(&tpl_key) && map.len() >= cap {
                if let Some(victim) = map
                    .iter()
                    .min_by_key(|(_, e)| e.last_hit)
                    .map(|(k, _)| k.clone())
                {
                    map.remove(&victim);
                }
            }
            let stamp = self.tick();
            map.entry(tpl_key).or_insert_with(|| {
                let template = Arc::new(template.clone());
                TplEntry {
                    checksum: template_digest(&template, n_cmds),
                    template,
                    n_cmds,
                    last_hit: stamp,
                }
            });
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok((stored, JitOutcome::Miss))
    }

    /// What [`JitCache::get_or_instantiate`] *would* do for this request,
    /// without mutating counters, recency, or either cache level — the
    /// offload decision prices the JIT step with this before committing to
    /// in-memory execution.
    pub fn classify(&self, signature: u64, slots: &[i64], tile: &[u64]) -> JitClass {
        let key = (true, signature, slots.to_vec(), tile.to_vec());
        {
            let map = self.shard_of(&key).lock();
            if let Some(e) = map.get(&key) {
                if e.checksum == integrity_digest(&e.stream, &e.slots) {
                    return JitClass::Concrete;
                }
            }
        }
        let map = self.templates.lock();
        if let Some(e) = map.get(&(signature, tile.to_vec())) {
            if e.checksum == template_digest(&e.template, e.n_cmds) {
                return JitClass::Template { n_cmds: e.n_cmds };
            }
        }
        JitClass::Miss
    }

    /// Verified lookup at the concrete level: returns the stream on a clean
    /// checksum; drops (and counts) a corrupted entry.
    fn lookup_verified(&self, key: &MemoKey) -> Option<Arc<CommandStream>> {
        let mut map = self.shard_of(key).lock();
        if let Some(entry) = map.get_mut(key) {
            if entry.checksum == integrity_digest(&entry.stream, &entry.slots) {
                entry.last_hit = self.tick();
                return Some(entry.stream.clone());
            }
            // Checksum mismatch: a corrupted entry is a miss — drop it and
            // re-lower rather than replay poisoned commands.
            map.remove(key);
            self.corruptions.fetch_add(1, Ordering::Relaxed);
            infs_trace::counter!("jit.corruptions", 1u64);
        }
        None
    }

    /// Inserts a stream at the concrete level, evicting the shard's
    /// least-recently-hit entry when a bounded shard is full. A racing
    /// thread may have inserted while the caller lowered; the first insert
    /// wins and only a genuinely new entry counts against the cap.
    fn insert_stream(&self, key: MemoKey, cs: Arc<CommandStream>) -> Arc<CommandStream> {
        let mut map = self.shard_of(&key).lock();
        if !map.contains_key(&key) && map.len() >= self.per_shard_cap {
            if let Some(victim) = map
                .iter()
                .min_by_key(|(_, e)| e.last_hit)
                .map(|(k, _)| k.clone())
            {
                map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let stamp = self.tick();
        let slots = key.2.clone();
        map.entry(key)
            .or_insert_with(|| Entry {
                checksum: integrity_digest(&cs, &slots),
                stream: cs.clone(),
                slots,
                last_hit: stamp,
            })
            .stream
            .clone()
    }

    /// True if the cache already holds a stream for this key (used by the
    /// offload decision to anticipate a memoization hit).
    pub fn contains(&self, region: &str, syms: &[i64], tile: &[u64]) -> bool {
        let key = (false, region_tag(region), syms.to_vec(), tile.to_vec());
        self.shard_of(&key).lock().contains_key(&key)
    }

    /// `(hits, misses)` so far. Hits count both concrete and template hits,
    /// so `hits + misses` equals the number of cache operations.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed) + self.template_hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Template hits so far (the subset of [`JitCache::stats`] hits served by
    /// copy-and-patch instead of an exact cached stream).
    pub fn template_hits(&self) -> u64 {
        self.template_hits.load(Ordering::Relaxed)
    }

    /// Relocatable templates currently cached (level B).
    pub fn template_count(&self) -> usize {
        self.templates.lock().len()
    }

    /// Entries evicted by the capacity bound so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Entries whose integrity checksum failed on lookup (each was dropped
    /// and re-lowered).
    pub fn corruptions(&self) -> u64 {
        self.corruptions.load(Ordering::Relaxed)
    }

    /// Fault injection: invalidate the stored checksum of every cached
    /// entry — concrete streams *and* relocatable templates — so the next
    /// lookup of each key detects corruption, discards the entry and
    /// re-lowers from scratch. Returns how many entries were poisoned.
    /// (Contrast [`JitCache::tamper_slots`], which rots only the concrete
    /// level's patch tables and leaves templates able to heal the cache by
    /// re-patching.)
    pub fn corrupt_all(&self) -> usize {
        let mut n = 0;
        for shard in self.shards.iter() {
            for entry in shard.lock().values_mut() {
                entry.checksum ^= 1 << 63;
                n += 1;
            }
        }
        for entry in self.templates.lock().values_mut() {
            entry.checksum ^= 1 << 63;
            n += 1;
        }
        n
    }

    /// Fault injection on the template path: flip the low bit of the first
    /// stored slot of every concrete entry with a non-empty slot table,
    /// *without* recomputing the checksum — exactly what a bit flip in the
    /// patch table of a hardware command cache would look like. The next hit
    /// on each tampered key must detect the digest mismatch, drop the entry
    /// and re-materialize. Returns how many entries were tampered.
    pub fn tamper_slots(&self) -> usize {
        let mut n = 0;
        for shard in self.shards.iter() {
            for entry in shard.lock().values_mut() {
                if let Some(s) = entry.slots.first_mut() {
                    *s ^= 1;
                    n += 1;
                }
            }
        }
        n
    }

    /// Total cached streams across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no stream is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all cached streams and templates (e.g. on a context switch that
    /// reclaims LLC).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.lock().clear();
        }
        self.templates.lock().clear();
    }
}

// Compile-time audit: the cache is shared by reference across simulator
// threads; striping must not cost the auto traits.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<JitCache>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LoweredStats;

    fn dummy(n: u64) -> CommandStream {
        CommandStream {
            cmds: Vec::new(),
            jit_cycles: n,
            stats: LoweredStats::default(),
        }
    }

    fn tpl(signature: u64) -> CommandTemplate {
        CommandTemplate {
            ops: Vec::new(),
            n_slots: 2,
            ndim: 1,
            elem_bytes: 4,
            signature,
        }
    }

    #[test]
    fn hit_after_miss() {
        let cache = JitCache::new();
        let (a, hit) = cache
            .get_or_lower::<()>("r", &[1], &[16, 16], || Ok(dummy(7)))
            .unwrap();
        assert!(!hit);
        let (b, hit) = cache
            .get_or_lower::<()>("r", &[1], &[16, 16], || panic!("must not re-lower"))
            .unwrap();
        assert!(hit);
        assert_eq!(a.jit_cycles, b.jit_cycles);
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn different_syms_or_tiles_miss() {
        let cache = JitCache::new();
        cache
            .get_or_lower::<()>("r", &[1], &[16, 16], || Ok(dummy(1)))
            .unwrap();
        let (_, hit) = cache
            .get_or_lower::<()>("r", &[2], &[16, 16], || Ok(dummy(2)))
            .unwrap();
        assert!(!hit);
        let (_, hit) = cache
            .get_or_lower::<()>("r", &[1], &[4, 64], || Ok(dummy(3)))
            .unwrap();
        assert!(!hit);
        assert_eq!(cache.stats(), (0, 3));
        cache.clear();
        assert!(cache.is_empty());
        let (_, hit) = cache
            .get_or_lower::<()>("r", &[1], &[16, 16], || Ok(dummy(4)))
            .unwrap();
        assert!(!hit);
    }

    #[test]
    fn lowering_errors_propagate() {
        let cache = JitCache::new();
        let r = cache.get_or_lower::<&str>("r", &[], &[], || Err("boom"));
        assert_eq!(r.unwrap_err(), "boom");
        assert_eq!(cache.stats(), (0, 0));
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(JitCache::with_shards(1).num_shards(), 1);
        assert_eq!(JitCache::with_shards(5).num_shards(), 8);
        assert_eq!(JitCache::new().num_shards(), DEFAULT_SHARDS);
    }

    #[test]
    fn unbounded_cache_reports_no_capacity() {
        assert_eq!(JitCache::new().capacity(), None);
        assert_eq!(JitCache::with_shards(4).capacity(), None);
    }

    #[test]
    fn bounded_capacity_shrinks_shards_not_below_one_entry_each() {
        // Cap smaller than the default shard count: shards shrink to the cap.
        let small = JitCache::bounded(4);
        assert_eq!(small.num_shards(), 4);
        assert_eq!(small.capacity(), Some(4));
        // Cap rounds down to a multiple of the shard count.
        let c = JitCache::with_shards_bounded(4, 10);
        assert_eq!(c.num_shards(), 4);
        assert_eq!(c.capacity(), Some(8));
        // Degenerate cap of one entry.
        let one = JitCache::bounded(1);
        assert_eq!(one.num_shards(), 1);
        assert_eq!(one.capacity(), Some(1));
    }

    /// Satellite acceptance: the cap holds under churn and the hit/miss
    /// counters stay consistent with the operation count.
    #[test]
    fn capacity_holds_under_churn() {
        let cap = 8;
        let cache = JitCache::with_shards_bounded(4, cap);
        let ops = 500u64;
        for i in 0..ops {
            let k = (i % 64) as i64; // 64 distinct keys through an 8-entry cache
            cache
                .get_or_lower::<()>("r", &[k], &[16], || Ok(dummy(i)))
                .unwrap();
            assert!(cache.len() <= cap, "len {} exceeds cap {cap}", cache.len());
        }
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, ops);
        assert!(misses > hits, "64 keys churning 8 slots must mostly miss");
        assert_eq!(cache.evictions(), misses - cache.len() as u64);
        assert!(cache.len() <= cap);
    }

    /// Least-recently-hit keys are the ones evicted: a key that is re-hit
    /// every round survives churn that evicts everything else in its shard.
    #[test]
    fn eviction_prefers_least_recently_hit() {
        let cache = JitCache::with_shards_bounded(1, 4);
        cache
            .get_or_lower::<()>("hot", &[], &[], || Ok(dummy(0)))
            .unwrap();
        for i in 0..40 {
            // Refresh the hot key, then push a cold key through.
            let (_, hit) = cache
                .get_or_lower::<()>("hot", &[], &[], || Ok(dummy(0)))
                .unwrap();
            assert!(hit, "hot key evicted at round {i}");
            cache
                .get_or_lower::<()>("cold", &[i], &[], || Ok(dummy(1)))
                .unwrap();
        }
        assert!(cache.contains("hot", &[], &[]));
        assert!(cache.len() <= 4);
    }

    /// Concurrent churn through a bounded cache never exceeds the cap and the
    /// counters add up.
    #[test]
    fn bounded_concurrent_churn_is_consistent() {
        let cap = 16;
        let cache = JitCache::with_shards_bounded(4, cap);
        let n_threads = 8;
        let ops_per_thread = 200u64;
        std::thread::scope(|s| {
            for t in 0..n_threads {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..ops_per_thread {
                        let k = (t as u64 * 31 + i) % 80;
                        cache
                            .get_or_lower::<()>("r", &[k as i64], &[16], || Ok(dummy(k)))
                            .unwrap();
                        assert!(cache.len() <= cap);
                    }
                });
            }
        });
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, n_threads as u64 * ops_per_thread);
        assert!(cache.len() <= cap);
        // Two threads racing on the same key both count a miss but insert
        // once, so evictions can only undershoot `misses - len`.
        assert!(cache.evictions() <= misses - cache.len() as u64);
        assert!(
            cache.evictions() > 0,
            "80 keys churning 16 slots must evict"
        );
    }

    /// Corrupted entries are detected on lookup, dropped, counted, and
    /// transparently re-lowered — the cache self-heals.
    #[test]
    fn corruption_is_detected_and_healed() {
        let cache = JitCache::new();
        cache
            .get_or_lower::<()>("r", &[1], &[16], || Ok(dummy(7)))
            .unwrap();
        cache
            .get_or_lower::<()>("s", &[2], &[16], || Ok(dummy(9)))
            .unwrap();
        assert_eq!(cache.corrupt_all(), 2);
        // Next lookups detect the mismatch, re-lower, and still succeed.
        let (a, hit) = cache
            .get_or_lower::<()>("r", &[1], &[16], || Ok(dummy(7)))
            .unwrap();
        assert!(!hit, "corrupted entry must read as a miss");
        assert_eq!(a.jit_cycles, 7);
        assert_eq!(cache.corruptions(), 1);
        let (_, hit) = cache
            .get_or_lower::<()>("s", &[2], &[16], || Ok(dummy(9)))
            .unwrap();
        assert!(!hit);
        assert_eq!(cache.corruptions(), 2);
        // The healed entries verify clean again.
        let (_, hit) = cache
            .get_or_lower::<()>("r", &[1], &[16], || panic!("must hit"))
            .unwrap();
        assert!(hit);
        assert_eq!(cache.corruptions(), 2);
        assert_eq!(cache.len(), 2);
    }

    /// Sharded cache behaves identically to a single-map (1-shard) cache on
    /// the same key sequence: same hits, misses, and entry count.
    #[test]
    fn sharded_matches_single_map_reference() {
        let sharded = JitCache::with_shards(16);
        let reference = JitCache::with_shards(1);
        let keys: Vec<(String, Vec<i64>, Vec<u64>)> = (0..64)
            .map(|i| {
                (
                    format!("region{}", i % 7),
                    vec![i % 5, i / 8],
                    vec![16, (i % 3 + 1) as u64],
                )
            })
            .collect();
        for (region, syms, tile) in keys.iter().chain(keys.iter()) {
            let (_, h1) = sharded
                .get_or_lower::<()>(region, syms, tile, || Ok(dummy(1)))
                .unwrap();
            let (_, h2) = reference
                .get_or_lower::<()>(region, syms, tile, || Ok(dummy(1)))
                .unwrap();
            assert_eq!(h1, h2);
        }
        assert_eq!(sharded.stats(), reference.stats());
        assert_eq!(sharded.len(), reference.len());
    }

    /// Concurrent mixed lookup/insert traffic from many threads lands every
    /// stream exactly once and counts hits+misses == operations.
    #[test]
    fn concurrent_access_is_consistent() {
        let cache = JitCache::new();
        let n_threads = 8;
        let ops_per_thread = 200u64;
        std::thread::scope(|s| {
            for t in 0..n_threads {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..ops_per_thread {
                        // 50 distinct keys shared across threads.
                        let k = (t as u64 + i) % 50;
                        cache
                            .get_or_lower::<()>("r", &[k as i64], &[16], || Ok(dummy(k)))
                            .unwrap();
                    }
                });
            }
        });
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, n_threads as u64 * ops_per_thread);
        assert_eq!(cache.len(), 50);
        // Every key is eventually cached exactly once per distinct key.
        assert!(misses >= 50, "misses {misses}");
    }
    /// The three-way resolution of the shape-polymorphic path: cold request
    /// misses (and seeds the template), a second request with *different*
    /// slots is a template hit, repeating either exact request is a concrete
    /// hit.
    #[test]
    fn template_hit_between_miss_and_concrete_hit() {
        let cache = JitCache::new();
        let t = tpl(42);
        let (_, out) = cache
            .get_or_instantiate::<()>(
                "r",
                &t,
                &[0, 8],
                &[16],
                |_| panic!("no template cached yet"),
                || Ok(dummy(1)),
            )
            .unwrap();
        assert_eq!(out, JitOutcome::Miss);
        assert_eq!(cache.template_count(), 1);
        // Same shape, shifted geometry: served by patching, not re-lowering.
        let (_, out) = cache
            .get_or_instantiate::<()>(
                "r",
                &t,
                &[4, 12],
                &[16],
                |cached| {
                    assert_eq!(cached.signature, 42);
                    Ok(dummy(2))
                },
                || panic!("template must serve this"),
            )
            .unwrap();
        assert_eq!(out, JitOutcome::TemplateHit);
        assert_eq!(cache.template_hits(), 1);
        // Exact repeats of both requests: concrete hits, no JIT work at all.
        for slots in [[0i64, 8], [4, 12]] {
            let (_, out) = cache
                .get_or_instantiate::<()>(
                    "r",
                    &t,
                    &slots,
                    &[16],
                    |_| panic!("must not patch"),
                    || panic!("must not lower"),
                )
                .unwrap();
            assert_eq!(out, JitOutcome::ConcreteHit);
        }
        // hits (incl. template) + misses == operations.
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (3, 1));
    }

    /// The region name does not reach the template key: same-shape regions
    /// over different arrays (ping-pong phases) share one template.
    #[test]
    fn template_sharing_ignores_region_names() {
        let cache = JitCache::new();
        let t = tpl(7);
        cache
            .get_or_instantiate::<()>(
                "phase_a",
                &t,
                &[0, 8],
                &[16],
                |_| unreachable!(),
                || Ok(dummy(1)),
            )
            .unwrap();
        let (_, out) = cache
            .get_or_instantiate::<()>(
                "phase_b",
                &t,
                &[1, 9],
                &[16],
                |_| Ok(dummy(2)),
                || panic!("phase_b must reuse phase_a's template"),
            )
            .unwrap();
        assert_eq!(out, JitOutcome::TemplateHit);
        assert_eq!(cache.template_count(), 1);
    }

    /// A different tile shape is a different template: layout changes the
    /// emitted commands, so patching across tiles would be wrong.
    #[test]
    fn different_tiles_do_not_share_templates() {
        let cache = JitCache::new();
        let t = tpl(7);
        cache
            .get_or_instantiate::<()>("r", &t, &[0, 8], &[16], |_| unreachable!(), || Ok(dummy(1)))
            .unwrap();
        let (_, out) = cache
            .get_or_instantiate::<()>(
                "r",
                &t,
                &[0, 8],
                &[4, 4],
                |_| unreachable!(),
                || Ok(dummy(2)),
            )
            .unwrap();
        assert_eq!(out, JitOutcome::Miss);
        assert_eq!(cache.template_count(), 2);
    }

    /// Satellite 3: the integrity digest folds the slot table, so a tampered
    /// slot — a bit flip in the patch table, not in the stream summary — is
    /// detected on the next hit, dropped, and re-materialized.
    #[test]
    fn tampered_slot_is_detected_on_hit() {
        let cache = JitCache::new();
        let t = tpl(42);
        cache
            .get_or_instantiate::<()>(
                "r",
                &t,
                &[3, 11],
                &[16],
                |_| unreachable!(),
                || Ok(dummy(5)),
            )
            .unwrap();
        assert_eq!(cache.tamper_slots(), 1);
        // The concrete entry must NOT be served; the (clean) template level
        // transparently re-materializes the stream.
        let (cs, out) = cache
            .get_or_instantiate::<()>(
                "r",
                &t,
                &[3, 11],
                &[16],
                |_| Ok(dummy(5)),
                || panic!("template level is clean"),
            )
            .unwrap();
        assert_eq!(out, JitOutcome::TemplateHit);
        assert_eq!(cs.jit_cycles, 5);
        assert_eq!(cache.corruptions(), 1);
        // The healed entry verifies clean again.
        let (_, out) = cache
            .get_or_instantiate::<()>(
                "r",
                &t,
                &[3, 11],
                &[16],
                |_| panic!("must not patch"),
                || panic!("must not lower"),
            )
            .unwrap();
        assert_eq!(out, JitOutcome::ConcreteHit);
        assert_eq!(cache.corruptions(), 1);
    }

    /// Legacy entries carry their symbol values through the same digest, so
    /// tampering is detected on the legacy path too.
    #[test]
    fn tampered_legacy_syms_are_detected() {
        let cache = JitCache::new();
        cache
            .get_or_lower::<()>("r", &[9], &[16], || Ok(dummy(1)))
            .unwrap();
        assert_eq!(cache.tamper_slots(), 1);
        let (_, hit) = cache
            .get_or_lower::<()>("r", &[9], &[16], || Ok(dummy(1)))
            .unwrap();
        assert!(!hit, "tampered entry must read as a miss");
        assert_eq!(cache.corruptions(), 1);
    }

    /// `classify` anticipates the three outcomes without perturbing counters.
    #[test]
    fn classify_predicts_without_mutating() {
        let cache = JitCache::new();
        let t = tpl(42);
        assert_eq!(cache.classify(42, &[0, 8], &[16]), JitClass::Miss);
        cache
            .get_or_instantiate::<()>("r", &t, &[0, 8], &[16], |_| unreachable!(), || Ok(dummy(3)))
            .unwrap();
        assert_eq!(cache.classify(42, &[0, 8], &[16]), JitClass::Concrete);
        assert_eq!(
            cache.classify(42, &[5, 13], &[16]),
            JitClass::Template { n_cmds: 0 }
        );
        assert_eq!(cache.classify(42, &[5, 13], &[4, 4]), JitClass::Miss);
        assert_eq!(cache.classify(99, &[0, 8], &[16]), JitClass::Miss);
        // Pure peek: the stats are untouched.
        assert_eq!(cache.stats(), (0, 1));
        assert_eq!(cache.template_hits(), 0);
    }

    /// Instantiation and lowering errors propagate without seeding either
    /// cache level.
    #[test]
    fn template_path_errors_propagate() {
        let cache = JitCache::new();
        let t = tpl(1);
        let r = cache.get_or_instantiate::<&str>(
            "r",
            &t,
            &[],
            &[],
            |_| unreachable!(),
            || Err("cold boom"),
        );
        assert_eq!(r.unwrap_err(), "cold boom");
        assert_eq!(cache.template_count(), 0);
        assert!(cache.is_empty());
        cache
            .get_or_instantiate::<&str>("r", &t, &[], &[], |_| unreachable!(), || Ok(dummy(1)))
            .unwrap();
        let r = cache.get_or_instantiate::<&str>(
            "r",
            &t,
            &[1],
            &[],
            |_| Err("patch boom"),
            || panic!("template is cached"),
        );
        assert_eq!(r.unwrap_err(), "patch boom");
        assert_eq!(cache.len(), 1, "failed patch must not insert");
    }
}

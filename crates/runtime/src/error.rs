use infs_geom::GeomError;
use std::error::Error;
use std::fmt;

/// Errors from layout planning and JIT lowering.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// No valid transposed layout exists for the region's arrays; in-memory
    /// computing is disabled for the region (§4.1).
    NoLayout(GeomError),
    /// The region instance has no in-memory (tDFG) version.
    NotInMemory,
    /// The region instance carries no schedule for the hardware's geometry.
    NoSchedule,
    /// The lattice bounding box is not origin-anchored or exceeds the layout.
    BadBounding(String),
    /// The region's working set exceeds the compute SRAM capacity (the paper
    /// assumes inputs are tiled to fit in L3, §6).
    CapacityExceeded {
        /// Bytes required.
        required: u64,
        /// Bytes available across compute ways.
        available: u64,
    },
    /// The tDFG or schedule is structurally invalid (dangling node ids,
    /// missing domains). Built graphs never trip this; deserialized fat
    /// binaries bypass the builder's validation and must not panic a worker.
    MalformedGraph {
        /// Offending node id.
        node: u32,
        /// What was wrong.
        what: &'static str,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NoLayout(e) => write!(f, "no valid transposed layout: {e}"),
            RuntimeError::NotInMemory => write!(f, "region has no in-memory version"),
            RuntimeError::NoSchedule => {
                write!(f, "fat binary has no schedule for this SRAM geometry")
            }
            RuntimeError::BadBounding(s) => write!(f, "bad lattice bounding box: {s}"),
            RuntimeError::CapacityExceeded {
                required,
                available,
            } => write!(
                f,
                "working set of {required} bytes exceeds {available} bytes of compute SRAM"
            ),
            RuntimeError::MalformedGraph { node, what } => {
                write!(f, "malformed tDFG at node {node}: {what}")
            }
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::NoLayout(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeomError> for RuntimeError {
    fn from(e: GeomError) -> Self {
        RuntimeError::NoLayout(e)
    }
}

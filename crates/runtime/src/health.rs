//! Health-aware offload decisions: the degradation ladder.
//!
//! When L3 banks are quarantined (see `infs-faults` and `DESIGN.md` §10),
//! the Eq 2 decision gains a third outcome — falling all the way back to
//! the host — and its in-memory latency estimate must account for the work
//! the dead banks no longer absorb. This module keeps that logic next to
//! [`decide`] so the simulator and serving layer share one ladder.

use crate::{decide, HwConfig, Paradigm};
use infs_faults::BankHealth;
use infs_tdfg::OpProfile;

/// An execution tier, ordered by *availability*: [`Tier::Host`] needs
/// nothing beyond the cores, [`Tier::NearMemory`] needs at least one live
/// L3 bank's stream engine, [`Tier::InMemory`] needs a healthy quorum of
/// compute-SRAM banks. Degradation only ever moves *down* this order
/// (`InMemory → NearMemory → Host`); the proptests in
/// `tests/health_properties.rs` pin that monotonicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// Run on the host cores: always available.
    Host,
    /// Offload the sDFG to the L3 stream engines.
    NearMemory,
    /// Offload the tDFG to the compute-SRAM bitlines.
    InMemory,
}

impl Tier {
    /// Stable lowercase label for reports and trace counters.
    pub fn label(&self) -> &'static str {
        match self {
            Tier::Host => "host",
            Tier::NearMemory => "near-memory",
            Tier::InMemory => "in-memory",
        }
    }
}

/// Does the health mask leave enough banks for in-memory execution?
///
/// In-memory offload needs a strict majority quorum: at least half the
/// banks healthy. Below that, the transposed layout would concentrate so
/// many tiles per surviving bank that the paper's "latency independent of
/// `N_elem`" premise breaks down, so the ladder skips straight to
/// near-memory.
pub fn in_memory_quorum(health: &BankHealth) -> bool {
    health.any_healthy() && u64::from(health.healthy_count()) * 2 >= u64::from(health.n_banks())
}

/// Eq 2 with a health mask: the three-tier degradation decision.
///
/// * No healthy banks → [`Tier::Host`] (the stream engines live at the
///   banks too).
/// * Below the in-memory quorum → [`Tier::NearMemory`].
/// * Otherwise re-run [`decide`] with the bit-serial latency scaled by
///   `n_banks / healthy` (dead banks' tiles fold onto survivors, serializing
///   their bit-serial work), mapping the paradigm onto the tier.
///
/// Because the scale factor grows monotonically as banks die, a region can
/// only move down the ladder as health degrades — never up.
pub fn decide_healthy(
    profile: &OpProfile,
    hw: &HwConfig,
    expected_jit_cycles: u64,
    health: &BankHealth,
) -> Tier {
    let healthy = u64::from(health.healthy_count());
    if healthy == 0 {
        return Tier::Host;
    }
    if !in_memory_quorum(health) {
        return Tier::NearMemory;
    }
    let mut scaled = profile.clone();
    scaled.total_bit_serial_latency = profile
        .total_bit_serial_latency
        .saturating_mul(u64::from(health.n_banks()))
        .div_ceil(healthy);
    match decide(&scaled, hw, expected_jit_cycles) {
        Paradigm::InMemory => Tier::InMemory,
        Paradigm::NearMemory => Tier::NearMemory,
    }
}

/// Round-robin placement of `n_items` work items over the *healthy* banks
/// only. Returns the bank index for each item, or `None` when no bank is
/// healthy (the caller must degrade to the host tier).
pub fn place_on_healthy(n_items: usize, health: &BankHealth) -> Option<Vec<u32>> {
    let banks = health.healthy_banks();
    if banks.is_empty() {
        return None;
    }
    Some((0..n_items).map(|i| banks[i % banks.len()]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(elems: u64, lat: u64) -> OpProfile {
        OpProfile {
            max_domain_elems: elems,
            ops_per_elem: 3,
            total_elem_ops: elems * 3,
            total_bit_serial_latency: lat,
            node_count: 8,
            moved_elems: 0,
            per_op: Vec::new(),
        }
    }

    #[test]
    fn tier_order_matches_availability() {
        assert!(Tier::Host < Tier::NearMemory);
        assert!(Tier::NearMemory < Tier::InMemory);
    }

    #[test]
    fn full_health_matches_plain_decide() {
        let hw = HwConfig::default();
        let health = BankHealth::all_healthy(hw.n_banks);
        let big = profile(4 << 20, 1_000);
        let small = profile(16 << 10, 1_000);
        assert_eq!(decide_healthy(&big, &hw, 500, &health), Tier::InMemory);
        assert_eq!(decide(&big, &hw, 500), Paradigm::InMemory);
        assert_eq!(decide_healthy(&small, &hw, 500, &health), Tier::NearMemory);
    }

    #[test]
    fn dead_banks_push_down_the_ladder() {
        let hw = HwConfig::default();
        // Barely in-memory at full health: lhs = 3·2²¹/16 ≈ 393k core
        // cycles vs 300k bit-serial + overheads.
        let p = profile(1 << 21, 300_000);
        let mut health = BankHealth::all_healthy(hw.n_banks);
        assert_eq!(decide_healthy(&p, &hw, 500, &health), Tier::InMemory);
        // Halve the banks: scaled latency doubles and flips the decision.
        for b in 0..hw.n_banks / 2 {
            health.mark_dead(b);
        }
        assert_eq!(decide_healthy(&p, &hw, 500, &health), Tier::NearMemory);
        // Kill the rest: even near-memory is gone.
        for b in 0..hw.n_banks {
            health.mark_dead(b);
        }
        assert_eq!(decide_healthy(&p, &hw, 500, &health), Tier::Host);
    }

    #[test]
    fn below_quorum_never_in_memory() {
        let hw = HwConfig::default();
        let p = profile(u64::MAX / 8, 1); // would trivially win Eq 2
        let mut health = BankHealth::all_healthy(hw.n_banks);
        for b in 0..hw.n_banks / 2 + 1 {
            health.mark_dead(b);
        }
        assert!(!in_memory_quorum(&health));
        assert_eq!(decide_healthy(&p, &hw, 0, &health), Tier::NearMemory);
    }

    #[test]
    fn placement_skips_dead_banks() {
        let mut health = BankHealth::all_healthy(8);
        health.mark_dead(0);
        health.mark_dead(3);
        let places = place_on_healthy(12, &health).unwrap();
        assert_eq!(places.len(), 12);
        for b in &places {
            assert!(health.is_healthy(*b));
        }
        // Round-robin covers every healthy bank.
        for b in health.healthy_banks() {
            assert!(places.contains(&b));
        }
    }

    #[test]
    fn placement_fails_with_no_healthy_banks() {
        let mut health = BankHealth::all_healthy(4);
        for b in 0..4 {
            health.mark_dead(b);
        }
        assert_eq!(place_on_healthy(3, &health), None);
    }
}

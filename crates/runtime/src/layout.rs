use crate::{HwConfig, RuntimeError};
use infs_geom::layout::{pick_tile_shape, tile_score, valid_tilings, LayoutHints, TilingRequest};
use infs_geom::{HyperRect, TileAddr, TileGrid, TileShape};
use infs_tdfg::Tdfg;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The transposed, tiled data layout of one region (paper §4.1, Table 1).
///
/// The layout tiles the region's *lattice space*: every lattice cell maps to a
/// `(bank, SRAM array, bitline)` triple through the [`TileGrid`], and each
/// array occupies its own wordline band within those arrays (assigned by the
/// static schedule). This is the information the hardware's layout override
/// table (LOT) holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransposedLayout {
    tile: TileShape,
    grid: TileGrid,
    lattice_shape: Vec<u64>,
    elem_bytes: u32,
}

impl TransposedLayout {
    /// Plans the layout for a region: evaluates every valid tile size under
    /// the §4.1 constraints in parallel and picks the best-scored feasible
    /// one (falling back to the next candidate when the best-scored tile has
    /// no feasible grid).
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::BadBounding`] — the lattice bounding box is not
    ///   origin-anchored (arrays are placed at the origin in this release).
    /// * [`RuntimeError::CapacityExceeded`] — more tiles than compute SRAM
    ///   arrays for every candidate: the working set must fit in L3 (§6).
    /// * [`RuntimeError::NoLayout`] — no tile size satisfies the constraints;
    ///   the caller must fall back to near-memory execution.
    pub fn plan(tdfg: &Tdfg, hints: &LayoutHints, hw: &HwConfig) -> Result<Self, RuntimeError> {
        let mut span = infs_trace::span!("runtime.layout_plan", nodes = tdfg.nodes().len());
        let request = Self::request(tdfg, hints, hw)?;
        let candidates = if request.array_is_line_aligned() {
            valid_tilings(&request)
        } else {
            Vec::new()
        };
        span.arg("candidates", candidates.len());
        if candidates.is_empty() {
            // Reuse pick_tile_shape's diagnostics for the no-candidate cases
            // (line misalignment / no admissible factorization).
            return match pick_tile_shape(&request) {
                Err(err) => Err(err.into()),
                Ok(tile) => Self::with_tile_internal(tdfg, tile, hw),
            };
        }
        // Score + feasibility for every candidate at once. Each feasibility
        // probe builds the full TileGrid, so the search is the expensive part
        // of planning; candidates are independent and evaluated in parallel.
        let mut evaluated: Vec<(f64, Result<Self, RuntimeError>)> = candidates
            .into_par_iter()
            .map(|tile| {
                let score = tile_score(&tile, &request);
                (score, Self::with_tile_internal(tdfg, tile, hw))
            })
            .collect();
        // Stable sort keeps enumeration order on score ties, matching the
        // sequential pick_tile_shape choice exactly. total_cmp so a NaN score
        // (degenerate request) cannot panic a serve worker mid-sort.
        evaluated.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut first_err = None;
        for (_, outcome) in evaluated {
            match outcome {
                Ok(layout) => return Ok(layout),
                Err(e) if first_err.is_none() => first_err = Some(e),
                Err(_) => {}
            }
        }
        // All candidates infeasible: report the best-scored one's failure
        // (e.g. CapacityExceeded when the region exceeds compute SRAM).
        Err(first_err.unwrap_or(RuntimeError::NoLayout(
            infs_geom::GeomError::NoValidTiling {
                detail: "no feasible candidate tiling".to_string(),
            },
        )))
    }

    /// Plans the layout with an explicitly chosen tile shape — the oracle /
    /// sensitivity path behind the Fig 16/17 tile-size sweeps.
    ///
    /// # Errors
    ///
    /// As [`plan`](Self::plan), plus [`RuntimeError::NoLayout`] if the tile
    /// does not satisfy constraint 1 (`∏ Ti = B`).
    pub fn plan_with_tile(
        tdfg: &Tdfg,
        tile: TileShape,
        hw: &HwConfig,
    ) -> Result<Self, RuntimeError> {
        let _span = infs_trace::span!("runtime.layout_plan", explicit_tile = tile.to_string());
        if tile.num_elements() != hw.geometry.bitlines as u64 {
            return Err(RuntimeError::NoLayout(
                infs_geom::GeomError::NoValidTiling {
                    detail: format!(
                        "tile {tile} does not fill {} bitlines",
                        hw.geometry.bitlines
                    ),
                },
            ));
        }
        Self::with_tile_internal(tdfg, tile, hw)
    }

    /// The *feasible* candidate tiles for a region, best-scored first — the
    /// autotuner's tile-variant space (`DESIGN.md` §15).
    ///
    /// Unlike [`plan`](Self::plan), which commits to the first feasible
    /// candidate (the §4.1 argmax), this returns the whole ranked list:
    /// element 0 is exactly the tile `plan` would pick, and the tail is the
    /// score-ordered alternatives whose grids also build. The score is a
    /// static proxy for observed cycles, so a lower-ranked tile can win on
    /// the simulator — that gap is what feedback-directed tuning closes.
    ///
    /// Regions with no admissible candidate enumeration (line-misaligned
    /// arrays) return an empty list rather than an error: there is nothing
    /// to explore.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadBounding`] for a non-origin lattice.
    pub fn ranked_candidates(
        tdfg: &Tdfg,
        hints: &LayoutHints,
        hw: &HwConfig,
    ) -> Result<Vec<TileShape>, RuntimeError> {
        let request = Self::request(tdfg, hints, hw)?;
        if !request.array_is_line_aligned() {
            return Ok(Vec::new());
        }
        let evaluated: Vec<(f64, bool, TileShape)> = valid_tilings(&request)
            .into_par_iter()
            .map(|tile| {
                let feasible = Self::with_tile_internal(tdfg, tile.clone(), hw).is_ok();
                (tile_score(&tile, &request), feasible, tile)
            })
            .collect();
        // Stable sort on the score, exactly like `plan` — so element 0 is
        // the tile `plan` commits to, including its tie-breaking.
        let mut feasible: Vec<(f64, TileShape)> = evaluated
            .into_iter()
            .filter_map(|(score, ok, tile)| ok.then_some((score, tile)))
            .collect();
        feasible.sort_by(|a, b| a.0.total_cmp(&b.0));
        Ok(feasible.into_iter().map(|(_, tile)| tile).collect())
    }

    /// All tile shapes the constraint solver admits for this region — the
    /// sweep space of Fig 16/17.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadBounding`] for a non-origin lattice.
    pub fn candidate_tiles(tdfg: &Tdfg, hw: &HwConfig) -> Result<Vec<TileShape>, RuntimeError> {
        let request = Self::request(tdfg, &LayoutHints::default(), hw)?;
        Ok(valid_tilings(&request))
    }

    /// Cross-region layout handoff: the tile shape a *pipeline* of regions
    /// should share so a producer's transposed output is consumed in place by
    /// the next region without re-transposition (a tile-shape change releases
    /// the whole transposed working set — see the machine's prepare path).
    ///
    /// Returns the candidate tile admissible **and feasible** for every given
    /// region that minimizes the summed per-region layout score, or `None`
    /// when the regions share no tile (callers then fall back to per-region
    /// planning and pay the boundary re-transposition).
    pub fn negotiate_tile(tdfgs: &[&Tdfg], hw: &HwConfig) -> Option<TileShape> {
        let mut span = infs_trace::span!("runtime.negotiate_tile", regions = tdfgs.len());
        let (&first, rest) = tdfgs.split_first()?;
        let mut requests = vec![Self::request(first, &LayoutHints::default(), hw).ok()?];
        let mut common = valid_tilings(&requests[0]);
        for tdfg in rest {
            let request = Self::request(tdfg, &LayoutHints::default(), hw).ok()?;
            let admissible = valid_tilings(&request);
            common.retain(|t| admissible.contains(t));
            requests.push(request);
        }
        common.retain(|tile| {
            tdfgs
                .iter()
                .all(|&tdfg| Self::with_tile_internal(tdfg, tile.clone(), hw).is_ok())
        });
        span.arg("candidates", common.len());
        common.into_iter().min_by(|a, b| {
            let score = |t: &TileShape| requests.iter().map(|r| tile_score(t, r)).sum::<f64>();
            score(a).total_cmp(&score(b))
        })
    }

    fn request(
        tdfg: &Tdfg,
        hints: &LayoutHints,
        hw: &HwConfig,
    ) -> Result<TilingRequest, RuntimeError> {
        let shape = Self::lattice_shape_of(tdfg)?;
        Ok(TilingRequest {
            array_shape: shape,
            elem_size: tdfg.dtype().size_bytes(),
            bitlines: hw.geometry.bitlines as u64,
            arrays_per_bank: hw.arrays_per_bank,
            line_bytes: hw.line_bytes,
            hints: hints.clone(),
        })
    }

    /// The origin-anchored lattice shape planning derives from a graph's
    /// *touched* region — everything [`plan`](Self::plan) reads from the
    /// graph besides dtype and hints. Public so callers can key layout caches
    /// and template signatures on it without planning.
    pub fn lattice_shape_for(tdfg: &Tdfg) -> Result<Vec<u64>, RuntimeError> {
        Self::lattice_shape_of(tdfg)
    }

    fn lattice_shape_of(tdfg: &Tdfg) -> Result<Vec<u64>, RuntimeError> {
        // The §3.2 bounding rectangle spans the full lattice boxes of every
        // referenced array, so a region writing `C[m][..]` drags it to
        // `[-m, ..)` even though every command it emits is origin-anchored.
        // In dimensions where the array boxes stay origin-anchored we keep
        // their extent (the natural, line-aligned lattice). In dimensions
        // dragged negative by an aligned write offset, we fall back to the
        // *touched* region — the union of finite node domains and output
        // rects, i.e. the cells actually resident in compute SRAM. That keeps
        // shifted instances feasible and shape-identical, which is what lets
        // them share one command template.
        let b = tdfg.bounding();
        if (0..b.ndim()).all(|d| b.interval(d).0 >= 0) {
            return Ok((0..b.ndim()).map(|d| b.interval(d).1 as u64).collect());
        }
        let mut touched: Option<HyperRect> = None;
        let mut extend = |r: &HyperRect| -> Result<(), RuntimeError> {
            touched = Some(match touched.take() {
                Some(t) => t
                    .bounding(r)
                    .map_err(|e| RuntimeError::BadBounding(e.to_string()))?,
                None => r.clone(),
            });
            Ok(())
        };
        for i in 0..tdfg.nodes().len() {
            if let Some(d) = tdfg.domain(infs_tdfg::NodeId(i as u32)) {
                extend(d)?;
            }
        }
        for out in tdfg.outputs() {
            if let infs_tdfg::OutputTarget::Array { rect, .. } = &out.target {
                extend(rect)?;
            }
        }
        let t = touched.ok_or_else(|| {
            RuntimeError::BadBounding("region touches no finite lattice cells".to_string())
        })?;
        let mut shape = Vec::with_capacity(b.ndim());
        for d in 0..b.ndim() {
            let (bp, bq) = b.interval(d);
            if bp >= 0 {
                // Origin-anchored array boxes: keep the full (aligned) extent,
                // mapping cells [0, bq) even if the region only touches part.
                shape.push(bq as u64);
                continue;
            }
            let (tp, tq) = t.interval(d);
            if tp < 0 {
                return Err(RuntimeError::BadBounding(format!(
                    "touched region {t} starts before the origin in dim {d}"
                )));
            }
            shape.push(tq as u64);
        }
        Ok(shape)
    }

    fn with_tile_internal(
        tdfg: &Tdfg,
        tile: TileShape,
        hw: &HwConfig,
    ) -> Result<Self, RuntimeError> {
        let lattice_shape = Self::lattice_shape_of(tdfg)?;
        let grid = TileGrid::new(
            tile.clone(),
            lattice_shape.clone(),
            hw.n_banks,
            hw.arrays_per_bank,
        )
        .map_err(RuntimeError::NoLayout)?;
        let capacity = hw.n_banks as u64 * hw.arrays_per_bank as u64;
        if grid.num_tiles() > capacity {
            return Err(RuntimeError::CapacityExceeded {
                required: grid.num_tiles() * hw.geometry.size_bytes(),
                available: capacity * hw.geometry.size_bytes(),
            });
        }
        Ok(TransposedLayout {
            tile,
            grid,
            lattice_shape,
            elem_bytes: tdfg.dtype().size_bytes(),
        })
    }

    /// The chosen tile shape.
    pub fn tile(&self) -> &TileShape {
        &self.tile
    }

    /// The lattice tile grid (cell → bank/array/bitline mapping).
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// Lattice extents, dimension 0 first.
    pub fn lattice_shape(&self) -> &[u64] {
        &self.lattice_shape
    }

    /// Element size in bytes.
    pub fn elem_bytes(&self) -> u32 {
        self.elem_bytes
    }

    /// Physical placement of a lattice cell.
    ///
    /// Returns `Ok(None)` for points outside the lattice.
    ///
    /// # Errors
    ///
    /// Propagates [`infs_geom::GeomError::IndexOverflow`] (as
    /// [`RuntimeError::NoLayout`]) if the cell's physical indices do not fit
    /// the `u32` fields of [`TileAddr`].
    pub fn locate(&self, point: &[i64]) -> Result<Option<TileAddr>, RuntimeError> {
        Ok(self.grid.locate(point)?)
    }

    /// Total transposed bytes one array of the region occupies (the lattice
    /// footprint of its band; used for prepare/release traffic accounting).
    pub fn lattice_cells(&self) -> u64 {
        self.lattice_shape.iter().product()
    }

    /// Intersection of a rectangle with one tile, in elements.
    pub fn tile_overlap_elems(&self, tile_index: u64, rect: &HyperRect) -> u64 {
        let tr = self.grid.tile_rect(tile_index);
        match tr.intersect(rect) {
            Ok(Some(r)) => r.num_elements(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infs_frontend::{Idx, KernelBuilder, ScalarExpr};
    use infs_sdfg::DataType;

    fn stencil2d_tdfg(n: u64) -> Tdfg {
        let mut k = KernelBuilder::new("stencil2d", DataType::F32);
        let a = k.array("A", vec![n, n]);
        let b = k.array("B", vec![n, n]);
        let i = k.parallel_loop("i", 1, n as i64 - 1);
        let j = k.parallel_loop("j", 1, n as i64 - 1);
        let e = ScalarExpr::add(
            ScalarExpr::add(
                ScalarExpr::load(a, vec![Idx::var_plus(i, -1), Idx::var(j)]),
                ScalarExpr::load(a, vec![Idx::var_plus(i, 1), Idx::var(j)]),
            ),
            ScalarExpr::add(
                ScalarExpr::load(a, vec![Idx::var(i), Idx::var_plus(j, -1)]),
                ScalarExpr::load(a, vec![Idx::var(i), Idx::var_plus(j, 1)]),
            ),
        );
        k.assign(b, vec![Idx::var(i), Idx::var(j)], e);
        k.build().unwrap().tensorize(&[]).unwrap()
    }

    #[test]
    fn plan_picks_square_tiles_for_shifts() {
        let g = stencil2d_tdfg(512);
        let hw = HwConfig::default();
        let layout = TransposedLayout::plan(&g, &g.layout_hints(), &hw).unwrap();
        assert_eq!(layout.tile().dims(), &[16, 16]);
        assert_eq!(layout.lattice_shape(), &[512, 512]);
        assert_eq!(layout.grid().num_tiles(), 32 * 32);
    }

    #[test]
    fn plan_with_explicit_tile() {
        let g = stencil2d_tdfg(512);
        let hw = HwConfig::default();
        let t = TileShape::new(vec![64, 4]).unwrap();
        let layout = TransposedLayout::plan_with_tile(&g, t, &hw).unwrap();
        assert_eq!(layout.tile().dims(), &[64, 4]);
        let bad = TileShape::new(vec![64, 64]).unwrap();
        assert!(TransposedLayout::plan_with_tile(&g, bad, &hw).is_err());
    }

    #[test]
    fn candidate_tiles_enumerate_factorizations() {
        let g = stencil2d_tdfg(512);
        let tiles = TransposedLayout::candidate_tiles(&g, &HwConfig::default()).unwrap();
        assert_eq!(tiles.len(), 9); // 2^8 factor pairs
    }

    #[test]
    fn capacity_guard() {
        let g = stencil2d_tdfg(4096); // 16M cells / 256 = 64k tiles > 16k arrays
        let hw = HwConfig::default();
        assert!(matches!(
            TransposedLayout::plan(&g, &g.layout_hints(), &hw),
            Err(RuntimeError::CapacityExceeded { .. })
        ));
    }

    /// One matmul inner-product row: `C[m][n] = Σ_k buf[k]·B[k][n]` with a
    /// symbolic output row `m`. The §3.2 bounding rectangle is `[-m, N)` in
    /// dim 0 (it spans C's full lattice box shifted by the write offset), but
    /// every node domain and output rect is origin-anchored.
    fn mm_row_tdfg(n: u64, m: i64) -> Tdfg {
        let mut k = KernelBuilder::new("mm_row", DataType::F32);
        let _a = k.array("A", vec![n, n]);
        let b = k.array("B", vec![n, n]);
        let c = k.array("C", vec![n, n]);
        let buf = k.array("buf", vec![n, 1]);
        let mm = k.sym("m");
        let kk = k.parallel_loop("k", 0, n as i64);
        let nn = k.parallel_loop("n", 0, n as i64);
        let prod = ScalarExpr::mul(
            ScalarExpr::load(buf, vec![Idx::var(kk), Idx::constant(0)]),
            ScalarExpr::load(b, vec![Idx::var(kk), Idx::var(nn)]),
        );
        k.assign_reduced(
            c,
            vec![Idx::sym(mm), Idx::var(nn)],
            prod,
            vec![(kk, infs_sdfg::ReduceOp::Sum)],
        );
        k.build().unwrap().tensorize(&[m]).unwrap()
    }

    #[test]
    fn shifted_output_rows_plan_and_share_a_lattice() {
        let hw = HwConfig::default();
        let base = mm_row_tdfg(512, 0);
        let shape = TransposedLayout::lattice_shape_for(&base).unwrap();
        assert_eq!(shape, vec![512, 512]);
        for m in [1i64, 5, 511] {
            let g = mm_row_tdfg(512, m);
            assert!(g.bounding().interval(0).0 == -m, "bounding drags to -m");
            let s = TransposedLayout::lattice_shape_for(&g).unwrap();
            assert_eq!(s, shape, "row {m} must share the row-0 lattice");
            let layout = TransposedLayout::plan(&g, &g.layout_hints(), &hw).unwrap();
            assert_eq!(layout.lattice_shape(), &shape[..]);
        }
    }

    #[test]
    fn locate_roundtrip() {
        let g = stencil2d_tdfg(512);
        let hw = HwConfig::default();
        let layout = TransposedLayout::plan(&g, &g.layout_hints(), &hw).unwrap();
        let addr = layout.locate(&[17, 3]).unwrap().unwrap();
        // Tile coordinates (1, 0) on the 32-wide tile grid.
        assert_eq!(addr.tile, 1);
        assert!(addr.bitline < 256);
        assert!(layout.locate(&[512, 0]).unwrap().is_none());
    }
}

//! Relocatable command templates (shape-polymorphic JIT, §4.2 extension).
//!
//! The concrete memo key `(region, symbols, tile)` gives a 0% hit rate on
//! workloads whose geometry moves every invocation: Gaussian elimination's
//! shrinking triangular sweep re-lowers once per pivot, a channelled
//! convolution once per sliding tap. All those instances share the *same*
//! graph structure — only rect coordinates, shift distances and dimension
//! choices differ. This module splits a scheduled tDFG into:
//!
//! - a [`CommandTemplate`]: the structural skeleton (operator kinds,
//!   bit-serial latencies, immediate widths, SSA wiring, emission order) with
//!   every piece of concrete geometry replaced by an index into a *slot
//!   table*, plus a canonical [`signature`](CommandTemplate::signature)
//!   folding everything that determines command emission besides the slots;
//! - the slot table itself, a flat `Vec<i64>` of rect intervals, dimension
//!   choices and shift distances ([`distill`] returns both).
//!
//! A cache hit on `(signature, tile)` *instantiates* the cached template by
//! patching the fresh slot values through the shared emission core
//! ([`crate::instantiate`]) — the modeled hardware cost is an O(commands)
//! copy-and-patch ([`crate::HwConfig::jit_patch_cycles`]) instead of full
//! re-lowering through layout planning and decomposition.
//!
//! Array and stream identities never reach the template: command emission is
//! pure lattice-space, so ping-pong buffered phases and same-shape regions
//! over different arrays share templates by construction.

use crate::{HwConfig, RuntimeError, TransposedLayout};
use infs_isa::Schedule;
use infs_tdfg::{bit_serial_latency, ComputeOp, Node, NodeId, Tdfg};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A hyperrectangle stored as slot references: `2 × ndim` consecutive slots
/// starting at `base`, laid out `start₀, end₀, start₁, end₁, …`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SlotRect {
    /// First slot of the interval list.
    pub base: u32,
}

/// One templated emission step. Structural properties (operators, latencies,
/// immediate bytes, the producing node id) are stored concretely — they are
/// part of the signature; geometry lives behind slot indices.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TemplateOp {
    /// An element-wise compute node (one fused command over its decomposed
    /// pieces).
    Compute {
        /// Producing tDFG node.
        node: NodeId,
        /// Operation.
        op: ComputeOp,
        /// Bit-serial latency.
        latency: u64,
        /// Immediate operand bytes.
        imm_bytes: u64,
        /// Domain rect slots.
        domain: SlotRect,
    },
    /// A `mv` node. Dimension and distance are slots: a vertical pass is the
    /// same template as a horizontal one.
    Mv {
        /// Producing tDFG node.
        node: NodeId,
        /// Slot holding the shifted dimension.
        dim: u32,
        /// Slot holding the signed shift distance.
        dist: u32,
        /// Domain rect slots (`None` for statically unbounded inputs — legal
        /// only when the distance slot holds 0 at instantiation time).
        domain: Option<SlotRect>,
    },
    /// A `bc` node.
    Bc {
        /// Producing tDFG node.
        node: NodeId,
        /// Slot holding the broadcast dimension.
        dim: u32,
        /// Source rect slots.
        src: SlotRect,
        /// Destination rect slots.
        dest: SlotRect,
    },
    /// A `reduce` node (round structure is recomputed from the slot extents
    /// at instantiation — shrinking domains change the round count freely).
    Reduce {
        /// Producing tDFG node.
        node: NodeId,
        /// Element-wise equivalent of the reduction operator.
        eq: ComputeOp,
        /// Bit-serial latency of one round.
        latency: u64,
        /// Slot holding the reduced dimension.
        dim: u32,
        /// Input-domain rect slots.
        domain: SlotRect,
    },
}

/// A relocatable command template: what [`distill`] extracts from a scheduled
/// graph, and what [`crate::instantiate`] stamps back out against a fresh
/// slot table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommandTemplate {
    /// Emission steps in schedule order (non-emitting nodes are dropped).
    pub ops: Vec<TemplateOp>,
    /// Length of the slot table every instantiation must supply.
    pub n_slots: u32,
    /// Lattice dimensionality.
    pub ndim: u32,
    /// Element size in bytes (from the graph's dtype).
    pub elem_bytes: u64,
    /// Canonical signature: graph structure, schedule order, lattice shape,
    /// dtype and hardware identity. Two (graph, schedule, hw) triples with
    /// equal signatures emit identical command streams for equal slot tables
    /// and tile shapes.
    pub signature: u64,
}

/// Extracts the relocatable template and concrete slot table of a scheduled
/// graph. O(nodes); runs on every dispatch — the expensive work (layout
/// planning, decomposition, bank mapping) only happens when the template
/// misses the cache.
///
/// # Errors
///
/// [`RuntimeError::MalformedGraph`] under exactly the conditions
/// [`crate::lower`] rejects: dangling schedule/input ids, or broadcast /
/// reduce nodes whose required domains are infinite.
pub fn distill(
    g: &Tdfg,
    schedule: &Schedule,
    hw: &HwConfig,
) -> Result<(CommandTemplate, Vec<i64>), RuntimeError> {
    let n_nodes = g.nodes().len();
    for &id in &schedule.order {
        if id.0 as usize >= n_nodes {
            return Err(RuntimeError::MalformedGraph {
                node: id.0,
                what: "schedule order references a node the graph does not have",
            });
        }
        for input in g.node(id).inputs() {
            if input.0 as usize >= n_nodes {
                return Err(RuntimeError::MalformedGraph {
                    node: id.0,
                    what: "node input references a node the graph does not have",
                });
            }
        }
    }
    let mut ops = Vec::new();
    let mut slots: Vec<i64> = Vec::new();
    let push_rect = |slots: &mut Vec<i64>, r: &infs_geom::HyperRect| -> SlotRect {
        let base = slots.len() as u32;
        for d in 0..r.ndim() {
            let (p, q) = r.interval(d);
            slots.push(p);
            slots.push(q);
        }
        SlotRect { base }
    };
    for &id in &schedule.order {
        match g.node(id) {
            Node::Input { .. }
            | Node::StreamIn { .. }
            | Node::Shrink { .. }
            | Node::ConstVal { .. }
            | Node::Param { .. } => {}
            Node::Compute { op, inputs } => {
                let Some(domain) = g.domain(id) else {
                    continue; // constant-folded: emits nothing in any instance
                };
                let imm_inputs = inputs.iter().filter(|&&x| g.domain(x).is_none()).count() as u64;
                let domain = push_rect(&mut slots, domain);
                ops.push(TemplateOp::Compute {
                    node: id,
                    op: *op,
                    latency: bit_serial_latency(*op, g.dtype()),
                    imm_bytes: imm_inputs * g.dtype().size_bytes() as u64,
                    domain,
                });
            }
            Node::Mv { dim, dist, .. } => {
                let dim_slot = slots.len() as u32;
                slots.push(*dim as i64);
                let dist_slot = slots.len() as u32;
                slots.push(*dist);
                let domain = g.domain(id).map(|r| push_rect(&mut slots, r));
                if domain.is_none() && *dist != 0 {
                    return Err(RuntimeError::MalformedGraph {
                        node: id.0,
                        what: "mv node has no finite domain",
                    });
                }
                ops.push(TemplateOp::Mv {
                    node: id,
                    dim: dim_slot,
                    dist: dist_slot,
                    domain,
                });
            }
            Node::Bc { input, dim, .. } => {
                let dest = g.domain(id).ok_or(RuntimeError::MalformedGraph {
                    node: id.0,
                    what: "bc node has no finite domain",
                })?;
                let src = g.domain(*input).ok_or(RuntimeError::MalformedGraph {
                    node: id.0,
                    what: "bc input has no finite domain",
                })?;
                let dim_slot = slots.len() as u32;
                slots.push(*dim as i64);
                let src = push_rect(&mut slots, src);
                let dest = push_rect(&mut slots, dest);
                ops.push(TemplateOp::Bc {
                    node: id,
                    dim: dim_slot,
                    src,
                    dest,
                });
            }
            Node::Reduce { input, dim, op } => {
                let in_dom = g.domain(*input).ok_or(RuntimeError::MalformedGraph {
                    node: id.0,
                    what: "reduce input has no finite domain",
                })?;
                let eq = match op {
                    infs_sdfg::ReduceOp::Sum => ComputeOp::Add,
                    infs_sdfg::ReduceOp::Min => ComputeOp::Min,
                    infs_sdfg::ReduceOp::Max => ComputeOp::Max,
                };
                let dim_slot = slots.len() as u32;
                slots.push(*dim as i64);
                let domain = push_rect(&mut slots, in_dom);
                ops.push(TemplateOp::Reduce {
                    node: id,
                    eq,
                    latency: bit_serial_latency(eq, g.dtype()),
                    dim: dim_slot,
                    domain,
                });
            }
        }
    }
    let lattice = TransposedLayout::lattice_shape_for(g)?;
    let mut h = DefaultHasher::new();
    g.structural_signature().hash(&mut h);
    schedule.order.hash(&mut h);
    lattice.hash(&mut h);
    hw.n_banks.hash(&mut h);
    hw.arrays_per_bank.hash(&mut h);
    hw.geometry.hash(&mut h);
    ops.hash(&mut h);
    (slots.len() as u32).hash(&mut h);
    let template = CommandTemplate {
        ops,
        n_slots: slots.len() as u32,
        ndim: g.ndim() as u32,
        elem_bytes: g.dtype().size_bytes() as u64,
        signature: h.finish(),
    };
    Ok((template, slots))
}

/// Slot-table decoding helpers shared by [`crate::instantiate`].
impl CommandTemplate {
    /// Reads one rect out of a slot table.
    pub(crate) fn rect(
        &self,
        slots: &[i64],
        r: SlotRect,
        node: NodeId,
    ) -> Result<infs_geom::HyperRect, RuntimeError> {
        let base = r.base as usize;
        let n = self.ndim as usize;
        let mut iv = Vec::with_capacity(n);
        for d in 0..n {
            let (Some(&p), Some(&q)) = (slots.get(base + 2 * d), slots.get(base + 2 * d + 1))
            else {
                return Err(RuntimeError::MalformedGraph {
                    node: node.0,
                    what: "template slot rect escapes the slot table",
                });
            };
            iv.push((p, q));
        }
        infs_geom::HyperRect::new(iv).map_err(|_| RuntimeError::MalformedGraph {
            node: node.0,
            what: "template slot rect is inverted",
        })
    }

    /// Reads a dimension choice out of a slot table.
    pub(crate) fn dim(
        &self,
        slots: &[i64],
        slot: u32,
        node: NodeId,
    ) -> Result<usize, RuntimeError> {
        let v = *slots
            .get(slot as usize)
            .ok_or(RuntimeError::MalformedGraph {
                node: node.0,
                what: "template dim slot escapes the slot table",
            })?;
        if v < 0 || v >= self.ndim as i64 {
            return Err(RuntimeError::MalformedGraph {
                node: node.0,
                what: "template dim slot out of range",
            });
        }
        Ok(v as usize)
    }

    /// Reads a plain signed slot value.
    pub(crate) fn value(
        &self,
        slots: &[i64],
        slot: u32,
        node: NodeId,
    ) -> Result<i64, RuntimeError> {
        slots
            .get(slot as usize)
            .copied()
            .ok_or(RuntimeError::MalformedGraph {
                node: node.0,
                what: "template value slot escapes the slot table",
            })
    }
}

use infs_isa::SramGeometry;
use serde::{Deserialize, Serialize};

/// Hardware parameters the runtime needs to plan layouts, lower commands and
/// make the offload decision. The full machine model (`infs-sim`) derives its
/// runtime view from the same numbers (Table 2 defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HwConfig {
    /// Shared L3 banks (one per tile of the mesh; 64 in Table 2).
    pub n_banks: u32,
    /// Compute SRAM arrays per bank available to in-memory computing
    /// (16 ways × 16 arrays/way = 256 in Table 2, with 2 of 18 ways reserved
    /// for conventional caching).
    pub arrays_per_bank: u32,
    /// SRAM array geometry.
    pub geometry: SramGeometry,
    /// Cache line size in bytes.
    pub line_bytes: u32,
    /// Cores (for the Eq 2 core-side throughput estimate).
    pub cores: u32,
    /// fp32 lanes per core per cycle (one 512-bit vector op → 16).
    pub simd_lanes: u32,
    /// JIT model: fixed cycles per lowering invocation.
    pub jit_base_cycles: u64,
    /// JIT model: cycles per generated command (steps 1–2).
    pub jit_per_cmd_cycles: u64,
    /// JIT model: cycles per command *per bank* (step 3, the `O(N_bank×N_cmd)`
    /// mapping loop the paper identifies as the most expensive).
    pub jit_per_cmd_bank_cycles: u64,
    /// Cycles charged on a JIT-cache hit.
    pub jit_hit_cycles: u64,
    /// Cycles to copy-and-patch one command's offset/extent slots when a
    /// relocatable template serves the request (template hit, or a command
    /// whose emission class was already materialized earlier in the same
    /// stream). Orders of magnitude below `jit_per_cmd_cycles` because no
    /// decomposition or scheduling re-runs.
    pub jit_patch_per_cmd_cycles: u64,
}

impl Default for HwConfig {
    fn default() -> Self {
        HwConfig {
            n_banks: 64,
            arrays_per_bank: 256,
            geometry: SramGeometry::G256,
            line_bytes: 64,
            cores: 64,
            simd_lanes: 16,
            jit_base_cycles: 2_000,
            jit_per_cmd_cycles: 60,
            jit_per_cmd_bank_cycles: 2,
            jit_hit_cycles: 500,
            jit_patch_per_cmd_cycles: 2,
        }
    }
}

impl HwConfig {
    /// Total compute bitlines (`N_bank × N_array/bank × N_bitline`); 4 Mi with
    /// Table 2 defaults — "in total, it has 4M bitlines".
    pub fn total_bitlines(&self) -> u64 {
        self.n_banks as u64 * self.arrays_per_bank as u64 * self.geometry.bitlines as u64
    }

    /// Peak core-side throughput in element ops per cycle (`TP_core` of Eq 2).
    pub fn core_peak_ops_per_cycle(&self) -> u64 {
        self.cores as u64 * self.simd_lanes as u64
    }

    /// The JIT lowering cycle model for a freshly lowered stream of `n_cmds`
    /// commands, none of which reuse a previously materialized emission class.
    pub fn jit_cycles(&self, n_cmds: u64) -> u64 {
        self.jit_cycles_templated(n_cmds, 0)
    }

    /// The JIT lowering cycle model for a fresh stream in which
    /// `from_template` of the `n_cmds` commands were stamped out of an
    /// emission class already materialized earlier in the same stream (e.g.
    /// the per-piece copies of one decomposed compute node): those pay the
    /// copy-and-patch rate instead of the full per-command rate. The
    /// `O(N_bank×N_cmd)` bank-mapping loop still runs for every command —
    /// cold streams have no bank structure to reuse.
    pub fn jit_cycles_templated(&self, n_cmds: u64, from_template: u64) -> u64 {
        let fresh = n_cmds.saturating_sub(from_template);
        self.jit_base_cycles
            + self.jit_per_cmd_cycles * fresh
            + self.jit_patch_per_cmd_cycles * from_template.min(n_cmds)
            + self.jit_per_cmd_bank_cycles * n_cmds * self.n_banks as u64
    }

    /// Cycles to serve a request from a cached relocatable template:
    /// the hit cost plus one slot patch per command.
    pub fn jit_patch_cycles(&self, n_cmds: u64) -> u64 {
        self.jit_hit_cycles + self.jit_patch_per_cmd_cycles * n_cmds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_totals() {
        let hw = HwConfig::default();
        assert_eq!(hw.total_bitlines(), 4 * 1024 * 1024);
        assert_eq!(hw.core_peak_ops_per_cycle(), 1024);
    }

    #[test]
    fn jit_model_scales_with_banks() {
        let hw = HwConfig::default();
        let half = HwConfig { n_banks: 32, ..hw };
        assert!(hw.jit_cycles(100) > half.jit_cycles(100));
    }

    #[test]
    fn templated_commands_are_cheaper_than_fresh_ones() {
        let hw = HwConfig::default();
        assert!(hw.jit_cycles_templated(100, 60) < hw.jit_cycles(100));
        // All-fresh matches the legacy flat model.
        assert_eq!(hw.jit_cycles_templated(100, 0), hw.jit_cycles(100));
        // from_template can never push the cost below base + bank mapping.
        let floor = hw.jit_base_cycles + hw.jit_per_cmd_bank_cycles * 100 * hw.n_banks as u64;
        assert!(hw.jit_cycles_templated(100, 100) >= floor);
    }

    #[test]
    fn patch_is_orders_cheaper_than_lowering() {
        let hw = HwConfig::default();
        assert!(hw.jit_patch_cycles(100) * 10 < hw.jit_cycles(100));
    }
}

//! Static-compiler cost: equality saturation + extraction over the tDFGs that
//! exercise the Appendix-A rules hardest (the Fig 6 convolution with shared
//! constant weights and a multi-tap stencil).

use criterion::{criterion_group, criterion_main, Criterion};
use infs_egraph::{optimize, CostParams};
use infs_frontend::{Idx, KernelBuilder, ScalarExpr};
use infs_sdfg::DataType;
use std::hint::black_box;

fn conv2d_tdfg(n: u64) -> infs_tdfg::Tdfg {
    let mut k = KernelBuilder::new("conv2d", DataType::F32);
    let a = k.array("A", vec![n, n]);
    let b = k.array("B", vec![n, n]);
    let i = k.parallel_loop("i", 1, n as i64 - 1);
    let j = k.parallel_loop("j", 1, n as i64 - 1);
    let tap = |di: i64, dj: i64, w: f32| {
        ScalarExpr::mul(
            ScalarExpr::load(a, vec![Idx::var_plus(i, di), Idx::var_plus(j, dj)]),
            ScalarExpr::Const(w),
        )
    };
    let mut acc = tap(0, 0, 0.25);
    for (di, dj, w) in [
        (-1, -1, 0.0625),
        (1, -1, 0.0625),
        (-1, 1, 0.0625),
        (1, 1, 0.0625),
        (-1, 0, 0.125),
        (1, 0, 0.125),
        (0, -1, 0.125),
        (0, 1, 0.125),
    ] {
        acc = ScalarExpr::add(acc, tap(di, dj, w));
    }
    k.assign(b, vec![Idx::var(i), Idx::var(j)], acc);
    k.build()
        .expect("builds")
        .tensorize(&[])
        .expect("tensorizes")
}

fn three_tap_tdfg(n: u64) -> infs_tdfg::Tdfg {
    let mut k = KernelBuilder::new("stencil1d", DataType::F32);
    let a = k.array("A", vec![n]);
    let b = k.array("B", vec![n]);
    let i = k.parallel_loop("i", 1, n as i64 - 1);
    let e = ScalarExpr::add(
        ScalarExpr::add(
            ScalarExpr::load(a, vec![Idx::var_plus(i, -1)]),
            ScalarExpr::load(a, vec![Idx::var(i)]),
        ),
        ScalarExpr::load(a, vec![Idx::var_plus(i, 1)]),
    );
    k.assign(b, vec![Idx::var(i)], e);
    k.build()
        .expect("builds")
        .tensorize(&[])
        .expect("tensorizes")
}

fn bench_optimize(c: &mut Criterion) {
    let params = CostParams::default();
    let conv = conv2d_tdfg(2048);
    let sten = three_tap_tdfg(1 << 20);
    let mut group = c.benchmark_group("egraph_optimize");
    group.sample_size(10);
    group.bench_function("conv2d_9tap", |b| {
        b.iter(|| black_box(optimize(black_box(&conv), &params).expect("optimizes")))
    });
    group.bench_function("stencil1d_3tap", |b| {
        b.iter(|| black_box(optimize(black_box(&sten), &params).expect("optimizes")))
    });
    group.finish();
}

criterion_group!(benches, bench_optimize);
criterion_main!(benches);

//! Request throughput of the resident serving layer: mixed execute requests
//! from several client threads against one in-process `infs-serve` server,
//! with the artifact cache warm — measures admission + dispatch + session
//! pooling overhead on top of the simulator itself, and the benefit of
//! pooled (warm) sessions over cold per-request servers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use infs_serve::{
    demo, ArrayPayload, ExecuteRequest, Request, RequestBody, ServeConfig, Server, WireMode,
};
use std::hint::black_box;
use std::sync::Arc;

const N: u64 = 256;

fn execute_request(id: u64, artifact: &str, mode: WireMode) -> Request {
    Request {
        id,
        tenant: format!("bench-{}", id % 4),
        deadline_ms: None,
        body: RequestBody::Execute(ExecuteRequest {
            artifact: Some(artifact.to_string()),
            binary: None,
            region: "scale".to_string(),
            syms: vec![],
            params: vec![2.0],
            mode,
            inputs: vec![ArrayPayload {
                array: 0,
                data: vec![1.0; N as usize],
            }],
            outputs: vec![0],
        }),
    }
}

/// Compiles the demo kernel once and returns a running server plus the
/// warm artifact id.
fn warm_server(workers: usize) -> (Arc<Server>, String) {
    let server = Arc::new(Server::new(ServeConfig {
        workers,
        queue_capacity: 256,
        ..ServeConfig::default()
    }));
    let r = server.call(Request {
        id: 0,
        tenant: "bench".into(),
        deadline_ms: None,
        body: RequestBody::Compile(infs_serve::CompileRequest {
            kernel: demo::scale(N),
            representative_syms: vec![],
            optimize: true,
        }),
    });
    assert!(r.ok, "warmup compile failed: {:?}", r.error);
    (server, r.artifact.expect("artifact id"))
}

/// `clients` threads each push `per_client` execute requests through the
/// server and wait for every response; returns total requests completed.
fn drive(server: &Arc<Server>, artifact: &str, clients: usize, per_client: usize) -> u64 {
    std::thread::scope(|s| {
        for t in 0..clients {
            let server = server.clone();
            let artifact = artifact.to_string();
            s.spawn(move || {
                for i in 0..per_client {
                    let mode = [WireMode::InfS, WireMode::NearL3][(t + i) % 2];
                    let r = server.call(execute_request(
                        (t * per_client + i) as u64,
                        &artifact,
                        mode,
                    ));
                    assert!(r.ok, "bench execute failed: {:?}", r.error);
                }
            });
        }
    });
    (clients * per_client) as u64
}

fn bench_serve_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    for workers in [1usize, 4] {
        let (server, artifact) = warm_server(workers);
        group.bench_with_input(
            BenchmarkId::new("4clients_x16", workers),
            &workers,
            |b, _| b.iter(|| black_box(drive(&server, &artifact, 4, 16))),
        );
        server.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);

//! Contended lookup/insert throughput of the lock-striped JIT memo cache,
//! versus a single-map (1-shard) configuration — the concurrency cost the
//! parallel run matrix pays when every worker simulates through one shared
//! cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use infs_runtime::{CommandStream, JitCache, LoweredStats};
use std::hint::black_box;

fn dummy_stream() -> CommandStream {
    CommandStream {
        cmds: Vec::new(),
        jit_cycles: 1,
        stats: LoweredStats::default(),
    }
}

/// `threads` workers each drive `ops` mixed lookups/inserts over a shared
/// key population (~90% hits once warm), returning total wall ops.
fn hammer(cache: &JitCache, threads: usize, ops: usize) -> u64 {
    std::thread::scope(|s| {
        for t in 0..threads {
            let cache = &cache;
            s.spawn(move || {
                for i in 0..ops {
                    let k = ((t * 17 + i) % 64) as i64;
                    cache
                        .get_or_lower::<()>("bench", &[k], &[16, 16], || Ok(dummy_stream()))
                        .expect("lowering cannot fail");
                }
            });
        }
    });
    let (hits, misses) = cache.stats();
    hits + misses
}

fn bench_memo_shards(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let mut group = c.benchmark_group("memo_shards");
    group.sample_size(10);
    for shards in [1usize, 16] {
        group.bench_with_input(
            BenchmarkId::new(format!("{threads}threads"), shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let cache = JitCache::with_shards(shards);
                    black_box(hammer(&cache, threads, 2_000))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_memo_shards);
criterion_main!(benches);

//! Cost of a tracing probe when tracing is disabled — the price every
//! instrumented hot path (JIT lowering, per-bank simulation, e-graph
//! iterations) pays on ordinary runs. The design target is under 5 ns per
//! probe: one relaxed atomic load and a branch.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Median ns per call of `f` over `iters` calls (the vendored criterion
/// stand-in reports per-`iter` closure time; here one closure call runs a
/// batch so sub-ns costs resolve).
const BATCH: u64 = 10_000;

fn bench_disabled(c: &mut Criterion) {
    infs_trace::disable();
    let mut group = c.benchmark_group("trace_disabled");
    group.sample_size(50);
    group.bench_function("span", |b| {
        b.iter(|| {
            for i in 0..BATCH {
                let _g = infs_trace::span!("bench.disabled", i = i);
                black_box(&_g);
            }
        })
    });
    group.bench_function("counter", |b| {
        b.iter(|| {
            for i in 0..BATCH {
                infs_trace::counter!("bench.disabled", black_box(i));
            }
        })
    });
    group.bench_function("gauge", |b| {
        b.iter(|| {
            for i in 0..BATCH {
                infs_trace::gauge!("bench.disabled", black_box(i));
            }
        })
    });
    group.finish();
    println!("note: each iter above is a batch of {BATCH} probes; divide by {BATCH} for ns/probe (target: < 5 ns)");
}

fn bench_enabled(c: &mut Criterion) {
    // For contrast: the enabled path (lock a stripe, push an event). Cleared
    // per sample so the buffers never saturate.
    let _session = infs_trace::exclusive();
    let mut group = c.benchmark_group("trace_enabled");
    group.sample_size(20);
    group.bench_function("span", |b| {
        b.iter(|| {
            infs_trace::clear();
            for i in 0..1_000u64 {
                let _g = infs_trace::span!("bench.enabled", i = i);
                black_box(&_g);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_disabled, bench_enabled);
criterion_main!(benches);

//! Geometric kernels on the JIT's critical path: Algorithm 1 tensor
//! decomposition, tile-overlap enumeration, and the §4.1 tiling search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use infs_geom::layout::{pick_tile_shape, LayoutHints, TilingRequest};
use infs_geom::{decompose, HyperRect, TileGrid, TileShape};
use std::hint::black_box;

fn bench_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose");
    for (label, rect, tile) in [
        (
            "2d_unaligned",
            HyperRect::new(vec![(1, 2047), (1, 2047)]).unwrap(),
            vec![16u64, 16],
        ),
        (
            "3d_unaligned",
            HyperRect::new(vec![(1, 511), (1, 511), (1, 15)]).unwrap(),
            vec![16, 4, 4],
        ),
        (
            "1d_aligned",
            HyperRect::new(vec![(0, 4 << 20)]).unwrap(),
            vec![256],
        ),
    ] {
        group.bench_with_input(BenchmarkId::new("alg1", label), &rect, |b, r| {
            b.iter(|| black_box(decompose(black_box(r), &tile)))
        });
    }
    group.finish();
}

fn bench_tiles_overlapping(c: &mut Criterion) {
    let grid = TileGrid::new(
        TileShape::new(vec![16, 16]).unwrap(),
        vec![2048, 2048],
        64,
        256,
    )
    .unwrap();
    let rect = HyperRect::new(vec![(1, 2047), (1, 2047)]).unwrap();
    c.bench_function("tiles_overlapping_16k", |b| {
        b.iter(|| black_box(grid.tiles_overlapping(black_box(&rect))))
    });
}

fn bench_tiling_search(c: &mut Criterion) {
    let req = TilingRequest {
        array_shape: vec![512, 512, 16],
        elem_size: 4,
        bitlines: 256,
        arrays_per_bank: 256,
        line_bytes: 64,
        hints: LayoutHints {
            shift_dims: vec![0, 1, 2],
            reduce_dim: None,
            broadcast_dims: vec![],
        },
    };
    c.bench_function("pick_tile_shape_3d", |b| {
        b.iter(|| black_box(pick_tile_shape(black_box(&req)).expect("valid tiling")))
    });
}

criterion_group!(
    benches,
    bench_decompose,
    bench_tiles_overlapping,
    bench_tiling_search
);
criterion_main!(benches);

//! Host-side cost of the JIT runtime itself (§4.2 "Reducing JIT Overheads"):
//! Algorithm 1 + Algorithm 2 + bank mapping over real stencil regions, plus
//! the memoization-hit path. The paper reports an average 220 µs lowering
//! time after >1000× of optimization; this measures our implementation's
//! real wall-clock for the same job.
//!
//! The `jit_template` group covers the shape-polymorphic extension for the
//! four workloads the concrete memo key served at a 0% hit rate (dwt2d,
//! gauss_elim, conv2d, conv3d): `cold_lower` is the full pipeline a miss
//! pays (layout-aware decomposition + scheduling + bank mapping), while
//! `template_patch` is what a template hit pays instead — an O(nodes)
//! [`infs_runtime::distill`] of the fresh instance plus an O(commands)
//! [`infs_runtime::instantiate`] against the cached skeleton.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use infs_frontend::{Idx, KernelBuilder, ScalarExpr};
use infs_isa::{Compiler, RegionInstance, Schedule};
use infs_runtime::{JitCache, TransposedLayout};
use infs_sdfg::{DataType, ReduceOp};
use infs_sim::SystemConfig;
use infs_tdfg::ComputeOp;
use std::hint::black_box;

fn stencil_tdfg(n: u64) -> infs_tdfg::Tdfg {
    let mut k = KernelBuilder::new("stencil2d", DataType::F32);
    let a = k.array("A", vec![n, n]);
    let b = k.array("B", vec![n, n]);
    let i = k.parallel_loop("i", 1, n as i64 - 1);
    let j = k.parallel_loop("j", 1, n as i64 - 1);
    let tap = |di, dj| ScalarExpr::load(a, vec![Idx::var_plus(i, di), Idx::var_plus(j, dj)]);
    let sum = ScalarExpr::add(
        ScalarExpr::add(tap(0, 0), ScalarExpr::add(tap(-1, 0), tap(1, 0))),
        ScalarExpr::add(tap(0, -1), tap(0, 1)),
    );
    k.assign(b, vec![Idx::var(i), Idx::var(j)], sum);
    k.build()
        .expect("builds")
        .tensorize(&[])
        .expect("tensorizes")
}

fn bench_lowering(c: &mut Criterion) {
    let hw = SystemConfig::default().hw();
    let mut group = c.benchmark_group("jit_lowering");
    group.sample_size(20);
    for n in [256u64, 1024, 2048] {
        let g = stencil_tdfg(n);
        let schedule = Schedule::compute(&g, hw.geometry).expect("schedules");
        let layout = TransposedLayout::plan(&g, &g.layout_hints(), &hw).expect("plans");
        group.bench_with_input(BenchmarkId::new("stencil2d", n), &n, |bench, _| {
            bench.iter(|| {
                black_box(
                    infs_runtime::lower(black_box(&g), &schedule, &layout, &hw).expect("lowers"),
                )
            })
        });
    }
    group.finish();
}

fn bench_memoization(c: &mut Criterion) {
    let hw = SystemConfig::default().hw();
    let g = stencil_tdfg(1024);
    let schedule = Schedule::compute(&g, hw.geometry).expect("schedules");
    let layout = TransposedLayout::plan(&g, &g.layout_hints(), &hw).expect("plans");
    let cache = JitCache::new();
    cache
        .get_or_lower("stencil", &[0], layout.tile().dims(), || {
            infs_runtime::lower(&g, &schedule, &layout, &hw)
        })
        .expect("first lowering");
    c.bench_function("jit_cache_hit", |b| {
        b.iter(|| {
            black_box(
                cache
                    .get_or_lower("stencil", &[0], layout.tile().dims(), || {
                        Err::<infs_runtime::CommandStream, infs_runtime::RuntimeError>(
                            infs_runtime::RuntimeError::NotInMemory,
                        )
                    })
                    .expect("hit"),
            )
        })
    });
}

/// `gauss_elim`'s in-memory update region `A[r][c] -= M[k][c]·m[r]` over the
/// trailing submatrix, instantiated at pivot `k` — the per-pivot shrinking
/// triangle that re-lowered 1806 times under the concrete memo key.
fn gauss_main_instance(n: u64, k: i64) -> RegionInstance {
    let mut kb = KernelBuilder::new("gauss_main", DataType::F32);
    let a = kb.array("A", vec![n, n]);
    let marr = kb.array("MARR", vec![1, n]);
    let kv = kb.sym("k");
    let c = kb.parallel_loop_bounds("c", Idx::sym_plus(kv, 1), Idx::constant(n as i64));
    let r = kb.parallel_loop_bounds("r", Idx::sym_plus(kv, 1), Idx::constant(n as i64));
    let pivot_row = ScalarExpr::load(a, vec![Idx::var(c), Idx::sym(kv)]);
    let mult = ScalarExpr::load(marr, vec![Idx::constant(0), Idx::var(r)]);
    let delta = ScalarExpr::un(ComputeOp::Neg, ScalarExpr::mul(pivot_row, mult));
    kb.accum(a, vec![Idx::var(c), Idx::var(r)], ReduceOp::Sum, delta);
    let compiled = Compiler {
        optimize: false,
        ..Default::default()
    }
    .compile(kb.build().expect("gauss_main builds"), &[0])
    .expect("gauss_main compiles");
    compiled.instantiate(&[k]).expect("gauss_main instantiates")
}

/// One lifting phase of `dwt2d` (`dst = src + w·(aux[−1] + aux[+1])` along
/// `dim`): the horizontal and vertical passes are shape-siblings whose only
/// differences — shifted dimension and band bounds — live in the slot table.
fn dwt_phase_instance(n: u64, dim: usize, lo: i64, hi: i64, w: f32) -> RegionInstance {
    let mut k = KernelBuilder::new("dwt_phase", DataType::F32);
    let src = k.array("SRC", vec![n, n]);
    let dst = k.array("DST", vec![n, n]);
    let ni = n as i64;
    let i = k.parallel_loop(
        "i",
        if dim == 0 { lo } else { 0 },
        if dim == 0 { hi } else { ni },
    );
    let j = k.parallel_loop(
        "j",
        if dim == 1 { lo } else { 0 },
        if dim == 1 { hi } else { ni },
    );
    let tap = |d: i64| {
        let (di, dj) = if dim == 0 { (d, 0) } else { (0, d) };
        ScalarExpr::load(src, vec![Idx::var_plus(i, di), Idx::var_plus(j, dj)])
    };
    let e = ScalarExpr::add(
        tap(0),
        ScalarExpr::mul(ScalarExpr::add(tap(-1), tap(1)), ScalarExpr::Const(w)),
    );
    k.assign(dst, vec![Idx::var(i), Idx::var(j)], e);
    let compiled = Compiler::default()
        .compile(k.build().expect("dwt phase builds"), &[])
        .expect("dwt phase compiles");
    compiled.instantiate(&[]).expect("dwt phase instantiates")
}

/// The Fig 6 3×3 constant-weight convolution (e-graph optimized).
fn conv2d_instance(n: u64) -> RegionInstance {
    let mut k = KernelBuilder::new("conv2d", DataType::F32);
    let a = k.array("A", vec![n, n]);
    let b = k.array("B", vec![n, n]);
    let i = k.parallel_loop("i", 1, n as i64 - 1);
    let j = k.parallel_loop("j", 1, n as i64 - 1);
    let tap = |di: i64, dj: i64, w: f32| {
        ScalarExpr::mul(
            ScalarExpr::load(a, vec![Idx::var_plus(i, di), Idx::var_plus(j, dj)]),
            ScalarExpr::Const(w),
        )
    };
    let mut acc = tap(0, 0, 0.25);
    for (di, dj, w) in [
        (-1, -1, 0.0625),
        (1, -1, 0.0625),
        (-1, 1, 0.0625),
        (1, 1, 0.0625),
        (-1, 0, 0.125),
        (1, 0, 0.125),
        (0, -1, 0.125),
        (0, 1, 0.125),
    ] {
        acc = ScalarExpr::add(acc, tap(di, dj, w));
    }
    k.assign(b, vec![Idx::var(i), Idx::var(j)], acc);
    let compiled = Compiler::default()
        .compile(k.build().expect("conv2d builds"), &[])
        .expect("conv2d compiles");
    compiled.instantiate(&[]).expect("conv2d instantiates")
}

/// One `conv3d` accumulation round `OUT += IN(ci, shifted by dx/dy)·WBUF`
/// instantiated at a given tap — the per-(ci, tap) sliding window that
/// re-lowered once per round under the concrete key.
fn conv3d_acc_instance(hw_n: u64, chans: u64, ci: i64, dx: i64, dy: i64) -> RegionInstance {
    let mut k = KernelBuilder::new("conv3d_acc", DataType::F32);
    let inp = k.array("IN", vec![hw_n, hw_n, chans]);
    let out = k.array("OUT", vec![hw_n, hw_n, chans]);
    let wbuf = k.array("WBUF", vec![1, 1, chans]);
    let civ = k.sym("ci");
    let dxv = k.sym("dx");
    let dyv = k.sym("dy");
    let x = k.parallel_loop("x", 1, hw_n as i64 - 1);
    let y = k.parallel_loop("y", 1, hw_n as i64 - 1);
    let co = k.parallel_loop("co", 0, chans as i64);
    let in_tap = ScalarExpr::load(
        inp,
        vec![
            Idx::var(x).plus_sym(dxv, 1),
            Idx::var(y).plus_sym(dyv, 1),
            Idx::sym(civ),
        ],
    );
    let w = ScalarExpr::load(wbuf, vec![Idx::constant(0), Idx::constant(0), Idx::var(co)]);
    k.accum(
        out,
        vec![Idx::var(x), Idx::var(y), Idx::var(co)],
        ReduceOp::Sum,
        ScalarExpr::mul(in_tap, w),
    );
    let compiled = Compiler {
        optimize: false,
        ..Default::default()
    }
    .compile(k.build().expect("conv3d_acc builds"), &[0, 0, 0])
    .expect("conv3d_acc compiles");
    compiled
        .instantiate(&[ci, dx, dy])
        .expect("conv3d_acc instantiates")
}

/// Cold-lower vs copy-and-patch for one pair of shape-sibling instances.
///
/// `seed` is the instance whose template is cached; `fresh` is the next
/// invocation (shifted pivot / slid window). The patch path measures exactly
/// what a template hit costs at dispatch: re-distilling the fresh instance's
/// slot table and stamping the cached skeleton out against it.
fn bench_patch_pair(c: &mut Criterion, name: &str, seed: &RegionInstance, fresh: &RegionInstance) {
    let hw = SystemConfig::default().hw();
    let g_seed = seed.tdfg.as_ref().expect("seed tensorizes");
    let g = fresh.tdfg.as_ref().expect("fresh tensorizes");
    let s_seed = seed.schedule_for(hw.geometry).expect("seed schedules");
    let s = fresh.schedule_for(hw.geometry).expect("fresh schedules");
    let layout = TransposedLayout::plan(g, &fresh.hints, &hw).expect("plans");
    let (tpl, _) = infs_runtime::distill(g_seed, s_seed, &hw).expect("seed distills");
    {
        // The pair must actually share a template, or the "patch" below
        // would be measuring an impossible hit.
        let (tpl2, _) = infs_runtime::distill(g, s, &hw).expect("fresh distills");
        assert_eq!(
            tpl.signature, tpl2.signature,
            "{name}: instances do not share a template signature"
        );
    }
    let mut group = c.benchmark_group("jit_template");
    group.sample_size(20);
    group.bench_function(BenchmarkId::new("cold_lower", name), |b| {
        b.iter(|| black_box(infs_runtime::lower(black_box(g), s, &layout, &hw).expect("lowers")))
    });
    group.bench_function(BenchmarkId::new("template_patch", name), |b| {
        b.iter(|| {
            let (_, slots) = infs_runtime::distill(black_box(g), s, &hw).expect("distills");
            black_box(infs_runtime::instantiate(&tpl, &slots, &layout, &hw).expect("patches"))
        })
    });
    group.finish();
}

fn bench_template_patch(c: &mut Criterion) {
    // Pathological workloads of the run matrix, at sizes that keep the
    // bench short while preserving the command-stream structure.
    let gauss_seed = gauss_main_instance(512, 100);
    let gauss_fresh = gauss_main_instance(512, 101);
    bench_patch_pair(c, "gauss_elim", &gauss_seed, &gauss_fresh);

    let dwt_seed = dwt_phase_instance(512, 0, 1, 511, -0.5);
    let dwt_fresh = dwt_phase_instance(512, 1, 1, 511, -0.5);
    bench_patch_pair(c, "dwt2d", &dwt_seed, &dwt_fresh);

    let conv2d_seed = conv2d_instance(512);
    let conv2d_fresh = conv2d_instance(512);
    bench_patch_pair(c, "conv2d", &conv2d_seed, &conv2d_fresh);

    let conv3d_seed = conv3d_acc_instance(64, 8, 0, -1, 0);
    let conv3d_fresh = conv3d_acc_instance(64, 8, 1, 1, 0);
    bench_patch_pair(c, "conv3d", &conv3d_seed, &conv3d_fresh);
}

criterion_group!(
    benches,
    bench_lowering,
    bench_memoization,
    bench_template_patch
);
criterion_main!(benches);

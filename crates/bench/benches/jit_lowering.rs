//! Host-side cost of the JIT runtime itself (§4.2 "Reducing JIT Overheads"):
//! Algorithm 1 + Algorithm 2 + bank mapping over real stencil regions, plus
//! the memoization-hit path. The paper reports an average 220 µs lowering
//! time after >1000× of optimization; this measures our implementation's
//! real wall-clock for the same job.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use infs_frontend::{Idx, KernelBuilder, ScalarExpr};
use infs_isa::Schedule;
use infs_runtime::{JitCache, TransposedLayout};
use infs_sdfg::DataType;
use infs_sim::SystemConfig;
use std::hint::black_box;

fn stencil_tdfg(n: u64) -> infs_tdfg::Tdfg {
    let mut k = KernelBuilder::new("stencil2d", DataType::F32);
    let a = k.array("A", vec![n, n]);
    let b = k.array("B", vec![n, n]);
    let i = k.parallel_loop("i", 1, n as i64 - 1);
    let j = k.parallel_loop("j", 1, n as i64 - 1);
    let tap = |di, dj| ScalarExpr::load(a, vec![Idx::var_plus(i, di), Idx::var_plus(j, dj)]);
    let sum = ScalarExpr::add(
        ScalarExpr::add(tap(0, 0), ScalarExpr::add(tap(-1, 0), tap(1, 0))),
        ScalarExpr::add(tap(0, -1), tap(0, 1)),
    );
    k.assign(b, vec![Idx::var(i), Idx::var(j)], sum);
    k.build()
        .expect("builds")
        .tensorize(&[])
        .expect("tensorizes")
}

fn bench_lowering(c: &mut Criterion) {
    let hw = SystemConfig::default().hw();
    let mut group = c.benchmark_group("jit_lowering");
    group.sample_size(20);
    for n in [256u64, 1024, 2048] {
        let g = stencil_tdfg(n);
        let schedule = Schedule::compute(&g, hw.geometry).expect("schedules");
        let layout = TransposedLayout::plan(&g, &g.layout_hints(), &hw).expect("plans");
        group.bench_with_input(BenchmarkId::new("stencil2d", n), &n, |bench, _| {
            bench.iter(|| {
                black_box(
                    infs_runtime::lower(black_box(&g), &schedule, &layout, &hw).expect("lowers"),
                )
            })
        });
    }
    group.finish();
}

fn bench_memoization(c: &mut Criterion) {
    let hw = SystemConfig::default().hw();
    let g = stencil_tdfg(1024);
    let schedule = Schedule::compute(&g, hw.geometry).expect("schedules");
    let layout = TransposedLayout::plan(&g, &g.layout_hints(), &hw).expect("plans");
    let cache = JitCache::new();
    cache
        .get_or_lower("stencil", &[0], layout.tile().dims(), || {
            infs_runtime::lower(&g, &schedule, &layout, &hw)
        })
        .expect("first lowering");
    c.bench_function("jit_cache_hit", |b| {
        b.iter(|| {
            black_box(
                cache
                    .get_or_lower("stencil", &[0], layout.tile().dims(), || {
                        Err::<infs_runtime::CommandStream, infs_runtime::RuntimeError>(
                            infs_runtime::RuntimeError::NotInMemory,
                        )
                    })
                    .expect("hit"),
            )
        })
    });
}

criterion_group!(benches, bench_lowering, bench_memoization);
criterion_main!(benches);

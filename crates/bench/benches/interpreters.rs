//! Reference-interpreter throughput (the functional half of the simulator):
//! tDFG and sDFG execution of a 64k-element vector add, and one full simulated
//! machine region under Inf-S.

use criterion::{criterion_group, criterion_main, Criterion};
use infs_frontend::{Idx, KernelBuilder, ScalarExpr};
use infs_isa::Compiler;
use infs_sdfg::{DataType, Memory};
use infs_sim::{ExecMode, Machine, SystemConfig};
use std::collections::HashMap;
use std::hint::black_box;

fn vec_add_kernel(n: u64) -> infs_frontend::Kernel {
    let mut k = KernelBuilder::new("vec_add", DataType::F32);
    let a = k.array("A", vec![n]);
    let b = k.array("B", vec![n]);
    let c = k.array("C", vec![n]);
    let i = k.parallel_loop("i", 0, n as i64);
    k.assign(
        c,
        vec![Idx::var(i)],
        ScalarExpr::add(
            ScalarExpr::load(a, vec![Idx::var(i)]),
            ScalarExpr::load(b, vec![Idx::var(i)]),
        ),
    );
    k.build().expect("builds")
}

fn bench_interpreters(c: &mut Criterion) {
    let n = 64u64 << 10;
    let kernel = vec_add_kernel(n);
    let tg = kernel.tensorize(&[]).expect("tensorizes");
    let sg = kernel.streamize(&[]).expect("streamizes");
    let mut group = c.benchmark_group("interpreters");
    group.sample_size(20);
    group.bench_function("tdfg_vec_add_64k", |b| {
        let mut mem = Memory::for_arrays(tg.arrays());
        b.iter(|| {
            black_box(
                infs_tdfg::interp::execute(&tg, &mut mem, &[], &HashMap::new()).expect("executes"),
            )
        })
    });
    group.bench_function("sdfg_vec_add_64k", |b| {
        let mut mem = Memory::for_arrays(sg.arrays());
        b.iter(|| black_box(infs_sdfg::interp::execute(&sg, &mut mem, &[]).expect("executes")))
    });
    group.finish();
}

fn bench_machine_region(c: &mut Criterion) {
    let kernel = vec_add_kernel(64 << 10);
    let compiled = Compiler::default().compile(kernel, &[]).expect("compiles");
    let region = compiled.instantiate(&[]).expect("instantiates");
    let mut group = c.benchmark_group("machine");
    group.sample_size(20);
    group.bench_function("infs_region_timing_only", |b| {
        let mut m = Machine::new(SystemConfig::default(), region.sdfg.arrays());
        m.set_functional(false);
        m.set_assume_transposed(true);
        b.iter(|| black_box(m.run_region(&region, &[], ExecMode::InfS).expect("runs")))
    });
    group.finish();
}

criterion_group!(benches, bench_interpreters, bench_machine_region);
criterion_main!(benches);

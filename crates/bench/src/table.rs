//! Minimal Markdown table builder for figure output.

/// A rendered results table: header row plus data rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a caption and column names.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Formats a float with sensible precision for ratios.
    pub fn f(x: f64) -> String {
        if x == 0.0 {
            "0".into()
        } else if x.abs() >= 100.0 {
            format!("{x:.0}")
        } else if x.abs() >= 1.0 {
            format!("{x:.2}")
        } else {
            format!("{x:.3}")
        }
    }

    /// Renders as GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("**{}**\n\n", self.title));
        }
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.header.iter().map(|_| "---|").collect::<String>()
        ));
        for r in &self.rows {
            out.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["1".into(), Table::f(2.5)]);
        let md = t.to_markdown();
        assert!(md.contains("**Demo**"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2.50 |"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(Table::f(0.0), "0");
        assert_eq!(Table::f(0.123), "0.123");
        assert_eq!(Table::f(12.3456), "12.35");
        assert_eq!(Table::f(1234.0), "1234");
    }
}

//! Figure/table regeneration CLI.
//!
//! ```text
//! cargo run --release -p infs-bench --bin figures -- all          # paper scale
//! cargo run --release -p infs-bench --bin figures -- fig11 --quick
//! cargo run --release -p infs-bench --bin figures -- matrix --quick --trace t.json
//! ```
//!
//! Results land under `results/` as Markdown and are echoed to stdout. With
//! `--trace PATH`, compiler/JIT/simulator spans for the whole run are written
//! as a Chrome trace to PATH (open in Perfetto) plus flat counters to
//! `PATH.metrics.json`.

use infs_bench::{figures, Ctx};

const ALL: &[&str] = &[
    "eq1",
    "area",
    "table3",
    "fig2",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "jit",
    "pipeline",
    "tiling",
    "ablate",
    "ablate_dtype",
    "chaos",
    "check",
    "serve",
    "tune",
];

fn run(name: &str, ctx: &Ctx) {
    let t0 = std::time::Instant::now();
    match name {
        // Populates results/matrix.json and emits the per-workload JIT-cache
        // summary table: the target for wall-clock scaling runs
        // (`RAYON_NUM_THREADS=1` forces the sequential path).
        "matrix" => figures::matrix_summary(ctx),
        "fig2" => figures::fig2(ctx),
        "fig11" => figures::fig11(ctx),
        "fig12" => figures::fig12(ctx),
        "fig13" => figures::fig13(ctx),
        "fig14" => figures::fig14(ctx),
        "fig15" => figures::fig15(ctx),
        "fig16" => figures::fig16(ctx),
        "fig17" => figures::fig17(ctx),
        "fig18" => figures::fig18(ctx),
        "fig19" => figures::fig19(ctx),
        "jit" => figures::jit(ctx),
        // Fused streaming regions vs per-kernel round-trip on the multi-kernel
        // model graphs; writes BENCH_pipeline.json for CI's pipeline-smoke.
        "pipeline" => figures::pipeline(ctx),
        "tiling" => figures::tiling(ctx),
        "eq1" => figures::eq1(ctx),
        "area" => figures::area(ctx),
        "table3" => figures::table3(ctx),
        "ablate" => figures::ablate(ctx),
        "ablate_dtype" => figures::ablate_dtype(ctx),
        // The DESIGN.md §10 degradation-ladder report (EXPERIMENTS.md "Chaos").
        "chaos" => figures::chaos(ctx),
        // The DESIGN.md §11 verification coverage report (EXPERIMENTS.md
        // "Check").
        "check" => figures::check(ctx),
        // The DESIGN.md §14 serving soak: sharded+batched reactor vs the
        // thread-per-conn baseline; writes BENCH_serve.json for CI's
        // serve-soak step.
        "serve" => figures::serve(ctx),
        // The DESIGN.md §15 autotuning soak: tuned steady-state vs the static
        // §4.1/Eq-2 placement plus the chaos retune drill; writes
        // BENCH_tune.json for CI's tune-smoke step.
        "tune" => figures::tune(ctx),
        other => {
            eprintln!("unknown figure '{other}'; known: all {ALL:?}");
            std::process::exit(2);
        }
    }
    eprintln!(
        "[figures] {name} done in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut trace_path: Option<String> = None;
    let mut targets: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => {}
            "--trace" => match it.next() {
                Some(p) => trace_path = Some(p.clone()),
                None => {
                    eprintln!("--trace requires a path");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--") => {
                eprintln!("unknown flag '{other}'");
                std::process::exit(2);
            }
            other => targets.push(other),
        }
    }
    let _session = trace_path.as_ref().map(|_| infs_trace::exclusive());
    let ctx = Ctx::new(quick);
    if targets.is_empty() || targets.contains(&"all") {
        for name in ALL {
            run(name, &ctx);
        }
    } else {
        for name in targets {
            run(name, &ctx);
        }
    }
    if let Some(path) = trace_path {
        let metrics_path = format!("{path}.metrics.json");
        if let Err(e) = infs_trace::write_chrome(path.as_ref())
            .and_then(|()| infs_trace::write_metrics(metrics_path.as_ref()))
        {
            eprintln!("[figures] cannot write trace {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("[figures] trace written to {path} (+ {metrics_path})");
    }
}

//! Figure/table regeneration CLI.
//!
//! ```text
//! cargo run --release -p infs-bench --bin figures -- all          # paper scale
//! cargo run --release -p infs-bench --bin figures -- fig11 --quick
//! ```
//!
//! Results land under `results/` as Markdown and are echoed to stdout.

use infs_bench::{figures, Ctx, RunMatrix};

const ALL: &[&str] = &[
    "eq1",
    "area",
    "table3",
    "fig2",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "jit",
    "tiling",
    "ablate",
    "ablate_dtype",
];

fn run(name: &str, ctx: &Ctx) {
    let t0 = std::time::Instant::now();
    match name {
        // Populates results/matrix.json and exits: the target for wall-clock
        // scaling runs (`RAYON_NUM_THREADS=1` forces the sequential path).
        "matrix" => {
            RunMatrix::load_or_run(ctx);
        }
        "fig2" => figures::fig2(ctx),
        "fig11" => figures::fig11(ctx),
        "fig12" => figures::fig12(ctx),
        "fig13" => figures::fig13(ctx),
        "fig14" => figures::fig14(ctx),
        "fig15" => figures::fig15(ctx),
        "fig16" => figures::fig16(ctx),
        "fig17" => figures::fig17(ctx),
        "fig18" => figures::fig18(ctx),
        "fig19" => figures::fig19(ctx),
        "jit" => figures::jit(ctx),
        "tiling" => figures::tiling(ctx),
        "eq1" => figures::eq1(ctx),
        "area" => figures::area(ctx),
        "table3" => figures::table3(ctx),
        "ablate" => figures::ablate(ctx),
        "ablate_dtype" => figures::ablate_dtype(ctx),
        other => {
            eprintln!("unknown figure '{other}'; known: all {ALL:?}");
            std::process::exit(2);
        }
    }
    eprintln!(
        "[figures] {name} done in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let ctx = Ctx::new(quick);
    if targets.is_empty() || targets.contains(&"all") {
        for name in ALL {
            run(name, &ctx);
        }
    } else {
        for name in targets {
            run(name, &ctx);
        }
    }
}

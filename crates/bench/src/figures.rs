//! One runner per table/figure of the paper's evaluation. See EXPERIMENTS.md
//! for the paper-vs-measured record each runner feeds.

use crate::{ConfigName, Ctx, RunMatrix, Table};
use infs_geom::TileShape;
use infs_sim::{ExecMode, Machine, SystemConfig};
use infs_workloads::{
    by_name, ArraySum, Benchmark, MlpStack, PointNet, PointNetVariant, Scale, VecAdd,
};
use rayon::prelude::*;

/// Steady-state cycles of one benchmark run (second invocation on a warmed
/// machine — the Fig 2 microbenchmark setting: data in L3, transposed, JIT
/// memoized).
fn steady_cycles(b: &dyn Benchmark, mode: ExecMode, cfg: &SystemConfig) -> u64 {
    let arrays = b.arrays();
    let mut m = Machine::new(cfg.clone(), &arrays);
    m.set_functional(false);
    m.set_assume_transposed(true);
    b.run(&mut m, mode).expect("benchmark runs");
    let warm = m.stats().cycles;
    b.run(&mut m, mode).expect("benchmark runs");
    m.finish().cycles - warm
}

/// Per-workload summary of the cached run matrix: Inf-S cycles and the
/// shape-polymorphic JIT cache behaviour. "jit hits" counts region dispatches
/// served from the cache (exact stream or template patch), "template hits"
/// the copy-and-patch subset, "jit misses" the full lowerings, and "jit hit
/// rate" is the *command-level* rate — the fraction of all commands entering
/// in-memory execution that did not pay the full per-command lowering rate
/// ([`infs_sim::RunStats::jit_cmd_hit_rate`]).
///
/// Also emits `BENCH_jit.json` next to the tables: the machine-readable
/// per-workload record (cycles, hit rate, lowerings, patch count) that CI's
/// `jit-smoke` step diffs against its committed baseline.
pub fn matrix_summary(ctx: &Ctx) {
    let m = RunMatrix::load_or_run(ctx);
    let mut t = Table::new(
        "Run matrix summary: per-workload Inf-S JIT cache behaviour \
         (hit rate is command-level; hits include template patches)",
        &[
            "benchmark",
            "Inf-S cycles",
            "jit hits",
            "template hits",
            "jit misses",
            "jit hit rate",
            "noJIT cycles",
        ],
    );
    let mut bench_entries = Vec::new();
    for name in crate::matrix::WORKLOADS {
        let Some(e) = m.get(name, ConfigName::InfS) else {
            continue;
        };
        let st = &e.stats;
        let (h, mi) = (st.jit_hits, st.jit_misses);
        let cmd_total = st.jit_cmd_hits + st.jit_cmd_template + st.jit_cmd_misses;
        let rate = if cmd_total == 0 {
            "-".to_string()
        } else {
            Table::f(st.jit_cmd_hit_rate())
        };
        let nojit = m.get(name, ConfigName::InfSNoJit).map(|e| e.stats.cycles);
        t.row(vec![
            name.into(),
            st.cycles.to_string(),
            h.to_string(),
            st.jit_template_hits.to_string(),
            mi.to_string(),
            rate,
            nojit.map_or_else(|| "-".into(), |c| c.to_string()),
        ]);
        bench_entries.push(format!(
            concat!(
                "    \"{}\": {{\n",
                "      \"cycles\": {},\n",
                "      \"nojit_cycles\": {},\n",
                "      \"jit_hits\": {},\n",
                "      \"template_hits\": {},\n",
                "      \"lowerings\": {},\n",
                "      \"cmd_hits\": {},\n",
                "      \"cmd_template\": {},\n",
                "      \"cmd_misses\": {},\n",
                "      \"cmd_hit_rate\": {:.6}\n",
                "    }}"
            ),
            name,
            st.cycles,
            nojit.map_or_else(|| "null".into(), |c| c.to_string()),
            h,
            st.jit_template_hits,
            mi,
            st.jit_cmd_hits,
            st.jit_cmd_template,
            st.jit_cmd_misses,
            st.jit_cmd_hit_rate(),
        ));
    }
    ctx.emit("matrix", &t);
    let json = format!(
        "{{\n  \"scale\": \"{}\",\n  \"workloads\": {{\n{}\n  }}\n}}\n",
        if ctx.quick { "test" } else { "paper" },
        bench_entries.join(",\n"),
    );
    let path = ctx.out_dir.join("BENCH_jit.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("[figures] failed to write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

/// Fig 2: speedup of the paradigms on `vec_add` / `array_sum` across input
/// sizes, normalized to Base-Thread-1.
pub fn fig2(ctx: &Ctx) {
    let sizes: &[(u64, &str)] = if ctx.quick {
        &[(16 << 10, "16k"), (64 << 10, "64k")]
    } else {
        &[
            (16 << 10, "16k"),
            (64 << 10, "64k"),
            (256 << 10, "256k"),
            (1 << 20, "1M"),
            (4 << 20, "4M"),
        ]
    };
    let mut t = Table::new(
        "Fig 2: speedup over Base-Thread-1 (data in L3, transposed)",
        &["workload", "Base-1", "Base-64", "Near-L3", "In-L3"],
    );
    let configs = [
        ConfigName::Base1,
        ConfigName::Base,
        ConfigName::NearL3,
        ConfigName::InL3,
    ];
    for &(n, label) in sizes {
        for micro in ["vec_add", "array_sum"] {
            let bench: Box<dyn Benchmark> = match micro {
                "vec_add" => Box::new(VecAdd::with_elems(n)),
                _ => Box::new(ArraySum::with_elems(n)),
            };
            let cycles: Vec<u64> = configs
                .iter()
                .map(|c| steady_cycles(bench.as_ref(), c.mode(), &ctx.cfg))
                .collect();
            let base1 = cycles[0] as f64;
            let mut row = vec![format!("{micro}/{label}")];
            row.extend(cycles.iter().map(|&c| Table::f(base1 / c as f64)));
            t.row(row);
        }
    }
    ctx.emit("fig2", &t);
}

/// The ten Fig 11 workload families with per-configuration best dataflow.
fn fig11_family_cycles(m: &RunMatrix, config: ConfigName) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for name in [
        "stencil1d",
        "stencil2d",
        "stencil3d",
        "dwt2d",
        "gauss_elim",
        "conv2d",
        "conv3d",
    ] {
        out.push((name.to_string(), m.cycles(name, config)));
    }
    for family in ["mm", "kmeans", "gather_mlp"] {
        let (_, c) = m.best_variant(family, config);
        out.push((family.to_string(), c));
    }
    out
}

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Fig 11: overall speedup over Base for every configuration.
pub fn fig11(ctx: &Ctx) {
    let m = RunMatrix::load_or_run(ctx);
    let mut t = Table::new(
        "Fig 11: speedup over Base (best dataflow per configuration)",
        &[
            "benchmark",
            "Base",
            "Near-L3",
            "In-L3",
            "Inf-S",
            "Inf-S-noJIT",
        ],
    );
    let base = fig11_family_cycles(&m, ConfigName::Base);
    let mut per_cfg: Vec<Vec<f64>> = Vec::new();
    for config in ConfigName::FIG11 {
        let cycles = fig11_family_cycles(&m, config);
        per_cfg.push(
            base.iter()
                .zip(&cycles)
                .map(|((_, b), (_, c))| *b as f64 / *c as f64)
                .collect(),
        );
    }
    for (i, (name, _)) in base.iter().enumerate() {
        let mut row = vec![name.clone()];
        row.extend(per_cfg.iter().map(|s| Table::f(s[i])));
        t.row(row);
    }
    let mut row = vec!["geomean".to_string()];
    row.extend(per_cfg.iter().map(|s| Table::f(geomean(s))));
    t.row(row);
    ctx.emit("fig11", &t);
}

/// Fig 12: NoC traffic breakdown (byte-hops, normalized to Base) + utilization.
pub fn fig12(ctx: &Ctx) {
    let m = RunMatrix::load_or_run(ctx);
    let mut t = Table::new(
        "Fig 12: NoC byte-hops normalized to Base (control/data/offload) and utilization",
        &[
            "benchmark",
            "config",
            "control",
            "data",
            "offload",
            "total",
            "noc util",
        ],
    );
    for (family, _) in fig11_family_cycles(&m, ConfigName::Base) {
        let base_total = {
            let (name, _) = best_or_self(&m, &family, ConfigName::Base);
            m.get(&name, ConfigName::Base)
                .expect("entry")
                .stats
                .traffic
                .noc_total()
        };
        for config in [ConfigName::Base, ConfigName::NearL3, ConfigName::InfS] {
            let (name, _) = best_or_self(&m, &family, config);
            let e = m.get(&name, config).expect("entry");
            let tr = &e.stats.traffic;
            t.row(vec![
                family.clone(),
                config.label().into(),
                Table::f(tr.noc_control / base_total),
                Table::f((tr.noc_data + tr.noc_inter_tile) / base_total),
                Table::f(tr.noc_offload / base_total),
                Table::f(tr.noc_total() / base_total),
                Table::f(e.stats.noc_utilization),
            ]);
        }
    }
    ctx.emit("fig12", &t);
}

fn best_or_self(m: &RunMatrix, family: &str, config: ConfigName) -> (String, u64) {
    if matches!(family, "mm" | "kmeans" | "gather_mlp") {
        m.best_variant(family, config)
    } else {
        (family.to_string(), m.cycles(family, config))
    }
}

/// Fig 13: Inf-S traffic breakdown per workload variant (bytes, normalized per
/// benchmark to its total).
pub fn fig13(ctx: &Ctx) {
    let m = RunMatrix::load_or_run(ctx);
    let mut t = Table::new(
        "Fig 13: Inf-S traffic breakdown (fraction of bytes×hops + in-array bytes)",
        &[
            "benchmark",
            "intra-tile",
            "inter-tile (bank)",
            "inter-tile (NoC)",
            "offload",
            "data",
            "control",
        ],
    );
    for name in [
        "stencil1d",
        "stencil2d",
        "stencil3d",
        "dwt2d",
        "gauss_elim",
        "conv2d",
        "conv3d",
        "mm/in",
        "mm/out",
        "kmeans/in",
        "kmeans/out",
        "gather_mlp/in",
        "gather_mlp/out",
    ] {
        let Some(e) = m.get(name, ConfigName::InfS) else {
            continue;
        };
        let tr = &e.stats.traffic;
        let total = tr.noc_total() + tr.intra_tile + tr.inter_tile_local;
        if total == 0.0 {
            continue;
        }
        t.row(vec![
            name.into(),
            Table::f(tr.intra_tile / total),
            Table::f(tr.inter_tile_local / total),
            Table::f(tr.noc_inter_tile / total),
            Table::f(tr.noc_offload / total),
            Table::f(tr.noc_data / total),
            Table::f(tr.noc_control / total),
        ]);
    }
    ctx.emit("fig13", &t);
}

/// Fig 14: Inf-S cycle breakdown + fraction of ops executed on bitlines.
pub fn fig14(ctx: &Ctx) {
    let m = RunMatrix::load_or_run(ctx);
    let mut t = Table::new(
        "Fig 14: Inf-S cycle breakdown (fractions) and in-memory op share",
        &[
            "benchmark",
            "DRAM",
            "JIT",
            "Move",
            "Compute",
            "FinalReduce",
            "Mix",
            "Near-Mem",
            "Core",
            "ops in-mem",
        ],
    );
    let mut avgs = [0.0f64; 8];
    let mut count = 0.0f64;
    for name in [
        "stencil1d",
        "stencil2d",
        "stencil3d",
        "dwt2d",
        "gauss_elim",
        "conv2d",
        "conv3d",
        "mm/in",
        "mm/out",
        "kmeans/in",
        "kmeans/out",
        "gather_mlp/in",
        "gather_mlp/out",
    ] {
        let Some(e) = m.get(name, ConfigName::InfS) else {
            continue;
        };
        let b = &e.stats.breakdown;
        let total = b.total().max(1) as f64;
        let parts = [
            b.dram,
            b.jit,
            b.mv,
            b.compute,
            b.final_reduce,
            b.mix,
            b.near_mem,
            b.core,
        ];
        let mut row = vec![name.to_string()];
        for (i, &p) in parts.iter().enumerate() {
            let frac = p as f64 / total;
            avgs[i] += frac;
            row.push(Table::f(frac));
        }
        row.push(Table::f(e.stats.in_memory_op_fraction()));
        count += 1.0;
        t.row(row);
    }
    let mut row = vec!["avg".to_string()];
    row.extend(avgs.iter().map(|&a| Table::f(a / count.max(1.0))));
    row.push(String::new());
    t.row(row);
    ctx.emit("fig14", &t);
}

/// Fig 15: inner vs outer dataflow per configuration, normalized to the
/// Base inner-product implementation.
pub fn fig15(ctx: &Ctx) {
    let m = RunMatrix::load_or_run(ctx);
    let mut t = Table::new(
        "Fig 15: inner vs outer product speedup over Base-In",
        &[
            "family",
            "Base-In",
            "Base-Out",
            "Near-L3-In",
            "Near-L3-Out",
            "Inf-S-In",
            "Inf-S-Out",
        ],
    );
    for family in ["mm", "kmeans", "gather_mlp"] {
        let base_in = m.cycles(&format!("{family}/in"), ConfigName::Base) as f64;
        let mut row = vec![family.to_string()];
        for config in [ConfigName::Base, ConfigName::NearL3, ConfigName::InfS] {
            for v in ["in", "out"] {
                let c = m.cycles(&format!("{family}/{v}"), config) as f64;
                row.push(Table::f(base_in / c));
            }
        }
        t.row(row);
    }
    ctx.emit("fig15", &t);
}

/// Tile-size sweep core: cycles of a benchmark under Inf-S for each tile.
fn sweep_tiles(ctx: &Ctx, name: &str, ndim: usize) -> Vec<(TileShape, u64)> {
    let bitlines = ctx.cfg.geometry.bitlines as u64;
    // All factorizations of the bitline count over `ndim` dims.
    fn expand(rem: u64, dims_left: usize, cur: &mut Vec<u64>, out: &mut Vec<Vec<u64>>) {
        if dims_left == 1 {
            let mut v = cur.clone();
            v.push(rem);
            out.push(v);
            return;
        }
        let mut t = 1;
        while t <= rem {
            if rem.is_multiple_of(t) {
                cur.push(t);
                expand(rem / t, dims_left - 1, cur, out);
                cur.pop();
            }
            t *= 2;
        }
    }
    let mut shapes = Vec::new();
    expand(bitlines, ndim, &mut Vec::new(), &mut shapes);
    // Each candidate runs a full Inf-S simulation on a fresh Machine — the
    // sweep is embarrassingly parallel, and collection preserves input order.
    shapes
        .into_par_iter()
        .map(|dims| {
            let tile = TileShape::new(dims).expect("nonzero dims");
            let b = by_name(name, ctx.scale()).expect("workload exists");
            let arrays = b.arrays();
            let mut m = Machine::new(ctx.cfg.clone(), &arrays);
            m.set_functional(false);
            m.set_tile_override(Some(tile.clone()));
            b.run(&mut m, ExecMode::InfS)
                .ok()
                .map(|_| (tile, m.finish().cycles))
        })
        .collect::<Vec<_>>()
        .into_iter()
        .flatten()
        .collect()
}

/// Fig 16: cycle sensitivity to the 2-D tile size, with the runtime heuristic's
/// choice and the oracle best.
pub fn fig16(ctx: &Ctx) {
    let benches: &[&str] = if ctx.quick {
        &["stencil2d", "mm/out"]
    } else {
        &[
            "stencil2d",
            "dwt2d",
            "gauss_elim",
            "conv2d",
            "mm/in",
            "mm/out",
            "kmeans/in",
            "kmeans/out",
            "gather_mlp/in",
            "gather_mlp/out",
        ]
    };
    let mut t = Table::new(
        "Fig 16: Inf-S cycles vs 2-D tile size (ratio to best; heuristic choice marked)",
        &["benchmark", "tile", "cycles", "ratio to best", "notes"],
    );
    for name in benches {
        let sweep = sweep_tiles(ctx, name, 2);
        if sweep.is_empty() {
            continue;
        }
        let best = sweep.iter().map(|&(_, c)| c).min().expect("nonempty");
        // The heuristic's own choice: run without override.
        let heuristic = {
            let b = by_name(name, ctx.scale()).expect("exists");
            let arrays = b.arrays();
            let mut m = Machine::new(ctx.cfg.clone(), &arrays);
            m.set_functional(false);
            b.run(&mut m, ExecMode::InfS).expect("runs");
            m.finish().cycles
        };
        for (tile, cycles) in &sweep {
            t.row(vec![
                name.to_string(),
                tile.to_string(),
                cycles.to_string(),
                Table::f(*cycles as f64 / best as f64),
                String::new(),
            ]);
        }
        t.row(vec![
            name.to_string(),
            "(heuristic)".into(),
            heuristic.to_string(),
            Table::f(heuristic as f64 / best as f64),
            "runtime default".into(),
        ]);
    }
    ctx.emit("fig16", &t);
}

/// Fig 17: speedup vs 3-D tile size for the 3-D workloads.
pub fn fig17(ctx: &Ctx) {
    let benches: &[&str] = if ctx.quick {
        &["stencil3d"]
    } else {
        &["stencil3d", "conv3d"]
    };
    let mut t = Table::new(
        "Fig 17: Inf-S speedup vs 3-D tile size (normalized to worst)",
        &["benchmark", "tile", "cycles", "speedup vs worst"],
    );
    for name in benches {
        let sweep = sweep_tiles(ctx, name, 3);
        if sweep.is_empty() {
            continue;
        }
        let worst = sweep.iter().map(|&(_, c)| c).max().expect("nonempty");
        for (tile, cycles) in &sweep {
            t.row(vec![
                name.to_string(),
                tile.to_string(),
                cycles.to_string(),
                Table::f(worst as f64 / *cycles as f64),
            ]);
        }
    }
    ctx.emit("fig17", &t);
}

/// Fig 18: energy efficiency over Base.
pub fn fig18(ctx: &Ctx) {
    let m = RunMatrix::load_or_run(ctx);
    let mut t = Table::new(
        "Fig 18: energy efficiency over Base (higher is better)",
        &[
            "benchmark",
            "Base",
            "Near-L3",
            "In-L3",
            "Inf-S",
            "Inf-S-noJIT",
        ],
    );
    let mut per_cfg: Vec<Vec<f64>> = vec![Vec::new(); 5];
    let families = fig11_family_cycles(&m, ConfigName::Base);
    for (family, _) in &families {
        let base_e = {
            let (name, _) = best_or_self(&m, family, ConfigName::Base);
            m.get(&name, ConfigName::Base)
                .expect("entry")
                .stats
                .energy
                .total()
        };
        let mut row = vec![family.clone()];
        for (i, config) in ConfigName::FIG11.iter().enumerate() {
            let (name, _) = best_or_self(&m, family, *config);
            let e = m.get(&name, *config).expect("entry").stats.energy.total();
            let eff = base_e / e.max(1e-9);
            per_cfg[i].push(eff);
            row.push(Table::f(eff));
        }
        t.row(row);
    }
    let mut row = vec!["geomean".to_string()];
    row.extend(per_cfg.iter().map(|s| Table::f(geomean(s))));
    t.row(row);
    ctx.emit("fig18", &t);
}

/// Fig 19: PointNet++ SSG/MSG per-stage timeline and overall speedups.
pub fn fig19(ctx: &Ctx) {
    let mut t = Table::new(
        "Fig 19: PointNet++ stage timeline (fraction of configuration runtime) and speedup over Base",
        &["variant", "config", "stage.phase", "fraction", "where"],
    );
    let mut summary = Table::new(
        "Fig 19 summary: speedup over Base",
        &["variant", "Near-L3", "In-L3", "Inf-S"],
    );
    for variant in [PointNetVariant::Ssg, PointNetVariant::Msg] {
        let vname = match variant {
            PointNetVariant::Ssg => "SSG",
            PointNetVariant::Msg => "MSG",
        };
        let mut totals = Vec::new();
        for config in [
            ConfigName::Base,
            ConfigName::NearL3,
            ConfigName::InL3,
            ConfigName::InfS,
        ] {
            let b = PointNet::new(ctx.scale(), variant);
            let arrays = b.arrays();
            let mut m = Machine::new(ctx.cfg.clone(), &arrays);
            m.set_functional(ctx.quick);
            m.set_resident_all(); // §6: inputs warm in L3
            if ctx.quick {
                b.init(m.memory());
            }
            let reports = b
                .run_detailed(&mut m, config.mode())
                .expect("pointnet runs");
            let total: u64 = reports.iter().map(|r| r.cycles).sum();
            totals.push(total);
            // Aggregate per (stage, phase).
            let mut agg: std::collections::BTreeMap<String, (u64, String)> = Default::default();
            for r in &reports {
                let e = agg
                    .entry(format!("{}.{}", r.stage, r.phase))
                    .or_insert((0, format!("{:?}", r.executed)));
                e.0 += r.cycles;
                e.1 = format!("{:?}", r.executed);
            }
            for (key, (cycles, exec)) in agg {
                t.row(vec![
                    vname.into(),
                    config.label().into(),
                    key,
                    Table::f(cycles as f64 / total.max(1) as f64),
                    exec,
                ]);
            }
        }
        summary.row(vec![
            vname.into(),
            Table::f(totals[0] as f64 / totals[1] as f64),
            Table::f(totals[0] as f64 / totals[2] as f64),
            Table::f(totals[0] as f64 / totals[3] as f64),
        ]);
    }
    ctx.emit("fig19_timeline", &t);
    ctx.emit("fig19", &summary);
}

/// §8 JIT analysis: lowering share of runtime, memoization counts, and the
/// noJIT speedup — plus real (host-measured) lowering times.
pub fn jit(ctx: &Ctx) {
    let m = RunMatrix::load_or_run(ctx);
    let mut t = Table::new(
        "JIT overheads under Inf-S (§8)",
        &[
            "benchmark",
            "jit cycle frac",
            "jit hits",
            "jit misses",
            "noJIT speedup",
        ],
    );
    let mut fracs = Vec::new();
    for name in [
        "stencil1d",
        "stencil2d",
        "stencil3d",
        "dwt2d",
        "gauss_elim",
        "conv2d",
        "conv3d",
        "mm/out",
        "kmeans/out",
        "gather_mlp/out",
    ] {
        let Some(e) = m.get(name, ConfigName::InfS) else {
            continue;
        };
        let frac = e.stats.breakdown.jit as f64 / e.stats.cycles.max(1) as f64;
        fracs.push(frac);
        let nojit = m.cycles(name, ConfigName::InfSNoJit) as f64;
        t.row(vec![
            name.into(),
            Table::f(frac),
            e.stats.jit_hits.to_string(),
            e.stats.jit_misses.to_string(),
            Table::f(e.stats.cycles as f64 / nojit),
        ]);
    }
    t.row(vec![
        "avg".into(),
        Table::f(fracs.iter().sum::<f64>() / fracs.len().max(1) as f64),
        String::new(),
        String::new(),
        String::new(),
    ]);
    ctx.emit("jit", &t);
}

/// §4.1 tiling analysis: heuristic vs oracle vs no-tiling, derived from the
/// Fig 16 sweep machinery.
pub fn tiling(ctx: &Ctx) {
    let benches: &[&str] = if ctx.quick {
        &["stencil2d"]
    } else {
        &["stencil2d", "dwt2d", "conv2d", "mm/out", "kmeans/out"]
    };
    let mut t = Table::new(
        "Tiling heuristic vs oracle vs no tiling (§8: heuristic within 2% of oracle)",
        &["benchmark", "heuristic/oracle", "no-tiling/heuristic"],
    );
    for name in benches {
        let sweep = sweep_tiles(ctx, name, 2);
        if sweep.is_empty() {
            continue;
        }
        let oracle = sweep.iter().map(|&(_, c)| c).min().expect("nonempty") as f64;
        // "No tiling": innermost dimension fully contiguous (B×1 tiles).
        let bl = ctx.cfg.geometry.bitlines as u64;
        let no_tiling = sweep
            .iter()
            .find(|(tile, _)| tile.dims()[0] == bl)
            .map(|&(_, c)| c as f64)
            .unwrap_or(f64::NAN);
        let heuristic = {
            let b = by_name(name, ctx.scale()).expect("exists");
            let arrays = b.arrays();
            let mut m = Machine::new(ctx.cfg.clone(), &arrays);
            m.set_functional(false);
            b.run(&mut m, ExecMode::InfS).expect("runs");
            m.finish().cycles as f64
        };
        t.row(vec![
            name.to_string(),
            Table::f(heuristic / oracle),
            Table::f(no_tiling / heuristic),
        ]);
    }
    ctx.emit("tiling", &t);
}

/// Eq 1 and Table 2 closed-form quantities.
pub fn eq1(ctx: &Ctx) {
    let c = &ctx.cfg;
    let mut t = Table::new("Eq 1 / Table 2 derived quantities", &["quantity", "value"]);
    t.row(vec![
        "total bitlines".into(),
        c.total_bitlines().to_string(),
    ]);
    t.row(vec![
        "peak int32 adds/cycle (Eq 1)".into(),
        c.eq1_peak_int32_adds_per_cycle().to_string(),
    ]);
    t.row(vec![
        "peak speedup over 64 AVX-512 cores".into(),
        (c.eq1_peak_int32_adds_per_cycle() / (c.cores as u64 * c.simd_lanes as u64)).to_string(),
    ]);
    t.row(vec![
        "L3 capacity (MB)".into(),
        (c.l3_bytes() >> 20).to_string(),
    ]);
    ctx.emit("eq1", &t);
}

/// §8 area model.
pub fn area(ctx: &Ctx) {
    let a = infs_sim::area_report();
    let mut t = Table::new("Area overhead (§8)", &["component", "mm²"]);
    t.row(vec!["baseline chip".into(), Table::f(a.chip_mm2)]);
    t.row(vec!["in-memory compute".into(), Table::f(a.in_memory_mm2)]);
    t.row(vec![
        "near-memory support".into(),
        Table::f(a.near_memory_mm2),
    ]);
    t.row(vec![
        "total overhead".into(),
        format!("{:.2}%", a.overhead_fraction() * 100.0),
    ]);
    ctx.emit("area", &t);
}

/// Ablation: the e-graph optimizer's effect on conv2d (the Fig 6 showcase) —
/// compute-command count and Inf-S cycles with the optimizer on vs off.
pub fn ablate(ctx: &Ctx) {
    use infs_isa::Compiler;
    let n: u64 = if ctx.quick { 256 } else { 2048 };
    let mut t = Table::new(
        "Ablation: e-graph optimizer on conv2d",
        &["variant", "tDFG computes", "Inf-S cycles"],
    );
    for (label, optimize) in [("optimized", true), ("unoptimized", false)] {
        // Rebuild the conv2d kernel with the chosen compiler setting.
        let bench = by_name("conv2d", ctx.scale()).expect("conv2d exists");
        let _ = bench; // the workload hard-codes optimize=true; recompile here:
        let mut k = infs_frontend::KernelBuilder::new("conv2d", infs_sdfg::DataType::F32);
        let a = k.array("A", vec![n, n]);
        let b = k.array("B", vec![n, n]);
        let i = k.parallel_loop("i", 1, n as i64 - 1);
        let j = k.parallel_loop("j", 1, n as i64 - 1);
        let tap = |di: i64, dj: i64, w: f32| {
            infs_frontend::ScalarExpr::mul(
                infs_frontend::ScalarExpr::load(
                    a,
                    vec![
                        infs_frontend::Idx::var_plus(i, di),
                        infs_frontend::Idx::var_plus(j, dj),
                    ],
                ),
                infs_frontend::ScalarExpr::Const(w),
            )
        };
        let mut acc = tap(0, 0, 0.25);
        for (di, dj, w) in [
            (-1i64, -1i64, 0.0625f32),
            (1, -1, 0.0625),
            (-1, 1, 0.0625),
            (1, 1, 0.0625),
            (-1, 0, 0.125),
            (1, 0, 0.125),
            (0, -1, 0.125),
            (0, 1, 0.125),
        ] {
            acc = infs_frontend::ScalarExpr::add(acc, tap(di, dj, w));
        }
        k.accum(
            b,
            vec![infs_frontend::Idx::var(i), infs_frontend::Idx::var(j)],
            infs_sdfg::ReduceOp::Sum,
            acc,
        );
        let compiler = Compiler {
            optimize,
            ..Default::default()
        };
        let region = compiler
            .compile(k.build().expect("builds"), &[])
            .expect("compiles");
        let inst = region.instantiate(&[]).expect("instantiates");
        let computes = inst
            .tdfg
            .as_ref()
            .map(|g| {
                g.nodes()
                    .iter()
                    .filter(|nd| matches!(nd, infs_tdfg::Node::Compute { .. }))
                    .count()
            })
            .unwrap_or(0);
        let mut m = Machine::new(ctx.cfg.clone(), inst.sdfg.arrays());
        m.set_functional(false);
        m.set_assume_transposed(true);
        m.run_region(&inst, &[], ExecMode::InfS).expect("runs");
        t.row(vec![
            label.into(),
            computes.to_string(),
            m.finish().cycles.to_string(),
        ]);
    }
    ctx.emit("ablate_egraph", &t);
}

/// Ablation: data-type sensitivity of in-memory execution — bit-serial
/// latency scales with operand width (Eq 1 is stated for int32; §2.2 gives
/// O(n) adds and n²+5n multiplies), so narrow types multiply the advantage.
pub fn ablate_dtype(ctx: &Ctx) {
    use infs_sdfg::DataType;
    let n: u64 = if ctx.quick { 64 << 10 } else { 4 << 20 };
    let mut t = Table::new(
        "Ablation: vec_add+scale In-L3 steady-state cycles by element type",
        &["dtype", "cycles", "speedup vs f32"],
    );
    let mut f32_cycles = 0u64;
    for dtype in [DataType::F32, DataType::I32, DataType::U8] {
        let mut k = infs_frontend::KernelBuilder::new("vec_madd", dtype);
        let a = k.array("A", vec![n]);
        let b = k.array("B", vec![n]);
        let c = k.array("C", vec![n]);
        let i = k.parallel_loop("i", 0, n as i64);
        k.assign(
            c,
            vec![infs_frontend::Idx::var(i)],
            infs_frontend::ScalarExpr::add(
                infs_frontend::ScalarExpr::mul(
                    infs_frontend::ScalarExpr::load(a, vec![infs_frontend::Idx::var(i)]),
                    infs_frontend::ScalarExpr::Const(3.0),
                ),
                infs_frontend::ScalarExpr::load(b, vec![infs_frontend::Idx::var(i)]),
            ),
        );
        let region = infs_isa::Compiler::default()
            .compile(k.build().expect("builds"), &[])
            .expect("compiles")
            .instantiate(&[])
            .expect("instantiates");
        let mut m = Machine::new(ctx.cfg.clone(), region.sdfg.arrays());
        m.set_functional(false);
        m.set_assume_transposed(true);
        m.run_region(&region, &[], ExecMode::InL3).expect("runs");
        let warm = m.stats().cycles;
        m.run_region(&region, &[], ExecMode::InL3).expect("runs");
        let cycles = m.finish().cycles - warm;
        if dtype == DataType::F32 {
            f32_cycles = cycles;
        }
        t.row(vec![
            dtype.to_string(),
            cycles.to_string(),
            Table::f(f32_cycles as f64 / cycles as f64),
        ]);
    }
    ctx.emit("ablate_dtype", &t);
}

/// Table 3 echo: the workload inventory actually built.
pub fn table3(ctx: &Ctx) {
    let mut t = Table::new(
        "Table 3: workloads (as instantiated)",
        &["benchmark", "arrays", "footprint (MB)"],
    );
    for b in infs_workloads::full_suite(if ctx.quick { Scale::Test } else { Scale::Paper }) {
        let arrays = b.arrays();
        let bytes: u64 = arrays.iter().map(|a| a.size_bytes()).sum();
        t.row(vec![
            b.name().to_string(),
            arrays.len().to_string(),
            Table::f(bytes as f64 / (1024.0 * 1024.0)),
        ]);
    }
    ctx.emit("table3", &t);
}

/// Chaos report (`results/chaos.md`): the `DESIGN.md` §10 degradation ladder,
/// measured. An increasing number of L3 banks is killed under a fixed
/// `vec_add`; each run records where Inf-S actually placed the region
/// (in-memory while the bank quorum holds, the near-memory stream engines
/// once it breaks, the host cores when no bank is left), the cycle cost of
/// each rung, the degradation counters, and whether the outputs stayed
/// bit-identical to the scalar reference — degradation changes *where* a
/// region runs, never *what* it computes. A final row replays the
/// [`infs_faults::FaultConfig::chaos`] schedule twice to demonstrate that
/// identical seeds render identical fault schedules (the property the
/// serve-layer chaos tests and `infs-served --chaos` rely on).
pub fn chaos(ctx: &Ctx) {
    use infs_faults::{BankHealth, FaultConfig, FaultPlan};

    let n_banks = ctx.cfg.n_banks;
    let elems: u64 = if ctx.quick { 1 << 17 } else { 4 << 20 };
    let bench = VecAdd::with_elems(elems);
    let arrays = bench.arrays();

    // Golden outputs from the scalar reference.
    let mut golden = infs_sdfg::Memory::for_arrays(&arrays);
    bench.init(&mut golden);
    bench.reference(&mut golden);

    let mut t = Table::new(
        format!("Chaos: dead-bank degradation ladder (vec_add, {elems} elements, {n_banks} banks)"),
        &[
            "dead banks",
            "healthy",
            "executed",
            "cycles",
            "deg to near",
            "deg to host",
            "outputs",
        ],
    );
    for dead in [0u32, 8, 16, 32, 40, 56, 64] {
        let dead = dead.min(n_banks);
        let mut health = BankHealth::all_healthy(n_banks);
        for b in 0..dead {
            health.mark_dead(b);
        }
        let healthy = health.healthy_count();
        let mut m = Machine::new(ctx.cfg.clone(), &arrays);
        m.set_bank_health(health);
        bench.init(m.memory());
        bench
            .run(&mut m, ExecMode::InfS)
            .expect("vec_add survives degradation");
        let executed = {
            let s = m.stats();
            if s.ops_in_memory > 0 {
                "in-memory"
            } else if s.ops_near_memory > 0 {
                "near-memory"
            } else {
                "host"
            }
        };
        let bitwise = bench
            .output_arrays()
            .iter()
            .all(|&id| m.memory_ref().array(id) == golden.array(id));
        assert!(bitwise, "degraded run diverged from the scalar reference");
        let (deg_near, deg_host) = {
            let f = m.fault_counters();
            (f.degraded_to_near, f.degraded_to_host)
        };
        let cycles = m.finish().cycles;
        t.row(vec![
            dead.to_string(),
            healthy.to_string(),
            executed.to_string(),
            cycles.to_string(),
            deg_near.to_string(),
            deg_host.to_string(),
            "bit-identical".to_string(),
        ]);
    }

    // Schedule replay: the whole fault model is a pure function of the seed.
    let wordlines = ctx.cfg.geometry.wordlines;
    let render =
        |seed: u64| FaultPlan::new(FaultConfig::chaos(seed)).schedule(256, n_banks, wordlines);
    let (first, replay) = (render(0xC0FFEE), render(0xC0FFEE));
    assert_eq!(
        first, replay,
        "identical seeds must render identical schedules"
    );
    assert_ne!(
        first,
        render(0xD1FF),
        "distinct seeds must render distinct schedules"
    );
    t.row(vec![
        "chaos(0xC0FFEE) x2".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        format!("{} scheduled faults, replay-identical", first.len()),
    ]);
    ctx.emit("chaos", &t);
}

/// `results/check.md` — coverage report of the differential verification
/// sweep (DESIGN.md §11, EXPERIMENTS.md "Check").
///
/// Two halves of the `infs-check` contract, both of which must hold for the
/// table to render at all (failures abort the run):
///
/// * **acceptance** — every workload in the suite executes with the structural
///   validator installed as a region auditor, under both the in-memory and
///   near-memory modes (the validator may only reject artifacts the builder
///   could not have produced);
/// * **differential fuzzing** — a fixed-seed campaign of generated kernels,
///   each run through the interpreter oracle plus four machine
///   configurations, must agree bit-for-bit.
///
/// Acceptance always runs at [`Scale::Test`]: functional interpretation at
/// paper scale takes hours and proves nothing extra about the validator.
pub fn check(ctx: &Ctx) {
    let mut t = Table::new(
        "Check: differential verification coverage",
        &["stage", "runs", "in-memory", "divergences", "status"],
    );

    // Validator acceptance over the workload suite.
    for mode in [ExecMode::InfS, ExecMode::NearL3] {
        let mut accepted = 0usize;
        let mut in_mem = 0u64;
        for b in infs_workloads::full_suite(Scale::Test) {
            let arrays = b.arrays();
            let mut m = Machine::new(ctx.cfg.clone(), &arrays);
            m.set_region_auditor(Some(infs_check::auditor()));
            m.set_functional(true);
            m.set_resident_all();
            b.init(m.memory());
            b.run(&mut m, mode)
                .unwrap_or_else(|e| panic!("validator rejected {} under {mode:?}: {e}", b.name()));
            in_mem += u64::from(m.stats().ops_in_memory > 0);
            accepted += 1;
        }
        t.row(vec![
            format!("workload acceptance ({mode:?})"),
            accepted.to_string(),
            in_mem.to_string(),
            "-".to_string(),
            "all accepted".to_string(),
        ]);
    }

    // Fixed-seed differential fuzzing campaign.
    let kernels = if ctx.quick { 200 } else { 1000 };
    let report = infs_check::fuzz_many(0xC0FFEE, kernels);
    for f in &report.failures {
        eprintln!(
            "seed {:#018x} diverged in {}: {}",
            f.seed, f.divergence.config, f.divergence.what
        );
    }
    assert!(
        report.passed(),
        "{} of {} fuzz kernels diverged",
        report.failures.len(),
        report.run
    );
    t.row(vec![
        format!(
            "differential fuzz ({} kernels, {} tDFG nodes, {} template-patched)",
            report.run, report.total_nodes, report.template_patched_runs
        ),
        report.machine_runs.to_string(),
        report.in_memory_runs.to_string(),
        report.failures.len().to_string(),
        "bit-identical".to_string(),
    ]);
    ctx.emit("check", &t);
}

/// One pipeline graph's fused-vs-roundtrip measurement for [`pipeline`].
struct PipelineRun {
    name: &'static str,
    stages: usize,
    fused: infs_pipeline::PipelineReport,
    roundtrip: infs_pipeline::PipelineReport,
    spills: u64,
}

/// Runs one graph under both policies on fresh machines, asserts the outputs
/// are bitwise identical, and returns the two reports plus the planner's
/// spill count. A cycle number from a graph that computed something different
/// would be worse than no number at all, so equivalence gates the measurement.
fn measure_pipeline(
    ctx: &Ctx,
    name: &'static str,
    graph: &infs_pipeline::PipelineGraph,
    arrays: &[infs_sdfg::ArrayDecl],
    seed: &dyn Fn(&mut Machine),
) -> PipelineRun {
    infs_check::validate_pipeline(graph, &ctx.cfg)
        .unwrap_or_else(|e| panic!("pipeline '{name}' failed validation: {e}"));
    let compiled = infs_pipeline::compile(graph, &ctx.cfg).expect("pipeline compiles");

    let mut mf = Machine::new(ctx.cfg.clone(), arrays);
    seed(&mut mf);
    let fused = compiled
        .run_fused(&mut mf, ExecMode::InfS)
        .expect("fused run");

    let mut mr = Machine::new(ctx.cfg.clone(), arrays);
    seed(&mut mr);
    let roundtrip = compiled
        .run_roundtrip(&mut mr, ExecMode::InfS)
        .expect("roundtrip run");

    for &t in graph.produced().iter() {
        let id = infs_sdfg::ArrayId(t);
        assert!(
            mf.memory_ref().array(id) == mr.memory_ref().array(id),
            "pipeline '{name}' tensor '{}' diverges between fused and roundtrip",
            graph.tensors[t as usize].name
        );
    }
    PipelineRun {
        name,
        stages: graph.stages.len(),
        fused,
        roundtrip,
        spills: compiled.plan().spill_count(),
    }
}

/// Pipeline figure (DESIGN.md §13): fused streaming-region execution vs the
/// per-kernel host round-trip on the two multi-kernel model graphs — the
/// `mlp_stack` MLP chain and the PointNet SSG classification tail. Both
/// policies run the *same* compiled stages on the same tile; only operand
/// movement differs, so the outputs are asserted bitwise identical before any
/// cycle count is reported.
///
/// Also emits `BENCH_pipeline.json`: the machine-readable per-graph record
/// (fused/roundtrip cycles, speedup, stall/overlap cycles, spill count) that
/// CI's `pipeline-smoke` step schema-checks and diffs against its committed
/// baseline.
pub fn pipeline(ctx: &Ctx) {
    let mlp = MlpStack::new(ctx.scale());
    let pn = PointNet::new(ctx.scale(), PointNetVariant::Ssg);
    let pn_graph = pn.tail_graph();
    let runs = [
        measure_pipeline(ctx, "mlp_stack", mlp.graph(), &mlp.arrays(), &|m| {
            mlp.init(m.memory());
        }),
        measure_pipeline(ctx, "pointnet_tail", &pn_graph, &pn.arrays(), &|m| {
            pn.seed_tail_inputs(m.memory());
        }),
    ];

    let mut t = Table::new(
        "Pipeline: fused streaming regions vs per-kernel round-trip (Inf-S, outputs bit-identical)",
        &[
            "graph",
            "stages",
            "fused cycles",
            "roundtrip cycles",
            "speedup",
            "prepare stalls",
            "prefetch hidden",
            "spills",
        ],
    );
    let mut entries = Vec::new();
    for r in &runs {
        let speedup = r.roundtrip.total_cycles as f64 / r.fused.total_cycles.max(1) as f64;
        t.row(vec![
            r.name.into(),
            r.stages.to_string(),
            r.fused.total_cycles.to_string(),
            r.roundtrip.total_cycles.to_string(),
            Table::f(speedup),
            r.fused.prepare_stall_cycles.to_string(),
            r.fused.prefetch_hidden_cycles.to_string(),
            r.spills.to_string(),
        ]);
        entries.push(format!(
            concat!(
                "    \"{}\": {{\n",
                "      \"stages\": {},\n",
                "      \"fused_cycles\": {},\n",
                "      \"roundtrip_cycles\": {},\n",
                "      \"speedup\": {:.6},\n",
                "      \"prepare_stall_cycles\": {},\n",
                "      \"prefetch_hidden_cycles\": {},\n",
                "      \"spills\": {}\n",
                "    }}"
            ),
            r.name,
            r.stages,
            r.fused.total_cycles,
            r.roundtrip.total_cycles,
            speedup,
            r.fused.prepare_stall_cycles,
            r.fused.prefetch_hidden_cycles,
            r.spills,
        ));
    }
    ctx.emit("pipeline", &t);
    let json = format!(
        "{{\n  \"scale\": \"{}\",\n  \"workloads\": {{\n{}\n  }}\n}}\n",
        if ctx.quick { "test" } else { "paper" },
        entries.join(",\n"),
    );
    let path = ctx.out_dir.join("BENCH_pipeline.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("[figures] failed to write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

/// One serving configuration's soak result.
struct ServeRun {
    label: &'static str,
    io: &'static str,
    shards: u32,
    batching: bool,
    report: infs_serve::loadgen::LoadReport,
    metrics: infs_serve::MetricsReport,
    per_shard: Vec<u64>,
}

impl ServeRun {
    /// Goodput: successful responses per wall second (the RPS the paper-style
    /// comparison is about — rejections don't count).
    fn rps(&self) -> f64 {
        self.report.ok as f64 / (self.report.elapsed_ms.max(1) as f64 / 1000.0)
    }

    fn mean_occupancy(&self) -> f64 {
        let execs = self.metrics.batch_executions;
        if execs == 0 {
            1.0
        } else {
            (execs + self.metrics.batch_joined) as f64 / execs as f64
        }
    }
}

/// Serving soak (DESIGN.md §14): the same deterministic open-loop load —
/// `infs_serve::loadgen` over real loopback sockets — against two serving
/// stacks with **equal total worker count**:
///
/// - *baseline*: the PR 2 thread-per-connection accept loop, batching off,
///   one server with 4 workers;
/// - *sharded*: the event-driven reactor, request batching on, 4 shards ×
///   1 worker behind the consistent-hash tenant router.
///
/// Emits `results/serve.md` and `BENCH_serve.json` (client p50/p99/max
/// latency, goodput RPS, cache hit rates, batch occupancy, per-shard request
/// counts) — the record CI's `serve-soak` step schema-checks and gates on.
pub fn serve(ctx: &Ctx) {
    use infs_serve::loadgen::{self, LoadgenConfig};
    use infs_serve::{serve_reactor, serve_tcp, ServeConfig, Server, ShardCluster};
    use infs_shard::ReactorConfig;
    use std::sync::Arc;

    const WORKERS: usize = 4;
    const SHARDS: u32 = 4;
    // The rate deliberately exceeds 4 unbatched workers' drain rate: open
    // loop + overload is the regime where coalescing identical in-flight
    // requests multiplies capacity (and where a closed-loop client would
    // hide the difference).
    let lg = LoadgenConfig {
        rate_rps: if ctx.quick { 2_000.0 } else { 4_000.0 },
        duration_ms: if ctx.quick { 2_000 } else { 6_000 },
        connections: 8,
        // Enough tenants that the consistent-hash ring spreads them over all
        // four shards (8 tenants on 4 shards leaves a shard idle ~40% of the
        // time by the birthday bound), but few distinct bodies per shard:
        // partitioned 4×1 queues only beat the pooled 4-worker baseline on
        // tail latency when coalescing multiplies per-shard capacity.
        tenants: 16,
        seed: 0x5e12_f00d,
        array_len: 256,
        variants: 2,
        deadline_ms: Some(30_000),
    };

    let baseline = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = Arc::new(Server::new(ServeConfig {
            workers: WORKERS,
            batching: false,
            ..ServeConfig::default()
        }));
        let io = {
            let server = server.clone();
            std::thread::spawn(move || serve_tcp(&server, listener))
        };
        let report = loadgen::run(addr, &lg).expect("baseline load run");
        let metrics = server.metrics();
        server.begin_shutdown();
        io.join().expect("io thread").expect("accept loop");
        let shutdown = server.shutdown();
        ServeRun {
            label: "baseline",
            io: "thread-per-conn",
            shards: 1,
            batching: false,
            report,
            metrics,
            per_shard: vec![shutdown.served],
        }
    };

    let sharded = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let cluster = Arc::new(ShardCluster::new(
            &ServeConfig {
                workers: WORKERS / SHARDS as usize,
                batching: true,
                ..ServeConfig::default()
            },
            SHARDS,
        ));
        let io = {
            let cluster = cluster.clone();
            std::thread::spawn(move || serve_reactor(&cluster, listener, &ReactorConfig::default()))
        };
        let report = loadgen::run(addr, &lg).expect("sharded load run");
        let metrics = cluster.metrics();
        let per_shard = cluster.shard_requests();
        cluster.begin_shutdown();
        io.join().expect("io thread").expect("reactor");
        cluster.shutdown();
        ServeRun {
            label: "sharded",
            io: "reactor",
            shards: SHARDS,
            batching: true,
            report,
            metrics,
            per_shard,
        }
    };

    let mut t = Table::new(
        "Serve soak: event-driven sharded+batched vs thread-per-conn (equal total workers, same open-loop load)",
        &[
            "config",
            "io",
            "shards",
            "ok",
            "rejected",
            "RPS",
            "p50 us",
            "p99 us",
            "mean batch",
            "artifact hit%",
            "jit hit%",
        ],
    );
    let hit_pct = |h: u64, m: u64| {
        infs_serve::MetricsReport::hit_rate(h, m)
            .map_or_else(|| "-".to_string(), |r| format!("{:.1}", 100.0 * r))
    };
    for run in [&baseline, &sharded] {
        t.row(vec![
            run.label.into(),
            run.io.into(),
            run.shards.to_string(),
            run.report.ok.to_string(),
            run.metrics.rejected.to_string(),
            Table::f(run.rps()),
            run.report.latency.percentile(0.50).to_string(),
            run.report.latency.percentile(0.99).to_string(),
            Table::f(run.mean_occupancy()),
            hit_pct(run.metrics.artifact_hits, run.metrics.artifact_misses),
            hit_pct(run.metrics.jit_hits, run.metrics.jit_misses),
        ]);
    }
    ctx.emit("serve", &t);

    let entry = |run: &ServeRun| {
        let shards: Vec<String> = run.per_shard.iter().map(u64::to_string).collect();
        format!(
            concat!(
                "  \"{}\": {{\n",
                "    \"io\": \"{}\",\n",
                "    \"shards\": {},\n",
                "    \"batching\": {},\n",
                "    \"sent\": {},\n",
                "    \"ok\": {},\n",
                "    \"rejected\": {},\n",
                "    \"lost\": {},\n",
                "    \"rps\": {:.3},\n",
                "    \"p50_us\": {},\n",
                "    \"p99_us\": {},\n",
                "    \"max_us\": {},\n",
                "    \"artifact_hit_rate\": {:.6},\n",
                "    \"jit_hit_rate\": {:.6},\n",
                "    \"batch_executions\": {},\n",
                "    \"batch_joined\": {},\n",
                "    \"batch_max_occupancy\": {},\n",
                "    \"mean_batch_occupancy\": {:.4},\n",
                "    \"per_shard_requests\": [{}]\n",
                "  }}"
            ),
            run.label,
            run.io,
            run.shards,
            run.batching,
            run.report.sent,
            run.report.ok,
            run.metrics.rejected,
            run.report.lost,
            run.rps(),
            run.report.latency.percentile(0.50),
            run.report.latency.percentile(0.99),
            run.report.latency.max(),
            infs_serve::MetricsReport::hit_rate(
                run.metrics.artifact_hits,
                run.metrics.artifact_misses
            )
            .unwrap_or(0.0),
            infs_serve::MetricsReport::hit_rate(run.metrics.jit_hits, run.metrics.jit_misses)
                .unwrap_or(0.0),
            run.metrics.batch_executions,
            run.metrics.batch_joined,
            run.metrics.batch_max_occupancy,
            run.mean_occupancy(),
            shards.join(", "),
        )
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"scale\": \"{}\",\n",
            "  \"workers_total\": {},\n",
            "  \"load\": {{ \"rate_rps\": {}, \"duration_ms\": {}, \"connections\": {}, ",
            "\"tenants\": {}, \"variants\": {}, \"seed\": {} }},\n",
            "{},\n",
            "{},\n",
            "  \"rps_speedup\": {:.4}\n",
            "}}\n"
        ),
        if ctx.quick { "test" } else { "paper" },
        WORKERS,
        lg.rate_rps,
        lg.duration_ms,
        lg.connections,
        lg.tenants,
        lg.variants,
        lg.seed,
        entry(&baseline),
        entry(&sharded),
        sharded.rps() / baseline.rps().max(1e-9),
    );
    let path = ctx.out_dir.join("BENCH_serve.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("[figures] failed to write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

/// One workload of the autotuning soak.
struct TuneWorkload {
    name: &'static str,
    kernel: infs_frontend::Kernel,
    optimize: bool,
    region: &'static str,
    /// (array id, payload) pairs sent with every execute request.
    inputs: Vec<(u32, Vec<f32>)>,
    /// Array id read back as the output.
    output: u32,
    /// Whether the static §4.1/Eq-2 placement is expected to lose to the
    /// tuner here (the soak's win rows) or to hold (the control row).
    expect_win: bool,
}

/// Per-workload outcome of one soak run (static or tuned server).
struct TuneRun {
    /// Mean cycles of the exploit-path requests in the last quarter of the
    /// soak — the policy's steady-state serving cost. On the static server
    /// every request is an exploit request.
    steady_cycles: u64,
    /// `tuned_variant` label of the last exploit request.
    incumbent: String,
    metrics: infs_serve::MetricsReport,
    /// Output bits of the last response, for bitwise comparison.
    output_bits: Vec<u32>,
}

/// The matrix side length of every soak workload. At 256×256 the ladder
/// kernels sit past Eq-2's crossover: `elems × ops / 16` (the offload side
/// modeled as a 16-lane scalar core) exceeds the bit-serial latency side, so
/// the static heuristic places them in-memory — while the bank-parallel
/// stream engines actually finish first. That model error is exactly what
/// the tuner's observed-cycles feedback corrects.
const TUNE_D: u64 = 256;

fn tune_workloads() -> Vec<TuneWorkload> {
    use infs_serve::demo;
    let d = TUNE_D;
    let a: Vec<f32> = (0..d * d).map(|x| 1.0 + (x % 7) as f32 * 0.125).collect();
    let b: Vec<f32> = (0..d * d).map(|x| 0.5 + (x % 5) as f32 * 0.25).collect();
    vec![
        TuneWorkload {
            name: "mat_update/8",
            kernel: demo::mat_update(d, 8),
            optimize: false,
            region: "mat_update",
            inputs: vec![(0, a.clone()), (1, b.clone())],
            output: 2,
            expect_win: true,
        },
        TuneWorkload {
            name: "mat_update/32",
            kernel: demo::mat_update(d, 32),
            optimize: false,
            region: "mat_update",
            inputs: vec![(0, a.clone()), (1, b.clone())],
            output: 2,
            expect_win: true,
        },
        TuneWorkload {
            name: "mat_muladd/8",
            kernel: demo::mat_muladd(d, 8),
            optimize: false,
            region: "mat_muladd",
            inputs: vec![(0, a.clone()), (1, b.clone())],
            output: 2,
            expect_win: true,
        },
        TuneWorkload {
            name: "mat_muladd/32",
            kernel: demo::mat_muladd(d, 32),
            optimize: false,
            region: "mat_muladd",
            inputs: vec![(0, a.clone()), (1, b.clone())],
            output: 2,
            expect_win: true,
        },
        TuneWorkload {
            name: "mat_stencil",
            kernel: demo::mat_stencil(d),
            optimize: true,
            region: "mat_stencil",
            inputs: vec![(0, a)],
            output: 1,
            expect_win: false,
        },
    ]
}

/// Drives `requests` identical execute requests for one workload against a
/// server and distills the steady state. Sequential calls on a single-worker,
/// batching-off server: the request order — and with it every tune decision —
/// is a pure function of the config.
fn tune_soak(
    server: &infs_serve::Server,
    w: &TuneWorkload,
    requests: u64,
    reference_bits: Option<&[u32]>,
) -> TuneRun {
    use infs_serve::{
        ArrayPayload, CompileRequest, ExecuteRequest, Request, RequestBody, WireMode,
    };
    let compile = server.call(Request {
        id: 0,
        tenant: "tune".into(),
        deadline_ms: None,
        body: RequestBody::Compile(CompileRequest {
            kernel: w.kernel.clone(),
            representative_syms: vec![],
            optimize: w.optimize,
        }),
    });
    assert!(
        compile.ok,
        "{}: compile failed: {:?}",
        w.name, compile.error
    );
    let artifact = compile.artifact.expect("compile yields an artifact");

    let mut log: Vec<(u64, bool, String)> = Vec::new();
    let mut output_bits = Vec::new();
    for i in 0..requests {
        let r = server.call(Request {
            id: 1 + i,
            tenant: "tune".into(),
            deadline_ms: None,
            body: RequestBody::Execute(ExecuteRequest {
                artifact: Some(artifact.clone()),
                binary: None,
                region: w.region.to_string(),
                syms: vec![],
                params: vec![],
                mode: WireMode::InfS,
                inputs: w
                    .inputs
                    .iter()
                    .map(|(id, data)| ArrayPayload {
                        array: *id,
                        data: data.clone(),
                    })
                    .collect(),
                outputs: vec![w.output],
            }),
        });
        assert!(r.ok, "{}: execute {i} failed: {:?}", w.name, r.error);
        output_bits = r.outputs[0].data.iter().map(|v| v.to_bits()).collect();
        if let Some(want) = reference_bits {
            assert_eq!(
                output_bits, want,
                "{}: request {i} output diverges bitwise from the static \
                 reference (variant {:?})",
                w.name, r.stats.tuned_variant
            );
        }
        log.push((
            r.stats.cycles,
            r.stats.tuned_explore,
            r.stats.tuned_variant.unwrap_or_else(|| "static".into()),
        ));
    }

    let tail = &log[log.len() - log.len() / 4..];
    let exploit: Vec<&(u64, bool, String)> = tail.iter().filter(|(_, e, _)| !e).collect();
    assert!(
        !exploit.is_empty(),
        "{}: no exploit request in the tail",
        w.name
    );
    let steady_cycles = (exploit.iter().map(|(c, _, _)| u128::from(*c)).sum::<u128>()
        / exploit.len() as u128) as u64;
    TuneRun {
        steady_cycles,
        incumbent: exploit.last().expect("nonempty").2.clone(),
        metrics: server.metrics(),
        output_bits,
    }
}

/// The tune soak's server: one worker, batching off — so request order is
/// deterministic — with `infs-check`'s region auditor installed on every
/// session, auditing every explored variant before it executes.
fn tune_server(
    tune: Option<infs_serve::TuneConfig>,
    faults: Option<infs_faults::FaultConfig>,
) -> infs_serve::Server {
    infs_serve::Server::new(infs_serve::ServeConfig {
        workers: 1,
        batching: false,
        tune,
        faults,
        auditor: Some(infs_check::auditor()),
        ..infs_serve::ServeConfig::default()
    })
}

/// The `DESIGN.md` §15 autotuning soak: each matrix workload is served twice
/// — once by a static server (the paper's §4.1/Eq-2 placement) and once by a
/// tuned server under a fixed seed — plus a chaos-and-retune drill. Every
/// tuned response is checked bitwise against the static reference, so the
/// tuner can only ever re-place work, never change its result. Emits
/// `results/tune.md` and `BENCH_tune.json` — the record CI's `tune-smoke`
/// step regenerates and gates on.
pub fn tune(ctx: &Ctx) {
    use infs_serve::TuneConfig;

    let requests: u64 = if ctx.quick { 96 } else { 256 };
    let tune_cfg = TuneConfig {
        // Hotter exploration and a lower sample floor than the serving
        // default: the soak wants convergence within a bounded request
        // budget, and the deterministic simulator makes tiny samples exact.
        explore_percent: 40,
        min_samples: 2,
        ..TuneConfig::seeded(0x7C3A_11E5)
    };

    let mut t = Table::new(
        "Autotuning soak: tuned steady-state vs the static \u{a7}4.1/Eq-2 placement \
         (steady state = mean exploit-path cycles over the soak's last quarter; \
         every tuned response bitwise-identical to the static reference)",
        &[
            "workload",
            "static cycles",
            "tuned cycles",
            "speedup",
            "incumbent",
            "promotions",
            "explored",
        ],
    );
    let mut entries = Vec::new();
    let mut wins = 0u32;
    for w in &tune_workloads() {
        let static_server = tune_server(None, None);
        let stat = tune_soak(&static_server, w, requests, None);
        static_server.shutdown();

        let tuned_server = tune_server(Some(tune_cfg.clone()), None);
        let tuned = tune_soak(&tuned_server, w, requests, Some(&stat.output_bits));
        tuned_server.shutdown();

        let speedup = stat.steady_cycles as f64 / tuned.steady_cycles.max(1) as f64;
        let win = tuned.steady_cycles < stat.steady_cycles;
        assert!(
            tuned.steady_cycles <= stat.steady_cycles,
            "{}: tuned steady state {} regressed past static {}",
            w.name,
            tuned.steady_cycles,
            stat.steady_cycles
        );
        if w.expect_win {
            assert!(
                win,
                "{}: expected a tuner win, got static {} vs tuned {}",
                w.name, stat.steady_cycles, tuned.steady_cycles
            );
            wins += 1;
        }
        t.row(vec![
            w.name.into(),
            stat.steady_cycles.to_string(),
            tuned.steady_cycles.to_string(),
            Table::f(speedup),
            tuned.incumbent.clone(),
            tuned.metrics.tune_promotions.to_string(),
            tuned.metrics.tune_explored.to_string(),
        ]);
        entries.push(format!(
            concat!(
                "    \"{}\": {{\n",
                "      \"static_cycles\": {},\n",
                "      \"tuned_cycles\": {},\n",
                "      \"speedup\": {:.4},\n",
                "      \"incumbent\": \"{}\",\n",
                "      \"promotions\": {},\n",
                "      \"demotions\": {},\n",
                "      \"explored\": {},\n",
                "      \"exploited\": {},\n",
                "      \"bitwise_identical\": true\n",
                "    }}"
            ),
            w.name,
            stat.steady_cycles,
            tuned.steady_cycles,
            speedup,
            tuned.incumbent,
            tuned.metrics.tune_promotions,
            tuned.metrics.tune_demotions,
            tuned.metrics.tune_explored,
            tuned.metrics.tune_exploited,
        ));
    }
    assert!(wins >= 3, "fewer than 3 tuner wins ({wins})");
    ctx.emit("tune", &t);

    // The retune drill: same tuned soak, but a seeded SRAM-flip schedule
    // quarantines banks mid-run. The first flips land after the tuner has
    // promoted, so the drill exercises the full ladder: promote -> fault ->
    // demote -> re-converge on the post-fault machine.
    let drill = &tune_workloads()[1]; // mat_update/32: the widest-margin win
    let static_server = tune_server(None, None);
    let healthy = tune_soak(&static_server, drill, requests, None);
    static_server.shutdown();
    let faults = infs_faults::FaultConfig {
        seed: 0xD2111,
        // The schedule draws one flip per region with probability 1/period:
        // ~8 expected over the soak, spread so some land after the first
        // promotion (those count as demotions) and quarantines keep arriving
        // while the tuner re-converges.
        sram_flip_period: 12,
        ..infs_faults::FaultConfig::none()
    };
    let chaos_server = tune_server(Some(tune_cfg.clone()), Some(faults));
    let drilled = tune_soak(&chaos_server, drill, requests, Some(&healthy.output_bits));
    let health = chaos_server.health();
    chaos_server.shutdown();
    assert!(
        drilled.metrics.tune_demotions >= 1,
        "retune drill never demoted (banks lost: {})",
        health.total_banks - health.healthy_banks
    );
    assert!(
        health.healthy_banks < health.total_banks,
        "retune drill quarantined no banks"
    );

    let mut rt = Table::new(
        "Retune drill: mat_update/32 under a seeded SRAM-flip schedule \
         (quarantines land mid-soak; outputs stay bitwise-identical throughout)",
        &[
            "banks lost",
            "demotions",
            "promotions",
            "steady cycles",
            "incumbent after",
        ],
    );
    rt.row(vec![
        (health.total_banks - health.healthy_banks).to_string(),
        drilled.metrics.tune_demotions.to_string(),
        drilled.metrics.tune_promotions.to_string(),
        drilled.steady_cycles.to_string(),
        drilled.incumbent.clone(),
    ]);
    ctx.emit("tune_retune", &rt);

    let json = format!(
        concat!(
            "{{\n",
            "  \"scale\": \"{}\",\n",
            "  \"seed\": {},\n",
            "  \"requests\": {},\n",
            "  \"explore_percent\": {},\n",
            "  \"min_samples\": {},\n",
            "  \"promote_margin_percent\": {},\n",
            "  \"d\": {},\n",
            "  \"wins\": {},\n",
            "  \"workloads\": {{\n{}\n  }},\n",
            "  \"retune\": {{\n",
            "    \"workload\": \"{}\",\n",
            "    \"banks_lost\": {},\n",
            "    \"demotions\": {},\n",
            "    \"promotions\": {},\n",
            "    \"steady_cycles\": {},\n",
            "    \"incumbent\": \"{}\",\n",
            "    \"bitwise_identical\": true\n",
            "  }}\n",
            "}}\n"
        ),
        if ctx.quick { "test" } else { "paper" },
        tune_cfg.seed,
        requests,
        tune_cfg.explore_percent,
        tune_cfg.min_samples,
        tune_cfg.promote_margin_percent,
        TUNE_D,
        wins,
        entries.join(",\n"),
        drill.name,
        health.total_banks - health.healthy_banks,
        drilled.metrics.tune_demotions,
        drilled.metrics.tune_promotions,
        drilled.steady_cycles,
        drilled.incumbent,
    );
    let path = ctx.out_dir.join("BENCH_tune.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("[figures] failed to write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

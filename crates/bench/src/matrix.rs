//! The run matrix: every (workload variant, configuration) simulated once,
//! cached to JSON, shared by all figure runners.

use crate::Ctx;
use infs_sim::{ExecMode, RunStats};
use infs_workloads::{by_name, run_timed, Scale};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Every workload variant in the evaluation (Table 3 naming).
pub const WORKLOADS: [&str; 13] = [
    "stencil1d",
    "stencil2d",
    "stencil3d",
    "dwt2d",
    "gauss_elim",
    "conv2d",
    "conv3d",
    "mm/in",
    "mm/out",
    "kmeans/in",
    "kmeans/out",
    "gather_mlp/in",
    "gather_mlp/out",
];

/// Every simulated configuration (Fig 11 set plus the Fig 2 Base-1 point).
pub const ALL_CONFIGS: [ConfigName; 6] = [
    ConfigName::Base1,
    ConfigName::Base,
    ConfigName::NearL3,
    ConfigName::InL3,
    ConfigName::InfS,
    ConfigName::InfSNoJit,
];

/// A sweep failure tagged with the (workload, configuration) pair that
/// produced it, so a 78-pair sweep reports *which* cell went wrong.
#[derive(Debug)]
pub struct MatrixError {
    pub bench: String,
    pub config: ConfigName,
    pub source: MatrixFailure,
}

/// What went wrong for one (workload, configuration) cell. A resident process
/// embedding the bench API (the `infs-serve` server, a notebook) must get an
/// error value for a bad workload name, not a `panic!` that kills it.
#[derive(Debug)]
pub enum MatrixFailure {
    /// The workload name matches nothing in [`WORKLOADS`] / `by_name`.
    UnknownWorkload,
    /// The simulation itself failed.
    Sim(infs_sim::SimError),
}

impl fmt::Display for MatrixFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixFailure::UnknownWorkload => write!(f, "unknown workload name"),
            MatrixFailure::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulating {} / {}: {}",
            self.bench,
            self.config.label(),
            self.source
        )
    }
}

impl std::error::Error for MatrixError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.source {
            MatrixFailure::UnknownWorkload => None,
            MatrixFailure::Sim(e) => Some(e),
        }
    }
}

/// The five evaluated configurations (plus single-thread Base for Fig 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ConfigName {
    /// 1-thread baseline.
    Base1,
    /// 64-thread AVX-512 baseline.
    Base,
    /// Near-stream computing.
    NearL3,
    /// In-memory only.
    InL3,
    /// Infinity stream (fused).
    InfS,
    /// Infinity stream with precompiled commands.
    InfSNoJit,
}

impl ConfigName {
    /// All Fig 11 configurations.
    pub const FIG11: [ConfigName; 5] = [
        ConfigName::Base,
        ConfigName::NearL3,
        ConfigName::InL3,
        ConfigName::InfS,
        ConfigName::InfSNoJit,
    ];

    /// The simulator mode for this configuration.
    pub fn mode(self) -> ExecMode {
        match self {
            ConfigName::Base1 => ExecMode::Base { threads: 1 },
            ConfigName::Base => ExecMode::Base { threads: 64 },
            ConfigName::NearL3 => ExecMode::NearL3,
            ConfigName::InL3 => ExecMode::InL3,
            ConfigName::InfS => ExecMode::InfS,
            ConfigName::InfSNoJit => ExecMode::InfSNoJit,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ConfigName::Base1 => "Base-1",
            ConfigName::Base => "Base",
            ConfigName::NearL3 => "Near-L3",
            ConfigName::InL3 => "In-L3",
            ConfigName::InfS => "Inf-S",
            ConfigName::InfSNoJit => "Inf-S-noJIT",
        }
    }
}

/// One simulated (workload, configuration) outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatrixEntry {
    /// Workload name (Table 3 naming).
    pub bench: String,
    /// Configuration.
    pub config: ConfigName,
    /// Full statistics.
    pub stats: RunStats,
}

/// The cached run matrix.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunMatrix {
    /// Scale the matrix was produced at (`"paper"` / `"test"`).
    pub scale: String,
    /// Entries keyed `"<bench>|<config label>"`.
    pub entries: BTreeMap<String, MatrixEntry>,
}

impl RunMatrix {
    fn key(bench: &str, config: ConfigName) -> String {
        format!("{bench}|{}", config.label())
    }

    /// Looks up one entry.
    pub fn get(&self, bench: &str, config: ConfigName) -> Option<&MatrixEntry> {
        self.entries.get(&Self::key(bench, config))
    }

    /// Cycles of one entry (`u64::MAX` when missing, so min-comparisons work).
    pub fn cycles(&self, bench: &str, config: ConfigName) -> u64 {
        self.get(bench, config).map_or(u64::MAX, |e| e.stats.cycles)
    }

    /// The best (min-cycle) variant of a workload family for a configuration —
    /// the paper "picks the best implementation for each configuration".
    pub fn best_variant(&self, family: &str, config: ConfigName) -> (String, u64) {
        let inner = format!("{family}/in");
        let outer = format!("{family}/out");
        let (ci, co) = (self.cycles(&inner, config), self.cycles(&outer, config));
        if ci <= co {
            (inner, ci)
        } else {
            (outer, co)
        }
    }

    /// Loads (or simulates and caches) the full matrix for a context.
    ///
    /// Panics on a simulation failure; use [`RunMatrix::try_load_or_run`] to
    /// handle errors (the partial matrix is persisted either way).
    pub fn load_or_run(ctx: &Ctx) -> RunMatrix {
        Self::try_load_or_run(ctx).unwrap_or_else(|e| panic!("run matrix failed: {e}"))
    }

    /// Loads (or simulates and caches) the full matrix, fanning the missing
    /// (workload, configuration) pairs out across worker threads.
    ///
    /// # Errors
    ///
    /// Returns the first failed pair. Entries that completed — including ones
    /// finished by other workers after the failure — are written to
    /// `matrix.json` first, so a rerun resumes instead of starting over.
    pub fn try_load_or_run(ctx: &Ctx) -> Result<RunMatrix, MatrixError> {
        Self::run_subset(ctx, &WORKLOADS, &ALL_CONFIGS, true)
    }

    /// [`RunMatrix::try_load_or_run`] with an explicit sequential/parallel
    /// switch; the determinism tests diff the two paths byte-for-byte.
    pub fn try_load_or_run_with(ctx: &Ctx, parallel: bool) -> Result<RunMatrix, MatrixError> {
        Self::run_subset(ctx, &WORKLOADS, &ALL_CONFIGS, parallel)
    }

    /// Core sweep over `names` × `configs`: reuses any cached entries whose
    /// scale matches (a partial `matrix.json` from an interrupted run is
    /// resumed, not discarded), simulates only the missing pairs, and
    /// persists the merged result.
    pub fn run_subset(
        ctx: &Ctx,
        names: &[&str],
        configs: &[ConfigName],
        parallel: bool,
    ) -> Result<RunMatrix, MatrixError> {
        let path = ctx.out_dir.join("matrix.json");
        let scale_tag = if ctx.quick { "test" } else { "paper" };
        let mut m = RunMatrix {
            scale: scale_tag.to_string(),
            entries: BTreeMap::new(),
        };
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Ok(prev) = serde_json::from_str::<RunMatrix>(&text) {
                if prev.scale == scale_tag {
                    m.entries = prev.entries;
                }
            }
        }

        let missing: Vec<(&str, ConfigName)> = names
            .iter()
            .flat_map(|&name| configs.iter().map(move |&config| (name, config)))
            .filter(|&(name, config)| !m.entries.contains_key(&Self::key(name, config)))
            .collect();
        if missing.is_empty() {
            if !m.entries.is_empty() {
                eprintln!(
                    "[matrix] reusing cached {path:?} ({} entries)",
                    m.entries.len()
                );
            }
            return Ok(m);
        }
        let workers = if parallel {
            rayon::current_num_threads()
        } else {
            1
        };
        eprintln!(
            "[matrix] {} cached, {} to simulate on {workers} worker(s)",
            m.entries.len(),
            missing.len()
        );

        let sim_pair = |(name, config): (&str, ConfigName)| {
            let t0 = std::time::Instant::now();
            let stats = run_one(name, config, ctx)?;
            eprintln!(
                "[matrix] {name} / {}: {} cycles ({:.1}s host)",
                config.label(),
                stats.cycles,
                t0.elapsed().as_secs_f64()
            );
            Ok((
                Self::key(name, config),
                MatrixEntry {
                    bench: name.to_string(),
                    config,
                    stats,
                },
            ))
        };
        let results: Vec<Result<(String, MatrixEntry), MatrixError>> = if parallel {
            missing.into_par_iter().map(&sim_pair).collect()
        } else {
            missing.into_iter().map(sim_pair).collect()
        };

        let mut first_err = None;
        for r in results {
            match r {
                Ok((key, entry)) => {
                    m.entries.insert(key, entry);
                }
                Err(e) if first_err.is_none() => first_err = Some(e),
                Err(_) => {}
            }
        }

        // Persist whatever completed — on failure a rerun resumes from here.
        std::fs::create_dir_all(&ctx.out_dir).ok();
        if let Ok(text) = serde_json::to_string(&m) {
            std::fs::write(&path, text).ok();
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(m),
        }
    }
}

/// Simulates one (workload, configuration) pair. Functional execution is on
/// only at test scale — paper-scale runs are timing-only, with correctness
/// covered by the test-scale verification suite.
///
/// # Errors
///
/// Returns [`MatrixFailure::UnknownWorkload`] (tagged with the requested
/// pair) for a name `by_name` does not know, and [`MatrixFailure::Sim`] for
/// simulation failures — never panics, so a long-lived process can feed it
/// untrusted names.
pub fn run_one(name: &str, config: ConfigName, ctx: &Ctx) -> Result<RunStats, MatrixError> {
    let err = |source| MatrixError {
        bench: name.to_string(),
        config,
        source,
    };
    let b = by_name(name, ctx.scale()).ok_or_else(|| err(MatrixFailure::UnknownWorkload))?;
    let functional = ctx.scale() == Scale::Test;
    run_timed(b.as_ref(), config.mode(), &ctx.cfg, functional, false)
        .map_err(|e| err(MatrixFailure::Sim(e)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_labels_and_modes() {
        assert_eq!(ConfigName::InfS.label(), "Inf-S");
        assert_eq!(ConfigName::Base.mode(), ExecMode::Base { threads: 64 });
        assert_eq!(ConfigName::FIG11.len(), 5);
    }

    #[test]
    fn best_variant_picks_min() {
        let mut m = RunMatrix::default();
        for (bench, cycles) in [("mm/in", 100u64), ("mm/out", 50)] {
            m.entries.insert(
                RunMatrix::key(bench, ConfigName::InfS),
                MatrixEntry {
                    bench: bench.into(),
                    config: ConfigName::InfS,
                    stats: RunStats {
                        cycles,
                        ..Default::default()
                    },
                },
            );
        }
        let (name, c) = m.best_variant("mm", ConfigName::InfS);
        assert_eq!((name.as_str(), c), ("mm/out", 50));
        assert_eq!(m.cycles("mm/in", ConfigName::Base), u64::MAX);
    }

    #[test]
    fn pair_lists_cover_the_paper_sweep() {
        assert_eq!(WORKLOADS.len() * ALL_CONFIGS.len(), 78);
        // Keys must be collision-free across the full cross product.
        let keys: std::collections::BTreeSet<String> = WORKLOADS
            .iter()
            .flat_map(|w| ALL_CONFIGS.iter().map(|c| RunMatrix::key(w, *c)))
            .collect();
        assert_eq!(keys.len(), 78);
    }

    #[test]
    fn matrix_error_names_the_pair() {
        let e = MatrixError {
            bench: "conv2d".into(),
            config: ConfigName::NearL3,
            source: MatrixFailure::Sim(infs_sim::SimError::Runtime(
                infs_runtime::RuntimeError::NotInMemory,
            )),
        };
        let msg = e.to_string();
        assert!(msg.contains("conv2d"), "{msg}");
        assert!(msg.contains("Near-L3"), "{msg}");
        assert!(std::error::Error::source(&e).is_some());
    }

    /// An unknown workload name is an error value, not a panic — a resident
    /// process embedding the bench API must survive a bad request.
    #[test]
    fn unknown_workload_is_an_error_not_a_panic() {
        let ctx = Ctx {
            out_dir: std::env::temp_dir().join("infs-matrix-unknown-test"),
            ..Ctx::new(true)
        };
        let e = run_one("no_such_workload", ConfigName::InfS, &ctx).unwrap_err();
        assert!(matches!(e.source, MatrixFailure::UnknownWorkload));
        let msg = e.to_string();
        assert!(msg.contains("no_such_workload"), "{msg}");
        assert!(msg.contains("unknown workload"), "{msg}");
        assert!(std::error::Error::source(&e).is_none());
    }
}

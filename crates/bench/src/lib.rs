//! Figure/table regeneration harness for the Infinity Stream reproduction.
//!
//! One runner per table and figure of the paper's evaluation (§8). Each runner
//! executes the relevant workloads on the simulated machine, derives the same
//! rows/series the paper plots, prints them as Markdown, and writes them under
//! `results/`. Absolute cycle counts are not expected to match gem5; the
//! qualitative shape — who wins, by roughly what factor, where crossovers
//! fall — is the reproduction target (see EXPERIMENTS.md).
//!
//! Runners share a cached *run matrix* (`results/matrix.json`): every
//! (workload, configuration) pair is simulated once and Fig 11/12/13/14/18 and
//! the JIT/tiling analyses all derive from it.
//!
//! `DESIGN.md` §5 (experiment index) maps each runner to its table or
//! figure; the `chaos` runner measures the `DESIGN.md` §10 degradation
//! ladder (`results/chaos.md`).

#![forbid(unsafe_code)]

pub mod figures;
pub mod matrix;
pub mod table;

pub use matrix::{ConfigName, MatrixEntry, MatrixError, MatrixFailure, RunMatrix};
pub use table::Table;

use infs_sim::SystemConfig;
use std::path::PathBuf;

/// Shared context for figure runners.
#[derive(Debug, Clone)]
pub struct Ctx {
    /// Machine parameters (Table 2 defaults).
    pub cfg: SystemConfig,
    /// Use reduced input sizes (CI/tests); full paper sizes otherwise.
    pub quick: bool,
    /// Output directory for results (default `results/`).
    pub out_dir: PathBuf,
}

// Compile-time audit: one Ctx is shared by reference across all sweep workers.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<Ctx>();
};

impl Ctx {
    /// Default context at paper scale.
    pub fn new(quick: bool) -> Self {
        Ctx {
            cfg: SystemConfig::default(),
            quick,
            out_dir: PathBuf::from("results"),
        }
    }

    /// Workload scale for this context.
    pub fn scale(&self) -> infs_workloads::Scale {
        if self.quick {
            infs_workloads::Scale::Test
        } else {
            infs_workloads::Scale::Paper
        }
    }

    /// Writes a rendered table under the output directory and echoes it.
    pub fn emit(&self, name: &str, t: &Table) {
        std::fs::create_dir_all(&self.out_dir).ok();
        let path = self.out_dir.join(format!("{name}.md"));
        let text = t.to_markdown();
        std::fs::write(&path, &text).ok();
        println!("## {name}\n\n{text}");
    }
}

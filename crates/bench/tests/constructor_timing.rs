//! Diagnostic: which benchmark constructor is slow (e-graph saturation cost).
use infs_workloads::{by_name, Scale};

#[test]
#[ignore]
fn time_constructors() {
    for name in [
        "stencil1d",
        "stencil2d",
        "stencil3d",
        "dwt2d",
        "gauss_elim",
        "conv2d",
        "conv3d",
        "mm/in",
        "mm/out",
        "kmeans/in",
        "kmeans/out",
        "gather_mlp/in",
        "gather_mlp/out",
    ] {
        let t0 = std::time::Instant::now();
        let _b = by_name(name, Scale::Test).unwrap();
        eprintln!("{name}: {:.2}s", t0.elapsed().as_secs_f64());
    }
}

//! The observability acceptance test: one end-to-end compile + simulate run
//! under tracing produces a Chrome trace with at least one span from every
//! pipeline layer (frontend, e-graph, ISA, runtime JIT, simulator), the
//! exported JSON loads back as valid JSON with balanced per-track nesting,
//! and running with tracing disabled records nothing and changes no result.

use infs_bench::{matrix::run_one, ConfigName, Ctx};

fn quick_ctx() -> Ctx {
    Ctx {
        out_dir: std::env::temp_dir().join("infs-trace-smoke"),
        ..Ctx::new(true)
    }
}

#[test]
fn one_run_traces_every_pipeline_stage() {
    let session = infs_trace::exclusive();
    let ctx = quick_ctx();
    let stats = run_one("stencil1d", ConfigName::InL3, &ctx).expect("stencil1d simulates");
    assert!(stats.cycles > 0);
    let snap = infs_trace::snapshot();
    drop(session);

    assert_eq!(snap.dropped, 0, "trace buffers overflowed on a tiny run");
    for stage in ["frontend", "egraph", "isa", "runtime", "sim"] {
        assert!(
            snap.spans_with_prefix(stage) >= 1,
            "no '{stage}.*' span in the trace; got: {:?}",
            snap.events.iter().map(|e| &e.name).collect::<Vec<_>>()
        );
    }
    if let Err(pair) = snap.check_nesting() {
        panic!("unbalanced nesting: {} / {}", pair.0.name, pair.1.name);
    }

    // The export round-trips through a real JSON parser.
    let json = snap.chrome_json();
    let v: serde::Value = serde_json::from_str(&json).expect("chrome export is valid JSON");
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    // Every snapshot span appears, plus at least the process metadata.
    assert!(events.len() > snap.events.len());
    let complete = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .count();
    assert_eq!(complete, snap.events.len());
    // Simulator spans land on their own process so the cycle timeline zooms
    // independently of wall-clock compile spans.
    let pids: std::collections::BTreeSet<u64> = events
        .iter()
        .filter_map(|e| match e.get("pid") {
            Some(&serde::Value::Int(i)) => Some(i as u64),
            Some(&serde::Value::UInt(u)) => Some(u),
            _ => None,
        })
        .collect();
    assert!(pids.len() >= 2, "expected host and sim processes: {pids:?}");

    // Counters from the runtime JIT made it into the metrics export.
    let mv: serde::Value =
        serde_json::from_str(&snap.metrics_json()).expect("metrics export is valid JSON");
    let counters = mv
        .get("counters")
        .and_then(|c| c.as_object())
        .expect("counters object");
    assert!(
        counters.iter().any(|(k, _)| k.starts_with("jit.")),
        "no jit.* counter in metrics: {counters:?}"
    );
}

#[test]
fn disabled_tracing_records_nothing_and_changes_nothing() {
    let ctx = quick_ctx();
    let traced = {
        let _session = infs_trace::exclusive();
        run_one("stencil1d", ConfigName::InL3, &ctx).expect("traced run")
    };
    // exclusive() has dropped: tracing is off again.
    infs_trace::clear();
    assert!(!infs_trace::enabled());
    let plain = run_one("stencil1d", ConfigName::InL3, &ctx).expect("untraced run");
    assert_eq!(
        infs_trace::snapshot().events.len(),
        0,
        "disabled tracing must record nothing"
    );
    assert_eq!(
        traced.cycles, plain.cycles,
        "tracing must not change simulated timing"
    );
}

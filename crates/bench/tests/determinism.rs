//! The parallel run matrix must be an invisible optimization: same bytes on
//! disk as the sequential sweep, and a partial `matrix.json` must be resumed
//! rather than recomputed.

use infs_bench::matrix::{ConfigName, RunMatrix};
use infs_bench::Ctx;
use std::path::Path;

/// Small but non-trivial slice of the 13×6 paper sweep (4 pairs, quick scale).
const NAMES: [&str; 2] = ["stencil1d", "mm/in"];
const CONFIGS: [ConfigName; 2] = [ConfigName::Base1, ConfigName::InfS];

fn fresh_ctx(tag: &str) -> Ctx {
    let dir = std::env::temp_dir().join(format!("infs-determinism-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Ctx {
        out_dir: dir,
        ..Ctx::new(true)
    }
}

fn matrix_bytes(dir: &Path) -> Vec<u8> {
    std::fs::read(dir.join("matrix.json")).expect("matrix.json written")
}

#[test]
fn parallel_and_sequential_matrices_are_byte_identical() {
    let seq = fresh_ctx("seq");
    let par = fresh_ctx("par");
    let m_seq = RunMatrix::run_subset(&seq, &NAMES, &CONFIGS, false).unwrap();
    let m_par = RunMatrix::run_subset(&par, &NAMES, &CONFIGS, true).unwrap();
    assert_eq!(m_seq.entries.len(), NAMES.len() * CONFIGS.len());
    assert_eq!(
        m_seq.entries.keys().collect::<Vec<_>>(),
        m_par.entries.keys().collect::<Vec<_>>()
    );
    assert_eq!(
        matrix_bytes(&seq.out_dir),
        matrix_bytes(&par.out_dir),
        "parallel sweep must serialize to the exact bytes of the sequential sweep"
    );
    let _ = std::fs::remove_dir_all(&seq.out_dir);
    let _ = std::fs::remove_dir_all(&par.out_dir);
}

#[test]
fn partial_matrix_is_resumed_not_recomputed() {
    let ctx = fresh_ctx("resume");
    let full = RunMatrix::run_subset(&ctx, &NAMES, &CONFIGS, true).unwrap();

    // Poison one cached entry with a sentinel cycle count and drop another:
    // a resumed run must keep the sentinel (cached pairs are not re-simulated)
    // and re-simulate only the missing pair.
    let path = ctx.out_dir.join("matrix.json");
    let mut m: RunMatrix = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let keys: Vec<String> = m.entries.keys().cloned().collect();
    let poisoned = keys[0].clone();
    let dropped = keys[1].clone();
    m.entries.get_mut(&poisoned).unwrap().stats.cycles = 424_242;
    m.entries.remove(&dropped);
    std::fs::write(&path, serde_json::to_string(&m).unwrap()).unwrap();

    let resumed = RunMatrix::run_subset(&ctx, &NAMES, &CONFIGS, true).unwrap();
    assert_eq!(resumed.entries.len(), full.entries.len());
    assert_eq!(
        resumed.entries[&poisoned].stats.cycles, 424_242,
        "cached entry was re-simulated instead of reused"
    );
    assert_eq!(
        resumed.entries[&dropped].stats.cycles, full.entries[&dropped].stats.cycles,
        "missing pair must be re-simulated to its deterministic result"
    );
    let _ = std::fs::remove_dir_all(&ctx.out_dir);
}

#[test]
fn scale_mismatch_invalidates_the_cache() {
    let ctx = fresh_ctx("scale");
    RunMatrix::run_subset(&ctx, &NAMES[..1], &CONFIGS[..1], true).unwrap();
    // Rewrite the cache as if it came from a paper-scale run; a quick-scale
    // sweep must ignore it and simulate from scratch.
    let path = ctx.out_dir.join("matrix.json");
    let mut m: RunMatrix = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    m.scale = "paper".to_string();
    let key = m.entries.keys().next().unwrap().clone();
    m.entries.get_mut(&key).unwrap().stats.cycles = 777;
    std::fs::write(&path, serde_json::to_string(&m).unwrap()).unwrap();

    let fresh = RunMatrix::run_subset(&ctx, &NAMES[..1], &CONFIGS[..1], true).unwrap();
    assert_eq!(fresh.scale, "test");
    assert_ne!(fresh.entries[&key].stats.cycles, 777);
    let _ = std::fs::remove_dir_all(&ctx.out_dir);
}

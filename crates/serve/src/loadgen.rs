//! A deterministic open-loop load generator for the serve layer
//! (`DESIGN.md` §14).
//!
//! Open-loop means requests are *scheduled*, not paced by responses: every
//! request has a target send instant fixed before the clock starts
//! (`i / rate`), and writers sleep until that instant regardless of how the
//! server is doing. A server that falls behind therefore accumulates queue —
//! exactly the regime that exposes tail latency and makes request batching
//! pay — where a closed-loop client would politely slow down and hide it
//! (coordinated omission).
//!
//! Every choice — tenant, kernel, variant, payload — derives from
//! [`mix64`] of the seed and the request index, so two runs with the same
//! [`LoadgenConfig`] issue byte-identical request streams. The variant count
//! bounds how many *distinct* execute bodies circulate: concurrent requests
//! that land on the same variant are batchable by the server's coalescer,
//! so `variants` is the knob that trades cache-hit/batch rate against
//! working-set size.

use crate::protocol::{
    ArrayPayload, CompileRequest, ExecuteRequest, Request, RequestBody, Response, WireMode,
};
use infs_faults::mix64;
use infs_frontend::Kernel;
use infs_shard::Histogram;
use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Shape of one generated load run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Target arrival rate, requests per second, across all connections.
    pub rate_rps: f64,
    /// Length of the timed window.
    pub duration_ms: u64,
    /// Concurrent pipelined connections (requests round-robin over them).
    pub connections: usize,
    /// Distinct tenants in the mix (`t0` … `t{n-1}`); tenant choice drives
    /// shard routing when the target is a cluster.
    pub tenants: usize,
    /// Master seed: same seed + same config ⇒ same request stream.
    pub seed: u64,
    /// Element count of the demo kernels' arrays.
    pub array_len: u64,
    /// Distinct parameter/payload variants per kernel: lower ⇒ more
    /// identical in-flight bodies ⇒ more batching and cache hits.
    pub variants: u64,
    /// Per-request deadline forwarded to the server.
    pub deadline_ms: Option<u64>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            rate_rps: 200.0,
            duration_ms: 2_000,
            connections: 8,
            tenants: 8,
            seed: 0x1057_dead_beef,
            array_len: 256,
            variants: 4,
            deadline_ms: Some(10_000),
        }
    }
}

/// What one run observed, client-side.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests written to the wire.
    pub sent: u64,
    /// Successful responses.
    pub ok: u64,
    /// Typed failures, by error kind (`backpressure`, `timeout`, …).
    pub errors: BTreeMap<String, u64>,
    /// Requests that never got a response before the read timeout.
    pub lost: u64,
    /// Wall time of the timed window, send of first to last response.
    pub elapsed_ms: u64,
    /// Completed responses (ok + typed failures) per second.
    pub achieved_rps: f64,
    /// End-to-end request latency in microseconds.
    pub latency: Histogram,
    /// Responses that report having ridden a batch (`stats.batched`).
    pub batched_responses: u64,
    /// Responses that report an artifact-cache hit.
    pub artifact_hits: u64,
}

impl LoadReport {
    /// Completed responses: everything the server answered.
    pub fn completed(&self) -> u64 {
        self.ok + self.errors.values().sum::<u64>()
    }
}

/// The three demo kernels the generator cycles through.
fn kernel_classes(n: u64) -> Vec<(&'static str, Kernel)> {
    vec![
        ("scale", crate::demo::scale(n)),
        ("vec_add", crate::demo::vec_add(n)),
        ("stencil", crate::demo::stencil(n)),
    ]
}

/// Deterministic payload for one (class, variant) — identical across every
/// request that rolls the same variant, so those requests are batchable.
fn payload(class: usize, variant: u64, len: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let bits = mix64(variant + 1, class as u64, i);
            // Small, well-conditioned values: index-scaled fractions.
            ((bits % 1000) as f32) / 500.0 - 1.0
        })
        .collect()
}

fn execute_body(class: usize, name: &str, artifact: &str, variant: u64, len: u64) -> RequestBody {
    let p0 = 1.0 + variant as f32 * 0.5;
    let (params, inputs, outputs) = match name {
        "scale" => (
            vec![p0],
            vec![ArrayPayload {
                array: 0,
                data: payload(class, variant, len),
            }],
            vec![0],
        ),
        "vec_add" => (
            vec![],
            vec![
                ArrayPayload {
                    array: 0,
                    data: payload(class, variant, len),
                },
                ArrayPayload {
                    array: 1,
                    data: payload(class, variant + 17, len),
                },
            ],
            vec![2],
        ),
        _ => (
            vec![p0],
            vec![ArrayPayload {
                array: 0,
                data: payload(class, variant, len),
            }],
            vec![1],
        ),
    };
    RequestBody::Execute(ExecuteRequest {
        artifact: Some(artifact.to_string()),
        binary: None,
        region: name.to_string(),
        syms: vec![],
        params,
        mode: WireMode::InfS,
        inputs,
        outputs,
    })
}

fn io_err(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(ErrorKind::InvalidData, msg.into())
}

/// Round-trip one request on a dedicated warmup connection.
fn call_once(stream: &mut TcpStream, request: &Request) -> std::io::Result<Response> {
    let line = serde_json::to_string(request).map_err(|e| io_err(e.to_string()))?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut reply = String::new();
    if reader.read_line(&mut reply)? == 0 {
        return Err(std::io::Error::new(ErrorKind::UnexpectedEof, "warmup EOF"));
    }
    serde_json::from_str(reply.trim_end()).map_err(|e| io_err(format!("bad response: {e}")))
}

/// Pre-compile every demo kernel for every tenant so the timed window
/// measures serving, not first-touch compilation, and so each shard of a
/// cluster holds the artifacts its tenants will reference. Returns the
/// (content-addressed, hence shard-independent) artifact id per class.
fn warmup(addr: &str, cfg: &LoadgenConfig) -> std::io::Result<Vec<(&'static str, String)>> {
    let classes = kernel_classes(cfg.array_len);
    let mut stream = TcpStream::connect(addr)?;
    let mut ids: Vec<(&'static str, String)> = Vec::new();
    let mut id = 1u64;
    for t in 0..cfg.tenants.max(1) {
        for (name, kernel) in &classes {
            let r = call_once(
                &mut stream,
                &Request {
                    id,
                    tenant: format!("t{t}"),
                    deadline_ms: None,
                    body: RequestBody::Compile(CompileRequest {
                        kernel: kernel.clone(),
                        representative_syms: vec![],
                        optimize: true,
                    }),
                },
            )?;
            id += 1;
            if !r.ok {
                return Err(io_err(format!(
                    "warmup compile {name} failed: {:?}",
                    r.error
                )));
            }
            if t == 0 {
                ids.push((
                    name,
                    r.artifact
                        .ok_or_else(|| io_err("compile response without artifact id"))?,
                ));
            }
        }
    }
    Ok(ids)
}

struct Planned {
    id: u64,
    at: Duration,
    line: Vec<u8>,
}

/// What one connection's reader accumulated.
#[derive(Default)]
struct ConnTally {
    ok: u64,
    errors: BTreeMap<String, u64>,
    lost: u64,
    batched: u64,
    artifact_hits: u64,
    latency: Histogram,
}

/// Run one open-loop load window against `addr`. Blocks until every
/// response arrived or the post-window read timeout expires.
///
/// # Errors
///
/// Connection or warmup failures; mid-run socket errors surface as `lost`
/// requests in the report instead.
pub fn run(addr: impl ToSocketAddrs, cfg: &LoadgenConfig) -> std::io::Result<LoadReport> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io_err("unresolvable address"))?
        .to_string();
    let artifacts = warmup(&addr, cfg)?;
    let conns = cfg.connections.max(1);
    let total = ((cfg.rate_rps * cfg.duration_ms as f64) / 1000.0).round() as u64;
    let total = total.max(1);

    // Plan the whole window up front: serialization stays off the clock.
    let mut plans: Vec<Vec<Planned>> = (0..conns).map(|_| Vec::new()).collect();
    for i in 0..total {
        let tenant = mix64(cfg.seed, 1, i) % cfg.tenants.max(1) as u64;
        let class = (mix64(cfg.seed, 2, i) % artifacts.len() as u64) as usize;
        let variant = mix64(cfg.seed, 3, i) % cfg.variants.max(1);
        let (name, artifact) = &artifacts[class];
        let request = Request {
            id: i + 1,
            tenant: format!("t{tenant}"),
            deadline_ms: cfg.deadline_ms,
            body: execute_body(class, name, artifact, variant, cfg.array_len),
        };
        let mut line = serde_json::to_string(&request)
            .map_err(|e| io_err(e.to_string()))?
            .into_bytes();
        line.push(b'\n');
        plans[(i % conns as u64) as usize].push(Planned {
            id: i + 1,
            at: Duration::from_secs_f64(i as f64 / cfg.rate_rps.max(1.0)),
            line,
        });
    }

    let started = Instant::now();
    let tallies: Vec<ConnTally> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for plan in plans {
            let addr = addr.clone();
            handles.push(s.spawn(move || drive_connection(&addr, plan, started)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("conn thread"))
            .collect()
    });
    let elapsed = started.elapsed();

    let mut report = LoadReport {
        sent: total,
        ok: 0,
        errors: BTreeMap::new(),
        lost: 0,
        elapsed_ms: elapsed.as_millis() as u64,
        achieved_rps: 0.0,
        latency: Histogram::new(),
        batched_responses: 0,
        artifact_hits: 0,
    };
    for t in tallies {
        report.ok += t.ok;
        report.lost += t.lost;
        report.batched_responses += t.batched;
        report.artifact_hits += t.artifact_hits;
        report.latency.merge(&t.latency);
        for (kind, n) in t.errors {
            *report.errors.entry(kind).or_insert(0) += n;
        }
    }
    report.achieved_rps = report.completed() as f64 / elapsed.as_secs_f64().max(1e-9);
    Ok(report)
}

/// One connection: a writer thread pacing the schedule, this thread reading
/// responses until all sent requests are answered (or time out).
fn drive_connection(addr: &str, plan: Vec<Planned>, started: Instant) -> ConnTally {
    let mut tally = ConnTally::default();
    let expected = plan.len() as u64;
    let Ok(stream) = TcpStream::connect(addr) else {
        tally.lost = expected;
        return tally;
    };
    let _ = stream.set_nodelay(true);
    // Post-window grace: if a response hasn't arrived 10 s after the last
    // send, count it lost rather than hanging the run.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let sends: Arc<Mutex<HashMap<u64, Instant>>> = Arc::new(Mutex::new(HashMap::new()));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            tally.lost = expected;
            return tally;
        }
    });

    std::thread::scope(|s| {
        let sends_w = Arc::clone(&sends);
        let mut writer = stream;
        s.spawn(move || {
            for p in plan {
                let target = started + p.at;
                let now = Instant::now();
                if target > now {
                    std::thread::sleep(target - now);
                }
                sends_w
                    .lock()
                    .expect("send map poisoned")
                    .insert(p.id, Instant::now());
                if writer.write_all(&p.line).is_err() {
                    return;
                }
            }
        });

        let mut received = 0u64;
        let mut line = String::new();
        while received < expected {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
            let Ok(response) = serde_json::from_str::<Response>(line.trim_end()) else {
                continue;
            };
            received += 1;
            let sent_at = sends
                .lock()
                .expect("send map poisoned")
                .remove(&response.id);
            if let Some(at) = sent_at {
                tally.latency.record(at.elapsed().as_micros() as u64);
            }
            if response.ok {
                tally.ok += 1;
                if response.stats.batched {
                    tally.batched += 1;
                }
                if response.stats.artifact_cache_hit {
                    tally.artifact_hits += 1;
                }
            } else {
                let kind = response
                    .error
                    .map_or_else(|| "unknown".to_string(), |e| e.kind);
                *tally.errors.entry(kind).or_insert(0) += 1;
            }
        }
        tally.lost += expected - received;
    });
    tally
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planning_is_deterministic_for_a_seed() {
        let cfg = LoadgenConfig::default();
        let a: Vec<u64> = (0..64).map(|i| mix64(cfg.seed, 1, i)).collect();
        let b: Vec<u64> = (0..64).map(|i| mix64(cfg.seed, 1, i)).collect();
        assert_eq!(a, b);
        // Payloads are pure in (class, variant): batchable bodies are
        // byte-identical.
        assert_eq!(payload(0, 3, 64), payload(0, 3, 64));
        assert_ne!(payload(0, 3, 64), payload(0, 4, 64));
    }

    #[test]
    fn variant_bound_caps_distinct_bodies() {
        let cfg = LoadgenConfig {
            variants: 2,
            ..LoadgenConfig::default()
        };
        let distinct: std::collections::HashSet<(u64, u64)> = (0..256)
            .map(|i| {
                (
                    mix64(cfg.seed, 2, i) % 3,
                    mix64(cfg.seed, 3, i) % cfg.variants,
                )
            })
            .collect();
        assert!(distinct.len() <= 6, "3 classes × 2 variants");
        assert!(distinct.len() >= 4, "mix should actually spread");
    }
}

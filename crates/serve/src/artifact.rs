//! The content-addressed artifact cache: compiled fat binaries keyed by a
//! stable 64-bit content hash, shared by every tenant. A kernel compiled once
//! (for a given symbol binding × geometry set × optimizer setting) is an
//! artifact-cache hit for every subsequent identical request, from any tenant.

use infs_isa::FatBinary;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Entry {
    binary: Arc<FatBinary>,
    last_hit: u64,
    /// FNV-1a content hash recorded at insert time and re-verified on every
    /// load — a corrupted entry must read as a miss, never as a binary
    /// (`DESIGN.md` §10). `None` when the binary was unhashable at insert
    /// (such an entry never verifies and is dropped on first load).
    checksum: Option<u64>,
}

/// A bounded cache of compiled artifacts. Eviction drops the
/// least-recently-hit entry — the same policy as the bounded
/// [`infs_runtime::JitCache`], one level up the stack (binaries instead of
/// command streams).
pub struct ArtifactCache {
    entries: Mutex<HashMap<u64, Entry>>,
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    corruptions: AtomicU64,
}

impl ArtifactCache {
    /// A cache holding at most `capacity` artifacts (at least one).
    pub fn new(capacity: usize) -> Self {
        ArtifactCache {
            entries: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            corruptions: AtomicU64::new(0),
        }
    }

    /// The entry cap.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached artifacts.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up an artifact by id, counting a hit or miss.
    ///
    /// The load path re-hashes the cached binary and compares it against
    /// the checksum recorded at insert time. A mismatch means the cached
    /// bytes rotted (or a fault plan corrupted them): the entry is evicted
    /// and the lookup reads as a **miss**, so the caller recompiles instead
    /// of serving a poisoned binary.
    pub fn get(&self, id: u64) -> Option<Arc<FatBinary>> {
        let mut entries = self.entries.lock();
        match entries.get_mut(&id) {
            Some(e) => {
                let verified = e.checksum.is_some() && e.binary.content_hash().ok() == e.checksum;
                if verified {
                    e.last_hit = self.clock.fetch_add(1, Ordering::Relaxed);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Some(e.binary.clone())
                } else {
                    entries.remove(&id);
                    self.corruptions.fetch_add(1, Ordering::Relaxed);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    infs_trace::counter!("serve.artifact_corruptions", 1u64);
                    None
                }
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// True if the artifact is cached, **without** counting a hit or miss
    /// (used to register inline binaries idempotently).
    pub fn contains(&self, id: u64) -> bool {
        self.entries.lock().contains_key(&id)
    }

    /// Inserts an artifact, evicting the least-recently-hit entry when full.
    /// Returns the binary (already cached one if a concurrent insert won).
    pub fn insert(&self, id: u64, binary: Arc<FatBinary>) -> Arc<FatBinary> {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock();
        if let Some(existing) = entries.get(&id) {
            return existing.binary.clone();
        }
        if entries.len() >= self.capacity {
            if let Some(&victim) = entries
                .iter()
                .min_by_key(|(_, e)| e.last_hit)
                .map(|(k, _)| k)
            {
                entries.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        entries.insert(
            id,
            Entry {
                checksum: binary.content_hash().ok(),
                binary: binary.clone(),
                last_hit: stamp,
            },
        );
        binary
    }

    /// Fault injection: flip a bit of the stored checksum for `id`, so the
    /// next load detects corruption and treats it as a miss. Returns whether
    /// the id was cached.
    pub fn corrupt(&self, id: u64) -> bool {
        let mut entries = self.entries.lock();
        match entries.get_mut(&id) {
            Some(e) => {
                e.checksum = e.checksum.map(|c| c ^ 1 << 63).or(Some(0));
                true
            }
            None => false,
        }
    }

    /// Entries whose checksum failed verification on load (each was evicted
    /// and the lookup counted as a miss).
    pub fn corruptions(&self) -> u64 {
        self.corruptions.load(Ordering::Relaxed)
    }

    /// Lifetime (hits, misses, evictions).
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }
}

/// A bounded cache of compiled pipelines, keyed by the graph's content key
/// ([`infs_pipeline::PipelineGraph::content_key`]). The pipeline-level
/// analogue of [`ArtifactCache`]: a whole multi-kernel graph — every stage's
/// compiled region, the residency plan, and the negotiated cross-stage tile —
/// is one artifact, so a repeated graph skips compilation *and* planning.
///
/// No checksum layer: a [`CompiledPipeline`](infs_pipeline::CompiledPipeline)
/// has no canonical byte encoding to re-hash (unlike a fat binary), so the
/// corruption drill stays at the fat-binary and JIT caches below it.
pub struct PipelineCache {
    entries: Mutex<HashMap<u64, (Arc<infs_pipeline::CompiledPipeline>, u64)>>,
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PipelineCache {
    /// A cache holding at most `capacity` compiled graphs (at least one).
    pub fn new(capacity: usize) -> Self {
        PipelineCache {
            entries: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up a compiled graph, counting a hit or miss.
    pub fn get(&self, key: u64) -> Option<Arc<infs_pipeline::CompiledPipeline>> {
        let mut entries = self.entries.lock();
        match entries.get_mut(&key) {
            Some((compiled, last_hit)) => {
                *last_hit = self.clock.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(compiled.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a compiled graph, evicting the least-recently-hit entry when
    /// full. Returns the cached value (an earlier concurrent insert wins).
    pub fn insert(
        &self,
        key: u64,
        compiled: Arc<infs_pipeline::CompiledPipeline>,
    ) -> Arc<infs_pipeline::CompiledPipeline> {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock();
        if let Some((existing, _)) = entries.get(&key) {
            return existing.clone();
        }
        if entries.len() >= self.capacity {
            if let Some(&victim) = entries
                .iter()
                .min_by_key(|(_, (_, last_hit))| *last_hit)
                .map(|(k, _)| k)
            {
                entries.remove(&victim);
            }
        }
        entries.insert(key, (compiled.clone(), stamp));
        compiled
    }

    /// Lifetime (hits, misses).
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// Renders an artifact id for the wire (16 hex digits).
pub fn format_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses a wire artifact id.
pub fn parse_id(s: &str) -> Option<u64> {
    if s.len() == 16 {
        u64::from_str_radix(s, 16).ok()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bin() -> Arc<FatBinary> {
        Arc::new(FatBinary::new())
    }

    #[test]
    fn capacity_holds_and_evicts_least_recently_hit() {
        let cache = ArtifactCache::new(2);
        cache.insert(1, bin());
        cache.insert(2, bin());
        assert!(cache.get(1).is_some()); // 1 is now the most recently hit
        cache.insert(3, bin()); // evicts 2
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(1));
        assert!(!cache.contains(2));
        assert!(cache.contains(3));
        let (hits, misses, evictions) = cache.stats();
        assert_eq!((hits, misses, evictions), (1, 0, 1));
    }

    #[test]
    fn insert_is_idempotent_per_id() {
        let cache = ArtifactCache::new(4);
        let first = cache.insert(7, bin());
        let second = cache.insert(7, bin());
        assert!(Arc::ptr_eq(&first, &second), "first insert wins");
        assert_eq!(cache.len(), 1);
    }

    /// The bugfix this cache needed: a corrupted entry must read as a miss
    /// (and get evicted), never as a usable binary.
    #[test]
    fn corrupted_entry_reads_as_a_miss_and_is_evicted() {
        let cache = ArtifactCache::new(4);
        cache.insert(1, bin());
        cache.insert(2, bin());
        assert!(cache.get(1).is_some());
        assert!(cache.corrupt(1));
        assert!(!cache.corrupt(99), "unknown id is not corruptible");

        // The corrupted entry verifies dirty: miss + eviction, not a hit.
        assert!(cache.get(1).is_none());
        assert_eq!(cache.corruptions(), 1);
        assert!(!cache.contains(1), "corrupted entry must be evicted");
        let (hits, misses, evictions) = cache.stats();
        assert_eq!((hits, misses, evictions), (1, 1, 1));

        // The untouched entry still verifies clean.
        assert!(cache.get(2).is_some());
        // Re-inserting the corrupted id heals it.
        cache.insert(1, bin());
        assert!(cache.get(1).is_some());
        assert_eq!(cache.corruptions(), 1);
    }

    #[test]
    fn wire_ids_round_trip() {
        for id in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(parse_id(&format_id(id)), Some(id));
        }
        assert_eq!(parse_id("xyz"), None);
        assert_eq!(parse_id(""), None);
        assert_eq!(parse_id("00000000000000001"), None, "length must be 16");
    }
}

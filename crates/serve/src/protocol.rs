//! The wire protocol: newline-delimited JSON, one [`Request`] per line in,
//! one [`Response`] per line out.
//!
//! The payload format deliberately reuses the repo's existing serialized
//! artifacts — kernels and fat binaries travel as the same serde encodings
//! `FatBinary::to_json`/`from_json` already produce — so the wire format is
//! the fat-binary format plus a thin envelope, and the round-trip property
//! test on the binary encoding covers the protocol's heaviest payload.

use infs_frontend::Kernel;
use infs_sim::{ExecMode, Executed};
use serde::{Deserialize, Serialize};

/// One client request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Tenant name (observability/accounting; requests are isolated
    /// regardless — every execute runs on freshly reset functional memory).
    pub tenant: String,
    /// Per-request deadline in milliseconds from admission; `None` uses the
    /// server default.
    pub deadline_ms: Option<u64>,
    /// What to do.
    pub body: RequestBody,
}

/// The request kinds the server understands.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum RequestBody {
    /// Compile a kernel into a (cached) fat-binary artifact.
    Compile(CompileRequest),
    /// Execute a region of a compiled artifact.
    Execute(ExecuteRequest),
    /// Compile and execute a whole multi-kernel pipeline graph
    /// (`infs_pipeline::PipelineGraph` JSON) under the streaming scheduler.
    Pipeline(PipelineRequest),
    /// Liveness probe.
    Ping,
    /// Dump server-wide observability counters (cache hit rates, queue
    /// depth, worker count) as a [`MetricsReport`].
    Metrics,
    /// Begin graceful shutdown: admission closes, in-flight and queued
    /// requests complete, workers exit.
    Shutdown,
    /// Report service health: bank health, worker-fault and cache-corruption
    /// counters, queue pressure — as a [`HealthReport`]. The operations
    /// probe (see the README runbook).
    Health,
}

/// Compile a kernel (the repo's loop-nest IR, serialized with serde — the
/// "plain C" artifact) into a fat binary. Identical requests are served from
/// the content-addressed artifact cache without recompiling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompileRequest {
    /// The kernel to compile.
    pub kernel: Kernel,
    /// Representative symbol binding used to probe tensorizability and
    /// scheduling (typical input sizes).
    pub representative_syms: Vec<i64>,
    /// Run the e-graph optimizer.
    pub optimize: bool,
}

/// Execute one region of a compiled artifact on a session machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecuteRequest {
    /// Artifact id (as returned by a compile response). Exactly one of
    /// `artifact` / `binary` must be set.
    pub artifact: Option<String>,
    /// Inline fat binary (`FatBinary::to_json` output) for clients that
    /// compiled elsewhere; it is registered in the artifact cache under its
    /// content hash.
    pub binary: Option<String>,
    /// Region (kernel) name to enter.
    pub region: String,
    /// Symbol values for instantiation (the `inf_cfg` moment).
    pub syms: Vec<i64>,
    /// Runtime scalar parameters.
    pub params: Vec<f32>,
    /// Execution mode.
    pub mode: WireMode,
    /// Input arrays to write before running.
    pub inputs: Vec<ArrayPayload>,
    /// Array ids whose contents to return after running.
    pub outputs: Vec<u32>,
}

/// Compile-and-run a multi-kernel pipeline graph in one request.
///
/// The graph travels as the JSON `infs_pipeline::PipelineGraph::to_json`
/// produces and is content-addressed as **one** artifact: identical graphs
/// (same tensors, kernels, symbol bindings, and stage order) hit the
/// pipeline cache and skip compilation and residency planning entirely.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineRequest {
    /// The serialized pipeline graph (`PipelineGraph::to_json` output).
    pub graph: String,
    /// Execution mode.
    pub mode: WireMode,
    /// `true` runs the fused streaming schedule (resident intermediates,
    /// overlapped prefetch); `false` runs the per-kernel round-trip baseline.
    pub fused: bool,
    /// Input tensors to write before the first stage.
    pub inputs: Vec<ArrayPayload>,
    /// Tensor ids whose contents to return after the last stage.
    pub outputs: Vec<u32>,
}

/// One array's contents on the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArrayPayload {
    /// Array id in the binary's array table.
    pub array: u32,
    /// Element values (row-major).
    pub data: Vec<f32>,
}

/// Wire-friendly execution mode (mirrors [`ExecMode`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireMode {
    /// 1-thread multicore baseline.
    Base1,
    /// 64-thread AVX-512-class baseline.
    Base,
    /// Near-stream computing at the L3 banks.
    NearL3,
    /// In-memory only.
    InL3,
    /// Fused in-/near-memory (the paper's Inf-S).
    InfS,
    /// Inf-S with precompiled commands (no JIT charge).
    InfSNoJit,
}

impl WireMode {
    /// The simulator mode this selects.
    pub fn exec_mode(self) -> ExecMode {
        match self {
            WireMode::Base1 => ExecMode::Base { threads: 1 },
            WireMode::Base => ExecMode::Base { threads: 64 },
            WireMode::NearL3 => ExecMode::NearL3,
            WireMode::InL3 => ExecMode::InL3,
            WireMode::InfS => ExecMode::InfS,
            WireMode::InfSNoJit => ExecMode::InfSNoJit,
        }
    }

    /// Stable index for session-pool keying.
    pub(crate) fn index(self) -> u8 {
        match self {
            WireMode::Base1 => 0,
            WireMode::Base => 1,
            WireMode::NearL3 => 2,
            WireMode::InL3 => 3,
            WireMode::InfS => 4,
            WireMode::InfSNoJit => 5,
        }
    }
}

/// One server response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Response {
    /// Echo of the request id.
    pub id: u64,
    /// True when the request succeeded.
    pub ok: bool,
    /// Failure details when `ok` is false.
    pub error: Option<WireError>,
    /// Artifact id: the compile result, or the artifact an execute resolved.
    pub artifact: Option<String>,
    /// Requested output arrays (execute only).
    pub outputs: Vec<ArrayPayload>,
    /// Named scalar outputs of the region (execute only).
    pub scalars: Vec<ScalarOut>,
    /// Per-request observability; present on every response, including
    /// errors, so the serving layer is measurable from day one.
    pub stats: ResponseStats,
    /// Server-wide counters (present on `Metrics` responses only).
    pub metrics: Option<MetricsReport>,
    /// Service health (present on `Health` responses only).
    pub health: Option<HealthReport>,
}

/// Service health, returned by the `Health` verb (`DESIGN.md` §10).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HealthReport {
    /// `"ok"` (fully healthy), `"degraded"` (dead banks, worker faults or
    /// cache corruption observed), or `"draining"` (shutting down).
    pub status: String,
    /// Healthy L3 banks on the configured machine.
    pub healthy_banks: u32,
    /// Total L3 banks on the configured machine.
    pub total_banks: u32,
    /// Worker panics isolated by `catch_unwind` since start.
    pub worker_faults: u64,
    /// Artifact-cache entries whose checksum failed verification.
    pub artifact_corruptions: u64,
    /// JIT-cache entries whose integrity digest failed verification.
    pub jit_corruptions: u64,
    /// Requests currently queued.
    pub queue_depth: usize,
    /// Admission queue capacity.
    pub queue_capacity: usize,
    /// Worker threads serving requests.
    pub workers: usize,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Per-shard health when the responder is a shard cluster; empty for a
    /// single server.
    pub shards: Vec<ShardHealth>,
}

impl HealthReport {
    /// Status string for a fully healthy service.
    pub const OK: &'static str = "ok";
    /// Status string when faults have been observed but the service runs.
    pub const DEGRADED: &'static str = "degraded";
    /// Status string once shutdown has begun.
    pub const DRAINING: &'static str = "draining";
    /// Status string for a shard that is down (killed, or dead from the
    /// cluster's fault plan); its tenants are served by ring neighbors.
    pub const DEAD: &'static str = "dead";
}

/// One shard's state inside a cluster [`HealthReport`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ShardHealth {
    /// Shard index on the consistent-hash ring.
    pub shard: u32,
    /// `"ok"`, `"degraded"`, `"draining"`, or `"dead"`.
    pub status: String,
    /// Healthy L3 banks on this shard's machine.
    pub healthy_banks: u32,
    /// Total L3 banks on this shard's machine.
    pub total_banks: u32,
    /// Worker panics isolated on this shard since start.
    pub worker_faults: u64,
    /// Requests queued on this shard right now.
    pub queue_depth: usize,
    /// Requests the router has sent to this shard since start.
    pub requests: u64,
}

/// Server-wide observability counters, returned by the `Metrics` verb.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Requests admitted and served since start.
    pub served: u64,
    /// Requests rejected at admission (backpressure / shutdown).
    pub rejected: u64,
    /// Requests currently queued.
    pub queue_depth: usize,
    /// Admission queue capacity.
    pub queue_capacity: usize,
    /// Artifact-cache hits since start.
    pub artifact_hits: u64,
    /// Artifact-cache misses (compiles) since start.
    pub artifact_misses: u64,
    /// Artifact-cache evictions since start.
    pub artifact_evictions: u64,
    /// JIT memoization cache hits since start (all sessions share one cache).
    /// Includes template (copy-and-patch) hits.
    pub jit_hits: u64,
    /// JIT memoization cache misses since start.
    pub jit_misses: u64,
    /// The subset of `jit_hits` served by patching a cached relocatable
    /// template rather than returning an exact cached stream.
    pub jit_template_hits: u64,
    /// JIT cache evictions since start.
    pub jit_evictions: u64,
    /// Pipeline-cache hits since start (whole graphs served without
    /// recompiling or replanning).
    pub pipeline_hits: u64,
    /// Pipeline-cache misses (graph compilations) since start.
    pub pipeline_misses: u64,
    /// Batches closed: executions that carried a whole coalesced batch.
    pub batch_executions: u64,
    /// Requests that joined an open batch and skipped execution entirely.
    pub batch_joined: u64,
    /// Largest single-batch occupancy observed (leader + joined waiters).
    pub batch_max_occupancy: u64,
    /// Autotuner: requests routed through an explorer variant
    /// (`DESIGN.md` §15; all four `tune_*` counters are 0 when tuning is
    /// disabled).
    pub tune_explored: u64,
    /// Autotuner: requests served by the incumbent variant.
    pub tune_exploited: u64,
    /// Autotuner: variants promoted to incumbent.
    pub tune_promotions: u64,
    /// Autotuner: fault-driven demotions back to the baseline heuristics.
    pub tune_demotions: u64,
    /// Autotuner: artifacts with a live tune table.
    pub tune_artifacts: usize,
    /// Worker threads serving requests.
    pub workers: usize,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
}

impl MetricsReport {
    /// Hit fraction of a hit/miss pair (`None` when there were no lookups).
    pub fn hit_rate(hits: u64, misses: u64) -> Option<f64> {
        let total = hits + misses;
        (total > 0).then(|| hits as f64 / total as f64)
    }

    /// Fold `other` into `self`: counters sum, `queue_depth`/`workers`
    /// aggregate, gauges take the max. The shard cluster's `Metrics` verb
    /// reports the cluster through this.
    pub fn merge(&mut self, other: &MetricsReport) {
        self.served += other.served;
        self.rejected += other.rejected;
        self.queue_depth += other.queue_depth;
        self.queue_capacity += other.queue_capacity;
        self.artifact_hits += other.artifact_hits;
        self.artifact_misses += other.artifact_misses;
        self.artifact_evictions += other.artifact_evictions;
        self.jit_hits += other.jit_hits;
        self.jit_misses += other.jit_misses;
        self.jit_template_hits += other.jit_template_hits;
        self.jit_evictions += other.jit_evictions;
        self.pipeline_hits += other.pipeline_hits;
        self.pipeline_misses += other.pipeline_misses;
        self.batch_executions += other.batch_executions;
        self.batch_joined += other.batch_joined;
        self.batch_max_occupancy = self.batch_max_occupancy.max(other.batch_max_occupancy);
        self.tune_explored += other.tune_explored;
        self.tune_exploited += other.tune_exploited;
        self.tune_promotions += other.tune_promotions;
        self.tune_demotions += other.tune_demotions;
        self.tune_artifacts += other.tune_artifacts;
        self.workers += other.workers;
        self.uptime_ms = self.uptime_ms.max(other.uptime_ms);
    }
}

/// One named scalar result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalarOut {
    /// Scalar name.
    pub name: String,
    /// Value.
    pub value: f32,
}

/// A client-visible failure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireError {
    /// Machine-readable kind (see the `kind` constants on [`WireError`]).
    pub kind: String,
    /// Human-readable description.
    pub message: String,
    /// For `backpressure` rejections: when to retry.
    pub retry_after_ms: Option<u64>,
}

impl WireError {
    /// Admission queue full; retry after `retry_after_ms`.
    pub const BACKPRESSURE: &'static str = "backpressure";
    /// The request's deadline expired (in queue or between pipeline stages).
    pub const TIMEOUT: &'static str = "timeout";
    /// The server is shutting down and no longer admits requests.
    pub const SHUTTING_DOWN: &'static str = "shutting-down";
    /// Compilation failed (front end, optimizer, or backend).
    pub const COMPILE: &'static str = "compile";
    /// Execute referenced an artifact id the cache does not hold.
    pub const UNKNOWN_ARTIFACT: &'static str = "unknown-artifact";
    /// Execute named a region the artifact does not contain.
    pub const UNKNOWN_REGION: &'static str = "unknown-region";
    /// Malformed request (bad JSON, bad array id / length, missing artifact).
    pub const BAD_REQUEST: &'static str = "bad-request";
    /// Execution failed inside the simulator.
    pub const EXECUTION: &'static str = "execution";
    /// The worker thread handling the request panicked; the panic was
    /// isolated and the pool survived. Safe to retry.
    pub const WORKER_FAULT: &'static str = "worker-fault";
    /// No shard on the ring can take the request (every shard is down or
    /// draining). Safe to retry once shards recover.
    pub const SHARD_DOWN: &'static str = "shard-down";

    /// A new error of `kind`.
    pub fn new(kind: &str, message: impl Into<String>) -> Self {
        WireError {
            kind: kind.to_string(),
            message: message.into(),
            retry_after_ms: None,
        }
    }
}

/// Per-request statistics block.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ResponseStats {
    /// Wall time spent queued before a worker picked the request up (µs).
    pub queue_wait_us: u64,
    /// Wall time spent being served (µs).
    pub service_us: u64,
    /// Wall time inside the compiler, zero on artifact-cache hits (µs).
    pub compile_us: u64,
    /// Wall time inside the simulator executing the region (µs); zero for
    /// non-execute requests.
    pub execute_us: u64,
    /// End-to-end wall time from admission to response (µs):
    /// `queue_wait_us + service_us`, so `queue_wait_us + compile_us +
    /// execute_us <= total_us` always holds.
    pub total_us: u64,
    /// Whether the artifact cache already held the compiled binary.
    pub artifact_cache_hit: bool,
    /// For in-memory execution, whether the shared JIT memoization cache
    /// already held the lowered commands (template hits count as hits).
    pub jit_cache_hit: Option<bool>,
    /// Three-way JIT resolution for in-memory execution: `"concrete"`,
    /// `"template"` or `"miss"`.
    pub jit_outcome: Option<String>,
    /// Simulated cycles of the executed region.
    pub cycles: u64,
    /// Where the region ran: `"core"`, `"near-memory"` or `"in-memory"`.
    pub executed: Option<String>,
    /// Whether the compiled region has an in-memory (tDFG) version.
    pub tensorizable: Option<bool>,
    /// True when this response was served by joining another in-flight
    /// request's batch: no compile, no execution — `compile_us` is 0 and
    /// `execute_us` is the leader's (shared) execution time.
    pub batched: bool,
    /// Requests (leader + joined waiters) answered by the one execution
    /// this response came from; 1 for unbatched requests, 0 when batching
    /// does not apply (Ping/Metrics/Health/Shutdown).
    pub batch_size: u64,
    /// Autotuner variant label this request ran under (`"baseline"`,
    /// `"tile:4x64"`, `"tier:near-memory"`, …); `None` when tuning is off
    /// or does not apply to the request (`DESIGN.md` §15).
    pub tuned_variant: Option<String>,
    /// True when the autotuner routed this request through an explorer
    /// variant (sampled traffic) rather than the incumbent.
    pub tuned_explore: bool,
    /// Per-stage breakdown for pipeline requests (empty otherwise). The
    /// stage sums nest inside the top-level figures:
    /// `sum(stages[i].compile_us) <= compile_us` and
    /// `sum(stages[i].execute_us) <= execute_us`.
    pub stages: Vec<StageStats>,
}

/// One pipeline stage's slice of a [`ResponseStats`] block.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StageStats {
    /// Stage (kernel) name.
    pub name: String,
    /// Wall time compiling this stage, zero on pipeline-cache hits (µs).
    pub compile_us: u64,
    /// Wall time driving this stage on the simulator (µs).
    pub execute_us: u64,
    /// Simulated cycles of the stage's region.
    pub cycles: u64,
    /// Cycles stalled staging operands at stage entry (not hidden by a
    /// predecessor's prefetch).
    pub prepare_stall_cycles: u64,
    /// Prefetch cycles for the *next* stage hidden under this stage's
    /// execution.
    pub prefetch_hidden_cycles: u64,
    /// Where the stage ran: `"core"`, `"near-memory"` or `"in-memory"`.
    pub executed: String,
}

/// Display label for an [`Executed`] value.
pub fn executed_label(e: Executed) -> &'static str {
    match e {
        Executed::Core => "core",
        Executed::NearMemory => "near-memory",
        Executed::InMemory => "in-memory",
    }
}

impl Response {
    /// A failure response carrying `error` and whatever stats were measured.
    pub fn failure(id: u64, error: WireError, stats: ResponseStats) -> Self {
        Response {
            id,
            ok: false,
            error: Some(error),
            artifact: None,
            outputs: Vec::new(),
            scalars: Vec::new(),
            stats,
            metrics: None,
            health: None,
        }
    }

    /// A success scaffold (fields filled in by the handler).
    pub fn success(id: u64, stats: ResponseStats) -> Self {
        Response {
            id,
            ok: true,
            error: None,
            artifact: None,
            outputs: Vec::new(),
            scalars: Vec::new(),
            stats,
            metrics: None,
            health: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infs_frontend::{Idx, KernelBuilder, ScalarExpr};
    use infs_sdfg::DataType;

    fn request() -> Request {
        let mut k = KernelBuilder::new("scale", DataType::F32);
        let a = k.array("A", vec![16]);
        let i = k.parallel_loop("i", 0, 16);
        k.assign(
            a,
            vec![Idx::var(i)],
            ScalarExpr::mul(ScalarExpr::load(a, vec![Idx::var(i)]), ScalarExpr::Param(0)),
        );
        Request {
            id: 7,
            tenant: "t0".into(),
            deadline_ms: Some(500),
            body: RequestBody::Compile(CompileRequest {
                kernel: k.build().unwrap(),
                representative_syms: vec![],
                optimize: true,
            }),
        }
    }

    #[test]
    fn request_roundtrips_as_single_line_json() {
        let req = request();
        let line = serde_json::to_string(&req).unwrap();
        assert!(!line.contains('\n'), "wire frames must be single lines");
        let back: Request = serde_json::from_str(&line).unwrap();
        assert_eq!(back.id, 7);
        assert_eq!(back.tenant, "t0");
        assert_eq!(back.deadline_ms, Some(500));
        match back.body {
            RequestBody::Compile(c) => {
                assert!(c.optimize);
                assert_eq!(c.kernel.name(), "scale");
            }
            other => panic!("wrong body: {other:?}"),
        }
    }

    #[test]
    fn response_roundtrips_with_error_and_stats() {
        let mut err = WireError::new(WireError::BACKPRESSURE, "queue full");
        err.retry_after_ms = Some(25);
        let resp = Response::failure(3, err, ResponseStats::default());
        let line = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert!(!back.ok);
        let e = back.error.unwrap();
        assert_eq!(e.kind, WireError::BACKPRESSURE);
        assert_eq!(e.retry_after_ms, Some(25));
    }

    #[test]
    fn wire_modes_cover_exec_modes() {
        use infs_sim::ExecMode;
        assert_eq!(WireMode::Base1.exec_mode(), ExecMode::Base { threads: 1 });
        assert_eq!(WireMode::Base.exec_mode(), ExecMode::Base { threads: 64 });
        assert_eq!(WireMode::InfS.exec_mode(), ExecMode::InfS);
        // Indices are distinct (session-pool keying).
        let idx: std::collections::BTreeSet<u8> = [
            WireMode::Base1,
            WireMode::Base,
            WireMode::NearL3,
            WireMode::InL3,
            WireMode::InfS,
            WireMode::InfSNoJit,
        ]
        .iter()
        .map(|m| m.index())
        .collect();
        assert_eq!(idx.len(), 6);
    }

    #[test]
    fn executed_labels() {
        assert_eq!(executed_label(Executed::Core), "core");
        assert_eq!(executed_label(Executed::NearMemory), "near-memory");
        assert_eq!(executed_label(Executed::InMemory), "in-memory");
    }
}

//! Small well-known kernels shared by the integration tests, the throughput
//! benchmark, and the `infs-client smoke` command — so every face of the
//! service exercises the same workloads.
//!
//! Array ids are assigned in declaration order, so clients can rely on them:
//! `scale` uses array 0; `vec_add` uses arrays 0 (A), 1 (B) and 2 (C).

use infs_frontend::{Idx, Kernel, KernelBuilder, ScalarExpr};
use infs_pipeline::{PipelineBuilder, PipelineGraph};
use infs_sdfg::DataType;

/// `A[i] = A[i] * p0` over `n` elements — region name `"scale"`, array 0.
pub fn scale(n: u64) -> Kernel {
    let mut k = KernelBuilder::new("scale", DataType::F32);
    let a = k.array("A", vec![n]);
    let i = k.parallel_loop("i", 0, n as i64);
    k.assign(
        a,
        vec![Idx::var(i)],
        ScalarExpr::mul(ScalarExpr::load(a, vec![Idx::var(i)]), ScalarExpr::Param(0)),
    );
    k.build().expect("demo kernel is well-formed")
}

/// `C[i] = A[i] + B[i]` over `n` elements — region name `"vec_add"`,
/// arrays 0 (A), 1 (B), 2 (C).
pub fn vec_add(n: u64) -> Kernel {
    let mut k = KernelBuilder::new("vec_add", DataType::F32);
    let a = k.array("A", vec![n]);
    let b = k.array("B", vec![n]);
    let c = k.array("C", vec![n]);
    let i = k.parallel_loop("i", 0, n as i64);
    k.assign(
        c,
        vec![Idx::var(i)],
        ScalarExpr::add(
            ScalarExpr::load(a, vec![Idx::var(i)]),
            ScalarExpr::load(b, vec![Idx::var(i)]),
        ),
    );
    k.build().expect("demo kernel is well-formed")
}

/// 3-point stencil `B[i] = A[i-1] + A[i] + A[i+1]` over the interior of `n`
/// elements — region name `"stencil"`, arrays 0 (A), 1 (B).
pub fn stencil(n: u64) -> Kernel {
    let mut k = KernelBuilder::new("stencil", DataType::F32);
    let a = k.array("A", vec![n]);
    let b = k.array("B", vec![n]);
    let i = k.parallel_loop("i", 1, n as i64 - 1);
    k.assign(
        b,
        vec![Idx::var(i)],
        ScalarExpr::add(
            ScalarExpr::add(
                ScalarExpr::load(a, vec![Idx::var_plus(i, -1)]),
                ScalarExpr::load(a, vec![Idx::var(i)]),
            ),
            ScalarExpr::load(a, vec![Idx::var_plus(i, 1)]),
        ),
    );
    k.build().expect("demo kernel is well-formed")
}

/// `C[i][j] = A[i][j] + B[i][j] + A[i][j] + ...` — an elementwise matrix
/// update ladder of `chain` adds over a `d`×`d` table. Region name
/// `"mat_update"`, arrays 0 (A), 1 (B), 2 (C, the output).
///
/// Compiled with `optimize: false` this is the autotuner's bread and butter
/// (`DESIGN.md` §15): high ops-per-element at large element counts is where
/// the paper's Eq-2 heuristic overestimates the offload side (it models a
/// 16-lane scalar core, not the bank-parallel stream engines) and wrongly
/// keeps the region on the bitlines.
pub fn mat_update(d: u64, chain: u32) -> Kernel {
    let mut k = KernelBuilder::new("mat_update", DataType::F32);
    let a = k.array("A", vec![d, d]);
    let b = k.array("B", vec![d, d]);
    let c = k.array("C", vec![d, d]);
    let i = k.parallel_loop("i", 0, d as i64);
    let j = k.parallel_loop("j", 0, d as i64);
    let mut expr = ScalarExpr::load(a, vec![Idx::var(i), Idx::var(j)]);
    for step in 0..chain {
        let src = if step % 2 == 0 { b } else { a };
        expr = ScalarExpr::add(expr, ScalarExpr::load(src, vec![Idx::var(i), Idx::var(j)]));
    }
    k.assign(c, vec![Idx::var(i), Idx::var(j)], expr);
    k.build().expect("demo kernel is well-formed")
}

/// The same ladder with a multiply every fourth step — region name
/// `"mat_muladd"`, arrays 0 (A), 1 (B), 2 (C). The multiplies raise the
/// bit-serial latency, so the in-memory side of Eq-2 is costed more honestly
/// while the offload side stays overestimated: the widest tuner win in the
/// `figures tune` soak.
pub fn mat_muladd(d: u64, chain: u32) -> Kernel {
    let mut k = KernelBuilder::new("mat_muladd", DataType::F32);
    let a = k.array("A", vec![d, d]);
    let b = k.array("B", vec![d, d]);
    let c = k.array("C", vec![d, d]);
    let i = k.parallel_loop("i", 0, d as i64);
    let j = k.parallel_loop("j", 0, d as i64);
    let mut expr = ScalarExpr::load(a, vec![Idx::var(i), Idx::var(j)]);
    for step in 0..chain {
        let src = if step % 2 == 0 { b } else { a };
        let load = ScalarExpr::load(src, vec![Idx::var(i), Idx::var(j)]);
        expr = if step % 4 == 0 {
            ScalarExpr::mul(expr, load)
        } else {
            ScalarExpr::add(expr, load)
        };
    }
    k.assign(c, vec![Idx::var(i), Idx::var(j)], expr);
    k.build().expect("demo kernel is well-formed")
}

/// 5-point 2-D stencil `B[i][j] = A[i-1][j] + A[i+1][j] + A[i][j-1] +
/// A[i][j+1] + A[i][j]` over the interior of a `d`×`d` table — region name
/// `"mat_stencil"`, arrays 0 (A), 1 (B). At moderate sizes Eq-2 places it
/// correctly, so it doubles as the tuner's no-regression control workload.
pub fn mat_stencil(d: u64) -> Kernel {
    let mut k = KernelBuilder::new("mat_stencil", DataType::F32);
    let a = k.array("A", vec![d, d]);
    let b = k.array("B", vec![d, d]);
    let i = k.parallel_loop("i", 1, d as i64 - 1);
    let j = k.parallel_loop("j", 1, d as i64 - 1);
    let sum = ScalarExpr::add(
        ScalarExpr::add(
            ScalarExpr::load(a, vec![Idx::var_plus(i, -1), Idx::var(j)]),
            ScalarExpr::load(a, vec![Idx::var_plus(i, 1), Idx::var(j)]),
        ),
        ScalarExpr::add(
            ScalarExpr::load(a, vec![Idx::var(i), Idx::var_plus(j, -1)]),
            ScalarExpr::add(
                ScalarExpr::load(a, vec![Idx::var(i), Idx::var_plus(j, 1)]),
                ScalarExpr::load(a, vec![Idx::var(i), Idx::var(j)]),
            ),
        ),
    );
    k.assign(b, vec![Idx::var(i), Idx::var(j)], sum);
    k.build().expect("demo kernel is well-formed")
}

/// The demo pipeline: the three demo kernels chained over one shared table —
/// graph name `"demo_pipeline"`, tensors 0 (X, the input), 1 (Y), 2 (Z) and
/// 3 (W, the output).
///
/// ```text
/// p_scale:   Y[i] = X[i] * p0          (param p0 on stage 0)
/// p_add:     Z[i] = Y[i] + X[i]
/// p_stencil: W[i] = Z[i-1] + Z[i] + Z[i+1]   (interior)
/// ```
pub fn pipeline(n: u64, p0: f32) -> PipelineGraph {
    let mut pb = PipelineBuilder::new("demo_pipeline");
    let x = pb.tensor("X", vec![n]);
    let y = pb.tensor("Y", vec![n]);
    let z = pb.tensor("Z", vec![n]);
    let w = pb.tensor("W", vec![n]);

    let mut k = pb.kernel("p_scale", DataType::F32);
    let i = k.parallel_loop("i", 0, n as i64);
    k.assign(
        y,
        vec![Idx::var(i)],
        ScalarExpr::mul(ScalarExpr::load(x, vec![Idx::var(i)]), ScalarExpr::Param(0)),
    );
    pb.add_stage(
        k.build().expect("demo stage is well-formed"),
        vec![],
        vec![p0],
        true,
    );

    let mut k = pb.kernel("p_add", DataType::F32);
    let i = k.parallel_loop("i", 0, n as i64);
    k.assign(
        z,
        vec![Idx::var(i)],
        ScalarExpr::add(
            ScalarExpr::load(y, vec![Idx::var(i)]),
            ScalarExpr::load(x, vec![Idx::var(i)]),
        ),
    );
    pb.add_stage(
        k.build().expect("demo stage is well-formed"),
        vec![],
        vec![],
        true,
    );

    let mut k = pb.kernel("p_stencil", DataType::F32);
    let i = k.parallel_loop("i", 1, n as i64 - 1);
    k.assign(
        w,
        vec![Idx::var(i)],
        ScalarExpr::add(
            ScalarExpr::add(
                ScalarExpr::load(z, vec![Idx::var_plus(i, -1)]),
                ScalarExpr::load(z, vec![Idx::var(i)]),
            ),
            ScalarExpr::load(z, vec![Idx::var_plus(i, 1)]),
        ),
    );
    pb.add_stage(
        k.build().expect("demo stage is well-formed"),
        vec![],
        vec![],
        true,
    );

    pb.build().expect("demo pipeline is well-formed")
}

/// The scalar reference for [`pipeline`]: what `W` must contain after the
/// graph runs on input `x` (interior only; the boundary stays untouched).
pub fn pipeline_reference(x: &[f32], p0: f32) -> Vec<f32> {
    let z: Vec<f32> = x.iter().map(|&v| v * p0 + v).collect();
    let mut w = vec![0.0; x.len()];
    for i in 1..x.len().saturating_sub(1) {
        w[i] = z[i - 1] + z[i] + z[i + 1];
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_kernels_compile() {
        for k in [
            scale(64),
            vec_add(64),
            stencil(64),
            mat_update(16, 8),
            mat_muladd(16, 8),
            mat_stencil(16),
        ] {
            infs_isa::Compiler::default().compile(k, &[]).unwrap();
        }
    }

    #[test]
    fn demo_pipeline_compiles_and_matches_reference() {
        let n = 64;
        let graph = pipeline(n, 3.0);
        assert_eq!(graph.stages.len(), 3);
        let cfg = infs_sim::SystemConfig::default();
        let compiled = infs_pipeline::compile(&graph, &cfg).unwrap();
        let mut m = infs_sim::Machine::new(cfg, &graph.tensors);
        let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
        m.memory().write_array(infs_sdfg::ArrayId(0), &x);
        compiled
            .run_fused(&mut m, infs_sim::ExecMode::InfS)
            .unwrap();
        let want = pipeline_reference(&x, 3.0);
        assert_eq!(m.memory_ref().array(infs_sdfg::ArrayId(3)), &want[..]);
    }
}

//! Small well-known kernels shared by the integration tests, the throughput
//! benchmark, and the `infs-client smoke` command — so every face of the
//! service exercises the same workloads.
//!
//! Array ids are assigned in declaration order, so clients can rely on them:
//! `scale` uses array 0; `vec_add` uses arrays 0 (A), 1 (B) and 2 (C).

use infs_frontend::{Idx, Kernel, KernelBuilder, ScalarExpr};
use infs_sdfg::DataType;

/// `A[i] = A[i] * p0` over `n` elements — region name `"scale"`, array 0.
pub fn scale(n: u64) -> Kernel {
    let mut k = KernelBuilder::new("scale", DataType::F32);
    let a = k.array("A", vec![n]);
    let i = k.parallel_loop("i", 0, n as i64);
    k.assign(
        a,
        vec![Idx::var(i)],
        ScalarExpr::mul(ScalarExpr::load(a, vec![Idx::var(i)]), ScalarExpr::Param(0)),
    );
    k.build().expect("demo kernel is well-formed")
}

/// `C[i] = A[i] + B[i]` over `n` elements — region name `"vec_add"`,
/// arrays 0 (A), 1 (B), 2 (C).
pub fn vec_add(n: u64) -> Kernel {
    let mut k = KernelBuilder::new("vec_add", DataType::F32);
    let a = k.array("A", vec![n]);
    let b = k.array("B", vec![n]);
    let c = k.array("C", vec![n]);
    let i = k.parallel_loop("i", 0, n as i64);
    k.assign(
        c,
        vec![Idx::var(i)],
        ScalarExpr::add(
            ScalarExpr::load(a, vec![Idx::var(i)]),
            ScalarExpr::load(b, vec![Idx::var(i)]),
        ),
    );
    k.build().expect("demo kernel is well-formed")
}

/// 3-point stencil `B[i] = A[i-1] + A[i] + A[i+1]` over the interior of `n`
/// elements — region name `"stencil"`, arrays 0 (A), 1 (B).
pub fn stencil(n: u64) -> Kernel {
    let mut k = KernelBuilder::new("stencil", DataType::F32);
    let a = k.array("A", vec![n]);
    let b = k.array("B", vec![n]);
    let i = k.parallel_loop("i", 1, n as i64 - 1);
    k.assign(
        b,
        vec![Idx::var(i)],
        ScalarExpr::add(
            ScalarExpr::add(
                ScalarExpr::load(a, vec![Idx::var_plus(i, -1)]),
                ScalarExpr::load(a, vec![Idx::var(i)]),
            ),
            ScalarExpr::load(a, vec![Idx::var_plus(i, 1)]),
        ),
    );
    k.build().expect("demo kernel is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_kernels_compile() {
        for k in [scale(64), vec_add(64), stencil(64)] {
            infs_isa::Compiler::default().compile(k, &[]).unwrap();
        }
    }
}

use infs_faults::FaultConfig;
use infs_sim::{RegionAuditor, SystemConfig};
use infs_tune::TuneConfig;

/// Configuration of a resident [`crate::Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads running compile/execute requests.
    pub workers: usize,
    /// Admission queue bound: requests beyond this are rejected with
    /// backpressure instead of queueing without limit.
    pub queue_capacity: usize,
    /// Deadline applied to requests that do not carry their own, measured
    /// from admission. Expired requests are cancelled between pipeline
    /// stages and answered with a `timeout` error.
    pub default_deadline_ms: u64,
    /// The retry hint attached to backpressure rejections.
    pub retry_after_ms: u64,
    /// Entry cap of the content-addressed artifact (compiled fat binary)
    /// cache.
    pub artifact_capacity: usize,
    /// Entry cap of the shared JIT memoization cache (`0` = unbounded —
    /// only sensible for short-lived test servers).
    pub jit_capacity: usize,
    /// Sessions (machine + loaded binary) each worker keeps warm, keyed by
    /// artifact × mode. Bounds per-worker memory; evicted sessions are
    /// simply rebuilt on the next request.
    pub sessions_per_worker: usize,
    /// The simulated machine configuration sessions run on.
    pub system: SystemConfig,
    /// Optional deterministic fault plan (chaos mode). When set, worker
    /// panics, artifact corruption, and machine-level faults are injected
    /// per the seeded schedule — see `DESIGN.md` §10.
    pub faults: Option<FaultConfig>,
    /// Coalesce identical in-flight requests into one execution with fan-out
    /// of per-request responses (`DESIGN.md` §14). Off reproduces the
    /// PR 2 one-execution-per-request behavior (the benchmark baseline).
    pub batching: bool,
    /// Online feedback-directed autotuning (`DESIGN.md` §15; the `--tune
    /// SEED` flag). When set, a deterministic epsilon-greedy sampler routes
    /// a fraction of Inf-S execute (and fused pipeline) traffic through
    /// explorer variants — alternative tiles, forced tiers, the round-trip
    /// residency policy — and promotes variants that beat the static
    /// heuristics on observed cycles. `None` disables tuning entirely.
    pub tune: Option<TuneConfig>,
    /// Optional pre-execution region auditor installed on every session and
    /// pipeline machine (see [`infs_sim::RegionAuditor`]); the tuning soak
    /// installs `infs-check`'s validators here so every explored variant is
    /// audited. `None` skips auditing (the production default).
    pub auditor: Option<RegionAuditor>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .min(4),
            queue_capacity: 64,
            default_deadline_ms: 30_000,
            retry_after_ms: 25,
            artifact_capacity: 128,
            jit_capacity: 4096,
            sessions_per_worker: 4,
            system: SystemConfig::default(),
            faults: None,
            batching: true,
            tune: None,
            auditor: None,
        }
    }
}

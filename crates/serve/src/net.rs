//! The TCP face of the server: newline-delimited JSON over
//! `std::net::TcpListener`, one [`Request`] line in, one [`Response`] line
//! out, plus the matching thin [`Client`].
//!
//! No async runtime and no HTTP — the protocol is a plain line stream so a
//! session can be driven with `nc` during debugging, and the whole face fits
//! in the standard library.

use crate::cluster::Dispatch;
use crate::protocol::{
    ArrayPayload, CompileRequest, ExecuteRequest, PipelineRequest, Request, RequestBody, Response,
    ResponseStats, WireError, WireMode,
};
use crate::server::{Reply, Server};
use infs_faults::RetryPolicy;
use infs_frontend::Kernel;
use infs_shard::{run_reactor, ConnId, LineHandler, Outbox, ReactorConfig, ReactorStats};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long blocked reads and the accept loop wait before re-checking the
/// shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// Runs the accept loop until the server shuts down (via a `Shutdown` request
/// from any connection, or [`Server::begin_shutdown`] from another thread).
/// Every connection is served on its own thread; the loop returns only after
/// admission has closed, so a caller can then [`Server::shutdown`] to drain.
///
/// # Errors
///
/// Returns the error if the listener cannot be made non-blocking or accept
/// fails with anything but `WouldBlock`.
pub fn serve_tcp(server: &Arc<Server>, listener: TcpListener) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    loop {
        if server.is_shutting_down() {
            return Ok(());
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                let server = server.clone();
                std::thread::spawn(move || serve_connection(&server, stream));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(e) => return Err(e),
        }
    }
}

/// Serves one connection: reads request lines until EOF, client error, or
/// server shutdown; answers every line with exactly one response line.
fn serve_connection(server: &Arc<Server>, stream: TcpStream) {
    // Finite read timeouts keep connection threads from outliving shutdown
    // when a client holds an idle connection open.
    let _ = stream.set_read_timeout(Some(POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) => {
                let response = match serde_json::from_str::<Request>(line.trim_end()) {
                    Ok(request) => server.call(request),
                    Err(e) => Response::failure(
                        0,
                        WireError::new(WireError::BAD_REQUEST, format!("unparseable request: {e}")),
                        ResponseStats::default(),
                    ),
                };
                line.clear();
                let Ok(encoded) = serde_json::to_string(&response) else {
                    return;
                };
                if writer
                    .write_all(encoded.as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Partial bytes (if any) stay buffered in `line`; just check
                // whether the server went away while this client idled.
                if server.is_shutting_down() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Bridges the reactor's line-framing to a [`Dispatch`] target: parses each
/// line into a [`Request`], hands it off without blocking the reactor
/// thread, and routes the response back through the [`Outbox`] whenever a
/// worker finishes it.
struct ReactorBridge<D: Dispatch + ?Sized> {
    dispatch: Arc<D>,
    /// Requests dispatched but not yet answered — the reactor drains this
    /// to zero (within its grace window) before honoring shutdown.
    in_flight: Arc<AtomicUsize>,
}

fn encode_response(response: &Response) -> Vec<u8> {
    serde_json::to_string(response).map_or_else(
        |e| {
            // A response that cannot serialize is a server bug; still answer
            // the line rather than stalling the client.
            format!(
                "{{\"id\":{},\"ok\":false,\"error\":{{\"kind\":\"{}\",\"message\":\"unencodable response: {e}\"}}}}",
                response.id,
                WireError::EXECUTION
            )
            .into_bytes()
        },
        String::into_bytes,
    )
}

impl<D: Dispatch + ?Sized> LineHandler for ReactorBridge<D> {
    fn on_line(&self, conn: ConnId, line: &str, out: &Outbox) {
        let request = match serde_json::from_str::<Request>(line) {
            Ok(request) => request,
            Err(e) => {
                let response = Response::failure(
                    0,
                    WireError::new(WireError::BAD_REQUEST, format!("unparseable request: {e}")),
                    ResponseStats::default(),
                );
                out.send(conn, encode_response(&response));
                return;
            }
        };
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        let outbox = out.clone();
        let in_flight = Arc::clone(&self.in_flight);
        self.dispatch.dispatch(
            request,
            Reply::new(move |response| {
                outbox.send(conn, encode_response(&response));
                in_flight.fetch_sub(1, Ordering::SeqCst);
            }),
        );
    }

    fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }
}

/// Runs the event-driven IO path: one reactor thread multiplexes every
/// connection (`DESIGN.md` §14) and requests flow into `dispatch` — a single
/// [`Server`] or a [`crate::ShardCluster`]. Returns once `dispatch` reports
/// shutdown (a `Shutdown` request from any connection, or
/// `begin_shutdown` from another thread) and in-flight responses have
/// flushed; the caller then drains workers with its own `shutdown()`.
///
/// # Errors
///
/// Returns the error if the listener cannot be made non-blocking; per-
/// connection IO errors only drop that connection.
pub fn serve_reactor<D>(
    dispatch: &Arc<D>,
    listener: TcpListener,
    cfg: &ReactorConfig,
) -> std::io::Result<ReactorStats>
where
    D: Dispatch + ?Sized + 'static,
{
    let stop = AtomicBool::new(false);
    let outbox = Outbox::new();
    let bridge = ReactorBridge {
        dispatch: Arc::clone(dispatch),
        in_flight: Arc::new(AtomicUsize::new(0)),
    };
    std::thread::scope(|s| {
        // Shutdown watcher: the reactor thread never blocks on the dispatch
        // target, so something has to notice `is_shutting_down()` flipping
        // (possibly from a non-network caller) and poke the reactor awake.
        s.spawn(|| {
            while !stop.load(Ordering::SeqCst) {
                if bridge.dispatch.is_shutting_down() {
                    stop.store(true, Ordering::SeqCst);
                    outbox.wake();
                    break;
                }
                std::thread::sleep(cfg.poll_interval);
            }
        });
        let result = run_reactor(listener, &bridge, cfg, &stop, &outbox);
        // On a setup error the flag was never set; release the watcher.
        stop.store(true, Ordering::SeqCst);
        result
    })
}

/// Thin synchronous client for the newline-delimited JSON protocol.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Tenant name stamped on every request.
    pub tenant: String,
    next_id: u64,
}

impl Client {
    /// Connects to a running `infs-served`.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs, tenant: impl Into<String>) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            tenant: tenant.into(),
            next_id: 1,
        })
    }

    /// Sends one request body and waits for the matching response.
    ///
    /// # Errors
    ///
    /// Returns an I/O error on transport failure or an unparseable response.
    pub fn request(
        &mut self,
        deadline_ms: Option<u64>,
        body: RequestBody,
    ) -> std::io::Result<Response> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Request {
            id,
            tenant: self.tenant.clone(),
            deadline_ms,
            body,
        };
        let line = serde_json::to_string(&request)
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        serde_json::from_str(reply.trim_end())
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, format!("bad response: {e}")))
    }

    /// Like [`Client::request`], but retries *transient* rejections —
    /// `backpressure` and `worker-fault` — under the given [`RetryPolicy`],
    /// sleeping `RetryPolicy::backoff_ms` (deterministically jittered, and
    /// never less than the server's `retry_after_ms` hint) between attempts.
    /// Any other outcome, success or failure, is returned as-is; transient
    /// failures are returned once attempts are exhausted.
    ///
    /// # Errors
    ///
    /// Transport failures, as [`Client::request`].
    pub fn request_with_retry(
        &mut self,
        deadline_ms: Option<u64>,
        body: RequestBody,
        policy: &RetryPolicy,
    ) -> std::io::Result<Response> {
        let mut attempt = 0;
        loop {
            let response = self.request(deadline_ms, body.clone())?;
            let retryable = response.error.as_ref().is_some_and(|e| {
                e.kind == WireError::BACKPRESSURE || e.kind == WireError::WORKER_FAULT
            });
            if !retryable || attempt + 1 >= policy.max_attempts.max(1) {
                return Ok(response);
            }
            let hint = response.error.as_ref().and_then(|e| e.retry_after_ms);
            std::thread::sleep(Duration::from_millis(policy.backoff_ms(attempt, hint)));
            attempt += 1;
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport failures, as [`Client::request`].
    pub fn ping(&mut self) -> std::io::Result<Response> {
        self.request(None, RequestBody::Ping)
    }

    /// Health probe: degradation status and fault counters.
    ///
    /// # Errors
    ///
    /// Transport failures, as [`Client::request`].
    pub fn health(&mut self) -> std::io::Result<Response> {
        self.request(None, RequestBody::Health)
    }

    /// Compiles a kernel into a cached artifact.
    ///
    /// # Errors
    ///
    /// Transport failures, as [`Client::request`].
    pub fn compile(
        &mut self,
        kernel: Kernel,
        representative_syms: Vec<i64>,
        optimize: bool,
    ) -> std::io::Result<Response> {
        self.request(
            None,
            RequestBody::Compile(CompileRequest {
                kernel,
                representative_syms,
                optimize,
            }),
        )
    }

    /// Executes a region of a compiled artifact.
    ///
    /// # Errors
    ///
    /// Transport failures, as [`Client::request`].
    #[allow(clippy::too_many_arguments)]
    pub fn execute(
        &mut self,
        artifact: &str,
        region: &str,
        syms: Vec<i64>,
        params: Vec<f32>,
        mode: WireMode,
        inputs: Vec<ArrayPayload>,
        outputs: Vec<u32>,
    ) -> std::io::Result<Response> {
        self.request(
            None,
            RequestBody::Execute(ExecuteRequest {
                artifact: Some(artifact.to_string()),
                binary: None,
                region: region.to_string(),
                syms,
                params,
                mode,
                inputs,
                outputs,
            }),
        )
    }

    /// Compiles and runs a whole pipeline graph (serialized
    /// `infs_pipeline::PipelineGraph` JSON) in one request.
    ///
    /// # Errors
    ///
    /// Transport failures, as [`Client::request`].
    pub fn pipeline(
        &mut self,
        graph_json: &str,
        mode: WireMode,
        fused: bool,
        inputs: Vec<ArrayPayload>,
        outputs: Vec<u32>,
    ) -> std::io::Result<Response> {
        self.request(
            None,
            RequestBody::Pipeline(PipelineRequest {
                graph: graph_json.to_string(),
                mode,
                fused,
                inputs,
                outputs,
            }),
        )
    }

    /// Fetches server-wide observability counters (cache hit rates, queue
    /// depth, worker count).
    ///
    /// # Errors
    ///
    /// Transport failures, as [`Client::request`].
    pub fn metrics(&mut self) -> std::io::Result<Response> {
        self.request(None, RequestBody::Metrics)
    }

    /// Asks the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Transport failures, as [`Client::request`].
    pub fn shutdown(&mut self) -> std::io::Result<Response> {
        self.request(None, RequestBody::Shutdown)
    }
}

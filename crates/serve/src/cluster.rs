//! The shard router: N simulated machines behind a consistent-hash ring.
//!
//! A [`ShardCluster`] owns one full [`Server`] per shard — each with its own
//! worker pool, admission queue, caches, and (in chaos mode) its own derived
//! fault plan (`FaultConfig::for_shard`), so one shard's dead banks or
//! worker panics never leak into another's schedule. Tenants are placed by
//! [`HashRing`]: requests route to the tenant's owner shard, and when that
//! shard is down (killed by [`ShardCluster::kill`], or dead from the start
//! per the plan's `dead_shards`) they fall to the next distinct shard
//! clockwise — the ring neighbor — with no coordination and no table to
//! rebuild. A shard that is up but *full* sheds the overflow the same way:
//! one backpressure rejection forwards the request to the neighbor before
//! the client ever sees a retry hint.
//!
//! Cluster-scope verbs are answered by the router itself: `Metrics` merges
//! every shard's counters, `Health` reports per-shard state
//! ([`ShardHealth`]), and `Shutdown` drains every shard.

use crate::config::ServeConfig;
use crate::protocol::{
    HealthReport, MetricsReport, Request, RequestBody, Response, ResponseStats, ShardHealth,
    WireError,
};
use crate::server::{Reply, Server, ShutdownStats};
use infs_faults::{mix64, FaultPlan};
use infs_shard::HashRing;
use infs_tune::TuneConfig;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// Virtual nodes per shard on the ring: enough to keep per-shard load within
/// a few percent of even at 4–16 shards.
const VNODES: u32 = 64;

/// Domain salt for deriving per-shard tuner seeds from the base tune seed.
const TUNE_SHARD_SALT: u64 = 0x7475_6e65; // "tune"

/// Anything the TCP front end can hand requests to: a single [`Server`] or a
/// [`ShardCluster`]. Responses travel through the [`Reply`], from whatever
/// thread produces them.
pub trait Dispatch: Send + Sync {
    /// Accept one request; never blocks on execution.
    fn dispatch(&self, request: Request, reply: Reply);
    /// True once graceful shutdown has begun.
    fn is_shutting_down(&self) -> bool;
}

impl Dispatch for Server {
    fn dispatch(&self, request: Request, reply: Reply) {
        self.submit_with(request, reply);
    }

    fn is_shutting_down(&self) -> bool {
        Server::is_shutting_down(self)
    }
}

struct ShardSlot {
    server: Server,
    /// False once the shard is dead (initial plan outage or `kill`); the
    /// ring walk skips dead shards.
    alive: AtomicBool,
    /// Requests the router has sent here (admitted or not).
    requests: AtomicU64,
}

impl ShardSlot {
    fn takes_traffic(&self) -> bool {
        self.alive.load(Ordering::SeqCst) && !self.server.is_shutting_down()
    }
}

/// N simulated serving machines behind a consistent-hash tenant router.
pub struct ShardCluster {
    slots: Vec<ShardSlot>,
    ring: HashRing,
    started: Instant,
}

impl ShardCluster {
    /// Boot `n_shards` servers from `base`. `base.workers` is **per shard**.
    /// When `base.faults` is set, shard `i` runs under the derived plan
    /// `base.faults.for_shard(i)`, and `base.faults.dead_shards` whole
    /// shards start dead (their tenants served by ring neighbors from the
    /// first request). When `base.tune` is set, each shard gets its own
    /// [`crate::Server`]-local tuner under a seed derived from the base seed
    /// and the shard index — tuner state is shard-local by construction
    /// (tables live with the shard's server), and the derived seeds keep the
    /// shards' explore schedules decorrelated while staying replayable.
    pub fn new(base: &ServeConfig, n_shards: u32) -> Self {
        let n = n_shards.max(1);
        let initial_alive = match &base.faults {
            Some(fc) => FaultPlan::new(fc.clone()).initial_shard_health(n),
            None => vec![true; n as usize],
        };
        let slots = (0..n)
            .map(|i| {
                let cfg = ServeConfig {
                    faults: base.faults.as_ref().map(|f| f.for_shard(i)),
                    tune: base.tune.as_ref().map(|t| TuneConfig {
                        seed: mix64(t.seed, TUNE_SHARD_SALT, u64::from(i)),
                        ..t.clone()
                    }),
                    ..base.clone()
                };
                ShardSlot {
                    server: Server::new(cfg),
                    alive: AtomicBool::new(initial_alive[i as usize]),
                    requests: AtomicU64::new(0),
                }
            })
            .collect();
        ShardCluster {
            slots,
            ring: HashRing::new(n, VNODES),
            started: Instant::now(),
        }
    }

    /// Number of shards (alive or not).
    pub fn shards(&self) -> u32 {
        self.slots.len() as u32
    }

    /// The shard currently serving `tenant` (owner, or ring neighbor when
    /// the owner is down). `None` when every shard is down.
    pub fn route_of(&self, tenant: &str) -> Option<u32> {
        self.ring
            .route_with(tenant, |s| self.slots[s as usize].takes_traffic())
    }

    /// The shard that owns `tenant` when every shard is healthy.
    pub fn owner_of(&self, tenant: &str) -> u32 {
        self.ring.route(tenant)
    }

    /// Direct access to one shard's server (test/bench hook).
    pub fn shard(&self, i: u32) -> &Server {
        &self.slots[i as usize].server
    }

    /// Requests routed to each shard so far.
    pub fn shard_requests(&self) -> Vec<u64> {
        self.slots
            .iter()
            .map(|s| s.requests.load(Ordering::Relaxed))
            .collect()
    }

    /// Kill shard `i`: it stops taking traffic immediately (its tenants
    /// shed to ring neighbors) and drains whatever it already admitted.
    pub fn kill(&self, i: u32) {
        let slot = &self.slots[i as usize];
        slot.alive.store(false, Ordering::SeqCst);
        slot.server.begin_shutdown();
    }

    /// Synchronous convenience: dispatch and wait for the response.
    pub fn call(&self, request: Request) -> Response {
        let id = request.id;
        let (tx, rx) = mpsc::channel();
        self.dispatch(
            request,
            Reply::new(move |r| {
                let _ = tx.send(r);
            }),
        );
        rx.recv().unwrap_or_else(|_| {
            Response::failure(
                id,
                WireError::new(WireError::EXECUTION, "shard dropped the request"),
                ResponseStats::default(),
            )
        })
    }

    /// Begin graceful shutdown on every shard (idempotent).
    pub fn begin_shutdown(&self) {
        for s in &self.slots {
            s.server.begin_shutdown();
        }
    }

    /// Drain and join every shard; counters are summed across shards.
    pub fn shutdown(&self) -> ShutdownStats {
        self.begin_shutdown();
        let mut total: Option<ShutdownStats> = None;
        for s in &self.slots {
            let st = s.server.shutdown();
            total = Some(match total {
                None => st,
                Some(t) => ShutdownStats {
                    served: t.served + st.served,
                    rejected: t.rejected + st.rejected,
                    artifacts: (
                        t.artifacts.0 + st.artifacts.0,
                        t.artifacts.1 + st.artifacts.1,
                        t.artifacts.2 + st.artifacts.2,
                    ),
                    jit: (t.jit.0 + st.jit.0, t.jit.1 + st.jit.1),
                },
            });
        }
        total.expect("cluster has at least one shard")
    }

    /// The cluster's merged `Metrics` report.
    pub fn metrics(&self) -> MetricsReport {
        let mut merged = MetricsReport::default();
        for s in &self.slots {
            merged.merge(&s.server.metrics());
        }
        merged.uptime_ms = self.started.elapsed().as_millis() as u64;
        merged
    }

    /// The cluster's `Health` report: aggregate figures plus one
    /// [`ShardHealth`] row per shard.
    pub fn health(&self) -> HealthReport {
        let mut agg = HealthReport {
            status: HealthReport::OK.to_string(),
            uptime_ms: self.started.elapsed().as_millis() as u64,
            ..HealthReport::default()
        };
        let mut worst_ok = true;
        let mut all_draining = true;
        for (i, slot) in self.slots.iter().enumerate() {
            let h = slot.server.health();
            let dead = !slot.alive.load(Ordering::SeqCst);
            let status = if dead {
                HealthReport::DEAD.to_string()
            } else {
                h.status.clone()
            };
            if status != HealthReport::OK {
                worst_ok = false;
            }
            if status != HealthReport::DRAINING {
                all_draining = false;
            }
            agg.healthy_banks += if dead { 0 } else { h.healthy_banks };
            agg.total_banks += h.total_banks;
            agg.worker_faults += h.worker_faults;
            agg.artifact_corruptions += h.artifact_corruptions;
            agg.jit_corruptions += h.jit_corruptions;
            agg.queue_depth += h.queue_depth;
            agg.queue_capacity += h.queue_capacity;
            agg.workers += h.workers;
            agg.shards.push(ShardHealth {
                shard: i as u32,
                status,
                healthy_banks: h.healthy_banks,
                total_banks: h.total_banks,
                worker_faults: h.worker_faults,
                queue_depth: h.queue_depth,
                requests: slot.requests.load(Ordering::Relaxed),
            });
        }
        agg.status = if all_draining {
            HealthReport::DRAINING.to_string()
        } else if worst_ok {
            HealthReport::OK.to_string()
        } else {
            HealthReport::DEGRADED.to_string()
        };
        agg
    }

    /// Route a tenant-keyed request: owner first; on a sheddable rejection
    /// (backpressure, or the owner began draining between the aliveness
    /// check and admission) forward once to the next alive ring neighbor.
    fn route(&self, request: Request, reply: Reply) {
        let mut walk = self
            .ring
            .successors(&request.tenant)
            .filter(|&s| self.slots[s as usize].takes_traffic());
        let Some(owner) = walk.next() else {
            reply.send(Response::failure(
                request.id,
                WireError::new(WireError::SHARD_DOWN, "every shard is down or draining"),
                ResponseStats::default(),
            ));
            return;
        };
        let neighbor = walk.next();
        drop(walk);

        let slot = &self.slots[owner as usize];
        slot.requests.fetch_add(1, Ordering::Relaxed);
        let rej = match slot.server.admit(request, reply) {
            Ok(()) => return,
            Err(rej) => rej,
        };
        let sheddable = rej.response.error.as_ref().is_some_and(|e| {
            e.kind == WireError::BACKPRESSURE || e.kind == WireError::SHUTTING_DOWN
        });
        match (sheddable, neighbor) {
            (true, Some(n)) => {
                infs_trace::counter!("cluster.shed", 1u64);
                let slot = &self.slots[n as usize];
                slot.requests.fetch_add(1, Ordering::Relaxed);
                if let Err(rej) = slot.server.admit(rej.request, rej.reply) {
                    rej.reply.send(*rej.response);
                }
            }
            _ => rej.reply.send(*rej.response),
        }
    }
}

impl Dispatch for ShardCluster {
    fn dispatch(&self, request: Request, reply: Reply) {
        match &request.body {
            // Cluster-scope verbs are the router's to answer.
            RequestBody::Metrics => {
                let mut r = Response::success(request.id, ResponseStats::default());
                r.metrics = Some(self.metrics());
                reply.send(r);
            }
            RequestBody::Health => {
                let mut r = Response::success(request.id, ResponseStats::default());
                r.health = Some(self.health());
                reply.send(r);
            }
            RequestBody::Shutdown => {
                self.begin_shutdown();
                reply.send(Response::success(request.id, ResponseStats::default()));
            }
            // Everything else — including Ping, so probes exercise a real
            // shard's queue — routes by tenant.
            _ => self.route(request, reply),
        }
    }

    fn is_shutting_down(&self) -> bool {
        self.slots.iter().all(|s| s.server.is_shutting_down())
    }
}

impl Drop for ShardCluster {
    fn drop(&mut self) {
        self.begin_shutdown();
    }
}

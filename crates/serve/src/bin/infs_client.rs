//! `infs-client` — thin client for `infs-served`.
//!
//! ```text
//! infs-client smoke [--addr HOST:PORT] [--keep-alive]
//! ```
//!
//! `smoke` runs the end-to-end acceptance sequence the CI server-smoke step
//! drives: ping, compile, execute (verifying outputs numerically), recompile
//! (asserting an artifact-cache hit), then graceful shutdown. Any deviation —
//! wrong outputs, missing stats, cache miss where a hit is required — exits
//! non-zero.

use infs_serve::{demo, ArrayPayload, Client, Response, WireMode};
use std::process::ExitCode;

struct Args {
    addr: String,
    keep_alive: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut it = std::env::args().skip(1);
    match it.next().as_deref() {
        Some("smoke") => {}
        Some("--help") | Some("-h") | None => {
            return Err("usage: infs-client smoke [--addr HOST:PORT] [--keep-alive]".to_string())
        }
        Some(other) => return Err(format!("unknown command '{other}' (try --help)")),
    }
    let mut args = Args {
        addr: "127.0.0.1:7199".to_string(),
        keep_alive: false,
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => {
                args.addr = it
                    .next()
                    .ok_or_else(|| "--addr requires a value".to_string())?
            }
            "--keep-alive" => args.keep_alive = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

/// A well-formed stats block: present on every response, with service time
/// measured and, for executions, cycles and an execution site reported.
fn check_stats(step: &str, r: &Response, executed: bool) -> Result<(), String> {
    if !r.ok {
        let why = r
            .error
            .as_ref()
            .map(|e| format!("{}: {}", e.kind, e.message))
            .unwrap_or_else(|| "unknown error".to_string());
        return Err(format!("{step}: server answered failure ({why})"));
    }
    if executed {
        if r.stats.cycles == 0 {
            return Err(format!("{step}: stats report zero simulated cycles"));
        }
        if r.stats.executed.is_none() {
            return Err(format!("{step}: stats lack an execution site"));
        }
    }
    Ok(())
}

fn smoke(addr: &str, keep_alive: bool) -> Result<(), String> {
    let io = |e: std::io::Error| format!("transport: {e}");
    let mut client = Client::connect(addr, "smoke").map_err(io)?;

    let r = client.ping().map_err(io)?;
    check_stats("ping", &r, false)?;

    // Compile the demo scale kernel.
    let n = 256u64;
    let r = client.compile(demo::scale(n), vec![], true).map_err(io)?;
    check_stats("compile", &r, false)?;
    if r.stats.artifact_cache_hit {
        return Err("compile: first compile cannot be an artifact-cache hit".to_string());
    }
    let artifact = r
        .artifact
        .ok_or_else(|| "compile: response carries no artifact id".to_string())?;

    // Execute it and verify the arithmetic end to end.
    let input: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let r = client
        .execute(
            &artifact,
            "scale",
            vec![],
            vec![3.0],
            WireMode::InfS,
            vec![ArrayPayload {
                array: 0,
                data: input.clone(),
            }],
            vec![0],
        )
        .map_err(io)?;
    check_stats("execute", &r, true)?;
    let out = r
        .outputs
        .first()
        .ok_or_else(|| "execute: no output array returned".to_string())?;
    if out.data.len() != input.len() {
        return Err(format!(
            "execute: output has {} elements, want {}",
            out.data.len(),
            input.len()
        ));
    }
    for (i, (&got, &x)) in out.data.iter().zip(&input).enumerate() {
        if got != x * 3.0 {
            return Err(format!("execute: element {i} is {got}, want {}", x * 3.0));
        }
    }

    // Recompiling the identical kernel must be a content-addressed hit.
    let r = client.compile(demo::scale(n), vec![], true).map_err(io)?;
    check_stats("recompile", &r, false)?;
    if !r.stats.artifact_cache_hit {
        return Err("recompile: expected an artifact-cache hit".to_string());
    }
    if r.artifact.as_deref() != Some(artifact.as_str()) {
        return Err("recompile: artifact id changed for identical input".to_string());
    }

    if !keep_alive {
        let r = client.shutdown().map_err(io)?;
        check_stats("shutdown", &r, false)?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match smoke(&args.addr, args.keep_alive) {
        Ok(()) => {
            println!("infs-client: smoke ok");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("infs-client: smoke FAILED: {msg}");
            ExitCode::FAILURE
        }
    }
}

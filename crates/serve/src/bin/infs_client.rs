//! `infs-client` — thin client for `infs-served`.
//!
//! ```text
//! infs-client smoke    [--addr HOST:PORT] [--keep-alive]
//! infs-client pipeline [--addr HOST:PORT] [--keep-alive]
//! infs-client metrics  [--addr HOST:PORT] [--shutdown]
//! infs-client health   [--addr HOST:PORT]
//! ```
//!
//! `smoke` runs the end-to-end acceptance sequence the CI server-smoke step
//! drives: ping, compile, execute (verifying outputs numerically), recompile
//! (asserting an artifact-cache hit), then graceful shutdown. Any deviation —
//! wrong outputs, missing stats, cache miss where a hit is required, or a
//! stats block whose phase times exceed its total — exits non-zero.
//!
//! `pipeline` is the multi-kernel acceptance sequence: it ships the demo
//! 3-stage pipeline graph as one request, verifies the output numerically,
//! checks the per-stage stats breakdown nests inside the request totals,
//! re-sends the identical graph (asserting a pipeline-cache hit), and then
//! runs the round-trip baseline, asserting the fused schedule is not slower.
//!
//! `metrics` queries the server's observability counters and pretty-prints
//! cache hit rates, queue occupancy, and admission totals. With `--shutdown`
//! it then asks the server to exit, so CI can run `smoke --keep-alive`
//! followed by `metrics --shutdown`.
//!
//! `health` is the operations probe (see the README runbook): it prints the
//! degradation status (`ok` / `degraded` / `draining`), bank health, and the
//! worker-fault and cache-corruption counters, and exits non-zero only on
//! transport failure — a degraded server is still a served answer.

use infs_serve::{demo, ArrayPayload, Client, MetricsReport, Response, WireMode};
use std::process::ExitCode;

enum Command {
    Smoke { keep_alive: bool },
    Pipeline { keep_alive: bool },
    Metrics { shutdown: bool },
    Health,
}

struct Args {
    addr: String,
    command: Command,
}

const USAGE: &str =
    "usage: infs-client smoke [--addr HOST:PORT] [--keep-alive]\n       infs-client pipeline [--addr HOST:PORT] [--keep-alive]\n       infs-client metrics [--addr HOST:PORT] [--shutdown]\n       infs-client health [--addr HOST:PORT]";

fn parse_args() -> Result<Args, String> {
    let mut it = std::env::args().skip(1);
    let mut command = match it.next().as_deref() {
        Some("smoke") => Command::Smoke { keep_alive: false },
        Some("pipeline") => Command::Pipeline { keep_alive: false },
        Some("metrics") => Command::Metrics { shutdown: false },
        Some("health") => Command::Health,
        Some("--help") | Some("-h") | None => return Err(USAGE.to_string()),
        Some(other) => return Err(format!("unknown command '{other}' (try --help)")),
    };
    let mut addr = "127.0.0.1:7199".to_string();
    while let Some(flag) = it.next() {
        match (flag.as_str(), &mut command) {
            ("--addr", _) => {
                addr = it
                    .next()
                    .ok_or_else(|| "--addr requires a value".to_string())?
            }
            ("--keep-alive", Command::Smoke { keep_alive })
            | ("--keep-alive", Command::Pipeline { keep_alive }) => *keep_alive = true,
            ("--shutdown", Command::Metrics { shutdown }) => *shutdown = true,
            (other, _) => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(Args { addr, command })
}

/// A well-formed stats block: present on every response, with service time
/// measured, phase times that fit inside the reported total, and, for
/// executions, cycles and an execution site reported.
fn check_stats(step: &str, r: &Response, executed: bool) -> Result<(), String> {
    if !r.ok {
        let why = r
            .error
            .as_ref()
            .map(|e| format!("{}: {}", e.kind, e.message))
            .unwrap_or_else(|| "unknown error".to_string());
        return Err(format!("{step}: server answered failure ({why})"));
    }
    let s = &r.stats;
    if s.queue_wait_us + s.compile_us + s.execute_us > s.total_us {
        return Err(format!(
            "{step}: stats inconsistent: queue_wait {} + compile {} + execute {} > total {}",
            s.queue_wait_us, s.compile_us, s.execute_us, s.total_us
        ));
    }
    if s.artifact_cache_hit && s.compile_us != 0 {
        return Err(format!(
            "{step}: artifact-cache hit reports {}us of compile time",
            s.compile_us
        ));
    }
    if executed {
        if s.cycles == 0 {
            return Err(format!("{step}: stats report zero simulated cycles"));
        }
        if s.executed.is_none() {
            return Err(format!("{step}: stats lack an execution site"));
        }
    }
    // Per-stage breakdowns (pipeline requests) must nest inside the request
    // totals — the invariant above, extended one level down.
    if !s.stages.is_empty() {
        let stage_compile: u64 = s.stages.iter().map(|st| st.compile_us).sum();
        let stage_execute: u64 = s.stages.iter().map(|st| st.execute_us).sum();
        if stage_compile > s.compile_us {
            return Err(format!(
                "{step}: per-stage compile {stage_compile}us exceeds request compile {}us",
                s.compile_us
            ));
        }
        if stage_execute > s.execute_us {
            return Err(format!(
                "{step}: per-stage execute {stage_execute}us exceeds request execute {}us",
                s.execute_us
            ));
        }
        for st in &s.stages {
            if st.executed.is_empty() {
                return Err(format!(
                    "{step}: stage '{}' lacks an execution site",
                    st.name
                ));
            }
        }
    }
    Ok(())
}

fn smoke(addr: &str, keep_alive: bool) -> Result<(), String> {
    let io = |e: std::io::Error| format!("transport: {e}");
    let mut client = Client::connect(addr, "smoke").map_err(io)?;

    let r = client.ping().map_err(io)?;
    check_stats("ping", &r, false)?;

    // Compile the demo scale kernel.
    let n = 256u64;
    let r = client.compile(demo::scale(n), vec![], true).map_err(io)?;
    check_stats("compile", &r, false)?;
    if r.stats.artifact_cache_hit {
        return Err("compile: first compile cannot be an artifact-cache hit".to_string());
    }
    let artifact = r
        .artifact
        .ok_or_else(|| "compile: response carries no artifact id".to_string())?;

    // Execute it and verify the arithmetic end to end.
    let input: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let r = client
        .execute(
            &artifact,
            "scale",
            vec![],
            vec![3.0],
            WireMode::InfS,
            vec![ArrayPayload {
                array: 0,
                data: input.clone(),
            }],
            vec![0],
        )
        .map_err(io)?;
    check_stats("execute", &r, true)?;
    let out = r
        .outputs
        .first()
        .ok_or_else(|| "execute: no output array returned".to_string())?;
    if out.data.len() != input.len() {
        return Err(format!(
            "execute: output has {} elements, want {}",
            out.data.len(),
            input.len()
        ));
    }
    for (i, (&got, &x)) in out.data.iter().zip(&input).enumerate() {
        if got != x * 3.0 {
            return Err(format!("execute: element {i} is {got}, want {}", x * 3.0));
        }
    }

    // Recompiling the identical kernel must be a content-addressed hit.
    let r = client.compile(demo::scale(n), vec![], true).map_err(io)?;
    check_stats("recompile", &r, false)?;
    if !r.stats.artifact_cache_hit {
        return Err("recompile: expected an artifact-cache hit".to_string());
    }
    if r.artifact.as_deref() != Some(artifact.as_str()) {
        return Err("recompile: artifact id changed for identical input".to_string());
    }

    if !keep_alive {
        let r = client.shutdown().map_err(io)?;
        check_stats("shutdown", &r, false)?;
    }
    Ok(())
}

fn pipeline(addr: &str, keep_alive: bool) -> Result<(), String> {
    let io = |e: std::io::Error| format!("transport: {e}");
    let mut client = Client::connect(addr, "pipeline").map_err(io)?;

    let n = 256u64;
    let p0 = 3.0f32;
    let graph = demo::pipeline(n, p0);
    let graph_json = graph
        .to_json()
        .map_err(|e| format!("pipeline: unserializable graph: {e}"))?;
    let input: Vec<f32> = (0..n).map(|i| (i % 17) as f32 - 8.0).collect();
    let want = demo::pipeline_reference(&input, p0);
    let send = |client: &mut Client, fused: bool| {
        client.pipeline(
            &graph_json,
            WireMode::InfS,
            fused,
            vec![ArrayPayload {
                array: 0,
                data: input.clone(),
            }],
            vec![3],
        )
    };

    // Fused run: outputs must match the reference bit for bit, and the stats
    // must carry a per-stage breakdown for every stage of the graph.
    let r = send(&mut client, true).map_err(io)?;
    check_stats("pipeline", &r, true)?;
    if r.stats.artifact_cache_hit {
        return Err("pipeline: first graph cannot be a pipeline-cache hit".to_string());
    }
    if r.stats.stages.len() != graph.stages.len() {
        return Err(format!(
            "pipeline: stats carry {} stage entries, graph has {}",
            r.stats.stages.len(),
            graph.stages.len()
        ));
    }
    let out = r
        .outputs
        .first()
        .ok_or_else(|| "pipeline: no output tensor returned".to_string())?;
    if out.data != want {
        return Err("pipeline: fused output disagrees with the reference".to_string());
    }
    let fused_cycles = r.stats.cycles;
    let artifact = r
        .artifact
        .ok_or_else(|| "pipeline: response carries no artifact id".to_string())?;

    // The identical graph must be a pipeline-cache hit with the same id.
    let r = send(&mut client, true).map_err(io)?;
    check_stats("pipeline(cached)", &r, true)?;
    if !r.stats.artifact_cache_hit {
        return Err("pipeline(cached): expected a pipeline-cache hit".to_string());
    }
    if r.artifact.as_deref() != Some(artifact.as_str()) {
        return Err("pipeline(cached): artifact id changed for identical graph".to_string());
    }

    // The round-trip baseline computes the same answer, never faster.
    let r = send(&mut client, false).map_err(io)?;
    check_stats("pipeline(roundtrip)", &r, true)?;
    let out = r
        .outputs
        .first()
        .ok_or_else(|| "pipeline(roundtrip): no output tensor returned".to_string())?;
    if out.data != want {
        return Err("pipeline(roundtrip): output disagrees with the reference".to_string());
    }
    if fused_cycles > r.stats.cycles {
        return Err(format!(
            "pipeline: fused run took {fused_cycles} cycles, round-trip only {}",
            r.stats.cycles
        ));
    }

    if !keep_alive {
        let r = client.shutdown().map_err(io)?;
        check_stats("shutdown", &r, false)?;
    }
    Ok(())
}

/// Renders a hit/miss pair as `hits/total (rate%)`, or `-` when the cache has
/// never been consulted.
fn rate(hits: u64, misses: u64) -> String {
    match MetricsReport::hit_rate(hits, misses) {
        Some(r) => format!("{hits}/{} ({:.1}%)", hits + misses, r * 100.0),
        None => "-".to_string(),
    }
}

fn health(addr: &str) -> Result<(), String> {
    let io = |e: std::io::Error| format!("transport: {e}");
    let mut client = Client::connect(addr, "health").map_err(io)?;
    let r = client.health().map_err(io)?;
    check_stats("health", &r, false)?;
    let h = r
        .health
        .ok_or_else(|| "health: response carries no health report".to_string())?;
    println!("infs-served @ {addr}: {} (up {} ms)", h.status, h.uptime_ms);
    println!(
        "  banks      {} of {} healthy",
        h.healthy_banks, h.total_banks
    );
    println!(
        "  faults     worker {} / artifact {} / jit {}",
        h.worker_faults, h.artifact_corruptions, h.jit_corruptions
    );
    println!(
        "  queue      depth {} of {} ({} workers)",
        h.queue_depth, h.queue_capacity, h.workers
    );
    Ok(())
}

fn metrics(addr: &str, shutdown: bool) -> Result<(), String> {
    let io = |e: std::io::Error| format!("transport: {e}");
    let mut client = Client::connect(addr, "metrics").map_err(io)?;
    let r = client.metrics().map_err(io)?;
    check_stats("metrics", &r, false)?;
    let m = r
        .metrics
        .ok_or_else(|| "metrics: response carries no metrics report".to_string())?;
    println!("infs-served @ {addr} (up {} ms)", m.uptime_ms);
    println!("  requests   served {} / rejected {}", m.served, m.rejected);
    println!(
        "  queue      depth {} of {} ({} workers)",
        m.queue_depth, m.queue_capacity, m.workers
    );
    println!(
        "  artifacts  hits {} (evicted {})",
        rate(m.artifact_hits, m.artifact_misses),
        m.artifact_evictions
    );
    println!(
        "  jit cache  hits {} (evicted {})",
        rate(m.jit_hits, m.jit_misses),
        m.jit_evictions
    );
    println!(
        "  pipelines  hits {}",
        rate(m.pipeline_hits, m.pipeline_misses)
    );
    if shutdown {
        let r = client.shutdown().map_err(io)?;
        check_stats("shutdown", &r, false)?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let (name, result) = match args.command {
        Command::Smoke { keep_alive } => ("smoke", smoke(&args.addr, keep_alive)),
        Command::Pipeline { keep_alive } => ("pipeline", pipeline(&args.addr, keep_alive)),
        Command::Metrics { shutdown } => ("metrics", metrics(&args.addr, shutdown)),
        Command::Health => ("health", health(&args.addr)),
    };
    match result {
        Ok(()) => {
            if matches!(name, "smoke" | "pipeline") {
                println!("infs-client: {name} ok");
            }
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("infs-client: {name} FAILED: {msg}");
            ExitCode::FAILURE
        }
    }
}

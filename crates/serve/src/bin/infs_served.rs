//! `infs-served` — the resident compile-and-execute daemon.
//!
//! ```text
//! infs-served [--addr HOST:PORT] [--workers N] [--queue N] [--trace PATH]
//!             [--chaos SEED]
//! ```
//!
//! Speaks newline-delimited JSON (see `infs_serve::protocol`). Exits 0 after
//! a graceful shutdown (a `Shutdown` request from any client), having drained
//! every admitted request. With `--trace PATH`, tracing is enabled for the
//! daemon's lifetime and a Chrome trace (plus `PATH.metrics.json`) is written
//! at shutdown. With `--chaos SEED`, the deterministic fault plan
//! [`infs_faults::FaultConfig::chaos`] is injected: worker panics, artifact
//! corruption, dead banks, SRAM flips, and NoC faults — see the README
//! operations runbook.

use infs_faults::FaultConfig;
use infs_serve::{serve_tcp, ServeConfig, Server};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    addr: String,
    trace: Option<String>,
    cfg: ServeConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7199".to_string(),
        trace: None,
        cfg: ServeConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--trace" => args.trace = Some(value("--trace")?),
            "--workers" => {
                args.cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue" => {
                args.cfg.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?
            }
            "--chaos" => {
                let seed: u64 = value("--chaos")?
                    .parse()
                    .map_err(|e| format!("--chaos: {e}"))?;
                args.cfg.faults = Some(FaultConfig::chaos(seed));
            }
            "--help" | "-h" => return Err(
                "usage: infs-served [--addr HOST:PORT] [--workers N] [--queue N] [--trace PATH] [--chaos SEED]"
                    .to_string(),
            ),
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let listener = match TcpListener::bind(&args.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("infs-served: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    let addr = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| args.addr.clone());
    // Enable tracing before the worker pool spawns so worker threads can
    // register their names with the collector.
    if args.trace.is_some() {
        infs_trace::clear();
        infs_trace::enable();
    }
    let chaos_seed = args.cfg.faults.as_ref().map(|f| f.seed);
    let server = Arc::new(Server::new(args.cfg));
    // The smoke scripts wait for this exact line before connecting.
    println!("infs-served listening on {addr}");
    if let Some(seed) = chaos_seed {
        println!("infs-served: CHAOS MODE (seed {seed}) — injecting deterministic faults");
    }
    if let Err(e) = serve_tcp(&server, listener) {
        eprintln!("infs-served: accept loop failed: {e}");
        return ExitCode::FAILURE;
    }
    let stats = server.shutdown();
    println!(
        "infs-served: shut down cleanly; served={} rejected={} artifact(h/m/e)={}/{}/{} jit(h/m)={}/{}",
        stats.served,
        stats.rejected,
        stats.artifacts.0,
        stats.artifacts.1,
        stats.artifacts.2,
        stats.jit.0,
        stats.jit.1,
    );
    if let Some(path) = args.trace {
        infs_trace::disable();
        let metrics_path = format!("{path}.metrics.json");
        if let Err(e) = infs_trace::write_chrome(path.as_ref())
            .and_then(|()| infs_trace::write_metrics(metrics_path.as_ref()))
        {
            eprintln!("infs-served: cannot write trace {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("infs-served: trace written to {path} (+ {metrics_path})");
    }
    ExitCode::SUCCESS
}

//! `infs-served` — the resident compile-and-execute daemon.
//!
//! ```text
//! infs-served [--addr HOST:PORT] [--workers N] [--queue N] [--trace PATH]
//!             [--chaos SEED] [--tune SEED] [--shards N] [--legacy-io]
//!             [--no-batching]
//! ```
//!
//! Speaks newline-delimited JSON (see `infs_serve::protocol`). Exits 0 after
//! a graceful shutdown (a `Shutdown` request from any client), having drained
//! every admitted request. With `--trace PATH`, tracing is enabled for the
//! daemon's lifetime and a Chrome trace (plus `PATH.metrics.json`) is written
//! at shutdown. With `--chaos SEED`, the deterministic fault plan
//! [`infs_faults::FaultConfig::chaos`] is injected: worker panics, artifact
//! corruption, dead banks, SRAM flips, and NoC faults — see the README
//! operations runbook. With `--tune SEED`, the online autotuner
//! ([`infs_serve::TuneConfig::seeded`], `DESIGN.md` §15) routes a
//! deterministic sampled fraction of Inf-S execute and fused-pipeline
//! traffic through explorer variants and promotes whichever beats the static
//! heuristics on observed cycles; the two seeds are independent, and the
//! flags compose (a chaos-and-tune soak is the retune drill).
//!
//! IO and topology (`DESIGN.md` §14):
//!
//! - default: one event-driven reactor thread multiplexes every connection
//!   ([`infs_serve::serve_reactor`]);
//! - `--legacy-io`: the PR 2 thread-per-connection accept loop
//!   ([`infs_serve::serve_tcp`]) — kept as the benchmark baseline; implies a
//!   single shard;
//! - `--shards N` (N ≥ 2): N full server shards behind the consistent-hash
//!   tenant router ([`infs_serve::ShardCluster`]); `--workers` counts **per
//!   shard**, and with `--chaos` each shard runs an independently derived
//!   fault plan (`dead_shards` whole shards may start dead). With `--tune`,
//!   each shard keeps its own tuner under an independently derived seed.

use infs_faults::FaultConfig;
use infs_serve::{
    serve_reactor, serve_tcp, ServeConfig, Server, ShardCluster, ShutdownStats, TuneConfig,
};
use infs_shard::ReactorConfig;
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;

/// The `--help` text. One line per flag, kept in lockstep with the README
/// flag table and the crate docs above — `tests/help_golden.rs` pins the
/// exact bytes so drift between the three is a test failure, not a surprise.
const HELP: &str = "\
infs-served — resident Infinity Stream compile-and-execute daemon

usage: infs-served [FLAGS]

  --addr HOST:PORT  listen address (default 127.0.0.1:7199)
  --workers N       worker threads per shard (default: min(cores, 4))
  --queue N         admission queue bound; beyond it requests are rejected
                    with a typed backpressure error (default 64)
  --trace PATH      enable tracing; write a Chrome trace to PATH (plus
                    PATH.metrics.json) at shutdown
  --chaos SEED      arm the deterministic fault plan: worker panics,
                    artifact corruption, dead banks, SRAM flips, NoC faults
  --tune SEED       enable online feedback-directed autotuning: route a
                    deterministic sampled fraction of Inf-S traffic through
                    explorer variants (tiles, tiers, residency) and promote
                    variants that beat the static heuristics
  --shards N        run N full server shards behind the consistent-hash
                    tenant router (default 1; N >= 2 enables the router)
  --legacy-io       thread-per-connection accept loop instead of the default
                    event-driven reactor (benchmark baseline; single shard)
  --no-batching     disable coalescing of identical in-flight requests
  --help, -h        print this help and exit
";

struct Args {
    addr: String,
    trace: Option<String>,
    shards: u32,
    legacy_io: bool,
    cfg: ServeConfig,
}

/// What `parse_args` asks `main` to do: serve, or print help and exit 0.
enum Parsed {
    Run(Box<Args>),
    Help,
}

fn parse_args() -> Result<Parsed, String> {
    let mut args = Args {
        addr: "127.0.0.1:7199".to_string(),
        trace: None,
        shards: 1,
        legacy_io: false,
        cfg: ServeConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--trace" => args.trace = Some(value("--trace")?),
            "--workers" => {
                args.cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue" => {
                args.cfg.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?
            }
            "--chaos" => {
                let seed: u64 = value("--chaos")?
                    .parse()
                    .map_err(|e| format!("--chaos: {e}"))?;
                args.cfg.faults = Some(FaultConfig::chaos(seed));
            }
            "--tune" => {
                let seed: u64 = value("--tune")?
                    .parse()
                    .map_err(|e| format!("--tune: {e}"))?;
                args.cfg.tune = Some(TuneConfig::seeded(seed));
            }
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--legacy-io" => args.legacy_io = true,
            "--no-batching" => args.cfg.batching = false,
            "--help" | "-h" => return Ok(Parsed::Help),
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    if args.legacy_io && args.shards > 1 {
        return Err("--legacy-io supports a single shard (drop --shards)".to_string());
    }
    Ok(Parsed::Run(Box::new(args)))
}

fn report(stats: &ShutdownStats) {
    println!(
        "infs-served: shut down cleanly; served={} rejected={} artifact(h/m/e)={}/{}/{} jit(h/m)={}/{}",
        stats.served,
        stats.rejected,
        stats.artifacts.0,
        stats.artifacts.1,
        stats.artifacts.2,
        stats.jit.0,
        stats.jit.1,
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Parsed::Run(a)) => *a,
        Ok(Parsed::Help) => {
            print!("{HELP}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let listener = match TcpListener::bind(&args.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("infs-served: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    let addr = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| args.addr.clone());
    // Enable tracing before the worker pool spawns so worker threads can
    // register their names with the collector.
    if args.trace.is_some() {
        infs_trace::clear();
        infs_trace::enable();
    }
    let chaos_seed = args.cfg.faults.as_ref().map(|f| f.seed);
    let tune_seed = args.cfg.tune.as_ref().map(|t| t.seed);

    // The smoke scripts wait for this exact line before connecting.
    println!("infs-served listening on {addr}");
    if let Some(seed) = chaos_seed {
        println!("infs-served: CHAOS MODE (seed {seed}) — injecting deterministic faults");
    }
    if let Some(seed) = tune_seed {
        println!("infs-served: autotuning enabled (seed {seed})");
    }

    let stats = if args.shards > 1 {
        let cluster = Arc::new(ShardCluster::new(&args.cfg, args.shards));
        println!(
            "infs-served: {} shards × {} workers behind the tenant ring",
            cluster.shards(),
            args.cfg.workers
        );
        if let Err(e) = serve_reactor(&cluster, listener, &ReactorConfig::default()) {
            eprintln!("infs-served: reactor failed: {e}");
            return ExitCode::FAILURE;
        }
        cluster.shutdown()
    } else {
        let server = Arc::new(Server::new(args.cfg));
        let io = if args.legacy_io {
            serve_tcp(&server, listener)
        } else {
            serve_reactor(&server, listener, &ReactorConfig::default()).map(|_| ())
        };
        if let Err(e) = io {
            eprintln!("infs-served: accept loop failed: {e}");
            return ExitCode::FAILURE;
        }
        server.shutdown()
    };
    report(&stats);

    if let Some(path) = args.trace {
        infs_trace::disable();
        let metrics_path = format!("{path}.metrics.json");
        if let Err(e) = infs_trace::write_chrome(path.as_ref())
            .and_then(|()| infs_trace::write_metrics(metrics_path.as_ref()))
        {
            eprintln!("infs-served: cannot write trace {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("infs-served: trace written to {path} (+ {metrics_path})");
    }
    ExitCode::SUCCESS
}

//! `infs-loadgen` — deterministic open-loop load generator for a running
//! `infs-served` (`DESIGN.md` §14).
//!
//! ```text
//! infs-loadgen [--addr HOST:PORT] [--rate RPS] [--duration MS]
//!              [--connections N] [--tenants N] [--variants N]
//!              [--seed N] [--len N] [--json PATH]
//! ```
//!
//! Requests are scheduled on a fixed open-loop clock (`i / rate`) — the
//! generator does not slow down when the server queues, so tail latency is
//! measured honestly. The whole request stream derives from `--seed`: two
//! runs with the same flags are byte-identical. Prints a human summary;
//! `--json PATH` additionally writes the raw report for harnesses.

use infs_serve::loadgen::{self, LoadgenConfig};
use std::process::ExitCode;

struct Args {
    addr: String,
    json: Option<String>,
    cfg: LoadgenConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7199".to_string(),
        json: None,
        cfg: LoadgenConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        macro_rules! num {
            ($name:literal) => {
                value($name)?
                    .parse()
                    .map_err(|e| format!("{}: {e}", $name))?
            };
        }
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--json" => args.json = Some(value("--json")?),
            "--rate" => args.cfg.rate_rps = num!("--rate"),
            "--duration" => args.cfg.duration_ms = num!("--duration"),
            "--connections" => args.cfg.connections = num!("--connections"),
            "--tenants" => args.cfg.tenants = num!("--tenants"),
            "--variants" => args.cfg.variants = num!("--variants"),
            "--seed" => args.cfg.seed = num!("--seed"),
            "--len" => args.cfg.array_len = num!("--len"),
            "--help" | "-h" => return Err(
                "usage: infs-loadgen [--addr HOST:PORT] [--rate RPS] [--duration MS] [--connections N] [--tenants N] [--variants N] [--seed N] [--len N] [--json PATH]"
                    .to_string(),
            ),
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn json_report(r: &loadgen::LoadReport) -> String {
    let errors: Vec<String> = r
        .errors
        .iter()
        .map(|(k, n)| format!("\"{k}\":{n}"))
        .collect();
    format!(
        concat!(
            "{{\"sent\":{},\"ok\":{},\"lost\":{},\"elapsed_ms\":{},",
            "\"achieved_rps\":{:.2},\"p50_us\":{},\"p99_us\":{},\"max_us\":{},",
            "\"batched_responses\":{},\"artifact_hits\":{},\"errors\":{{{}}}}}"
        ),
        r.sent,
        r.ok,
        r.lost,
        r.elapsed_ms,
        r.achieved_rps,
        r.latency.percentile(0.50),
        r.latency.percentile(0.99),
        r.latency.max(),
        r.batched_responses,
        r.artifact_hits,
        errors.join(",")
    )
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "infs-loadgen: {} rps open-loop for {} ms over {} connections ({} tenants, {} variants, seed {})",
        args.cfg.rate_rps,
        args.cfg.duration_ms,
        args.cfg.connections,
        args.cfg.tenants,
        args.cfg.variants,
        args.cfg.seed,
    );
    let report = match loadgen::run(args.addr.as_str(), &args.cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("infs-loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "infs-loadgen: sent={} ok={} lost={} rps={:.1} p50={}us p99={}us max={}us batched={} artifact_hits={}",
        report.sent,
        report.ok,
        report.lost,
        report.achieved_rps,
        report.latency.percentile(0.50),
        report.latency.percentile(0.99),
        report.latency.max(),
        report.batched_responses,
        report.artifact_hits,
    );
    for (kind, n) in &report.errors {
        println!("infs-loadgen:   error {kind}: {n}");
    }
    if let Some(path) = args.json {
        if let Err(e) = std::fs::write(&path, json_report(&report) + "\n") {
            eprintln!("infs-loadgen: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("infs-loadgen: report written to {path}");
    }
    // Lost responses mean the server stalled past the read timeout — a
    // harness should treat that as failure.
    if report.lost > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

//! # infs-serve
//!
//! A resident, multi-tenant compile-and-execute service over the Infinity
//! Stream stack — the deployment face the paper implies but never builds: a
//! long-lived process that accepts kernels, compiles them into fat binaries,
//! caches the artifacts content-addressed, and executes regions on pooled
//! simulated machines that share one JIT memoization cache.
//!
//! Two faces, one [`Server`]:
//!
//! - **in-process**: [`Server::submit`] / [`Server::call`] — used by the
//!   integration tests and the throughput benchmark;
//! - **TCP**: [`net::serve_tcp`] speaks newline-delimited JSON (one
//!   [`Request`] per line in, one [`Response`] per line out) for the
//!   `infs-served` binary, with [`Client`] as the matching thin client.
//!
//! What the server owns:
//!
//! - a **bounded admission queue** ([`queue::AdmissionQueue`]): when full,
//!   requests are rejected immediately with a `backpressure` error carrying a
//!   retry-after hint instead of queueing without limit;
//! - a **worker pool**: each worker drains the queue and keeps a small pool
//!   of warm [`infinity_stream::Session`]s keyed by artifact × mode;
//! - a **content-addressed artifact cache** ([`artifact::ArtifactCache`]):
//!   compiled fat binaries keyed by kernel × symbols × geometries ×
//!   optimizer flag, shared across tenants;
//! - a **shared bounded JIT cache** ([`infs_runtime::JitCache`]): lowered
//!   command streams memoize across sessions and tenants (§4.2 of the
//!   paper, promoted to a service-wide resource);
//! - **per-request deadlines**: expired requests are cancelled between
//!   compiler stages ([`infs_isa::Compiler::compile_with`]) or before
//!   execution, and answered with a `timeout` error;
//! - **graceful shutdown**: admission closes, every admitted request still
//!   completes, workers drain and join ([`Server::shutdown`]);
//! - **fault tolerance** (`DESIGN.md` §10): a worker panic is caught, the
//!   worker's session pool rebuilt, and the request answered with a typed,
//!   retryable `worker-fault` error ([`ServeError::WorkerFault`]); both
//!   caches verify checksums on load, so corruption degrades to a miss; a
//!   `Health` verb reports `ok`/`degraded`/`draining` plus bank and fault
//!   counters; and [`ServeConfig::faults`] (the `--chaos SEED` flag) arms a
//!   deterministic [`infs_faults::FaultPlan`] for chaos drills — see the
//!   README operations runbook and `tests/chaos_smoke.rs`;
//! - **feedback-directed autotuning** (`DESIGN.md` §15): with
//!   [`ServeConfig::tune`] (the `--tune SEED` flag) set, an
//!   [`infs_tune::Tuner`] routes a deterministic sampled fraction of Inf-S
//!   execute and fused-pipeline traffic through explorer variants —
//!   alternative tiles, forced tiers, the round-trip residency policy —
//!   and promotes whichever variant actually beats the static §4.1/Eq-2
//!   heuristics on observed simulated cycles. Degradation events demote the
//!   incumbent and re-tune against post-fault reality.
//!
//! Every response carries a [`ResponseStats`] block — queue wait, compile
//! time, artifact/JIT cache hit flags, simulated cycles, and where the region
//! executed — so the serving layer is measurable from the first request.
//!
//! The queue/worker/cache architecture is `DESIGN.md` §8; the fault model
//! and degradation ladder are `DESIGN.md` §10.
//!
//! ```
//! use infs_serve::{demo, Request, RequestBody, CompileRequest, Server, ServeConfig};
//!
//! let server = Server::new(ServeConfig::default());
//! let response = server.call(Request {
//!     id: 1,
//!     tenant: "doc".into(),
//!     deadline_ms: None,
//!     body: RequestBody::Compile(CompileRequest {
//!         kernel: demo::scale(256),
//!         representative_syms: vec![],
//!         optimize: true,
//!     }),
//! });
//! assert!(response.ok);
//! let artifact = response.artifact.unwrap();
//! assert_eq!(artifact.len(), 16); // content-addressed id, stable across runs
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod cluster;
mod config;
pub mod demo;
mod error;
pub mod loadgen;
pub mod net;
pub mod protocol;
pub mod queue;
mod server;

pub use cluster::{Dispatch, ShardCluster};
pub use config::ServeConfig;
pub use error::ServeError;
pub use infs_tune::{TuneConfig, TuneStats, Tuner, Variant};
pub use net::{serve_reactor, serve_tcp, Client};
pub use protocol::{
    executed_label, ArrayPayload, CompileRequest, ExecuteRequest, HealthReport, MetricsReport,
    PipelineRequest, Request, RequestBody, Response, ResponseStats, ScalarOut, ShardHealth,
    StageStats, WireError, WireMode,
};
pub use server::{Reply, Server, ShutdownStats, Submitted, Ticket};

//! Server-side error types that are not client mistakes.

use crate::protocol::WireError;
use std::error::Error;
use std::fmt;

/// A fault inside the server itself (as opposed to a bad request or an
/// expected rejection). Currently the one variant the fault-injection
/// harness exercises; `#[non_exhaustive]` so more can follow.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The worker thread handling a request panicked. The panic was caught
    /// with `catch_unwind`, the worker's session pool was rebuilt, and the
    /// pool survived — only this request failed (`DESIGN.md` §10).
    WorkerFault {
        /// Id of the request whose handling panicked.
        request_id: u64,
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::WorkerFault {
                request_id,
                message,
            } => write!(
                f,
                "worker panicked handling request {request_id}: {message} \
                 (worker recovered; request is safe to retry)"
            ),
        }
    }
}

impl Error for ServeError {}

impl ServeError {
    /// The wire form of this error.
    pub fn to_wire(&self) -> WireError {
        match self {
            ServeError::WorkerFault { .. } => {
                WireError::new(WireError::WORKER_FAULT, self.to_string())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_fault_maps_to_the_wire_kind() {
        let e = ServeError::WorkerFault {
            request_id: 42,
            message: "boom".into(),
        };
        let w = e.to_wire();
        assert_eq!(w.kind, WireError::WORKER_FAULT);
        assert!(w.message.contains("request 42"));
        assert!(w.message.contains("boom"));
        assert!(w.message.contains("safe to retry"));
    }
}

//! The resident server: admission, worker pool, dispatch, shutdown.
//!
//! A [`Server`] owns everything long-lived — the bounded admission queue, the
//! content-addressed [`ArtifactCache`], the shared bounded
//! [`JitCache`], and a pool of worker threads each keeping a small pool of
//! warm [`Session`]s. Requests enter through [`Server::submit`] (in-process)
//! or the TCP front end in [`crate::net`]; both produce the same
//! [`Response`]s.

use crate::artifact::{format_id, parse_id, ArtifactCache, PipelineCache};
use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::protocol::{
    executed_label, ArrayPayload, CompileRequest, ExecuteRequest, HealthReport, MetricsReport,
    PipelineRequest, Request, RequestBody, Response, ResponseStats, ScalarOut, StageStats,
    WireError, WireMode,
};
use crate::queue::{AdmissionQueue, PushError};
use infinity_stream::{Session, SessionError};
use infs_faults::{FaultPlan, RetuneTrigger};
use infs_isa::{fnv1a, Compiler, FatBinary, IsaError};
use infs_runtime::{JitCache, Tier, TransposedLayout};
use infs_sdfg::ArrayId;
use infs_shard::{BatchMap, BatchStats, JoinOutcome};
use infs_sim::Machine;
use infs_tune::{Tuner, Variant};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Deadlines are clamped to this (one day) so `Instant` arithmetic cannot
/// overflow on absurd client-supplied values.
const MAX_DEADLINE_MS: u64 = 86_400_000;

/// Where a response goes once a worker (or the batcher's fan-out) produces
/// it. The synchronous [`Server::submit`] path wraps an `mpsc` channel; the
/// reactor front end wraps a closure that hands the serialized response to
/// its outbox.
pub struct Reply(Box<dyn FnOnce(Response) + Send>);

impl Reply {
    /// A reply delivered by calling `f` (from whatever thread finishes the
    /// request).
    pub fn new(f: impl FnOnce(Response) + Send + 'static) -> Self {
        Reply(Box::new(f))
    }

    /// Deliver the response.
    pub fn send(self, response: Response) {
        (self.0)(response);
    }
}

impl std::fmt::Debug for Reply {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Reply(..)")
    }
}

/// One admitted unit of work.
struct Job {
    request: Request,
    deadline: Instant,
    enqueued: Instant,
    reply: Reply,
    /// When this job leads an open batch: the batch key to close (fan the
    /// response out to joined waiters) once the response exists.
    batch_key: Option<u64>,
}

/// A request parked in an open batch, waiting for the leader's response.
struct BatchWaiter {
    id: u64,
    enqueued: Instant,
    reply: Reply,
}

/// Everything [`Server::admit`] hands back when admission fails: the intact
/// request (the shard router sheds it to a ring neighbor), the reply, and
/// the typed rejection to deliver if no one else takes it.
pub(crate) struct RejectedAdmission {
    pub(crate) request: Request,
    pub(crate) reply: Reply,
    pub(crate) response: Box<Response>,
}

/// A handle to an admitted request; [`Ticket::wait`] blocks for the response.
pub struct Ticket {
    id: u64,
    rx: mpsc::Receiver<Response>,
}

impl Ticket {
    /// Blocks until the worker answers.
    pub fn wait(self) -> Response {
        self.rx.recv().unwrap_or_else(|_| {
            Response::failure(
                self.id,
                WireError::new(WireError::EXECUTION, "worker dropped the request"),
                ResponseStats::default(),
            )
        })
    }
}

/// Outcome of [`Server::submit`]: either a [`Ticket`] for an admitted
/// request, or the immediate rejection response (backpressure with a
/// retry-after hint, or shutting-down).
pub enum Submitted {
    /// Admitted; wait on the ticket.
    Admitted(Ticket),
    /// Rejected at admission; the boxed response says why (boxed so the
    /// enum stays small next to a bare ticket).
    Rejected(Box<Response>),
}

/// Counters returned by [`Server::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownStats {
    /// Requests handled by workers (including per-request failures).
    pub served: u64,
    /// Requests rejected at admission (backpressure or shutting-down).
    pub rejected: u64,
    /// Artifact-cache (hits, misses, evictions).
    pub artifacts: (u64, u64, u64),
    /// Shared JIT-cache (hits, misses).
    pub jit: (u64, u64),
}

/// Pause/resume gate for the worker pool. Paused workers hold *after* popping
/// a job and before serving it — so tests and benchmarks can deterministically
/// fill the admission queue and observe backpressure. While paused, single
/// jobs can be let through with [`Gate::release`] permits, and the number of
/// workers parked at the gate is observable — together these make
/// "serve exactly one request now" a deterministic test step.
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

struct GateState {
    paused: bool,
    /// Jobs allowed through while paused.
    permits: u64,
    /// Workers currently parked in [`Gate::wait_open`].
    waiting: usize,
}

impl Gate {
    fn new() -> Self {
        Gate {
            state: Mutex::new(GateState {
                paused: false,
                permits: 0,
                waiting: 0,
            }),
            cv: Condvar::new(),
        }
    }

    fn wait_open(&self) {
        let mut st = self.state.lock().unwrap();
        while st.paused && st.permits == 0 {
            st.waiting += 1;
            st = self.cv.wait(st).unwrap();
            st.waiting -= 1;
        }
        if st.paused {
            st.permits -= 1;
        }
    }

    fn set(&self, paused: bool) {
        let mut st = self.state.lock().unwrap();
        st.paused = paused;
        if !paused {
            st.permits = 0;
            self.cv.notify_all();
        }
    }

    fn release(&self, permits: u64) {
        self.state.lock().unwrap().permits += permits;
        self.cv.notify_all();
    }

    fn waiting(&self) -> usize {
        self.state.lock().unwrap().waiting
    }
}

struct Shared {
    cfg: ServeConfig,
    queue: AdmissionQueue<Job>,
    artifacts: ArtifactCache,
    pipelines: PipelineCache,
    jit: Arc<JitCache>,
    gate: Gate,
    shutting_down: AtomicBool,
    served: AtomicU64,
    rejected: AtomicU64,
    started: Instant,
    /// The seeded chaos plan, when the server runs in chaos mode.
    faults: Option<Arc<FaultPlan>>,
    /// Worker panics caught and turned into [`ServeError::WorkerFault`].
    worker_faults: AtomicU64,
    /// Per-server sequence for the worker-panic fault schedule.
    fault_seq: AtomicU64,
    /// Per-server sequence for the artifact-corruption fault schedule.
    artifact_seq: AtomicU64,
    /// Open batches: identical in-flight requests coalesced onto one
    /// execution (`cfg.batching`); always present, bypassed when disabled.
    batches: BatchMap<BatchWaiter>,
    /// The online autotuner (`cfg.tune`, `DESIGN.md` §15); `None` when
    /// tuning is disabled.
    tuner: Option<Arc<Tuner>>,
    /// Live bank-quarantine watermark: the highest `banks_quarantined` count
    /// observed on any session's machine, so the `Health` verb reports
    /// quarantines that landed *after* boot (SRAM-flip scrubs), not just the
    /// plan's initial dead banks.
    banks_lost: AtomicU64,
}

impl Shared {
    /// Server-wide counters for the `Metrics` verb.
    fn metrics(&self) -> MetricsReport {
        let (artifact_hits, artifact_misses, artifact_evictions) = self.artifacts.stats();
        let (jit_hits, jit_misses) = self.jit.stats();
        let (pipeline_hits, pipeline_misses) = self.pipelines.stats();
        let batch = self.batches.stats();
        let tune = self.tuner.as_ref().map(|t| t.stats()).unwrap_or_default();
        MetricsReport {
            served: self.served.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            queue_depth: self.queue.len(),
            queue_capacity: self.queue.capacity(),
            artifact_hits,
            artifact_misses,
            artifact_evictions,
            jit_hits,
            jit_misses,
            jit_template_hits: self.jit.template_hits(),
            jit_evictions: self.jit.evictions(),
            pipeline_hits,
            pipeline_misses,
            batch_executions: batch.executions,
            batch_joined: batch.joined,
            batch_max_occupancy: batch.max_occupancy,
            tune_explored: tune.explored,
            tune_exploited: tune.exploited,
            tune_promotions: tune.promotions,
            tune_demotions: tune.demotions,
            tune_artifacts: tune.artifacts,
            workers: self.cfg.workers.max(1),
            uptime_ms: self.started.elapsed().as_millis() as u64,
        }
    }

    /// The `Health` verb: degradation status plus the fault counters that
    /// explain it (`DESIGN.md` §10). Bank figures reflect the configured
    /// fault plan's initial outage; per-session quarantines accrue inside
    /// each worker's machines.
    fn health(&self) -> HealthReport {
        let total_banks = self.cfg.system.n_banks;
        // Initial plan health minus quarantines observed at runtime (the
        // worst session's watermark — exact for single-session servers,
        // a conservative fleet signal otherwise).
        let initial_healthy = match &self.faults {
            Some(plan) => plan.initial_health(total_banks).healthy_count(),
            None => total_banks,
        };
        let lost = self
            .banks_lost
            .load(Ordering::Relaxed)
            .min(u64::from(initial_healthy)) as u32;
        let healthy_banks = initial_healthy - lost;
        let worker_faults = self.worker_faults.load(Ordering::Relaxed);
        let artifact_corruptions = self.artifacts.corruptions();
        let jit_corruptions = self.jit.corruptions();
        let status = if self.shutting_down.load(Ordering::SeqCst) {
            HealthReport::DRAINING
        } else if healthy_banks < total_banks
            || worker_faults > 0
            || artifact_corruptions > 0
            || jit_corruptions > 0
        {
            HealthReport::DEGRADED
        } else {
            HealthReport::OK
        };
        HealthReport {
            status: status.to_string(),
            healthy_banks,
            total_banks,
            worker_faults,
            artifact_corruptions,
            jit_corruptions,
            queue_depth: self.queue.len(),
            queue_capacity: self.queue.capacity(),
            workers: self.cfg.workers.max(1),
            uptime_ms: self.started.elapsed().as_millis() as u64,
            shards: Vec::new(),
        }
    }

    /// Panics iff the chaos plan schedules a worker fault for the next
    /// sequence number. Called only from compile/execute handling, inside the
    /// worker's `catch_unwind` — the panic is caught, counted, and answered
    /// as a retryable [`WireError::WORKER_FAULT`].
    fn maybe_panic(&self, request_id: u64) {
        if let Some(plan) = &self.faults {
            if plan.worker_panic(self.fault_seq.fetch_add(1, Ordering::Relaxed)) {
                panic!("injected worker fault (chaos): request {request_id}");
            }
        }
    }

    /// Corrupts the freshly inserted artifact when the chaos plan says so;
    /// the next load detects the bad checksum and recompiles.
    fn maybe_corrupt_artifact(&self, key: u64) {
        if let Some(plan) = &self.faults {
            if plan.corrupt_artifact(self.artifact_seq.fetch_add(1, Ordering::Relaxed)) {
                self.artifacts.corrupt(key);
            }
        }
    }
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        self.queue.close();
        // A paused pool must not wedge shutdown.
        self.gate.set(false);
    }
}

/// The resident multi-tenant compile-and-execute service.
pub struct Server {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Starts the worker pool and returns the running server.
    pub fn new(cfg: ServeConfig) -> Self {
        let jit = if cfg.jit_capacity == 0 {
            Arc::new(JitCache::new())
        } else {
            Arc::new(JitCache::bounded(cfg.jit_capacity))
        };
        let faults = cfg.faults.clone().map(|fc| Arc::new(FaultPlan::new(fc)));
        let tuner = cfg.tune.clone().map(|tc| Arc::new(Tuner::new(tc)));
        let shared = Arc::new(Shared {
            queue: AdmissionQueue::new(cfg.queue_capacity),
            artifacts: ArtifactCache::new(cfg.artifact_capacity),
            pipelines: PipelineCache::new(cfg.artifact_capacity),
            jit,
            gate: Gate::new(),
            shutting_down: AtomicBool::new(false),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            started: Instant::now(),
            faults,
            worker_faults: AtomicU64::new(0),
            fault_seq: AtomicU64::new(0),
            artifact_seq: AtomicU64::new(0),
            batches: BatchMap::new(),
            tuner,
            banks_lost: AtomicU64::new(0),
            cfg,
        });
        let workers = (0..shared.cfg.workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared, i))
            })
            .collect();
        Server {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// The configuration the server runs with.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.cfg
    }

    /// The shared admission path: coalesce into an open batch when possible,
    /// otherwise take a queue slot. On rejection everything is handed back —
    /// the request (so the shard router can shed it to a ring neighbor), the
    /// reply, and the rejection response — so no caller ever loses a
    /// request silently.
    pub(crate) fn admit(
        &self,
        request: Request,
        reply: Reply,
    ) -> Result<(), Box<RejectedAdmission>> {
        let id = request.id;
        let now = Instant::now();
        let deadline_ms = request
            .deadline_ms
            .unwrap_or(self.shared.cfg.default_deadline_ms)
            .min(MAX_DEADLINE_MS);
        let deadline = now + Duration::from_millis(deadline_ms);

        // Batching happens *before* admission, so joining consumes no queue
        // slot: a request rejected with retry-after that comes back while
        // "its" execution is still open attaches to it instead of competing
        // for capacity (and instead of spawning a duplicate execution).
        let mut reply = reply;
        let mut batch_key = None;
        if self.shared.cfg.batching {
            if let Some((key, guard)) = batch_identity(&request.body) {
                let waiter = BatchWaiter {
                    id,
                    enqueued: now,
                    reply,
                };
                match self.shared.batches.join_or_reserve(key, &guard, waiter) {
                    JoinOutcome::Joined => {
                        infs_trace::counter!("serve.batch_joined", 1u64);
                        return Ok(());
                    }
                    JoinOutcome::Reserved(w) => {
                        reply = w.reply;
                        batch_key = Some(key);
                    }
                    // A 64-bit key collision between different bodies:
                    // serve it unbatched, never from the other body's result.
                    JoinOutcome::Collision(w) => reply = w.reply,
                }
            }
        }

        let job = Job {
            request,
            deadline,
            enqueued: now,
            reply,
            batch_key,
        };
        let (job, error) = match self.shared.queue.push(job) {
            Ok(()) => return Ok(()),
            Err(PushError::Full(job)) => {
                let mut err = WireError::new(
                    WireError::BACKPRESSURE,
                    format!(
                        "admission queue full ({} queued)",
                        self.shared.queue.capacity()
                    ),
                );
                err.retry_after_ms = Some(self.shared.cfg.retry_after_ms);
                (job, err)
            }
            Err(PushError::Closed(job)) => (
                job,
                WireError::new(WireError::SHUTTING_DOWN, "server is shutting down"),
            ),
        };
        // The leader never entered the queue, so its reservation must not
        // strand waiters that joined in the meantime: fail them with the
        // same typed rejection (they retry, and typically re-join a batch
        // whose leader *did* get a slot).
        if let Some(key) = job.batch_key {
            for w in self.shared.batches.cancel(key) {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                w.reply.send(Response::failure(
                    w.id,
                    error.clone(),
                    ResponseStats::default(),
                ));
            }
        }
        self.shared.rejected.fetch_add(1, Ordering::Relaxed);
        Err(Box::new(RejectedAdmission {
            request: job.request,
            reply: job.reply,
            response: Box::new(Response::failure(id, error, ResponseStats::default())),
        }))
    }

    /// Submits a request. Full queue → immediate backpressure rejection with
    /// `retry_after_ms`; closed queue → shutting-down rejection; otherwise a
    /// [`Ticket`].
    pub fn submit(&self, request: Request) -> Submitted {
        let id = request.id;
        let (tx, rx) = mpsc::channel();
        let reply = Reply::new(move |response| {
            // A dead receiver (caller gone) is not a server error.
            let _ = tx.send(response);
        });
        match self.admit(request, reply) {
            Ok(()) => Submitted::Admitted(Ticket { id, rx }),
            Err(rej) => Submitted::Rejected(rej.response),
        }
    }

    /// Submits a request whose response is delivered through `reply` — the
    /// nonblocking entry the reactor front end uses. Rejections are
    /// delivered through the same reply, never dropped.
    pub fn submit_with(&self, request: Request, reply: Reply) {
        if let Err(rej) = self.admit(request, reply) {
            rej.reply.send(*rej.response);
        }
    }

    /// Submits and waits: the synchronous convenience used by the TCP front
    /// end. Rejections come back immediately as failure responses.
    pub fn call(&self, request: Request) -> Response {
        match self.submit(request) {
            Submitted::Admitted(ticket) => ticket.wait(),
            Submitted::Rejected(response) => *response,
        }
    }

    /// Holds workers after their next pop (test/bench hook for deterministic
    /// backpressure: pause, overfill the queue, observe rejections, resume).
    pub fn pause(&self) {
        self.shared.gate.set(true);
    }

    /// Releases paused workers.
    pub fn resume(&self) {
        self.shared.gate.set(false);
    }

    /// While paused, lets exactly `n` popped jobs through the gate — the
    /// deterministic single-step hook batching tests drive.
    pub fn release(&self, n: u64) {
        self.shared.gate.release(n);
    }

    /// Workers currently parked at the pause gate, each holding one popped
    /// job. Spinning until this is nonzero is the deterministic rendezvous
    /// for "a worker has picked up the request but not served it".
    pub fn gate_waiting(&self) -> usize {
        self.shared.gate.waiting()
    }

    /// Batching totals (executions, joins, max occupancy, collisions).
    pub fn batch_stats(&self) -> BatchStats {
        self.shared.batches.stats()
    }

    /// The in-process form of the `Metrics` verb (the shard cluster
    /// aggregates these across members).
    pub fn metrics(&self) -> MetricsReport {
        self.shared.metrics()
    }

    /// True once shutdown has begun (the TCP accept loop polls this).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }

    /// Closes admission. Queued and in-flight requests still complete; call
    /// [`Server::shutdown`] to wait for them. Idempotent — also triggered by
    /// a [`RequestBody::Shutdown`] request.
    pub fn begin_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Graceful shutdown: closes admission, drains every admitted request,
    /// joins the workers, and returns lifetime counters.
    pub fn shutdown(&self) -> ShutdownStats {
        self.shared.begin_shutdown();
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        ShutdownStats {
            served: self.shared.served.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            artifacts: self.shared.artifacts.stats(),
            jit: self.shared.jit.stats(),
        }
    }

    /// Currently queued (admitted, not yet picked up) requests.
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// Artifact-cache (hits, misses, evictions) so far.
    pub fn artifact_stats(&self) -> (u64, u64, u64) {
        self.shared.artifacts.stats()
    }

    /// The JIT memoization cache every session shares.
    pub fn jit(&self) -> Arc<JitCache> {
        self.shared.jit.clone()
    }

    /// The in-process form of the `Health` verb.
    pub fn health(&self) -> HealthReport {
        self.shared.health()
    }

    /// Worker panics caught (each answered as a retryable `worker-fault`).
    pub fn worker_faults(&self) -> u64 {
        self.shared.worker_faults.load(Ordering::Relaxed)
    }

    /// The server's chaos plan, when one is configured.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.shared.faults.clone()
    }

    /// The online autotuner, when tuning is enabled (`DESIGN.md` §15).
    pub fn tuner(&self) -> Option<Arc<Tuner>> {
        self.shared.tuner.clone()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A warm session plus the per-session state that must travel with it: the
/// retune trigger watermarking the machine's monotone degradation counters
/// (fault counters survive `Session::reset`, so the watermark must too).
struct PooledSession {
    session: Session,
    retune: RetuneTrigger,
}

/// A worker's pool of warm sessions, keyed by artifact id × execution mode.
/// Bounded; eviction drops the least-recently-used session (it is just
/// rebuilt on the next request for that pair).
struct SessionPool {
    cap: usize,
    clock: u64,
    sessions: HashMap<(u64, u8), (PooledSession, u64)>,
}

impl SessionPool {
    fn new(cap: usize) -> Self {
        SessionPool {
            cap: cap.max(1),
            clock: 0,
            sessions: HashMap::new(),
        }
    }

    /// Removes a pooled session for exclusive use (put it back after).
    fn take(&mut self, key: (u64, u8)) -> Option<PooledSession> {
        self.sessions.remove(&key).map(|(s, _)| s)
    }

    fn put(&mut self, key: (u64, u8), session: PooledSession) {
        self.clock += 1;
        if self.sessions.len() >= self.cap && !self.sessions.contains_key(&key) {
            if let Some(&victim) = self
                .sessions
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k)
            {
                self.sessions.remove(&victim);
            }
        }
        self.sessions.insert(key, (session, self.clock));
    }
}

/// The coalescing identity of a batchable request body: the FNV-1a hash of
/// its canonical JSON, plus that JSON as the exact guard (so a 64-bit hash
/// collision degrades to an unbatched execution, never a wrong answer).
/// Tenant, id, and deadline live on the envelope, not the body — identical
/// work batches across tenants because the result is identical.
fn batch_identity(body: &RequestBody) -> Option<(u64, String)> {
    match body {
        RequestBody::Compile(_) | RequestBody::Execute(_) | RequestBody::Pipeline(_) => {
            let guard = serde_json::to_string(body).ok()?;
            Some((fnv1a(guard.as_bytes()), guard))
        }
        // Control verbs are cheap and side-effecting; never coalesced.
        _ => None,
    }
}

fn worker_loop(shared: &Arc<Shared>, index: usize) {
    infs_trace::name_thread(&format!("worker {index}"));
    let mut pool = SessionPool::new(shared.cfg.sessions_per_worker);
    while let Some(job) = shared.queue.pop() {
        shared.gate.wait_open();
        // Destructure first so the reply survives a panicking handler — the
        // client must get a typed error, not a hang.
        let Job {
            request,
            deadline,
            enqueued,
            reply,
            batch_key,
        } = job;
        let id = request.id;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handle(shared, &mut pool, request, deadline, enqueued)
        }));
        let mut response = outcome.unwrap_or_else(|payload| {
            // The panic may have left pooled sessions half-mutated; discard
            // them all and rebuild from scratch. The worker itself survives.
            pool = SessionPool::new(shared.cfg.sessions_per_worker);
            shared.worker_faults.fetch_add(1, Ordering::Relaxed);
            infs_trace::counter!("serve.worker_faults", 1u64);
            let fault = ServeError::WorkerFault {
                request_id: id,
                message: panic_message(payload.as_ref()),
            };
            Response::failure(id, fault.to_wire(), ResponseStats::default())
        });
        shared.served.fetch_add(1, Ordering::Relaxed);
        if let Some(key) = batch_key {
            // Close the batch this job led — even on failure: identical
            // requests fail identically, and retryable errors stay
            // retryable for every member. Then fan the one response out.
            let waiters = shared.batches.close(key);
            let size = 1 + waiters.len() as u64;
            response.stats.batch_size = size;
            if !waiters.is_empty() {
                infs_trace::counter!("serve.batch_fanout", waiters.len() as u64);
            }
            let now = Instant::now();
            for w in waiters {
                let mut r = response.clone();
                r.id = w.id;
                // The follower did no work of its own: its wall clock runs
                // from *its* admission, its service time is (at most) the
                // leader's, and everything else was time spent attached to
                // the batch — so the PR 3 stats invariants
                // (`total == queue_wait + service`,
                //  `queue_wait + compile + execute <= total`) still hold.
                let total = now.duration_since(w.enqueued).as_micros() as u64;
                let service = response.stats.service_us.min(total);
                r.stats.total_us = total;
                r.stats.service_us = service;
                r.stats.queue_wait_us = total - service;
                r.stats.execute_us = response.stats.execute_us.min(service);
                r.stats.compile_us = 0;
                r.stats.batched = true;
                for stage in &mut r.stats.stages {
                    stage.compile_us = 0;
                }
                shared.served.fetch_add(1, Ordering::Relaxed);
                w.reply.send(r);
            }
        }
        reply.send(response);
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Successful-handler payload, merged into the response scaffold.
#[derive(Default)]
struct Payload {
    artifact: Option<String>,
    outputs: Vec<ArrayPayload>,
    scalars: Vec<ScalarOut>,
    metrics: Option<MetricsReport>,
    health: Option<HealthReport>,
}

/// Trace label for a request body.
fn request_kind(body: &RequestBody) -> &'static str {
    match body {
        RequestBody::Compile(_) => "compile",
        RequestBody::Execute(_) => "execute",
        RequestBody::Pipeline(_) => "pipeline",
        RequestBody::Ping => "ping",
        RequestBody::Metrics => "metrics",
        RequestBody::Health => "health",
        RequestBody::Shutdown => "shutdown",
    }
}

fn handle(
    shared: &Shared,
    pool: &mut SessionPool,
    request: Request,
    deadline: Instant,
    enqueued: Instant,
) -> Response {
    let picked = Instant::now();
    let mut stats = ResponseStats {
        queue_wait_us: picked.duration_since(enqueued).as_micros() as u64,
        // Batchable work answers for at least itself; the batch leader's
        // fan-out overwrites this with the real occupancy. Control verbs
        // keep 0 (batching does not apply).
        batch_size: u64::from(matches!(
            &request.body,
            RequestBody::Compile(_) | RequestBody::Execute(_) | RequestBody::Pipeline(_)
        )),
        ..ResponseStats::default()
    };
    // Per-request root span: the queue wait is recorded retroactively as a
    // sibling interval ending where the service span begins.
    let mut span = infs_trace::span!(
        "serve.request",
        id = request.id,
        tenant = request.tenant.as_str(),
        kind = request_kind(&request.body),
    );
    if infs_trace::enabled() {
        let wait_ns = (stats.queue_wait_us).saturating_mul(1000);
        let now_ns = infs_trace::now_ns();
        infs_trace::record_span_at(
            "serve.queue_wait",
            now_ns.saturating_sub(wait_ns),
            wait_ns,
            vec![("id", infs_trace::ArgValue::UInt(request.id))],
        );
    }
    let result = if picked >= deadline {
        Err(WireError::new(
            WireError::TIMEOUT,
            "deadline expired while queued",
        ))
    } else {
        match &request.body {
            RequestBody::Ping => Ok(Payload::default()),
            RequestBody::Metrics => Ok(Payload {
                metrics: Some(shared.metrics()),
                ..Payload::default()
            }),
            RequestBody::Health => Ok(Payload {
                health: Some(shared.health()),
                ..Payload::default()
            }),
            RequestBody::Shutdown => {
                shared.begin_shutdown();
                Ok(Payload::default())
            }
            RequestBody::Compile(c) => {
                shared.maybe_panic(request.id);
                handle_compile(shared, c, deadline, &mut stats)
            }
            RequestBody::Execute(e) => {
                shared.maybe_panic(request.id);
                handle_execute(shared, pool, e, deadline, &mut stats)
            }
            RequestBody::Pipeline(p) => {
                shared.maybe_panic(request.id);
                handle_pipeline(shared, p, deadline, &mut stats)
            }
        }
    };
    stats.service_us = picked.elapsed().as_micros() as u64;
    stats.total_us = stats.queue_wait_us + stats.service_us;
    span.arg("ok", result.is_ok());
    span.arg("total_us", stats.total_us);
    match result {
        Ok(payload) => {
            let mut r = Response::success(request.id, stats);
            r.artifact = payload.artifact;
            r.outputs = payload.outputs;
            r.scalars = payload.scalars;
            r.metrics = payload.metrics;
            r.health = payload.health;
            r
        }
        Err(e) => Response::failure(request.id, e, stats),
    }
}

fn bad_request(message: impl Into<String>) -> WireError {
    WireError::new(WireError::BAD_REQUEST, message)
}

/// The content-addressing key of a compile request: kernel JSON × symbol
/// binding × geometry set × optimizer flag. Stable across processes (FNV-1a
/// over the canonical encoding), so a restarted server re-derives the same
/// artifact ids.
fn compile_key(compiler: &Compiler, c: &CompileRequest) -> Result<u64, WireError> {
    let kernel = serde_json::to_string(&c.kernel)
        .map_err(|e| bad_request(format!("unserializable kernel: {e}")))?;
    let tag = format!(
        "{kernel}|syms={:?}|opt={}|geoms={:?}",
        c.representative_syms, c.optimize, compiler.geometries
    );
    Ok(fnv1a(tag.as_bytes()))
}

fn handle_compile(
    shared: &Shared,
    c: &CompileRequest,
    deadline: Instant,
    stats: &mut ResponseStats,
) -> Result<Payload, WireError> {
    let compiler = Compiler {
        optimize: c.optimize,
        ..Compiler::default()
    };
    let key = compile_key(&compiler, c)?;
    let binary = if let Some(cached) = shared.artifacts.get(key) {
        stats.artifact_cache_hit = true;
        cached
    } else {
        let t0 = Instant::now();
        let _span = infs_trace::span!("serve.compile", optimize = c.optimize);
        let region = compiler
            .compile_with(c.kernel.clone(), &c.representative_syms, &mut |_stage| {
                Instant::now() < deadline
            })
            .map_err(|e| match e {
                IsaError::Cancelled(stage) => WireError::new(
                    WireError::TIMEOUT,
                    format!("deadline expired before the {stage} stage"),
                ),
                other => WireError::new(WireError::COMPILE, other.to_string()),
            })?;
        stats.compile_us = t0.elapsed().as_micros() as u64;
        let mut fb = FatBinary::new();
        fb.push(region);
        let inserted = shared.artifacts.insert(key, Arc::new(fb));
        shared.maybe_corrupt_artifact(key);
        inserted
    };
    stats.tensorizable = binary.regions.first().map(|r| r.tensorizable);
    Ok(Payload {
        artifact: Some(format_id(key)),
        ..Payload::default()
    })
}

/// Resolves the binary an execute request targets: a cached artifact id, or
/// an inline `FatBinary::to_json` payload registered under its content hash.
fn resolve_binary(shared: &Shared, e: &ExecuteRequest) -> Result<(u64, Arc<FatBinary>), WireError> {
    match (&e.artifact, &e.binary) {
        (Some(id_str), None) => {
            let id = parse_id(id_str)
                .ok_or_else(|| bad_request(format!("malformed artifact id '{id_str}'")))?;
            let binary = shared.artifacts.get(id).ok_or_else(|| {
                WireError::new(
                    WireError::UNKNOWN_ARTIFACT,
                    format!("no artifact {id_str} in the cache (compile first?)"),
                )
            })?;
            Ok((id, binary))
        }
        (None, Some(json)) => {
            let binary = FatBinary::from_json(json)
                .map_err(|err| bad_request(format!("unparseable inline binary: {err}")))?;
            let id = binary
                .content_hash()
                .map_err(|err| bad_request(format!("unhashable inline binary: {err}")))?;
            Ok((id, shared.artifacts.insert(id, Arc::new(binary))))
        }
        _ => Err(bad_request(
            "exactly one of `artifact` / `binary` must be set",
        )),
    }
}

/// The tuner's table key for an execute target: the content-addressed
/// artifact id refined by region name and symbol binding, because the tile
/// candidate space (and hence the whole variant table) depends on the
/// concrete instantiation, not just the artifact.
fn tune_key(artifact_id: u64, e: &ExecuteRequest) -> u64 {
    fnv1a(format!("{artifact_id:016x}|{}|{:?}", e.region, e.syms).as_bytes())
}

/// Enumerates the candidate variant space for one execute target
/// (`DESIGN.md` §15): the static-heuristic baseline, up to four of the
/// layout planner's next-ranked feasible tiles (element 0 of the ranking
/// *is* the §4.1 pick the baseline already runs), and the two forced tiers.
/// Host-only (non-tensorizable) instantiations get just the baseline —
/// there is no placement to tune.
fn execute_candidates(shared: &Shared, binary: &FatBinary, e: &ExecuteRequest) -> Vec<Variant> {
    let mut list = vec![Variant::Baseline];
    let Some(instance) = binary
        .region(&e.region)
        .and_then(|r| r.instantiate(&e.syms).ok())
    else {
        return list;
    };
    let Some(tdfg) = &instance.tdfg else {
        return list;
    };
    let hw = shared.cfg.system.hw();
    if let Ok(ranked) = TransposedLayout::ranked_candidates(tdfg, &instance.hints, &hw) {
        for tile in ranked.iter().skip(1).take(4) {
            list.push(Variant::Tile(tile.dims().to_vec()));
        }
    }
    list.push(Variant::ForceInMemory);
    list.push(Variant::ForceNearMemory);
    list
}

/// Applies a decided variant's overrides to the session machine. The machine
/// clamps forced tiers to what health and feasibility allow, so an explorer
/// variant can never place a region somewhere it cannot run. Tile dims the
/// geometry layer rejects (impossible for planner-ranked tiles; defensive
/// against rebuilt tables) silently fall back to the heuristic.
fn apply_variant(machine: &mut Machine, variant: &Variant) {
    match variant {
        Variant::Baseline | Variant::Roundtrip => {}
        Variant::Tile(dims) => {
            if let Ok(tile) = infs_geom::TileShape::new(dims.clone()) {
                machine.set_tile_override(Some(tile));
            }
        }
        Variant::ForceInMemory => machine.set_tier_override(Some(Tier::InMemory)),
        Variant::ForceNearMemory => machine.set_tier_override(Some(Tier::NearMemory)),
    }
}

fn handle_execute(
    shared: &Shared,
    pool: &mut SessionPool,
    e: &ExecuteRequest,
    deadline: Instant,
    stats: &mut ResponseStats,
) -> Result<Payload, WireError> {
    let (artifact_id, binary) = resolve_binary(shared, e)?;
    // Validate array ids and lengths up front: functional memory's
    // `write_array` treats mismatches as programming errors and panics.
    let arrays = binary
        .regions
        .first()
        .ok_or_else(|| bad_request("inline binary contains no regions"))?
        .kernel()
        .arrays();
    for p in &e.inputs {
        let decl = arrays
            .get(p.array as usize)
            .ok_or_else(|| bad_request(format!("input array id {} out of range", p.array)))?;
        if p.data.len() as u64 != decl.num_elements() {
            return Err(bad_request(format!(
                "input array {} ('{}') has {} elements, got {}",
                p.array,
                decl.name,
                decl.num_elements(),
                p.data.len()
            )));
        }
    }
    for &out in &e.outputs {
        if arrays.get(out as usize).is_none() {
            return Err(bad_request(format!("output array id {out} out of range")));
        }
    }
    stats.tensorizable = binary.region(&e.region).map(|r| r.tensorizable);

    let key = (artifact_id, e.mode.index());
    let mut pooled = match pool.take(key) {
        Some(mut p) => {
            // Pooled machine, unrelated tenant: wipe functional state.
            p.session.reset();
            p
        }
        None => {
            let mut s = Session::with_jit(
                shared.cfg.system.clone(),
                (*binary).clone(),
                e.mode.exec_mode(),
                shared.jit.clone(),
            )
            .map_err(|err| bad_request(format!("unusable binary: {err}")))?;
            // Chaos mode: fresh machines inherit the server's fault plan, so
            // SRAM flips, dead banks, and NoC faults reach simulated runs.
            if let Some(plan) = &shared.faults {
                s.machine().set_fault_plan(plan.clone());
            }
            // Audit hook (the tuning soak installs `infs-check` here): every
            // run — incumbent or explorer — is validated before commit.
            if let Some(auditor) = &shared.cfg.auditor {
                s.machine().set_region_auditor(Some(auditor.clone()));
            }
            PooledSession {
                session: s,
                retune: RetuneTrigger::new(),
            }
        }
    };

    // Tuning covers full Inf-S executes: that is the mode where the §4.1
    // tile and Eq-2 tier decisions — the variant space — actually apply.
    let tuned = match &shared.tuner {
        Some(tuner) if e.mode == WireMode::InfS => {
            let tk = tune_key(artifact_id, e);
            let d = tuner.decide(tk, || execute_candidates(shared, &binary, e));
            apply_variant(pooled.session.machine(), &d.variant);
            Some((tuner, tk, d))
        }
        _ => None,
    };
    let result = run_region(&mut pooled.session, e, deadline, stats);
    {
        let machine = pooled.session.machine();
        machine.set_tile_override(None);
        machine.set_tier_override(None);
        // Fault-driven retune: degradation events that landed since this
        // session's last run (bank quarantines, regions pushed off their
        // Eq-2 tier — overridden runs never count) invalidate every cycle
        // measured on the healthier machine. Demote instead of recording:
        // fault-polluted cycles must not enter the table.
        let events = pooled
            .retune
            .observe(machine.fault_counters().degradation_events());
        shared.banks_lost.fetch_max(
            machine.fault_counters().banks_quarantined,
            Ordering::Relaxed,
        );
        if let Some((tuner, tk, d)) = &tuned {
            stats.tuned_variant = Some(d.variant.label());
            stats.tuned_explore = d.explore;
            if events > 0 {
                tuner.degrade(*tk);
            } else if result.is_ok() {
                tuner.record(*tk, d, stats.cycles);
            }
        }
    }
    pool.put(key, pooled);
    Ok(Payload {
        artifact: Some(format_id(artifact_id)),
        ..result?
    })
}

/// Maps a pipeline compile failure onto the wire error vocabulary: graphs
/// that can never run (structure, capacity) are the client's fault; a stage
/// kernel the compiler rejects is a compile error.
fn pipeline_error(e: infs_pipeline::PipelineError) -> WireError {
    match &e {
        infs_pipeline::PipelineError::Invalid(_)
        | infs_pipeline::PipelineError::Capacity { .. } => bad_request(e.to_string()),
        _ => WireError::new(WireError::COMPILE, e.to_string()),
    }
}

fn handle_pipeline(
    shared: &Shared,
    p: &PipelineRequest,
    deadline: Instant,
    stats: &mut ResponseStats,
) -> Result<Payload, WireError> {
    let graph = infs_pipeline::PipelineGraph::from_json(&p.graph)
        .map_err(|e| bad_request(format!("unparseable pipeline graph: {e}")))?;
    // Deserialization bypasses the builder, so gate before planning anything.
    graph.validate().map_err(pipeline_error)?;
    let key = graph.content_key().map_err(pipeline_error)?;

    // Pipeline-level artifact cache: the whole graph — compiled stages,
    // residency plan, negotiated tile — is one content-addressed artifact.
    let compiled = if let Some(cached) = shared.pipelines.get(key) {
        stats.artifact_cache_hit = true;
        cached
    } else {
        let t0 = Instant::now();
        let _span = infs_trace::span!("serve.pipeline_compile", graph = graph.name.as_str());
        let compiled =
            infs_pipeline::compile(&graph, &shared.cfg.system).map_err(pipeline_error)?;
        stats.compile_us = t0.elapsed().as_micros() as u64;
        shared.pipelines.insert(key, Arc::new(compiled))
    };

    let tensors = &compiled.graph().tensors;
    for payload in &p.inputs {
        let decl = tensors.get(payload.array as usize).ok_or_else(|| {
            bad_request(format!("input tensor id {} out of range", payload.array))
        })?;
        if payload.data.len() as u64 != decl.num_elements() {
            return Err(bad_request(format!(
                "input tensor {} ('{}') has {} elements, got {}",
                payload.array,
                decl.name,
                decl.num_elements(),
                payload.data.len()
            )));
        }
    }
    for &out in &p.outputs {
        if tensors.get(out as usize).is_none() {
            return Err(bad_request(format!("output tensor id {out} out of range")));
        }
    }
    if Instant::now() >= deadline {
        return Err(WireError::new(
            WireError::TIMEOUT,
            "deadline expired before pipeline execution",
        ));
    }

    // Pipelines run on a fresh machine per request: the graph owns its whole
    // tensor table, so there is no artifact×mode session to keep warm.
    let mut machine = Machine::new(shared.cfg.system.clone(), tensors);
    if let Some(plan) = &shared.faults {
        machine.set_fault_plan(plan.clone());
    }
    if let Some(auditor) = &shared.cfg.auditor {
        machine.set_region_auditor(Some(auditor.clone()));
    }
    for payload in &p.inputs {
        machine
            .memory()
            .write_array(ArrayId(payload.array), &payload.data);
    }

    // Residency-policy tuning (`DESIGN.md` §15): a fused pipeline request may
    // be routed through the per-kernel round trip instead — legal because
    // the two schedules produce bitwise-identical outputs (the PR 7
    // invariant) — to learn which is actually cheaper for this graph.
    // Explicit round-trip requests are a baseline measurement; never tuned.
    let tuned = match &shared.tuner {
        Some(tuner) if p.fused => {
            let tk = fnv1a(format!("pipeline|{key:016x}|{}", p.mode.index()).as_bytes());
            let d = tuner.decide(tk, || vec![Variant::Baseline, Variant::Roundtrip]);
            Some((tuner, tk, d))
        }
        _ => None,
    };
    let run_fused = match &tuned {
        Some((_, _, d)) => d.variant != Variant::Roundtrip,
        None => p.fused,
    };

    let t0 = Instant::now();
    infs_trace::counter!("serve.executions", 1u64);
    let mut span = infs_trace::span!(
        "serve.pipeline",
        graph = compiled.graph().name.as_str(),
        fused = run_fused,
    );
    let report = if run_fused {
        compiled.run_fused(&mut machine, p.mode.exec_mode())
    } else {
        compiled.run_roundtrip(&mut machine, p.mode.exec_mode())
    }
    .map_err(|e| WireError::new(WireError::EXECUTION, e.to_string()))?;
    span.arg("cycles", report.total_cycles);
    drop(span);
    if let Some((tuner, tk, d)) = &tuned {
        stats.tuned_variant = Some(d.variant.label());
        stats.tuned_explore = d.explore;
        tuner.record(*tk, d, report.total_cycles);
    }
    stats.execute_us = t0.elapsed().as_micros() as u64;
    stats.cycles = report.total_cycles;
    stats.executed = report
        .stages
        .last()
        .map(|s| executed_label(s.region.executed).to_string());
    stats.stages = report
        .stages
        .iter()
        .enumerate()
        .map(|(i, s)| StageStats {
            name: s.stage.clone(),
            // Cache hits charge no compile time, matching the top-level rule.
            compile_us: if stats.artifact_cache_hit {
                0
            } else {
                compiled.compile_ns().get(i).copied().unwrap_or(0) / 1000
            },
            execute_us: s.host_ns / 1000,
            cycles: s.region.cycles,
            prepare_stall_cycles: s.prepare_stall,
            prefetch_hidden_cycles: s.prefetch_hidden,
            executed: executed_label(s.region.executed).to_string(),
        })
        .collect();

    Ok(Payload {
        artifact: Some(format_id(key)),
        outputs: p
            .outputs
            .iter()
            .map(|&id| ArrayPayload {
                array: id,
                data: machine.memory_ref().array(ArrayId(id)).to_vec(),
            })
            .collect(),
        scalars: Vec::new(),
        metrics: None,
        health: None,
    })
}

fn run_region(
    session: &mut Session,
    e: &ExecuteRequest,
    deadline: Instant,
    stats: &mut ResponseStats,
) -> Result<Payload, WireError> {
    if Instant::now() >= deadline {
        return Err(WireError::new(
            WireError::TIMEOUT,
            "deadline expired before execution",
        ));
    }
    for p in &e.inputs {
        session.memory().write_array(ArrayId(p.array), &p.data);
    }
    let t0 = Instant::now();
    // The fan-out correctness tests pin "K identical requests, one
    // execution" on this counter.
    infs_trace::counter!("serve.executions", 1u64);
    let mut span = infs_trace::span!("serve.execute", region = e.region.as_str());
    let report = session
        .run(&e.region, &e.syms, &e.params)
        .map_err(|err| match err {
            SessionError::UnknownRegion(name) => WireError::new(
                WireError::UNKNOWN_REGION,
                format!("no region named '{name}' in the artifact"),
            ),
            other => WireError::new(WireError::EXECUTION, other.to_string()),
        })?;
    span.arg("cycles", report.cycles);
    span.arg("jit_hit", report.jit_hit.unwrap_or(false));
    drop(span);
    stats.execute_us = t0.elapsed().as_micros() as u64;
    stats.jit_cache_hit = report.jit_hit;
    stats.jit_outcome = report.jit_outcome.map(|o| {
        match o {
            infs_sim::JitOutcome::ConcreteHit => "concrete",
            infs_sim::JitOutcome::TemplateHit => "template",
            infs_sim::JitOutcome::Miss => "miss",
        }
        .to_string()
    });
    stats.cycles = report.cycles;
    stats.executed = Some(executed_label(report.executed).to_string());
    Ok(Payload {
        artifact: None,
        outputs: e
            .outputs
            .iter()
            .map(|&id| ArrayPayload {
                array: id,
                data: session.memory_ref().array(ArrayId(id)).to_vec(),
            })
            .collect(),
        scalars: report
            .scalars
            .into_iter()
            .map(|(name, value)| ScalarOut { name, value })
            .collect(),
        metrics: None,
        health: None,
    })
}

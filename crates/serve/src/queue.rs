//! The bounded admission queue: explicit backpressure instead of unbounded
//! buffering, and close-then-drain semantics for graceful shutdown.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back so the caller can
    /// reject with a retry hint.
    Full(T),
    /// The queue is closed (shutdown began); nothing is admitted any more.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Consumers currently blocked inside [`AdmissionQueue::pop`].
    waiters: usize,
}

/// A bounded MPMC queue: producers get an immediate `Full` rejection at
/// capacity (no blocking producers — backpressure is the *client's* problem,
/// surfaced as a retry-after), consumers block until an item arrives or the
/// queue is closed **and** drained.
pub struct AdmissionQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// An open queue admitting at most `capacity` queued items.
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
                waiters: 0,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently queued items.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits an item, or refuses with [`PushError::Full`] /
    /// [`PushError::Closed`].
    ///
    /// # Errors
    ///
    /// Returns the item back inside the error so no request is ever lost
    /// silently.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Takes the next item, blocking while the queue is open but empty.
    /// Returns `None` once the queue is closed **and** fully drained — the
    /// worker-exit signal: every admitted request is still handed out first.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner.waiters += 1;
            inner = self.ready.wait(inner).unwrap();
            inner.waiters -= 1;
        }
    }

    /// Consumers currently blocked in [`AdmissionQueue::pop`]. A rendezvous
    /// hook for deterministic tests ("spin until N workers are parked") —
    /// not a scheduling signal.
    pub fn waiters(&self) -> usize {
        self.inner.lock().unwrap().waiters
    }

    /// Closes admission (new pushes fail) and wakes every blocked consumer.
    /// Queued items remain poppable — close-then-drain is how graceful
    /// shutdown completes every admitted request.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// True once [`AdmissionQueue::close`] has run.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_rejects_with_the_item() {
        let q = AdmissionQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        match q.push(3) {
            Err(PushError::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
        // Draining one slot re-opens admission.
        assert_eq!(q.pop(), Some(1));
        q.push(3).unwrap();
    }

    #[test]
    fn closed_queue_rejects_but_drains() {
        let q = AdmissionQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert!(matches!(q.push(3), Err(PushError::Closed(3))));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let q = Arc::new(AdmissionQueue::<u32>::new(4));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || q.pop())
            })
            .collect();
        // Deterministic rendezvous: wait until all three consumers are
        // *observably parked* in `pop` before closing — no timing
        // assumption, so a loaded CI machine can't turn this into a race.
        // (If wakeup were broken this would hang and trip the test
        // timeout rather than flake-pass.)
        while q.waiters() < 3 {
            std::thread::yield_now();
        }
        q.push(9).unwrap_or_else(|_| panic!("open queue"));
        q.close();
        let got: Vec<Option<u32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(got.iter().filter(|g| g.is_some()).count(), 1);
        assert_eq!(got.iter().filter(|g| g.is_none()).count(), 2);
        assert_eq!(q.waiters(), 0);
    }

    #[test]
    fn mpmc_delivery_is_exactly_once() {
        let q = Arc::new(AdmissionQueue::<u64>::new(1024));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for i in 0..512 {
            // Capacity 1024 and only 512 pushes: never Full.
            q.push(i).unwrap_or_else(|_| panic!("push {i}"));
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..512).collect::<Vec<u64>>());
    }
}

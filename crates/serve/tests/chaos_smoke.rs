//! The chaos acceptance test (`DESIGN.md` §10): a server under a seeded
//! fault plan — dead banks, injected worker panics, artifact corruption —
//! answers every request with success or a typed error (never a hang), its
//! degraded outputs stay bit-identical to the healthy host reference, JIT
//! corruption self-heals, identical seeds reproduce identical outcomes, and
//! graceful shutdown still drains everything admitted.

use infs_faults::{FaultConfig, RetryPolicy};
use infs_serve::{
    demo, ArrayPayload, Client, ExecuteRequest, HealthReport, Request, RequestBody, Response,
    ServeConfig, Server, Submitted, WireError, WireMode,
};
use std::sync::Arc;

/// Injected worker panics are expected noise here; keep them out of the test
/// output while leaving real assertion panics fully reported.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !message.contains("injected worker fault") {
                default(info);
            }
        }));
    });
}

/// Every error kind a chaos run may legitimately produce. Anything else —
/// or a hang — is a failure of the degradation ladder.
fn assert_typed(step: &str, r: &Response) {
    if r.ok {
        return;
    }
    let kind = r
        .error
        .as_ref()
        .map(|e| e.kind.as_str())
        .expect("failure responses carry an error");
    let allowed = [
        WireError::WORKER_FAULT,
        WireError::UNKNOWN_ARTIFACT,
        WireError::BACKPRESSURE,
        WireError::TIMEOUT,
        WireError::SHUTTING_DOWN,
    ];
    assert!(
        allowed.contains(&kind),
        "{step}: untyped failure kind '{kind}'"
    );
}

/// The chaos preset used by every test below: aggressive panic and
/// corruption rates (so a short run sees several of each) plus enough dead
/// banks to break the in-memory quorum, and none of the latency-only NoC
/// noise (covered by the simulator-level degradation tests).
fn chaos(seed: u64) -> FaultConfig {
    FaultConfig {
        seed,
        dead_banks: 40, // 24 of 64 healthy: below the in-memory quorum
        worker_panic_period: 7,
        artifact_corrupt_period: 4,
        ..FaultConfig::none()
    }
}

fn chaos_server(seed: u64) -> Server {
    Server::new(ServeConfig {
        workers: 2,
        faults: Some(chaos(seed)),
        ..ServeConfig::default()
    })
}

/// Small enough that even healthy Inf-S stays on the stream engines, so the
/// chaos matrix is cheap per request.
const N: u64 = 256;
/// Large enough that healthy Inf-S goes in-memory (the JIT-carrying path).
const N_BIG: u64 = 1 << 17;

fn compile_req(id: u64, n: u64) -> Request {
    Request {
        id,
        tenant: "chaos".into(),
        deadline_ms: None,
        body: RequestBody::Compile(infs_serve::CompileRequest {
            kernel: demo::vec_add(n),
            representative_syms: vec![],
            optimize: true,
        }),
    }
}

fn execute_req(id: u64, artifact: &str, n: u64) -> Request {
    let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let b: Vec<f32> = (0..n).map(|i| (3 * i) as f32).collect();
    Request {
        id,
        tenant: "chaos".into(),
        deadline_ms: None,
        body: RequestBody::Execute(ExecuteRequest {
            artifact: Some(artifact.to_string()),
            binary: None,
            region: "vec_add".to_string(),
            syms: vec![],
            params: vec![],
            mode: WireMode::InfS,
            inputs: vec![
                ArrayPayload { array: 0, data: a },
                ArrayPayload { array: 1, data: b },
            ],
            outputs: vec![2],
        }),
    }
}

/// Healthy host reference, computed on a fault-free server.
fn host_reference() -> Vec<f32> {
    let server = Server::new(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let r = server.call(compile_req(0, N));
    assert!(r.ok, "reference compile failed: {:?}", r.error);
    let artifact = r.artifact.unwrap();
    let mut req = execute_req(1, &artifact, N);
    if let RequestBody::Execute(e) = &mut req.body {
        e.mode = WireMode::Base;
    }
    let r = server.call(req);
    assert!(r.ok, "reference execute failed: {:?}", r.error);
    server.shutdown();
    r.outputs[0].data.clone()
}

/// Drives one deterministic request sequence against a chaos server,
/// recovering exactly as a client would: worker faults are retried, a
/// corruption-evicted artifact is recompiled. Returns the per-request
/// outcome log for reproducibility comparison.
fn drive(server: &Server, reference: &[f32], requests: u64) -> Vec<(u64, String)> {
    let mut log = Vec::new();
    let mut id = 0u64;
    let mut next = || {
        id += 1;
        id
    };
    let mut artifact = {
        let r = call_with_recovery(server, &mut next, compile_req(0, N), &mut log);
        r.artifact.expect("recovered compile yields an artifact")
    };
    for _ in 0..requests {
        let req = execute_req(next(), &artifact, N);
        let r = call_with_recovery(server, &mut next, req, &mut log);
        if !r.ok {
            // The artifact was corruption-evicted mid-sequence: recompile
            // (recovery), then the next iteration proceeds against it.
            assert_eq!(
                r.error.as_ref().unwrap().kind,
                WireError::UNKNOWN_ARTIFACT,
                "only eviction survives recovery: {:?}",
                r.error
            );
            let recompile = compile_req(next(), N);
            let c = call_with_recovery(server, &mut next, recompile, &mut log);
            artifact = c.artifact.expect("recompile yields an artifact");
            continue;
        }
        assert_eq!(
            r.outputs[0].data, reference,
            "degraded output diverges from the host reference"
        );
        assert_eq!(
            r.stats.executed.as_deref(),
            Some("near-memory"),
            "below quorum the ladder must land on the stream engines"
        );
    }
    log
}

/// Calls the server, retrying injected worker faults a bounded number of
/// times, and logs every outcome.
fn call_with_recovery(
    server: &Server,
    next: &mut impl FnMut() -> u64,
    req: Request,
    log: &mut Vec<(u64, String)>,
) -> Response {
    let mut req = req;
    for _ in 0..16 {
        let r = server.call(req.clone());
        assert_typed("chaos", &r);
        let kind = r
            .error
            .as_ref()
            .map(|e| e.kind.clone())
            .unwrap_or_else(|| "ok".to_string());
        log.push((r.id, kind.clone()));
        if kind != WireError::WORKER_FAULT {
            return r;
        }
        req.id = next(); // retry as a fresh request, like a real client
    }
    panic!("16 consecutive injected worker faults: schedule is broken");
}

#[test]
fn chaos_run_survives_with_typed_errors_and_bit_identical_outputs() {
    quiet_injected_panics();
    let reference = host_reference();
    let server = chaos_server(0xC4A05);
    let log = drive(&server, &reference, 40);

    // The schedule actually bit: panics were isolated and artifacts rotted.
    assert!(
        server.worker_faults() > 0,
        "worker-panic schedule never fired"
    );
    assert!(
        log.iter().any(|(_, k)| k == WireError::WORKER_FAULT),
        "no worker fault surfaced to the client"
    );

    // The health verb reports the degradation honestly.
    let r = server.call(Request {
        id: 9_000,
        tenant: "probe".into(),
        deadline_ms: None,
        body: RequestBody::Health,
    });
    assert!(r.ok);
    let h = r.health.expect("health verb returns a report");
    assert_eq!(h.status, HealthReport::DEGRADED);
    assert_eq!(h.total_banks, 64);
    assert_eq!(h.healthy_banks, 24);
    assert_eq!(h.worker_faults, server.worker_faults());

    let stats = server.shutdown();
    assert!(stats.served > 40);
}

#[test]
fn identical_seeds_reproduce_identical_outcomes() {
    quiet_injected_panics();
    let reference = host_reference();
    let run = |seed| {
        let server = chaos_server(seed);
        let log = drive(&server, &reference, 30);
        let faults = server.worker_faults();
        let corruptions = server.health().artifact_corruptions;
        server.shutdown();
        (log, faults, corruptions)
    };
    let first = run(0x5EED);
    let second = run(0x5EED);
    assert_eq!(first, second, "same seed must replay the same chaos");
    let other = run(0xD1FF);
    assert_ne!(
        first.0, other.0,
        "different seeds should produce different schedules"
    );
}

#[test]
fn jit_corruption_self_heals_mid_run() {
    let server = Server::new(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let r = server.call(compile_req(0, N_BIG));
    let artifact = r.artifact.unwrap();
    let clean = server.call(execute_req(1, &artifact, N_BIG));
    assert!(clean.ok, "clean execute failed: {:?}", clean.error);
    assert_eq!(
        clean.stats.executed.as_deref(),
        Some("in-memory"),
        "the JIT test must exercise the in-memory (command-lowering) path"
    );

    // Rot every memoized command stream; the digests no longer verify.
    assert!(server.jit().corrupt_all() > 0, "first run must memoize");
    let healed = server.call(execute_req(2, &artifact, N_BIG));
    assert!(healed.ok, "corrupted JIT entry must re-lower, not fail");
    assert_eq!(healed.outputs[0].data, clean.outputs[0].data);
    assert_eq!(
        healed.stats.jit_cache_hit,
        Some(false),
        "corrupted entry must read as a miss"
    );
    assert!(server.jit().corruptions() > 0);
    assert_eq!(server.health().status, HealthReport::DEGRADED);

    // The re-lowered entry is clean again: next run hits.
    let again = server.call(execute_req(3, &artifact, N_BIG));
    assert!(again.ok);
    assert_eq!(again.stats.jit_cache_hit, Some(true));
    server.shutdown();
}

#[test]
fn shutdown_drains_every_admitted_request_under_chaos() {
    quiet_injected_panics();
    let server = chaos_server(0xA11);
    server.pause();
    let mut tickets = Vec::new();
    for i in 0..8u64 {
        match server.submit(compile_req(i, N)) {
            Submitted::Admitted(t) => tickets.push(t),
            Submitted::Rejected(r) => panic!("rejected under default queue: {:?}", r.error),
        }
    }
    server.begin_shutdown();
    for t in tickets {
        // Success or typed failure — but every ticket is answered.
        assert_typed("drain", &t.wait());
    }
    assert_eq!(server.health().status, HealthReport::DRAINING);
    server.shutdown();
}

#[test]
fn tcp_backpressure_resolves_with_retry_and_backoff() {
    use std::net::TcpListener;

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = Arc::new(Server::new(ServeConfig {
        workers: 1,
        queue_capacity: 2,
        retry_after_ms: 5,
        ..ServeConfig::default()
    }));
    let accept = {
        let server = server.clone();
        std::thread::spawn(move || infs_serve::serve_tcp(&server, listener))
    };
    let ping = |id: u64| Request {
        id,
        tenant: "fill".into(),
        deadline_ms: None,
        body: RequestBody::Ping,
    };

    // Hold the single worker and fill to capacity: one job in the worker's
    // hands (it pops, then blocks at the pause gate) plus two queued. The
    // worker pops at most once while paused, so retrying the fill until
    // three are admitted is race-free, and afterwards the queue stays full.
    server.pause();
    let mut tickets = Vec::new();
    let mut id = 0u64;
    let t0 = std::time::Instant::now();
    while tickets.len() < 3 {
        assert!(t0.elapsed().as_secs() < 10, "fill never admitted 3");
        id += 1;
        match server.submit(ping(id)) {
            Submitted::Admitted(t) => tickets.push(t),
            Submitted::Rejected(_) => std::thread::sleep(std::time::Duration::from_millis(1)),
        }
    }
    assert_eq!(server.queue_len(), 2, "queue must now sit at capacity");

    // With worker and queue both full, rejection is deterministic.
    match server.submit(ping(99)) {
        Submitted::Rejected(r) => {
            let e = r.error.unwrap();
            assert_eq!(e.kind, WireError::BACKPRESSURE);
            assert_eq!(e.retry_after_ms, Some(5), "rejection carries the hint");
        }
        Submitted::Admitted(_) => panic!("full queue admitted a request"),
    }

    // A retrying TCP client started against the still-full queue succeeds
    // once the pool resumes — bounded attempts, exponential backoff with
    // deterministic jitter, floored at the server's retry-after hint.
    let retryer = std::thread::spawn(move || {
        let mut client = Client::connect(addr, "retry").unwrap();
        let policy = RetryPolicy {
            max_attempts: 10,
            base_ms: 5,
            cap_ms: 100,
            seed: 42,
        };
        client
            .request_with_retry(None, RequestBody::Ping, &policy)
            .unwrap()
    });
    std::thread::sleep(std::time::Duration::from_millis(30));
    server.resume();
    let r = retryer.join().unwrap();
    assert!(
        r.ok,
        "retried request must eventually succeed: {:?}",
        r.error
    );

    // Everything admitted during the squeeze was answered.
    for t in tickets {
        assert!(t.wait().ok);
    }
    server.begin_shutdown();
    accept.join().unwrap().unwrap();
    let stats = server.shutdown();
    assert!(stats.rejected >= 1, "the saturating submit was rejected");
}

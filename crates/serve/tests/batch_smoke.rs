//! Request-batching acceptance tests (`DESIGN.md` §14).
//!
//! Two guarantees pinned here:
//!
//! 1. **Coalescing is invisible**: K identical concurrent requests produce
//!    K byte-identical result payloads from exactly one execution — on a
//!    healthy server and under a chaos fault plan.
//! 2. **Retry composes with batching**: a request rejected with a
//!    retry-after hint can, on retry, join a batch that opened in the
//!    meantime — consuming no admission-queue slot.
//!
//! Both tests drive the worker pause gate (`pause`/`release`/`gate_waiting`)
//! for deterministic stepping: no sleeps stand in for synchronization.

use infs_faults::FaultConfig;
use infs_serve::{
    demo, ArrayPayload, ExecuteRequest, Request, RequestBody, ResponseStats, ServeConfig, Server,
    Submitted, Ticket, WireError, WireMode,
};

fn execute_body(artifact: &str, p0: f32, n: u64) -> RequestBody {
    RequestBody::Execute(ExecuteRequest {
        artifact: Some(artifact.to_string()),
        binary: None,
        region: "scale".to_string(),
        syms: vec![],
        params: vec![p0],
        mode: WireMode::InfS,
        inputs: vec![ArrayPayload {
            array: 0,
            data: (0..n).map(|i| i as f32).collect(),
        }],
        outputs: vec![0],
    })
}

fn compile_artifact(server: &Server, n: u64) -> String {
    let r = server.call(Request {
        id: 1,
        tenant: "warm".into(),
        deadline_ms: None,
        body: RequestBody::Compile(infs_serve::CompileRequest {
            kernel: demo::scale(n),
            representative_syms: vec![],
            optimize: true,
        }),
    });
    assert!(r.ok, "warmup compile failed: {:?}", r.error);
    r.artifact.expect("compile returns an artifact id")
}

/// Serialized response with identity (id) and measurement (stats) stripped:
/// what "byte-identical fan-out" means on the wire.
fn normalized(mut r: infs_serve::Response) -> String {
    r.id = 0;
    r.stats = ResponseStats::default();
    serde_json::to_string(&r).expect("response serializes")
}

fn k_identical_one_execution(cfg: ServeConfig, require_ok: bool) {
    const K: u64 = 8;
    let session = infs_trace::exclusive();
    let server = Server::new(cfg);
    let artifact = compile_artifact(&server, 64);
    // The warmup compile is itself a (single-member) batch; count from here.
    let batches_before = server.batch_stats().executions;

    // Hold workers so the whole burst is concurrent by construction: the
    // leader is popped and parked at the gate, everyone else joins its
    // still-open batch.
    server.pause();
    let tickets: Vec<Ticket> = (0..K)
        .map(|i| {
            match server.submit(Request {
                id: 100 + i,
                // Different tenants on purpose: identical work coalesces
                // across tenants because the result is identical.
                tenant: format!("tenant-{}", i % 3),
                deadline_ms: Some(30_000),
                body: execute_body(&artifact, 2.5, 64),
            }) {
                Submitted::Admitted(t) => t,
                Submitted::Rejected(r) => panic!("request {i} rejected: {:?}", r.error),
            }
        })
        .collect();
    let stats = server.batch_stats();
    assert_eq!(stats.joined, K - 1, "all but the leader must join");
    server.resume();

    let responses: Vec<_> = tickets.into_iter().map(Ticket::wait).collect();
    let snap = infs_trace::snapshot();
    drop(session);

    let first = normalized(responses[0].clone());
    for (i, r) in responses.iter().enumerate() {
        if require_ok {
            assert!(r.ok, "response {i} failed: {:?}", r.error);
        }
        assert_eq!(r.id, 100 + i as u64, "responses keep their own ids");
        assert_eq!(
            normalized(r.clone()),
            first,
            "response {i} differs from the leader's payload"
        );
    }

    let executions = snap.counters.get("serve.executions").copied().unwrap_or(0);
    if require_ok {
        assert_eq!(executions, 1, "one region execution for the whole burst");
        // The member responses agree on the batch size.
        assert!(responses.iter().all(|r| r.stats.batch_size == K));
    } else {
        // Under chaos the leader may fault before reaching the machine, but
        // coalescing must never *add* executions.
        assert!(executions <= 1, "chaos burst ran {executions} executions");
    }
    let stats = server.batch_stats();
    assert_eq!(stats.executions - batches_before, 1, "one batch closed");
    assert_eq!(stats.max_occupancy, K);

    let shutdown = server.shutdown();
    // Followers count as served requests (they are answered requests).
    assert!(shutdown.served > K);
}

#[test]
fn identical_burst_is_one_execution_with_byte_identical_fanout() {
    k_identical_one_execution(
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        true,
    );
}

#[test]
fn identical_burst_under_chaos_still_coalesces_and_fans_out_identically() {
    k_identical_one_execution(
        ServeConfig {
            workers: 2,
            faults: Some(FaultConfig::chaos(7)),
            ..ServeConfig::default()
        },
        false,
    );
}

/// A client rejected with `retry-after` retries while a batch for its exact
/// content is open: the retry joins the batch instead of needing the (still
/// scarce) queue slot it was refused the first time.
#[test]
fn rejected_request_retries_into_an_open_batch() {
    let server = Server::new(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    });
    let artifact = compile_artifact(&server, 64);
    let shared_body = execute_body(&artifact, 3.0, 64); // the batchable content
    let filler_a = execute_body(&artifact, 10.0, 64);
    let filler_b = execute_body(&artifact, 20.0, 64);

    server.pause();
    // Step 1: filler A occupies the (single) worker, parked at the gate.
    let t_a = match server.submit(Request {
        id: 10,
        tenant: "a".into(),
        deadline_ms: Some(30_000),
        body: filler_a,
    }) {
        Submitted::Admitted(t) => t,
        Submitted::Rejected(r) => panic!("filler A rejected: {:?}", r.error),
    };
    while server.gate_waiting() < 1 {
        std::thread::yield_now();
    }
    // Step 2: filler B occupies the single queue slot.
    let t_b = match server.submit(Request {
        id: 11,
        tenant: "b".into(),
        deadline_ms: Some(30_000),
        body: filler_b,
    }) {
        Submitted::Admitted(t) => t,
        Submitted::Rejected(r) => panic!("filler B rejected: {:?}", r.error),
    };
    assert_eq!(server.queue_len(), 1);

    // Step 3: the client's first attempt — queue full, no open batch for
    // this content → typed backpressure rejection with a retry hint.
    let first = match server.submit(Request {
        id: 20,
        tenant: "client".into(),
        deadline_ms: Some(30_000),
        body: shared_body.clone(),
    }) {
        Submitted::Rejected(r) => r,
        Submitted::Admitted(_) => panic!("expected a backpressure rejection"),
    };
    let err = first.error.as_ref().expect("rejection carries an error");
    assert_eq!(err.kind, WireError::BACKPRESSURE);
    assert!(err.retry_after_ms.is_some(), "rejection carries retry hint");

    // Step 4: filler A completes; the worker pops filler B and parks again.
    // Now a *different* client opens a batch for the shared content in the
    // freed queue slot.
    server.release(1);
    let _ = t_a.wait();
    while server.gate_waiting() < 1 {
        std::thread::yield_now();
    }
    assert_eq!(server.queue_len(), 0);
    let t_leader = match server.submit(Request {
        id: 30,
        tenant: "other".into(),
        deadline_ms: Some(30_000),
        body: shared_body.clone(),
    }) {
        Submitted::Admitted(t) => t,
        Submitted::Rejected(r) => panic!("leader rejected: {:?}", r.error),
    };
    assert_eq!(server.queue_len(), 1, "leader consumed the queue slot");

    // Step 5: the retry (queue is full again!) joins the open batch instead
    // of being rejected a second time.
    let joined_before = server.batch_stats().joined;
    let t_retry = match server.submit(Request {
        id: 21,
        tenant: "client".into(),
        deadline_ms: Some(30_000),
        body: shared_body,
    }) {
        Submitted::Admitted(t) => t,
        Submitted::Rejected(r) => panic!("retry should join the open batch: {:?}", r.error),
    };
    assert_eq!(server.queue_len(), 1, "joining consumed no queue slot");
    assert_eq!(server.batch_stats().joined, joined_before + 1);

    server.resume();
    let rb = t_b.wait();
    let r_leader = t_leader.wait();
    let r_retry = t_retry.wait();
    assert!(rb.ok && r_leader.ok && r_retry.ok);
    assert!(r_retry.stats.batched, "retry must report riding the batch");
    assert_eq!(r_retry.stats.batch_size, 2);
    assert_eq!(r_retry.outputs[0].data, r_leader.outputs[0].data);
    let stats = server.batch_stats();
    assert!(stats.max_occupancy >= 2);
    server.shutdown();
}

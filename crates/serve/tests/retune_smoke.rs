//! The chaos-retune acceptance test (`DESIGN.md` §15): banks die mid-soak
//! under a seeded SRAM-flip schedule, the tuner demotes its promoted variant
//! back to the heuristic baseline, re-converges on the surviving banks, and
//! during the whole transition every response is either a success with
//! bitwise-identical output or a typed error — never a hang or a wrong bit.

use infs_faults::FaultConfig;
use infs_serve::{
    demo, ArrayPayload, CompileRequest, ExecuteRequest, Request, RequestBody, Response,
    ServeConfig, Server, TuneConfig, WireError, WireMode,
};

const D: u64 = 256;
const CHAIN: u32 = 8;
const REQUESTS: u64 = 96;

/// Every error kind the retune transition may legitimately produce; anything
/// else is a hole in the degradation ladder.
fn assert_typed(r: &Response) {
    if r.ok {
        return;
    }
    let kind = r
        .error
        .as_ref()
        .map(|e| e.kind.as_str())
        .expect("failure responses carry an error");
    let allowed = [
        WireError::WORKER_FAULT,
        WireError::BACKPRESSURE,
        WireError::TIMEOUT,
    ];
    assert!(allowed.contains(&kind), "untyped failure kind '{kind}'");
}

fn compile(server: &Server) -> String {
    let r = server.call(Request {
        id: 0,
        tenant: "retune".into(),
        deadline_ms: None,
        body: RequestBody::Compile(CompileRequest {
            kernel: demo::mat_update(D, CHAIN),
            representative_syms: vec![],
            optimize: false, // past Eq-2's crossover: the tuner promotes
        }),
    });
    assert!(r.ok, "compile failed: {:?}", r.error);
    r.artifact.expect("compile yields an artifact")
}

fn execute(server: &Server, id: u64, artifact: &str) -> Response {
    let a: Vec<f32> = (0..D * D).map(|x| 1.0 + (x % 7) as f32 * 0.125).collect();
    let b: Vec<f32> = (0..D * D).map(|x| 0.5 + (x % 5) as f32 * 0.25).collect();
    server.call(Request {
        id,
        tenant: "retune".into(),
        deadline_ms: None,
        body: RequestBody::Execute(ExecuteRequest {
            artifact: Some(artifact.to_string()),
            binary: None,
            region: "mat_update".into(),
            syms: vec![],
            params: vec![],
            mode: WireMode::InfS,
            inputs: vec![
                ArrayPayload { array: 0, data: a },
                ArrayPayload { array: 1, data: b },
            ],
            outputs: vec![2],
        }),
    })
}

#[test]
fn mid_soak_bank_deaths_demote_then_reconverge() {
    // Healthy untuned reference for the bitwise gate.
    let reference: Vec<u32> = {
        let s = Server::new(ServeConfig {
            workers: 1,
            batching: false,
            auditor: Some(infs_check::auditor()),
            ..ServeConfig::default()
        });
        let artifact = compile(&s);
        let r = execute(&s, 1, &artifact);
        assert!(r.ok, "reference execute failed: {:?}", r.error);
        let bits = r.outputs[0].data.iter().map(|v| v.to_bits()).collect();
        s.shutdown();
        bits
    };

    // Same schedule as the `figures tune` retune drill: roughly one SRAM
    // flip per twelve region runs, each quarantining one bank.
    let server = Server::new(ServeConfig {
        workers: 1,
        batching: false,
        auditor: Some(infs_check::auditor()),
        tune: Some(TuneConfig {
            explore_percent: 40,
            min_samples: 2,
            ..TuneConfig::seeded(0x7C3A_11E5)
        }),
        faults: Some(FaultConfig {
            seed: 0xD2111,
            sram_flip_period: 12,
            ..FaultConfig::none()
        }),
        ..ServeConfig::default()
    });
    let artifact = compile(&server);
    let mut last_exploit_variant = None;
    for i in 0..REQUESTS {
        let r = execute(&server, 1 + i, &artifact);
        assert_typed(&r);
        if !r.ok {
            continue; // typed transition noise; the next request proceeds
        }
        let bits: Vec<u32> = r.outputs[0].data.iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            bits, reference,
            "request {i} (variant {:?}) diverges bitwise during retune",
            r.stats.tuned_variant
        );
        if !r.stats.tuned_explore {
            last_exploit_variant = r.stats.tuned_variant.clone();
        }
    }

    // The schedule actually bit, the tuner walked the full promote →
    // demote → re-promote arc, and health reports the lost banks.
    let m = server.metrics();
    assert!(m.tune_promotions >= 1, "soak never promoted: {m:?}");
    assert!(
        m.tune_demotions >= 1,
        "bank deaths never demoted the incumbent: {m:?}"
    );
    let h = server.health();
    assert!(
        h.healthy_banks < h.total_banks,
        "no banks quarantined: {}/{}",
        h.healthy_banks,
        h.total_banks
    );
    // Re-convergence: after the demotions the exploit path settled back on
    // the near-memory override (the surviving banks still favour it).
    assert_eq!(
        last_exploit_variant.as_deref(),
        Some("tier:near-memory"),
        "soak ended without re-converging"
    );
    server.shutdown();
}

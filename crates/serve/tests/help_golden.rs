//! Golden test for `infs-served --help`: the flag surface is documented in
//! three places — the `HELP` const, the README flag table, and the crate
//! rustdoc — and this test pins the binary's actual output byte-for-byte so
//! a flag added or reworded in one place without the others fails loudly.

use std::process::Command;

/// The expected `--help` bytes, verbatim. When a flag changes, update this
/// golden AND the README "infs-served flags" table AND the rustdoc header of
/// `src/bin/infs_served.rs` in the same commit.
const GOLDEN: &str = "\
infs-served — resident Infinity Stream compile-and-execute daemon

usage: infs-served [FLAGS]

  --addr HOST:PORT  listen address (default 127.0.0.1:7199)
  --workers N       worker threads per shard (default: min(cores, 4))
  --queue N         admission queue bound; beyond it requests are rejected
                    with a typed backpressure error (default 64)
  --trace PATH      enable tracing; write a Chrome trace to PATH (plus
                    PATH.metrics.json) at shutdown
  --chaos SEED      arm the deterministic fault plan: worker panics,
                    artifact corruption, dead banks, SRAM flips, NoC faults
  --tune SEED       enable online feedback-directed autotuning: route a
                    deterministic sampled fraction of Inf-S traffic through
                    explorer variants (tiles, tiers, residency) and promote
                    variants that beat the static heuristics
  --shards N        run N full server shards behind the consistent-hash
                    tenant router (default 1; N >= 2 enables the router)
  --legacy-io       thread-per-connection accept loop instead of the default
                    event-driven reactor (benchmark baseline; single shard)
  --no-batching     disable coalescing of identical in-flight requests
  --help, -h        print this help and exit
";

fn help_output(flag: &str) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_infs-served"))
        .arg(flag)
        .output()
        .expect("infs-served binary runs")
}

#[test]
fn help_matches_golden_bytes_exactly() {
    for flag in ["--help", "-h"] {
        let out = help_output(flag);
        assert!(out.status.success(), "{flag} must exit 0: {:?}", out.status);
        assert!(out.stderr.is_empty(), "{flag} must not write to stderr");
        let stdout = String::from_utf8(out.stdout).expect("help is valid UTF-8");
        assert_eq!(
            stdout, GOLDEN,
            "{flag} output drifted from the golden copy — update the HELP \
             const, README flag table, rustdoc header, and this golden together"
        );
    }
}

#[test]
fn unknown_flag_fails_with_a_pointer_to_help() {
    let out = help_output("--definitely-not-a-flag");
    assert!(!out.status.success(), "unknown flags must not exit 0");
    let stderr = String::from_utf8(out.stderr).expect("error is valid UTF-8");
    assert!(
        stderr.contains("unknown flag") && stderr.contains("--help"),
        "error must name the flag and point at --help: {stderr:?}"
    );
}

//! Response-stats accounting invariants: for every response the phase times
//! fit inside the reported total (`queue_wait_us + compile_us + execute_us <=
//! total_us`), artifact-cache hits report zero compile time, and the
//! `Metrics` verb reports counters consistent with the traffic just served.

use infs_serve::{
    demo, ArrayPayload, ExecuteRequest, Request, RequestBody, Response, ServeConfig, Server,
    WireMode,
};

fn call(server: &Server, id: u64, body: RequestBody) -> Response {
    let r = server.call(Request {
        id,
        tenant: "stats-test".into(),
        deadline_ms: None,
        body,
    });
    let s = &r.stats;
    assert!(
        s.queue_wait_us + s.compile_us + s.execute_us <= s.total_us,
        "request {id}: queue_wait {} + compile {} + execute {} > total {}",
        s.queue_wait_us,
        s.compile_us,
        s.execute_us,
        s.total_us
    );
    assert_eq!(
        s.total_us,
        s.queue_wait_us + s.service_us,
        "request {id}: total must be queue wait plus service time"
    );
    if s.artifact_cache_hit {
        assert_eq!(
            s.compile_us, 0,
            "request {id}: artifact-cache hit reports compile time"
        );
    }
    r
}

#[test]
fn phase_times_fit_inside_total_and_metrics_add_up() {
    let server = Server::new(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let n = 128u64;

    let r = call(&server, 1, RequestBody::Ping);
    assert!(r.ok);

    // Cold compile: real compile time, no cache hit.
    let r = call(
        &server,
        2,
        RequestBody::Compile(infs_serve::CompileRequest {
            kernel: demo::scale(n),
            representative_syms: vec![],
            optimize: true,
        }),
    );
    assert!(r.ok, "compile failed: {:?}", r.error);
    assert!(!r.stats.artifact_cache_hit);
    let artifact = r.artifact.unwrap();

    // Execute: nonzero execute time bounded by the total.
    let input: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let r = call(
        &server,
        3,
        RequestBody::Execute(ExecuteRequest {
            artifact: Some(artifact.clone()),
            binary: None,
            region: "scale".into(),
            syms: vec![],
            params: vec![2.0],
            mode: WireMode::InfS,
            inputs: vec![ArrayPayload {
                array: 0,
                data: input,
            }],
            outputs: vec![0],
        }),
    );
    assert!(r.ok, "execute failed: {:?}", r.error);
    assert!(r.stats.cycles > 0);

    // Warm recompile: the `call` helper asserts compile_us == 0 on a hit.
    let r = call(
        &server,
        4,
        RequestBody::Compile(infs_serve::CompileRequest {
            kernel: demo::scale(n),
            representative_syms: vec![],
            optimize: true,
        }),
    );
    assert!(r.ok);
    assert!(r.stats.artifact_cache_hit);

    // The metrics verb reflects the traffic above.
    let r = call(&server, 5, RequestBody::Metrics);
    assert!(r.ok);
    let m = r.metrics.expect("metrics response carries a report");
    assert!(m.served >= 4, "served {} requests before metrics", m.served);
    assert_eq!(m.rejected, 0);
    // Both the execute's artifact resolution and the warm recompile hit.
    assert_eq!(m.artifact_hits, 2);
    assert!(m.artifact_misses >= 1);
    assert_eq!(m.workers, 2);
    assert_eq!(m.queue_depth, 0, "queue is idle between calls");
    assert!(m.queue_capacity > 0);

    // Non-metrics responses must not carry a report.
    let r = call(&server, 6, RequestBody::Ping);
    assert!(r.ok && r.metrics.is_none());

    server.shutdown();
}

#[test]
fn pipeline_stats_nest_and_cache_hits() {
    let server = Server::new(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let n = 128u64;
    let graph = demo::pipeline(n, 2.0);
    let input: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let body = || {
        RequestBody::Pipeline(infs_serve::PipelineRequest {
            graph: graph.to_json().unwrap(),
            mode: WireMode::InfS,
            fused: true,
            inputs: vec![ArrayPayload {
                array: 0,
                data: input.clone(),
            }],
            outputs: vec![3],
        })
    };

    // Cold: compiled once, per-stage breakdown present and nested.
    let r = call(&server, 40, body());
    assert!(r.ok, "pipeline request failed: {:?}", r.error);
    assert!(!r.stats.artifact_cache_hit);
    assert_eq!(r.stats.stages.len(), graph.stages.len());
    let stage_compile: u64 = r.stats.stages.iter().map(|s| s.compile_us).sum();
    let stage_execute: u64 = r.stats.stages.iter().map(|s| s.execute_us).sum();
    assert!(stage_compile <= r.stats.compile_us);
    assert!(stage_execute <= r.stats.execute_us);
    assert!(r.stats.cycles > 0);
    for st in &r.stats.stages {
        assert!(!st.name.is_empty());
        assert!(!st.executed.is_empty());
        assert!(st.cycles > 0);
    }
    let out = &r.outputs[0].data;
    assert_eq!(out, &demo::pipeline_reference(&input, 2.0));
    let artifact = r.artifact.clone().unwrap();

    // Warm: pipeline-cache hit, zero compile time everywhere, same artifact.
    let r = call(&server, 41, body());
    assert!(r.ok);
    assert!(r.stats.artifact_cache_hit, "identical graph must hit");
    assert!(r.stats.stages.iter().all(|s| s.compile_us == 0));
    assert_eq!(r.artifact.as_deref(), Some(artifact.as_str()));

    // A malformed graph is a bad request, not a worker fault.
    let r = call(
        &server,
        42,
        RequestBody::Pipeline(infs_serve::PipelineRequest {
            graph: "{not json".into(),
            mode: WireMode::InfS,
            fused: true,
            inputs: vec![],
            outputs: vec![],
        }),
    );
    assert!(!r.ok);
    assert_eq!(r.error.unwrap().kind, infs_serve::WireError::BAD_REQUEST);

    let metrics = match call(&server, 43, RequestBody::Metrics).metrics {
        Some(m) => m,
        None => panic!("metrics verb must answer with a report"),
    };
    assert_eq!(metrics.pipeline_hits, 1);
    assert_eq!(metrics.pipeline_misses, 1);
    server.shutdown();
}

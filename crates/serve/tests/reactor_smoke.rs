//! End-to-end smoke of the event-driven IO path (`DESIGN.md` §14): a real
//! `Server` behind `serve_reactor`, real sockets on loopback, the unchanged
//! wire protocol — and the shutdown-latency regression the reactor was
//! partly built for (the legacy accept loop napped 50 ms on `WouldBlock`).

use infs_serve::{demo, serve_reactor, ArrayPayload, Client, ServeConfig, Server, WireMode};
use infs_shard::ReactorConfig;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn start(
    cfg: ServeConfig,
    reactor: ReactorConfig,
) -> (
    std::net::SocketAddr,
    Arc<Server>,
    std::thread::JoinHandle<infs_shard::ReactorStats>,
) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = Arc::new(Server::new(cfg));
    let io = {
        let server = server.clone();
        std::thread::spawn(move || serve_reactor(&server, listener, &reactor).expect("reactor"))
    };
    (addr, server, io)
}

#[test]
fn reactor_round_trip_many_connections_and_clean_shutdown() {
    let (addr, server, io) = start(
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        ReactorConfig::default(),
    );

    // The protocol is unchanged: the existing thin client just works.
    let mut clients: Vec<Client> = (0..16)
        .map(|i| Client::connect(addr, format!("tenant-{i}")).unwrap())
        .collect();
    for c in &mut clients {
        assert!(c.ping().unwrap().ok);
    }

    let n = 128u64;
    let r = clients[0].compile(demo::scale(n), vec![], true).unwrap();
    assert!(r.ok, "compile failed: {:?}", r.error);
    let artifact = r.artifact.unwrap();

    // Every connection executes; arithmetic is checked through the socket.
    let input: Vec<f32> = (0..n).map(|i| i as f32).collect();
    for c in &mut clients {
        let r = c
            .execute(
                &artifact,
                "scale",
                vec![],
                vec![2.0],
                WireMode::InfS,
                vec![ArrayPayload {
                    array: 0,
                    data: input.clone(),
                }],
                vec![0],
            )
            .unwrap();
        assert!(r.ok, "execute failed: {:?}", r.error);
        let expect: Vec<f32> = input.iter().map(|x| x * 2.0).collect();
        assert_eq!(r.outputs[0].data, expect);
    }

    // Malformed line: answered with bad-request, connection stays usable.
    use std::io::{BufRead, BufReader, Write};
    let raw = std::net::TcpStream::connect(addr).unwrap();
    let mut w = raw.try_clone().unwrap();
    let mut r = BufReader::new(raw);
    w.write_all(b"this is not json\n").unwrap();
    let mut line = String::new();
    r.read_line(&mut line).unwrap();
    assert!(line.contains("bad-request"), "got: {line}");

    // Shutdown over the wire: the Shutdown response itself must reach the
    // client (the reactor drains in-flight replies before exiting).
    let r = clients[0].shutdown().unwrap();
    assert!(r.ok);
    let stats = io.join().unwrap();
    assert_eq!(stats.accepted, 17);
    assert!(stats.lines >= 34);
    assert_eq!(stats.responses, stats.lines, "every line answered");
    let shutdown = server.shutdown();
    assert!(shutdown.served >= 34);
}

/// Satellite regression: with idle connections parked and no traffic, an
/// out-of-band `begin_shutdown` must take effect within a small multiple of
/// the poll interval — one interval for the watcher to notice, one drain
/// grace, and scheduling slack — not the legacy accept-nap stragglers.
#[test]
fn out_of_band_shutdown_latency_is_bounded() {
    let poll = Duration::from_millis(100);
    let (addr, server, io) = start(
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        ReactorConfig {
            poll_interval: poll,
            ..ReactorConfig::default()
        },
    );
    let _idle1 = std::net::TcpStream::connect(addr).unwrap();
    let _idle2 = std::net::TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(30)); // let the reactor park

    let t0 = Instant::now();
    server.begin_shutdown();
    io.join().unwrap();
    let elapsed = t0.elapsed();
    assert!(
        elapsed < 4 * poll,
        "shutdown took {elapsed:?}; bound is 4 × {poll:?}"
    );
    server.shutdown();
}

//! Serve-layer autotuning acceptance (`DESIGN.md` §15): under a fixed seed
//! the tuned server replays bit-for-bit (decisions, cycles, outputs), a
//! promoted variant's outputs stay bitwise-identical to the incumbent's, and
//! the metrics verb surfaces the tune counters.

use infs_serve::{
    demo, ArrayPayload, CompileRequest, ExecuteRequest, Request, RequestBody, ServeConfig, Server,
    TuneConfig, WireMode,
};

const D: u64 = 256;
const CHAIN: u32 = 8;

/// One worker, batching off: sequential `call`s make the request order — and
/// with it every tune decision — deterministic.
fn server(tune: Option<TuneConfig>) -> Server {
    Server::new(ServeConfig {
        workers: 1,
        batching: false,
        tune,
        auditor: Some(infs_check::auditor()),
        ..ServeConfig::default()
    })
}

/// The soak's tuner: hotter exploration and a lower sample floor than the
/// serving default so convergence fits a short test budget.
fn tune_cfg(seed: u64) -> TuneConfig {
    TuneConfig {
        explore_percent: 50,
        min_samples: 2,
        ..TuneConfig::seeded(seed)
    }
}

fn compile(server: &Server) -> String {
    let r = server.call(Request {
        id: 0,
        tenant: "tune".into(),
        deadline_ms: None,
        body: RequestBody::Compile(CompileRequest {
            kernel: demo::mat_update(D, CHAIN),
            representative_syms: vec![],
            // Unoptimized on purpose: the preserved op ladder is what pushes
            // the kernel past Eq-2's crossover, where the static heuristic
            // wrongly picks in-memory and the tuner has something to win.
            optimize: false,
        }),
    });
    assert!(r.ok, "compile failed: {:?}", r.error);
    r.artifact.expect("compile yields an artifact")
}

fn execute(server: &Server, id: u64, artifact: &str) -> infs_serve::Response {
    let a: Vec<f32> = (0..D * D).map(|x| 1.0 + (x % 7) as f32 * 0.125).collect();
    let b: Vec<f32> = (0..D * D).map(|x| 0.5 + (x % 5) as f32 * 0.25).collect();
    let r = server.call(Request {
        id,
        tenant: "tune".into(),
        deadline_ms: None,
        body: RequestBody::Execute(ExecuteRequest {
            artifact: Some(artifact.to_string()),
            binary: None,
            region: "mat_update".into(),
            syms: vec![],
            params: vec![],
            mode: WireMode::InfS,
            inputs: vec![
                ArrayPayload { array: 0, data: a },
                ArrayPayload { array: 1, data: b },
            ],
            outputs: vec![2],
        }),
    });
    assert!(r.ok, "execute {id} failed: {:?}", r.error);
    r
}

/// (variant label, explored, simulated cycles, where it ran) per request —
/// the full observable tuning trace.
fn drive(server: &Server, requests: u64) -> Vec<(String, bool, u64, String)> {
    let artifact = compile(server);
    (0..requests)
        .map(|i| {
            let r = execute(server, 1 + i, &artifact);
            (
                r.stats.tuned_variant.clone().unwrap_or_default(),
                r.stats.tuned_explore,
                r.stats.cycles,
                r.stats.executed.clone().unwrap_or_default(),
            )
        })
        .collect()
}

#[test]
fn identical_seeds_replay_identical_tuning_traces() {
    let run = |seed| {
        let s = server(Some(tune_cfg(seed)));
        let log = drive(&s, 24);
        s.shutdown();
        log
    };
    let first = run(0x5EED);
    let second = run(0x5EED);
    assert_eq!(first, second, "same seed must replay the same trace");

    let other = run(0xD1FF);
    let explores = |log: &[(String, bool, u64, String)]| -> Vec<bool> {
        log.iter().map(|(_, e, _, _)| *e).collect()
    };
    assert_ne!(
        explores(&first),
        explores(&other),
        "a different seed must shift the explore schedule"
    );
}

#[test]
fn promoted_variant_output_is_bitwise_identical_to_static() {
    // Static reference: the same workload on an untuned server.
    let static_server = server(None);
    let artifact = compile(&static_server);
    let reference: Vec<u32> = execute(&static_server, 1, &artifact).outputs[0]
        .data
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let static_cycles = execute(&static_server, 2, &artifact).stats.cycles;
    static_server.shutdown();

    let tuned_server = server(Some(tune_cfg(0x7C3A_11E5)));
    let artifact = compile(&tuned_server);
    let mut last_exploit = None;
    for i in 0..48u64 {
        let r = execute(&tuned_server, 1 + i, &artifact);
        let bits: Vec<u32> = r.outputs[0].data.iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            bits, reference,
            "request {i} (variant {:?}) diverges bitwise from the static reference",
            r.stats.tuned_variant
        );
        if !r.stats.tuned_explore {
            last_exploit = Some(r);
        }
    }
    let m = tuned_server.metrics();
    assert!(m.tune_promotions >= 1, "soak never promoted: {m:?}");
    assert!(m.tune_explored > 0 && m.tune_exploited > 0);
    assert_eq!(m.tune_artifacts, 1);

    // After promotion the steady state serves the promoted variant — off
    // the static heuristic's (wrong) in-memory placement — strictly faster.
    let last = last_exploit.expect("soak has exploit requests");
    assert_eq!(
        last.stats.tuned_variant.as_deref(),
        Some("tier:near-memory")
    );
    assert_eq!(last.stats.executed.as_deref(), Some("near-memory"));
    assert!(
        last.stats.cycles < static_cycles,
        "steady tuned {} must beat static {static_cycles}",
        last.stats.cycles
    );
    tuned_server.shutdown();
}

#[test]
fn untuned_server_reports_zero_tune_counters() {
    let s = server(None);
    let artifact = compile(&s);
    let r = execute(&s, 1, &artifact);
    assert_eq!(r.stats.tuned_variant, None);
    assert!(!r.stats.tuned_explore);
    let m = s.metrics();
    assert_eq!(
        (
            m.tune_explored,
            m.tune_exploited,
            m.tune_promotions,
            m.tune_demotions,
            m.tune_artifacts
        ),
        (0, 0, 0, 0, 0)
    );
    s.shutdown();
}
